// Table II + Fig. 9: Inception-v1 training time (15 epochs) and scalability
// of the four platforms at 1 / 8 / 16 GPUs.
//
// The paper's headline: ShmCaffe trains 10.1x faster than Caffe and 2.8x
// faster than Caffe-MPI at 16 GPUs.  Times come from the timed platform
// models; a 15-epoch run is iterations_per_worker(K) iterations of the
// simulated mean iteration time.
#include <cstdio>
#include <string>

#include "baselines/sim_platforms.h"
#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

namespace {

using namespace shmcaffe;

SimTime training_time(SimTime mean_iteration, int workers) {
  const cluster::TrainingRun run;
  return mean_iteration * run.iterations_per_worker(workers);
}

SimTime shmcaffe_iteration(int workers) {
  core::SimShmCaffeOptions options;
  options.workers = workers;
  // The paper's ShmCaffe rows use hybrid SGD (§IV-C) on 4-GPU nodes.
  options.group_size = workers >= 4 ? 4 : 1;
  options.iterations = 300;
  return core::simulate_shmcaffe(options).mean_iteration();
}

SimTime platform_iteration(const char* name, int workers) {
  baselines::SimPlatformOptions options;
  options.workers = workers;
  options.iterations = 300;
  const std::string platform(name);
  if (platform == "caffe") return baselines::simulate_caffe(options).mean_iteration();
  if (platform == "caffe_mpi") return baselines::simulate_caffe_mpi(options).mean_iteration();
  return baselines::simulate_mpicaffe(options).mean_iteration();
}

}  // namespace

int main() {
  bench::print_header(
      "Table II + Fig. 9 — Inception-v1 training time (15 epochs) & scalability",
      "paper anchors: Caffe 22:59 / 8:39 / 9:53 (1/8/16 GPUs);\n"
      "ShmCaffe 10.1x faster than Caffe and 2.8x faster than Caffe-MPI at 16 GPUs");

  struct Row {
    std::string name;
    SimTime t1 = 0, t8 = 0, t16 = 0;
  };
  Row caffe{"Caffe", training_time(platform_iteration("caffe", 1), 1),
            training_time(platform_iteration("caffe", 8), 8),
            training_time(platform_iteration("caffe", 16), 16)};
  Row caffe_mpi{"Caffe-MPI", 0, training_time(platform_iteration("caffe_mpi", 8), 8),
                training_time(platform_iteration("caffe_mpi", 16), 16)};
  Row mpicaffe{"MPICaffe", 0, training_time(platform_iteration("mpicaffe", 8), 8),
               training_time(platform_iteration("mpicaffe", 16), 16)};
  Row shmcaffe{"ShmCaffe", 0, training_time(shmcaffe_iteration(8), 8),
               training_time(shmcaffe_iteration(16), 16)};

  const double base = static_cast<double>(caffe.t1);
  auto fmt_time = [](SimTime t) {
    return t == 0 ? std::string("-") : common::format_hours_minutes(t);
  };
  auto fmt_scal = [base](SimTime t) {
    return t == 0 ? std::string("-") : common::format_fixed(base / static_cast<double>(t), 1);
  };

  common::TextTable table({"platform", "1 GPU", "8 GPUs", "16 GPUs", "scal. @8", "scal. @16"});
  for (const Row& row : {caffe, caffe_mpi, mpicaffe, shmcaffe}) {
    table.add_row({row.name, fmt_time(row.t1), fmt_time(row.t8), fmt_time(row.t16),
                   fmt_scal(row.t8), fmt_scal(row.t16)});
  }
  std::printf("%s", table.render().c_str());

  const double vs_caffe = base / static_cast<double>(shmcaffe.t16);
  const double vs_caffe_mpi =
      static_cast<double>(caffe_mpi.t16) / static_cast<double>(shmcaffe.t16);
  std::printf("\nheadline: ShmCaffe(16) is %.1fx faster than Caffe (paper: 10.1x)\n",
              vs_caffe);
  std::printf("          ShmCaffe(16) is %.1fx faster than Caffe-MPI(16) (paper: 2.8x)\n",
              vs_caffe_mpi);
  return 0;
}
