// Fig. 14 + Table VI: ShmCaffe-H computation and communication per model for
// the paper's hybrid configurations (Table III):
//
//   4(S4,A0)  — one node, 4 GPUs, pure synchronous (BVLC-Caffe comparison)
//   4(S2,A2)  — 2 nodes x 2 GPUs: intra-node SSGD, inter-node SEASGD
//   8(S2,A4)  — 4 nodes x 2 GPUs
//   8(S4,A2)  — 2 nodes x 4 GPUs
//   16(S4,A4) — 4 nodes x 4 GPUs
//
// Paper anchor: Inception-ResNet-v2's communication ratio falls from 65% to
// 30.7% at 16 GPUs compared with ShmCaffe-A, because the hybrid moves 1/4 of
// the volume through the SMB server.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;

  bench::print_header(
      "Fig. 14 + Table VI — ShmCaffe-H computation/communication per model",
      "hybrid SGD: synchronous inside a node group, SEASGD between groups");

  struct Config {
    int workers;
    int group_size;
  };
  const std::vector<Config> configs{{4, 4}, {4, 2}, {8, 2}, {8, 4}, {16, 4}};

  common::TextTable table(
      {"model", "config", "computation", "communication", "iteration", "comm ratio"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    for (const Config& config : configs) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = config.workers;
      options.group_size = config.group_size;
      options.iterations = 200;
      const cluster::PlatformTiming t = core::simulate_shmcaffe(options);
      const int async_groups = config.workers / config.group_size;
      const std::string label = std::to_string(config.workers) + "(S" +
                                std::to_string(config.group_size) + "xA" +
                                std::to_string(async_groups == 1 ? 0 : async_groups) + ")";
      table.add_row({model.name, label, common::format_duration(t.mean_comp),
                     common::format_duration(t.mean_comm),
                     common::format_duration(t.mean_iteration()),
                     common::format_percent(t.comm_ratio())});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper anchor: the hybrid cuts inception_resnet_v2's 16-GPU communication\n"
      "ratio from ~65%% (ShmCaffe-A) to ~31%% by moving 1/4 of the volume.\n");
  return 0;
}
