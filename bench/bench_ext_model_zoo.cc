// Extension: distributed training across the whole functional model zoo.
//
// The paper evaluates four CNN families; this bench trains the mini version
// of every family (plus the MLP) with hybrid ShmCaffe on the synthetic
// dataset, demonstrating that the platform is model-agnostic — any DAG the
// mini-Caffe library can express trains through the same SMB/SEASGD path.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/trainer.h"

int main() {
  using namespace shmcaffe;
  const int scale = bench::bench_scale();
  bench::print_header("Extension — functional model zoo under hybrid ShmCaffe",
                      "4 workers in 2 groups, same data and budget per family");

  common::TextTable table(
      {"family", "parameters", "final accuracy", "final loss", "wall"});
  for (const char* family : {"mlp", "mini_vgg", "mini_inception", "mini_resnet",
                             "mini_inception_resnet"}) {
    core::DistTrainOptions options;
    options.model_family = family;
    options.workers = 4;
    options.group_size = 2;
    options.input = dl::ModelInputSpec{1, 12, 12, 8};
    options.train_data.channels = 1;
    options.train_data.height = 12;
    options.train_data.width = 12;
    options.train_data.classes = 8;
    options.train_data.size = 2048UL * static_cast<std::size_t>(scale);
    options.train_data.noise_stddev = 0.3;
    options.test_data = options.train_data;
    options.test_data.size = 512;
    options.test_data.seed = 0x7e57;
    options.batch_size = 16;
    options.epochs = 5;
    options.solver.base_lr = 0.05;

    dl::Net probe = dl::make_model(family, options.input);
    const core::TrainResult result = core::train_shmcaffe(options);
    table.add_row({family, std::to_string(probe.param_count()),
                   common::format_percent(result.final_accuracy),
                   common::format_fixed(result.final_loss, 3),
                   common::format_fixed(result.wall_seconds, 1) + " s"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
