// Fig. 7: Read/Write bandwidth in a SMB server.
//
// Paper workload: N processes (2..32), each with a 1 GB segment, issue a
// 50/50 mix of reads and writes against one SMB server on a 7 GB/s FDR HCA.
// The paper measures the aggregate bandwidth rising to 6.7 GB/s = 96% of the
// HCA ceiling.  This bench replays that workload in the simulated SMB and
// prints the aggregate bandwidth and utilisation per process count.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "smb/sim_smb.h"

namespace {

using namespace shmcaffe;

struct Fig7Result {
  double aggregate_bps = 0.0;
  double utilisation = 0.0;
};

Fig7Result run_workload(int processes, net::SharingModel sharing) {
  sim::Simulation sim;
  net::FabricOptions fabric_options;
  fabric_options.sharing = sharing;
  net::Fabric fabric(sim, fabric_options);
  smb::SimSmbOptions smb_options;  // defaults: 7 GB/s server, RDS-ish overheads
  smb::SimSmbServer server(sim, fabric, smb_options);
  server.start();

  constexpr std::int64_t kSegmentBytes = 1LL << 30;  // 1 GB per process
  constexpr std::int64_t kChunk = 2 << 20;           // transferred per op
  constexpr int kOps = 128;                          // 50% reads / 50% writes

  std::vector<std::unique_ptr<smb::SimSmbClient>> clients;
  for (int p = 0; p < processes; ++p) {
    clients.push_back(std::make_unique<smb::SimSmbClient>(
        server, "proc" + std::to_string(p), smb_options.server_bandwidth));
  }
  for (int p = 0; p < processes; ++p) {
    sim.spawn([](smb::SimSmbClient& client, int id) -> sim::Task<> {
      const smb::Handle segment =
          co_await client.create(static_cast<smb::ShmKey>(id + 1), kSegmentBytes);
      for (int op = 0; op < kOps; ++op) {
        const std::int64_t offset = (op * kChunk) % (kSegmentBytes - kChunk);
        if (op % 2 == 0) {
          co_await client.write(segment, kChunk, offset);
        } else {
          co_await client.read(segment, kChunk, offset);
        }
      }
    }(*clients[static_cast<std::size_t>(p)], p));
  }
  sim.run();

  Fig7Result result;
  const double total_bytes = static_cast<double>(processes) * kOps * kChunk;
  result.aggregate_bps = total_bytes / units::to_seconds(sim.now());
  result.utilisation = result.aggregate_bps / smb_options.server_bandwidth;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7 — Read/Write bandwidth in a SMB server",
      "aggregate 50/50 read-write bandwidth vs number of client processes\n"
      "(paper: rises to 6.7 GB/s = 96% of the 7 GB/s FDR HCA)");

  common::TextTable table({"processes", "aggregate", "HCA utilisation"});
  double peak = 0.0;
  for (int processes : {2, 4, 8, 16, 24, 32}) {
    const Fig7Result r = run_workload(processes, net::SharingModel::kMaxMinFair);
    peak = std::max(peak, r.aggregate_bps);
    table.add_row({std::to_string(processes), common::format_bandwidth(r.aggregate_bps),
                   common::format_percent(r.utilisation)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npeak aggregate: %s (paper: 6.70 GB/s, 96%% of HCA)\n",
              common::format_bandwidth(peak).c_str());
  return 0;
}
