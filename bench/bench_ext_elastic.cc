// Extension: cost of elastic membership at scale.
//
// The elastic tentpole claims a SEASGD cohort can grow, shrink and shed
// stragglers without restarting the run.  This bench quantifies what each
// of those transitions costs on the simulated stack at a 96-worker scale
// the functional twin cannot reach:
//
//   * static_uniform      — the fixed-membership baseline;
//   * static_heterogeneous— the same cohort with planted 2.5x-slow machines
//                           (compute and NIC), no countermeasures: the
//                           staleness-violation count is the damage;
//   * join_burst          — 32 cold joins land mid-run (96 -> 128);
//   * drain_burst         — 24 voluntary drains leave mid-run (96 -> 72);
//   * straggler_storm     — 8 workers stall mid-run with quarantine +
//                           eviction enabled: the detector demotes them so
//                           the survivors stop paying for their staleness.
//
// Every row reports the run's makespan (epoch time), aggregate throughput
// (completed worker-iterations per simulated second — the `"throughput"`
// key tools/check.sh fences at 20%), the membership counters, the
// staleness-bound-violation count, and the executed-membership fingerprint.
// All quantities are simulated and seeded: two runs are byte-identical.
// Pipe through `python3 -m json.tool` to pretty-print.
#include <cstdio>
#include <vector>

#include "common/units.h"
#include "core/sim_shmcaffe.h"
#include "elastic/membership.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"

namespace {

using namespace shmcaffe;
using units::to_seconds;

constexpr int kWorkers = 96;
constexpr std::int64_t kIterations = 80;

core::SimShmCaffeOptions base_options() {
  core::SimShmCaffeOptions options;
  options.workers = kWorkers;
  options.group_size = 1;
  options.iterations = kIterations;
  options.smb_servers = 4;
  return options;
}

cluster::HeterogeneityProfile skewed_profile() {
  cluster::HeterogeneityProfile profile;
  profile.slow_fraction = 0.2;
  profile.compute_multiplier = 2.5;
  profile.nic_multiplier = 2.0;
  return profile;
}

void emit(const char* name, const cluster::PlatformTiming& timing, bool last) {
  const double seconds = to_seconds(timing.makespan);
  const double throughput =
      seconds > 0.0 ? static_cast<double>(timing.completed_worker_iterations) / seconds
                    : 0.0;
  std::printf("    {\"name\": \"%s\", \"throughput\": %.6f,\n", name, throughput);
  std::printf("     \"makespan_seconds\": %.9f, \"completed_worker_iterations\": %lld,\n",
              seconds, static_cast<long long>(timing.completed_worker_iterations));
  std::printf("     \"joined\": %zu, \"drained\": %zu, \"rebalances\": %lld,\n",
              timing.joined_workers.size(), timing.drained_workers.size(),
              static_cast<long long>(timing.rebalances));
  std::printf("     \"quarantine_events\": %lld, \"staleness_violations\": %lld,\n",
              static_cast<long long>(timing.quarantine_events),
              static_cast<long long>(timing.staleness_violations));
  std::printf("     \"membership_fingerprint\": %llu}%s\n",
              static_cast<unsigned long long>(timing.membership_fingerprint),
              last ? "" : ",");
}

}  // namespace

int main() {
  // Staleness accounting needs the elastic bookkeeping on; a huge planning
  // bound keeps injected-stall chains out of the scenarios that only want
  // the violation counts.
  elastic::MembershipPolicy audit_policy;
  audit_policy.straggler_detection = true;
  audit_policy.staleness_bound_iterations = 10.0;
  audit_policy.quarantine_stall_seconds = 1e9;

  std::printf("{\n  \"bench\": \"ext_elastic\",\n");
  std::printf("  \"workers\": %d, \"iterations\": %lld, \"smb_servers\": 4,\n",
              kWorkers, static_cast<long long>(kIterations));
  std::printf("  \"scenarios\": [\n");

  // --- static baselines --------------------------------------------------
  core::SimShmCaffeOptions uniform = base_options();
  uniform.membership_policy = audit_policy;
  emit("elastic/static_uniform", core::simulate_shmcaffe(uniform), false);

  core::SimShmCaffeOptions skewed = uniform;
  skewed.heterogeneity = skewed_profile();
  emit("elastic/static_heterogeneous", core::simulate_shmcaffe(skewed), false);

  // --- join burst: 96 -> 128 mid-run --------------------------------------
  elastic::MembershipPlan joins;
  for (int w = 0; w < 32; ++w) {
    joins.add({elastic::MembershipEventKind::kJoin, kWorkers + w,
               10 + (w % 4) * 5});
  }
  core::SimShmCaffeOptions join_burst = base_options();
  join_burst.membership = &joins;
  join_burst.membership_policy = audit_policy;
  emit("elastic/join_burst", core::simulate_shmcaffe(join_burst), false);

  // --- drain burst: 96 -> 72 mid-run ---------------------------------------
  elastic::MembershipPlan drains;
  for (int w = 0; w < 24; ++w) {
    drains.add({elastic::MembershipEventKind::kDrain, 4 * w, 20 + (w % 3) * 10});
  }
  core::SimShmCaffeOptions drain_burst = base_options();
  drain_burst.membership = &drains;
  drain_burst.membership_policy = audit_policy;
  emit("elastic/drain_burst", core::simulate_shmcaffe(drain_burst), false);

  // --- straggler storm: 8 stalls, quarantine + eviction on -----------------
  fault::FaultPlan storm;
  for (int i = 0; i < 8; ++i) {
    fault::FaultEvent stall;
    stall.kind = fault::FaultKind::kWorkerStall;
    stall.target = 12 * i;
    stall.iteration = 10 + i;
    stall.duration_seconds = 0.5;
    storm.add(stall);
  }
  const fault::FaultInjector injector(storm);
  core::SimShmCaffeOptions stormy = base_options();
  stormy.faults = &injector;
  stormy.membership_policy = audit_policy;
  stormy.membership_policy.quarantine_stall_seconds = 0.35;
  stormy.membership_policy.evict_after_violations = 3;
  emit("elastic/straggler_storm", core::simulate_shmcaffe(stormy), true);

  std::printf("  ]\n}\n");
  return 0;
}
