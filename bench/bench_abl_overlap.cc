// Ablation: does Fig. 6's update-thread overlap matter?
//
// ShmCaffe hides the weight-increment write and the server-side accumulate
// behind the minibatch computation (a dedicated update thread).  This bench
// disables the overlap (the main thread flushes inline) and compares the
// per-iteration time across models and scales.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;
  bench::print_header("Ablation — Fig. 6 communication/computation overlap",
                      "per-iteration time with the update thread vs inline flushing");

  common::TextTable table({"model", "workers", "overlapped", "inline", "overlap saves"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    for (int workers : {4, 16}) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = workers;
      options.iterations = 150;
      options.overlap_update = true;
      const SimTime with = core::simulate_shmcaffe(options).mean_iteration();
      options.overlap_update = false;
      const SimTime without = core::simulate_shmcaffe(options).mean_iteration();
      table.add_row({model.name, std::to_string(workers), common::format_duration(with),
                     common::format_duration(without),
                     common::format_percent(1.0 - static_cast<double>(with) /
                                                      static_cast<double>(without))});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: large savings where T_wwi+T_ugw fits under T_comp (small\n"
              "models), shrinking once the exchange dominates the iteration (VGG16).\n");
  return 0;
}
