// Micro-benchmarks of the functional SMB server and the simulation engine.
#include <benchmark/benchmark.h>

#include "sim/simulation.h"
#include "sim/sync.h"
#include "smb/server.h"

namespace {

using namespace shmcaffe;

void BM_SmbWrite(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  smb::SmbServer server;
  const smb::Handle handle = server.create_floats(1, count);
  std::vector<float> data(count, 1.0F);
  for (auto _ : state) {
    server.write(handle, data);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_SmbWrite)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SmbRead(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  smb::SmbServer server;
  const smb::Handle handle = server.create_floats(1, count);
  std::vector<float> data(count);
  for (auto _ : state) {
    server.read(handle, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_SmbRead)->Arg(1 << 12)->Arg(1 << 20);

void BM_SmbAccumulate(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  smb::SmbServer server;
  const smb::Handle global = server.create_floats(1, count);
  const smb::Handle delta = server.create_floats(2, count);
  server.write(delta, std::vector<float>(count, 0.001F));
  for (auto _ : state) {
    server.accumulate(delta, global);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_SmbAccumulate)->Arg(1 << 12)->Arg(1 << 20);

void BM_SmbCounterFetchAdd(benchmark::State& state) {
  smb::SmbServer server;
  const smb::Handle handle = server.create_counters(1, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.fetch_add(handle, 0, 1));
  }
}
BENCHMARK(BM_SmbCounterFetchAdd);

void BM_SimEngineEventThroughput(benchmark::State& state) {
  // Events dispatched per second: two processes ping-ponging delays.
  for (auto _ : state) {
    sim::Simulation sim;
    for (int p = 0; p < 4; ++p) {
      sim.spawn([](sim::Simulation& s) -> sim::Task<> {
        for (int i = 0; i < 1000; ++i) co_await s.delay(1);
      }(sim));
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_SimEngineEventThroughput);

void BM_SimSemaphoreHandoff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Semaphore sem(sim, 1);
    for (int p = 0; p < 8; ++p) {
      sim.spawn([](sim::Simulation& s, sim::Semaphore& sm) -> sim::Task<> {
        for (int i = 0; i < 250; ++i) {
          co_await sm.acquire();
          co_await s.delay(1);
          sm.release();
        }
      }(sim, sem));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SimSemaphoreHandoff);

}  // namespace

BENCHMARK_MAIN();
