// Extension: cost and fidelity of the recovery layer.
//
// Two questions the recovery tentpole raises, quantified:
//   1. What does recovering cost?  The simulated stack runs the same fault
//      plan (primary SMB fail-stop + one worker crash) with recovery on,
//      against a fault-free twin: the makespan delta is the recovery
//      latency (failover pause + re-admission delay), swept over the
//      failover detection time.
//   2. What does recovering lose?  The functional stack trains to
//      completion, then replays the same run killed mid-way and resumed
//      from its latest crash-consistent checkpoint: the accuracy delta is
//      exactly the fidelity of the checkpoint (0 when the snapshot captures
//      the full training state — the single-worker path is deterministic).
//
// Output is one JSON document of simulated and deterministic-functional
// quantities only, so two runs with the same seed are byte-identical.
// Pipe through `python3 -m json.tool` to pretty-print.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "common/units.h"
#include "core/config.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "recovery/schedule.h"

namespace {

using namespace shmcaffe;
using units::to_seconds;

constexpr int kWorkers = 4;
constexpr std::int64_t kIterations = 100;

fault::FaultPlan recovery_plan() {
  fault::FaultPlan plan;
  fault::FaultEvent fail_primary;
  fail_primary.kind = fault::FaultKind::kServerFailStop;
  fail_primary.target = 0;  // shard 0, replica 0: the active primary
  fail_primary.start_seconds = 1.0;
  plan.add(fail_primary);
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kWorkerCrash;
  crash.target = 2;
  crash.iteration = 20;
  plan.add(crash);
  return plan;
}

core::SimShmCaffeOptions sim_options() {
  core::SimShmCaffeOptions options;
  options.workers = kWorkers;
  options.group_size = 1;
  options.iterations = kIterations;
  options.smb_replicas = 2;
  options.recovery.respawn_crashed = true;
  return options;
}

core::DistTrainOptions functional_options(const std::string& checkpoint_dir) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 1;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1024;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 3;
  options.checkpoint.directory = checkpoint_dir;
  options.checkpoint.interval_iterations = 20;
  return options;
}

}  // namespace

int main() {
  const fault::FaultPlan plan = recovery_plan();
  const fault::FaultInjector injector(plan);

  // --- simulated: recovery latency -------------------------------------
  const core::SimShmCaffeOptions clean_opts = sim_options();
  const cluster::PlatformTiming clean = core::simulate_shmcaffe(clean_opts);
  core::SimShmCaffeOptions faulted_opts = sim_options();
  faulted_opts.faults = &injector;
  const cluster::PlatformTiming recovered = core::simulate_shmcaffe(faulted_opts);

  std::printf("{\n  \"bench\": \"ext_recovery\",\n");
  std::printf("  \"plan\": {\"server_fail_stops\": 1, \"worker_crashes\": 1, "
              "\"fingerprint\": %llu},\n",
              static_cast<unsigned long long>(plan.fingerprint()));
  std::printf("  \"simulated\": {\n");
  std::printf("    \"workers\": %d, \"iterations\": %lld, \"smb_replicas\": 2,\n",
              kWorkers, static_cast<long long>(kIterations));
  std::printf("    \"fault_free_makespan_seconds\": %.9f,\n", to_seconds(clean.makespan));
  std::printf("    \"recovered_makespan_seconds\": %.9f,\n",
              to_seconds(recovered.makespan));
  std::printf("    \"recovery_latency_seconds\": %.9f,\n",
              to_seconds(recovered.makespan - clean.makespan));
  std::printf("    \"smb_failovers\": %lld, \"recovered_workers\": %zu,\n",
              static_cast<long long>(recovered.smb_failovers),
              recovered.recovered_workers.size());
  std::printf("    \"completed_worker_iterations\": %lld,\n",
              static_cast<long long>(recovered.completed_worker_iterations));
  std::printf("    \"recovery_fingerprint\": %llu,\n",
              static_cast<unsigned long long>(recovered.recovery_fingerprint));

  // Sweep the modelled failure-detection latency: recovery cost scales with
  // how long the ensemble takes to notice the dead primary.
  std::printf("    \"failover_latency_sweep\": [\n");
  const std::vector<double> detection = {0.05, 0.25, 1.0};
  for (std::size_t i = 0; i < detection.size(); ++i) {
    core::SimShmCaffeOptions swept = sim_options();
    swept.faults = &injector;
    swept.recovery.failover_seconds = detection[i];
    const cluster::PlatformTiming timing = core::simulate_shmcaffe(swept);
    std::printf("      {\"failover_seconds\": %.2f, \"makespan_seconds\": %.9f, "
                "\"latency_seconds\": %.9f}%s\n",
                detection[i], to_seconds(timing.makespan),
                to_seconds(timing.makespan - clean.makespan),
                i + 1 < detection.size() ? "," : "");
  }
  std::printf("    ]\n  },\n");

  // --- functional: checkpoint-resume accuracy delta --------------------
  // Per-process scratch directory: concurrent invocations (e.g. the
  // determinism check `diff <(run) <(run)`) must not share checkpoints.
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("shmcaffe_bench_ext_recovery." + std::to_string(::getpid()));
  std::error_code scrub;
  fs::remove_all(root, scrub);
  fs::create_directories(root / "reference");
  fs::create_directories(root / "resumed");

  const core::TrainResult uninterrupted =
      core::train_shmcaffe(functional_options((root / "reference").string()));

  fault::FaultPlan kill;
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kWorkerCrash;
  crash.target = 0;
  crash.iteration = 50;
  kill.add(crash);
  const fault::FaultInjector kill_injector(kill);
  core::DistTrainOptions interrupted = functional_options((root / "resumed").string());
  interrupted.faults = &kill_injector;
  (void)core::train_shmcaffe(interrupted);

  core::DistTrainOptions resume = functional_options((root / "resumed").string());
  resume.checkpoint.resume = true;
  const core::TrainResult resumed = core::train_shmcaffe(resume);
  fs::remove_all(root, scrub);

  std::printf("  \"functional\": {\n");
  std::printf("    \"workers\": 1, \"kill_iteration\": 50, "
              "\"checkpoint_interval\": 20,\n");
  std::printf("    \"uninterrupted_accuracy\": %.9f,\n", uninterrupted.final_accuracy);
  std::printf("    \"resumed_accuracy\": %.9f,\n", resumed.final_accuracy);
  std::printf("    \"accuracy_delta\": %.9f,\n",
              resumed.final_accuracy - uninterrupted.final_accuracy);
  std::printf("    \"uninterrupted_loss\": %.9f,\n", uninterrupted.final_loss);
  std::printf("    \"resumed_loss\": %.9f,\n", resumed.final_loss);
  std::printf("    \"resumed_iterations\": %lld,\n",
              static_cast<long long>(resumed.resumed_iterations));
  std::printf("    \"checkpoints_taken\": %lld\n",
              static_cast<long long>(uninterrupted.checkpoints_taken));
  std::printf("  }\n}\n");
  return 0;
}
