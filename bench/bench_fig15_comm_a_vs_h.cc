// Fig. 15: communication-time comparison, ShmCaffe-A vs ShmCaffe-H, per
// model at 8 and 16 GPUs (hybrid groups of 4, per the paper's testbed).
//
// Paper anchors: at 8 GPUs the two modes are close for small models;
// ShmCaffe-H wins increasingly as the parameter size grows and as the
// cluster scales out, so H beats A on every model at 16 GPUs.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;

  bench::print_header("Fig. 15 — communication time: ShmCaffe-A vs ShmCaffe-H",
                      "per model at 8 and 16 GPUs (hybrid = groups of 4)");

  common::TextTable table({"model", "GPUs", "comm (A)", "comm (H)", "H speedup"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    for (int workers : {8, 16}) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = workers;
      options.iterations = 200;
      options.group_size = 1;
      const SimTime comm_a = core::simulate_shmcaffe(options).mean_comm;
      options.group_size = 4;
      const SimTime comm_h = core::simulate_shmcaffe(options).mean_comm;
      table.add_row({model.name, std::to_string(workers), common::format_duration(comm_a),
                     common::format_duration(comm_h),
                     common::format_fixed(static_cast<double>(comm_a) /
                                              static_cast<double>(comm_h),
                                          2) +
                         "x"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper anchor: ShmCaffe-H's advantage grows with model size and scale;\n"
              "all models iterate faster under H at 16 GPUs.\n");
  return 0;
}
