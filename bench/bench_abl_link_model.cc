// Ablation: max-min fair vs FIFO-serialising link model.
//
// DESIGN.md commits to max-min fair bandwidth sharing for concurrent RDMA
// flows and keeps FIFO serialisation as the alternative.  This bench reruns
// the Fig. 7 workload under both disciplines: aggregate bandwidth (a
// work-conservation property) should match, while per-op latency
// distributions differ strongly.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "smb/sim_smb.h"

namespace {

using namespace shmcaffe;

struct Outcome {
  double aggregate_bps = 0.0;
  double small_p50_ms = 0.0;
  double small_p99_ms = 0.0;
};

/// Mixed workload: half the processes stream 8 MB bulk ops (parameter
/// exchanges); the other half issue 64 KB control-sized ops (progress board
/// updates).  Under FIFO the small ops serialise behind bulk transfers.
Outcome run(int processes, net::SharingModel sharing) {
  sim::Simulation sim;
  net::FabricOptions fabric_options;
  fabric_options.sharing = sharing;
  net::Fabric fabric(sim, fabric_options);
  smb::SimSmbOptions smb_options;
  smb::SimSmbServer server(sim, fabric, smb_options);
  server.start();

  constexpr std::int64_t kBulk = 8 << 20;
  constexpr std::int64_t kSmall = 64 << 10;
  constexpr int kOps = 48;
  std::vector<std::unique_ptr<smb::SimSmbClient>> clients;
  for (int p = 0; p < processes; ++p) {
    clients.push_back(std::make_unique<smb::SimSmbClient>(
        server, "proc" + std::to_string(p), smb_options.server_bandwidth));
  }
  common::SampleSet small_latencies;
  std::int64_t total_bytes = 0;
  for (int p = 0; p < processes; ++p) {
    const bool bulk = p % 2 == 0;
    const std::int64_t chunk = bulk ? kBulk : kSmall;
    total_bytes += chunk * kOps;
    sim.spawn([](sim::Simulation& s, smb::SimSmbClient& client, int id, std::int64_t bytes,
                 bool is_bulk, common::SampleSet& lat) -> sim::Task<> {
      const smb::Handle segment =
          co_await client.create(static_cast<smb::ShmKey>(id + 1), bytes * 2);
      for (int op = 0; op < kOps; ++op) {
        const SimTime start = s.now();
        if (op % 2 == 0) {
          co_await client.write(segment, bytes);
        } else {
          co_await client.read(segment, bytes);
        }
        if (!is_bulk) lat.add(units::to_millis(s.now() - start));
      }
    }(sim, *clients[static_cast<std::size_t>(p)], p, chunk, bulk, small_latencies));
  }
  sim.run();

  Outcome out;
  out.aggregate_bps = static_cast<double>(total_bytes) / units::to_seconds(sim.now());
  out.small_p50_ms = small_latencies.quantile(0.5);
  out.small_p99_ms = small_latencies.quantile(0.99);
  return out;
}

}  // namespace

int main() {
  using namespace shmcaffe;
  bench::print_header("Ablation — max-min fair vs FIFO link discipline",
                      "same Fig. 7 workload under both fabric sharing models");

  common::TextTable table(
      {"processes", "discipline", "aggregate", "small-op p50", "small-op p99"});
  for (int processes : {4, 16}) {
    for (auto [model, name] :
         {std::pair{net::SharingModel::kMaxMinFair, "max-min fair"},
          std::pair{net::SharingModel::kFifoSerial, "FIFO serial"}}) {
      const Outcome out = run(processes, model);
      table.add_row({std::to_string(processes), name,
                     common::format_bandwidth(out.aggregate_bps),
                     common::format_fixed(out.small_p50_ms, 2) + " ms",
                     common::format_fixed(out.small_p99_ms, 2) + " ms"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: similar aggregate (work conservation), but FIFO strands the\n"
              "small control ops behind bulk transfers — the reason DESIGN.md picks\n"
              "max-min fairness for concurrent RDMA flows.\n");
  return 0;
}
