// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace shmcaffe::bench {

/// SHMCAFFE_BENCH_SCALE multiplies the workload of the functional
/// (real-training) benches: 1 = quick smoke-scale run (default), larger
/// values train longer for higher-fidelity curves.
inline int bench_scale() {
  const char* env = std::getenv("SHMCAFFE_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int value = std::atoi(env);
  return value >= 1 ? value : 1;
}

inline void print_header(const char* artefact, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s\n", artefact);
  std::printf("%s\n", description);
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

}  // namespace shmcaffe::bench
