// Micro-benchmarks of the mini-Caffe compute kernels (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dl/layers.h"
#include "dl/models.h"
#include "dl/param_vector.h"
#include "dl/solver.h"

namespace {

using namespace shmcaffe;

void BM_Conv2dForward(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  dl::Conv2d conv("c", channels, channels, 3, 1, 1);
  common::Rng rng(1);
  conv.init_params(rng);
  dl::Tensor x({8, channels, 16, 16});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  conv.setup({&x}, top);
  for (auto _ : state) {
    conv.forward({&x}, top, true);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(top.size()));
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  dl::Conv2d conv("c", channels, channels, 3, 1, 1);
  common::Rng rng(1);
  conv.init_params(rng);
  dl::Tensor x({8, channels, 16, 16});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  conv.setup({&x}, top);
  conv.forward({&x}, top, true);
  dl::Tensor top_grad;
  top_grad.reshape(top.shape());
  top_grad.fill(0.01F);
  dl::Tensor x_grad;
  x_grad.reshape(x.shape());
  std::vector<dl::Tensor*> bottom_grads{&x_grad};
  for (auto _ : state) {
    conv.backward({&x}, top, top_grad, bottom_grads);
    benchmark::DoNotOptimize(x_grad.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_FullyConnectedForward(benchmark::State& state) {
  const int features = static_cast<int>(state.range(0));
  dl::FullyConnected fc("f", features, features);
  common::Rng rng(1);
  fc.init_params(rng);
  dl::Tensor x({32, features});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  fc.setup({&x}, top);
  for (auto _ : state) {
    fc.forward({&x}, top, true);
    benchmark::DoNotOptimize(top.data());
  }
}
BENCHMARK(BM_FullyConnectedForward)->Arg(128)->Arg(512);

void BM_MiniInceptionIteration(benchmark::State& state) {
  common::Rng rng(2);
  dl::Net net = dl::make_mini_inception({3, 16, 16, 8});
  net.init_params(rng);
  net.input("data").reshape({16, 3, 16, 16});
  for (float& v : net.input("data").span()) v = static_cast<float>(rng.uniform(-1, 1));
  net.input("label").reshape({16});
  dl::SgdSolver solver(net, {});
  for (auto _ : state) {
    (void)net.forward(true);
    net.backward();
    solver.step();
  }
}
BENCHMARK(BM_MiniInceptionIteration);

void BM_SeasgdExchangeMath(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> local(count, 1.0F);
  std::vector<float> global(count, 0.5F);
  std::vector<float> delta(count);
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) {
      const float d = 0.2F * (local[i] - global[i]);
      delta[i] = d;
      local[i] -= d;
    }
    benchmark::DoNotOptimize(delta.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(count * sizeof(float) * 2));
}
BENCHMARK(BM_SeasgdExchangeMath)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
