// Fig. 10: computation vs communication time of one training iteration for
// each platform at 8 and 16 GPUs (Inception-v1).
//
// Paper anchor: ShmCaffe's communication time is 5.3x shorter than
// Caffe-MPI's.  "Communication" is everything in the iteration that is not
// the worker's own minibatch computation (transfers, synchronisation waits).
#include <cstdio>
#include <string>

#include "baselines/sim_platforms.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

namespace {

using namespace shmcaffe;

cluster::PlatformTiming timing_of(const std::string& platform, int workers) {
  if (platform == "ShmCaffe") {
    core::SimShmCaffeOptions options;
    options.workers = workers;
    options.group_size = workers >= 4 ? 4 : 1;
    options.iterations = 300;
    return core::simulate_shmcaffe(options);
  }
  baselines::SimPlatformOptions options;
  options.workers = workers;
  options.iterations = 300;
  if (platform == "Caffe") return baselines::simulate_caffe(options);
  if (platform == "Caffe-MPI") return baselines::simulate_caffe_mpi(options);
  return baselines::simulate_mpicaffe(options);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 10 — computation and communication time per iteration (Inception-v1)",
      "paper anchor: ShmCaffe communication 5.3x faster than Caffe-MPI at 16 GPUs");

  common::TextTable table({"platform", "GPUs", "computation", "communication", "iteration",
                           "comm ratio"});
  SimTime shm_comm16 = 0;
  SimTime caffempi_comm16 = 0;
  for (const char* platform : {"Caffe", "Caffe-MPI", "MPICaffe", "ShmCaffe"}) {
    for (int workers : {8, 16}) {
      const cluster::PlatformTiming t = timing_of(platform, workers);
      table.add_row({platform, std::to_string(workers),
                     common::format_duration(t.mean_comp),
                     common::format_duration(t.mean_comm),
                     common::format_duration(t.mean_iteration()),
                     common::format_percent(t.comm_ratio())});
      if (workers == 16 && std::string(platform) == "ShmCaffe") shm_comm16 = t.mean_comm;
      if (workers == 16 && std::string(platform) == "Caffe-MPI") {
        caffempi_comm16 = t.mean_comm;
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nheadline: ShmCaffe comm is %.1fx faster than Caffe-MPI at 16 GPUs "
              "(paper: 5.3x)\n",
              static_cast<double>(caffempi_comm16) / static_cast<double>(shm_comm16));
  return 0;
}
