// Ablation: the update_interval hyper-parameter (§III-A).
//
// update_interval controls how often a worker exchanges with the SMB
// server.  Two effects are measured:
//   * timed: per-iteration communication falls as exchanges get sparser;
//   * functional: convergence degrades if workers drift too long.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"

namespace {

using namespace shmcaffe;

core::DistTrainOptions train_options(int update_interval, int scale) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 8;
  options.input = dl::ModelInputSpec{1, 12, 12, 8};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 8;
  options.train_data.size = 2048UL * static_cast<std::size_t>(scale);
  options.train_data.noise_stddev = 0.4;
  options.test_data = options.train_data;
  options.test_data.size = 512;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 4;
  options.solver.base_lr = 0.05;
  options.update_interval = update_interval;
  return options;
}

}  // namespace

int main() {
  const int scale = bench::bench_scale();
  bench::print_header("Ablation — update_interval sweep",
                      "sparser SEASGD exchanges: less traffic, more drift");

  common::TextTable table({"update_interval", "comm/iter (ResNet-50 @16, timed)",
                           "final accuracy (MLP @8, functional)"});
  for (int interval : {1, 2, 4, 8}) {
    core::SimShmCaffeOptions timed;
    timed.model = cluster::ModelKind::kResNet50;
    timed.workers = 16;
    timed.iterations = 160;
    timed.update_interval = interval;
    const SimTime comm = core::simulate_shmcaffe(timed).mean_comm;

    const core::TrainResult functional = core::train_shmcaffe(train_options(interval, scale));
    table.add_row({std::to_string(interval), common::format_duration(comm),
                   common::format_percent(functional.final_accuracy)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
