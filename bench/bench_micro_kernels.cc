// Micro-kernel throughput snapshot for the deterministic work pool (PR:
// perf_opt).  Measures the three ported hot paths — Conv2d im2col+GEMM
// forward/backward, the fused SEASGD elastic exchange (eqs. 5+6), and the
// SMB server-side accumulate (eq. 7) — each at pool widths 1 and 4, plus a
// scalar reference implementation of the pre-pool conv GEMM (row-at-a-time,
// per-call scratch) so the speedup of the tiled kernels is visible in the
// numbers themselves.
//
// Output is one JSON document.  Timings vary run to run, but the layout is
// fixed and every kernel row carries a `checksum` computed from the kernel's
// float outputs in a fixed order — the t1 and t4 rows of a kernel must agree
// on it bit-for-bit (the work pool's determinism contract; asserted here).
// `tools/check.sh bench` snapshots the document into BENCH_kernels.json and
// refuses to overwrite the baseline on a >20% throughput regression unless
// forced.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/seasgd_math.h"
#include "dl/layers.h"
#include "smb/server.h"

namespace {

using namespace shmcaffe;
using Clock = std::chrono::steady_clock;

// Conv geometry: ShmCaffe-A-sized block (16 -> 32 channels, 3x3, 16x16
// feature map, batch 8).  2 * kk * oc * columns * N ~ 19 MFLOP per pass.
constexpr int kBatch = 8;
constexpr int kInC = 16;
constexpr int kOutC = 32;
constexpr int kSide = 16;
constexpr int kFwdReps = 40;
constexpr int kBwdReps = 20;
// SEASGD / SMB span: 4M floats (a ShmCaffe-B-scale parameter buffer).
constexpr std::size_t kSpan = 4U << 20;
constexpr int kSpanReps = 12;
constexpr double kSpanBytes = static_cast<double>(kSpan) * sizeof(float);

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Every row is timed as best-of-N batches, not one long window: on a shared
// (often single-core) box a scheduler hiccup inside the window would poison
// the whole row, while the fastest batch approximates the machine's
// uncontended rate.  The checksum contract is unaffected — every batch runs
// the same work.
constexpr int kTimingBatches = 6;

template <typename Body>
double best_of(int reps_per_batch, Body&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int batch = 0; batch < kTimingBatches; ++batch) {
    const auto start = Clock::now();
    for (int i = 0; i < reps_per_batch; ++i) body();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// Fixed-order float checksum; bitwise identical inputs give identical sums.
double checksum(const float* data, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += static_cast<double>(data[i]);
  return sum;
}

struct Row {
  const char* name;
  int threads;
  double ms;          // per iteration
  double throughput;  // GFLOP/s for conv, Gelem/s for span kernels
  const char* units;
  double gb_per_s;    // memory-stream rate: bytes touched per iteration / time
  double check;
};

std::vector<Row> rows;

void emit(const char* name, int threads, double total_seconds, int reps, double work,
          const char* units, double bytes, double check) {
  const double per_iter = total_seconds / reps;
  rows.push_back(Row{name, threads, per_iter * 1e3, work / per_iter * 1e-9, units,
                     bytes / per_iter * 1e-9, check});
}

/// Throughput of the named row, or 0 if absent.
double throughput_of(std::string_view name, int threads) {
  for (const Row& r : rows) {
    if (std::string_view(r.name) == name && r.threads == threads) return r.throughput;
  }
  return 0.0;
}

// --- scalar reference: the pre-pool conv GEMM ------------------------------
// Row-at-a-time products with the data-dependent zero-skip and a fresh dcol
// allocation per backward call, exactly as the engine looked before the
// tiling port.  Kept here (not in the library) purely as the bench baseline.

struct RefConv {
  int in_c, out_c, k, stride, pad, oh, ow;
  std::vector<float> col;

  void im2col(const dl::Tensor& x, int n) {
    const int columns = oh * ow;
    col.assign(static_cast<std::size_t>(in_c) * k * k * columns, 0.0F);
    std::size_t row = 0;
    for (int ic = 0; ic < in_c; ++ic) {
      for (int ky = 0; ky < k; ++ky) {
        for (int kx = 0; kx < k; ++kx, ++row) {
          float* dst = col.data() + row * static_cast<std::size_t>(columns);
          for (int y = 0; y < oh; ++y) {
            const int iy = y * stride + ky - pad;
            if (iy < 0 || iy >= x.h()) {
              dst += ow;
              continue;
            }
            for (int xo = 0; xo < ow; ++xo, ++dst) {
              const int ix = xo * stride + kx - pad;
              if (ix >= 0 && ix < x.w()) *dst = x.at(n, ic, iy, ix);
            }
          }
        }
      }
    }
  }

  void forward(const dl::Tensor& x, const float* w, const float* bias, dl::Tensor& top) {
    const int columns = oh * ow;
    const int kk = in_c * k * k;
    for (int n = 0; n < x.n(); ++n) {
      im2col(x, n);
      float* out = top.data() + static_cast<std::size_t>(n) * out_c * columns;
      for (int oc = 0; oc < out_c; ++oc) {
        float* orow = out + static_cast<std::size_t>(oc) * columns;
        std::fill(orow, orow + columns, bias[oc]);
        const float* wrow = w + static_cast<std::size_t>(oc) * kk;
        for (int r = 0; r < kk; ++r) {
          const float wv = wrow[r];
          if (wv == 0.0F) continue;
          const float* crow = col.data() + static_cast<std::size_t>(r) * columns;
          for (int c = 0; c < columns; ++c) orow[c] += wv * crow[c];
        }
      }
    }
  }

  void backward(const dl::Tensor& x, const dl::Tensor& gout_t, const float* w, float* dw,
                float* db, dl::Tensor* dx) {
    const int columns = oh * ow;
    const int kk = in_c * k * k;
    std::vector<float> dcol(static_cast<std::size_t>(kk) * columns);
    for (int n = 0; n < x.n(); ++n) {
      im2col(x, n);
      const float* gout =
          gout_t.data() + static_cast<std::size_t>(n) * out_c * columns;
      std::fill(dcol.begin(), dcol.end(), 0.0F);
      for (int oc = 0; oc < out_c; ++oc) {
        const float* grow = gout + static_cast<std::size_t>(oc) * columns;
        float bias_acc = 0.0F;
        for (int c = 0; c < columns; ++c) bias_acc += grow[c];
        db[oc] += bias_acc;
        float* dwrow = dw + static_cast<std::size_t>(oc) * kk;
        const float* wrow = w + static_cast<std::size_t>(oc) * kk;
        for (int r = 0; r < kk; ++r) {
          const float* crow = col.data() + static_cast<std::size_t>(r) * columns;
          float acc = 0.0F;
          for (int c = 0; c < columns; ++c) acc += grow[c] * crow[c];
          dwrow[r] += acc;
          if (dx != nullptr && wrow[r] != 0.0F) {
            float* drow = dcol.data() + static_cast<std::size_t>(r) * columns;
            for (int c = 0; c < columns; ++c) drow[c] += wrow[r] * grow[c];
          }
        }
      }
      if (dx == nullptr) continue;
      std::size_t row = 0;
      for (int ic = 0; ic < in_c; ++ic) {
        for (int ky = 0; ky < k; ++ky) {
          for (int kx = 0; kx < k; ++kx, ++row) {
            const float* drow = dcol.data() + row * static_cast<std::size_t>(columns);
            for (int y = 0; y < oh; ++y) {
              const int iy = y * stride + ky - pad;
              if (iy < 0 || iy >= x.h()) continue;
              for (int xo = 0; xo < ow; ++xo) {
                const int ix = xo * stride + kx - pad;
                if (ix >= 0 && ix < x.w()) dx->at(n, ic, iy, ix) += drow[y * ow + xo];
              }
            }
          }
        }
      }
    }
  }
};

// --- kernels ----------------------------------------------------------------

void bench_conv(int threads) {
  common::parallel::set_thread_count(threads);
  dl::Conv2d conv("c", kInC, kOutC, 3, 1, 1);
  common::Rng rng(7);
  conv.init_params(rng);
  dl::Tensor x({kBatch, kInC, kSide, kSide});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  conv.setup({&x}, top);
  conv.forward({&x}, top, true);  // size the arenas outside the timed loop

  const double columns = static_cast<double>(kSide) * kSide;
  const double kk = static_cast<double>(kInC) * 9;
  const double flops = 2.0 * kk * kOutC * columns * kBatch;

  const double fwd_best = best_of(kFwdReps, [&] { conv.forward({&x}, top, true); });
  emit("conv_fwd", threads, fwd_best, kFwdReps, flops, "gflops",
       flops / 2.0 * sizeof(float), checksum(top.data(), top.size()));

  dl::Tensor top_grad;
  top_grad.reshape(top.shape());
  for (float& v : top_grad.span()) v = static_cast<float>(rng.uniform(-0.01, 0.01));
  dl::Tensor x_grad;
  x_grad.reshape(x.shape());
  std::vector<dl::Tensor*> bottom_grads{&x_grad};
  conv.backward({&x}, top, top_grad, bottom_grads);  // size dcol_
  const double bwd_best = best_of(kBwdReps, [&] {
    x_grad.zero();
    conv.backward({&x}, top, top_grad, bottom_grads);
  });
  // dW, dcol and col2im each stream the full GEMM volume: ~3x forward work.
  emit("conv_bwd", threads, bwd_best, kBwdReps, 3.0 * flops, "gflops",
       3.0 * flops / 2.0 * sizeof(float), checksum(x_grad.data(), x_grad.size()));
}

void bench_conv_scalar_reference() {
  dl::Conv2d init("c", kInC, kOutC, 3, 1, 1);
  common::Rng rng(7);
  init.init_params(rng);
  dl::Tensor x({kBatch, kInC, kSide, kSide});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  init.setup({&x}, top);

  RefConv ref{kInC, kOutC, 3, 1, 1, top.h(), top.w(), {}};
  const float* w = init.params()[0]->value.data();
  const float* b = init.params()[1]->value.data();
  const double columns = static_cast<double>(kSide) * kSide;
  const double kk = static_cast<double>(kInC) * 9;
  const double flops = 2.0 * kk * kOutC * columns * kBatch;

  ref.forward(x, w, b, top);
  const double fwd_best = best_of(kFwdReps, [&] { ref.forward(x, w, b, top); });
  emit("conv_fwd_scalar_ref", 1, fwd_best, kFwdReps, flops, "gflops",
       flops / 2.0 * sizeof(float), checksum(top.data(), top.size()));

  dl::Tensor top_grad;
  top_grad.reshape(top.shape());
  for (float& v : top_grad.span()) v = static_cast<float>(rng.uniform(-0.01, 0.01));
  dl::Tensor x_grad;
  x_grad.reshape(x.shape());
  std::vector<float> dw(init.params()[0]->value.size());
  std::vector<float> db(init.params()[1]->value.size());
  const double bwd_best = best_of(kBwdReps, [&] {
    x_grad.zero();
    ref.backward(x, top_grad, w, dw.data(), db.data(), &x_grad);
  });
  emit("conv_bwd_scalar_ref", 1, bwd_best, kBwdReps, 3.0 * flops, "gflops",
       3.0 * flops / 2.0 * sizeof(float), checksum(x_grad.data(), x_grad.size()));
}

void bench_seasgd(int threads) {
  common::parallel::set_thread_count(threads);
  common::Rng rng(11);
  std::vector<float> local(kSpan);
  std::vector<float> global(kSpan);
  std::vector<float> delta(kSpan);
  for (float& v : local) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : global) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<float> local0 = local;

  core::elastic_exchange_parallel(local, global, 0.25F, delta);  // warm pool
  const double elapsed = best_of(kSpanReps, [&] {
    std::copy(local0.begin(), local0.end(), local.begin());
    core::elastic_exchange_parallel(local, global, 0.25F, delta);
  });
  emit("seasgd_exchange", threads, elapsed, kSpanReps,
       static_cast<double>(kSpan), "gelems", 4.0 * kSpanBytes,
       checksum(delta.data(), delta.size()));
}

void bench_smb_accumulate(int threads) {
  common::parallel::set_thread_count(threads);
  smb::SmbServerOptions options;
  options.capacity_bytes = 256LL << 20;
  smb::SmbServer server(options);
  const smb::Handle src = server.create_floats(1, kSpan);
  const smb::Handle dst = server.create_floats(2, kSpan);
  common::Rng rng(13);
  std::vector<float> delta(kSpan);
  for (float& v : delta) v = static_cast<float>(rng.uniform(-0.01, 0.01));
  server.write(src, delta);

  server.accumulate(src, dst);  // warm pool + scratch
  const double elapsed = best_of(kSpanReps, [&] { server.accumulate(src, dst); });
  std::vector<float> out(kSpan);
  server.read(dst, out);
  emit("smb_accumulate", threads, elapsed, kSpanReps, static_cast<double>(kSpan),
       "gelems", 3.0 * kSpanBytes, checksum(out.data(), out.size()));
}

// The SIMD kernel core against a plain scalar loop over the same span, both
// single-threaded: the per-element win of the 8-wide tier in isolation (the
// seasgd_exchange rows above measure it end-to-end through the work pool).
void bench_exchange_core() {
  common::Rng rng(17);
  std::vector<float> local(kSpan);
  std::vector<float> global(kSpan);
  std::vector<float> delta(kSpan);
  for (float& v : local) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : global) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<float> local0 = local;
  constexpr float kAlpha = 0.25F;

  common::simd::elastic_exchange_core(kSpan, local.data(), global.data(), kAlpha,
                                      delta.data());
  const double simd_best = best_of(kSpanReps, [&] {
    std::copy(local0.begin(), local0.end(), local.begin());
    common::simd::elastic_exchange_core(kSpan, local.data(), global.data(), kAlpha,
                                        delta.data());
  });
  emit("exchange_core_simd", 1, simd_best, kSpanReps,
       static_cast<double>(kSpan), "gelems", 4.0 * kSpanBytes,
       checksum(delta.data(), delta.size()));

  std::vector<float> delta_ref(kSpan);
  std::copy(local0.begin(), local0.end(), local.begin());
  const double scalar_best = best_of(kSpanReps, [&] {
    std::copy(local0.begin(), local0.end(), local.begin());
    for (std::size_t j = 0; j < kSpan; ++j) {
      delta_ref[j] = kAlpha * (local[j] - global[j]);
      local[j] -= delta_ref[j];
    }
  });
  emit("exchange_core_scalar", 1, scalar_best, kSpanReps,
       static_cast<double>(kSpan), "gelems", 4.0 * kSpanBytes,
       checksum(delta_ref.data(), delta_ref.size()));

  // The SIMD tier's bitwise-identity contract against the scalar loop,
  // enforced where the numbers are produced (like the t1/t4 checksums).
  for (std::size_t j = 0; j < kSpan; ++j) {
    if (delta[j] != delta_ref[j]) {
      std::fprintf(stderr, "exchange core mismatch at %zu: simd=%.9g scalar=%.9g\n", j,
                   static_cast<double>(delta[j]), static_cast<double>(delta_ref[j]));
      std::exit(1);
    }
  }
}

// Copy read against the epoch-pinned zero-copy read of the same 4M-float
// segment.  The copy row streams the segment into a staging vector; the
// pinned row only pins/unpins the storage epoch — no bytes move, which is
// the entire point (its gb_per_s column reports delivered *view* bytes).
void bench_smb_read() {
  common::parallel::set_thread_count(1);
  smb::SmbServerOptions options;
  options.capacity_bytes = 256LL << 20;
  smb::SmbServer server(options);
  const smb::Handle handle = server.create_floats(1, kSpan);
  common::Rng rng(19);
  std::vector<float> data(kSpan);
  for (float& v : data) v = static_cast<float>(rng.uniform(-1, 1));
  server.write(handle, data);

  std::vector<float> out(kSpan);
  server.read(handle, out);
  const double copy_best = best_of(kSpanReps, [&] { server.read(handle, out); });
  emit("smb_read_copy", 1, copy_best, kSpanReps, static_cast<double>(kSpan),
       "gelems", 2.0 * kSpanBytes, checksum(out.data(), out.size()));

  double pinned_check = 0.0;
  { auto warm = server.read_pinned(handle, kSpan); pinned_check = checksum(warm.data(), warm.size()); }
  // A pin is ~100ns, so the row needs far more reps per batch than the
  // streaming kernels for the batch time to dwarf timer jitter.
  constexpr int kPinnedReps = 4096;
  const double pinned_best = best_of(kPinnedReps, [&] {
    smb::PinnedFloats view = server.read_pinned(handle, kSpan);
    // Touch the ends so the pin cannot be optimised into nothing.
    if (view.data()[0] != data[0] || view.data()[kSpan - 1] != data[kSpan - 1]) std::exit(1);
  });
  emit("smb_read_pinned", 1, pinned_best, kPinnedReps, static_cast<double>(kSpan),
       "gelems", kSpanBytes, pinned_check);

  if (pinned_check != checksum(out.data(), out.size())) {
    std::fprintf(stderr, "pinned read checksum differs from copy read\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  for (const int threads : {1, 2, 4}) {
    bench_conv(threads);
    bench_seasgd(threads);
    bench_smb_accumulate(threads);
  }
  bench_conv_scalar_reference();
  bench_exchange_core();
  bench_smb_read();
  common::parallel::shutdown();

  // The determinism contract, enforced where the numbers are produced: a
  // kernel's checksum must not depend on the pool width.  (The accumulate
  // rows intentionally differ — each run adds into the same destination —
  // so they are exempt.)
  for (const Row& a : rows) {
    for (const Row& b : rows) {
      if (std::string_view(a.name) != b.name || a.threads >= b.threads) continue;
      if (std::string_view(a.name) == "smb_accumulate") continue;
      if (a.check != b.check) {
        std::fprintf(stderr, "checksum mismatch for %s: t%d=%.17g t%d=%.17g\n", a.name,
                     a.threads, a.check, b.threads, b.check);
        return 1;
      }
    }
  }

  // Speedup of each tuned kernel over its in-bench reference, folded into
  // one number: the geometric mean keeps any single ratio from dominating.
  const std::pair<const char*, const char*> pairs[] = {
      {"conv_fwd", "conv_fwd_scalar_ref"},
      {"conv_bwd", "conv_bwd_scalar_ref"},
      {"exchange_core_simd", "exchange_core_scalar"},
      {"smb_read_pinned", "smb_read_copy"},
  };
  double log_sum = 0.0;
  int pair_count = 0;
  for (const auto& [tuned, ref] : pairs) {
    const double a = throughput_of(tuned, 1);
    const double b = throughput_of(ref, 1);
    if (a > 0 && b > 0) {
      log_sum += std::log(a / b);
      ++pair_count;
    }
  }
  const double geomean = pair_count > 0 ? std::exp(log_sum / pair_count) : 0.0;

  std::printf("{\n  \"schema\": \"bench_micro_kernels/v2\",\n");
  std::printf("  \"simd\": \"%s\",\n", common::simd::dispatch_name());
  std::printf("  \"conv\": {\"batch\": %d, \"in_c\": %d, \"out_c\": %d, \"side\": %d},\n",
              kBatch, kInC, kOutC, kSide);
  std::printf("  \"span_elements\": %zu,\n", kSpan);
  std::printf("  \"geomean_speedup_vs_ref\": %.4f,\n", geomean);
  std::printf("  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"name\": \"%s_t%d\", \"threads\": %d, \"ms_per_iter\": %.4f, "
                "\"throughput\": %.4f, \"units\": \"%s\", \"gb_per_s\": %.4f, "
                "\"checksum\": %.9g}%s\n",
                r.name, r.threads, r.threads, r.ms, r.throughput, r.units, r.gb_per_s,
                r.check, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
