// Micro-kernel throughput snapshot for the deterministic work pool (PR:
// perf_opt).  Measures the three ported hot paths — Conv2d im2col+GEMM
// forward/backward, the fused SEASGD elastic exchange (eqs. 5+6), and the
// SMB server-side accumulate (eq. 7) — each at pool widths 1 and 4, plus a
// scalar reference implementation of the pre-pool conv GEMM (row-at-a-time,
// per-call scratch) so the speedup of the tiled kernels is visible in the
// numbers themselves.
//
// Output is one JSON document.  Timings vary run to run, but the layout is
// fixed and every kernel row carries a `checksum` computed from the kernel's
// float outputs in a fixed order — the t1 and t4 rows of a kernel must agree
// on it bit-for-bit (the work pool's determinism contract; asserted here).
// `tools/check.sh bench` snapshots the document into BENCH_kernels.json and
// refuses to overwrite the baseline on a >20% throughput regression unless
// forced.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/seasgd_math.h"
#include "dl/layers.h"
#include "smb/server.h"

namespace {

using namespace shmcaffe;
using Clock = std::chrono::steady_clock;

// Conv geometry: ShmCaffe-A-sized block (16 -> 32 channels, 3x3, 16x16
// feature map, batch 8).  2 * kk * oc * columns * N ~ 19 MFLOP per pass.
constexpr int kBatch = 8;
constexpr int kInC = 16;
constexpr int kOutC = 32;
constexpr int kSide = 16;
constexpr int kFwdReps = 40;
constexpr int kBwdReps = 20;
// SEASGD / SMB span: 4M floats (a ShmCaffe-B-scale parameter buffer).
constexpr std::size_t kSpan = 4U << 20;
constexpr int kSpanReps = 12;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-order float checksum; bitwise identical inputs give identical sums.
double checksum(const float* data, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += static_cast<double>(data[i]);
  return sum;
}

struct Row {
  const char* name;
  int threads;
  double ms;          // per iteration
  double throughput;  // GFLOP/s for conv, Gelem/s for span kernels
  const char* units;
  double check;
};

std::vector<Row> rows;

void emit(const char* name, int threads, double total_seconds, int reps, double work,
          const char* units, double check) {
  const double per_iter = total_seconds / reps;
  rows.push_back(Row{name, threads, per_iter * 1e3, work / per_iter * 1e-9, units, check});
}

// --- scalar reference: the pre-pool conv GEMM ------------------------------
// Row-at-a-time products with the data-dependent zero-skip and a fresh dcol
// allocation per backward call, exactly as the engine looked before the
// tiling port.  Kept here (not in the library) purely as the bench baseline.

struct RefConv {
  int in_c, out_c, k, stride, pad, oh, ow;
  std::vector<float> col;

  void im2col(const dl::Tensor& x, int n) {
    const int columns = oh * ow;
    col.assign(static_cast<std::size_t>(in_c) * k * k * columns, 0.0F);
    std::size_t row = 0;
    for (int ic = 0; ic < in_c; ++ic) {
      for (int ky = 0; ky < k; ++ky) {
        for (int kx = 0; kx < k; ++kx, ++row) {
          float* dst = col.data() + row * static_cast<std::size_t>(columns);
          for (int y = 0; y < oh; ++y) {
            const int iy = y * stride + ky - pad;
            if (iy < 0 || iy >= x.h()) {
              dst += ow;
              continue;
            }
            for (int xo = 0; xo < ow; ++xo, ++dst) {
              const int ix = xo * stride + kx - pad;
              if (ix >= 0 && ix < x.w()) *dst = x.at(n, ic, iy, ix);
            }
          }
        }
      }
    }
  }

  void forward(const dl::Tensor& x, const float* w, const float* bias, dl::Tensor& top) {
    const int columns = oh * ow;
    const int kk = in_c * k * k;
    for (int n = 0; n < x.n(); ++n) {
      im2col(x, n);
      float* out = top.data() + static_cast<std::size_t>(n) * out_c * columns;
      for (int oc = 0; oc < out_c; ++oc) {
        float* orow = out + static_cast<std::size_t>(oc) * columns;
        std::fill(orow, orow + columns, bias[oc]);
        const float* wrow = w + static_cast<std::size_t>(oc) * kk;
        for (int r = 0; r < kk; ++r) {
          const float wv = wrow[r];
          if (wv == 0.0F) continue;
          const float* crow = col.data() + static_cast<std::size_t>(r) * columns;
          for (int c = 0; c < columns; ++c) orow[c] += wv * crow[c];
        }
      }
    }
  }

  void backward(const dl::Tensor& x, const dl::Tensor& gout_t, const float* w, float* dw,
                float* db, dl::Tensor* dx) {
    const int columns = oh * ow;
    const int kk = in_c * k * k;
    std::vector<float> dcol(static_cast<std::size_t>(kk) * columns);
    for (int n = 0; n < x.n(); ++n) {
      im2col(x, n);
      const float* gout =
          gout_t.data() + static_cast<std::size_t>(n) * out_c * columns;
      std::fill(dcol.begin(), dcol.end(), 0.0F);
      for (int oc = 0; oc < out_c; ++oc) {
        const float* grow = gout + static_cast<std::size_t>(oc) * columns;
        float bias_acc = 0.0F;
        for (int c = 0; c < columns; ++c) bias_acc += grow[c];
        db[oc] += bias_acc;
        float* dwrow = dw + static_cast<std::size_t>(oc) * kk;
        const float* wrow = w + static_cast<std::size_t>(oc) * kk;
        for (int r = 0; r < kk; ++r) {
          const float* crow = col.data() + static_cast<std::size_t>(r) * columns;
          float acc = 0.0F;
          for (int c = 0; c < columns; ++c) acc += grow[c] * crow[c];
          dwrow[r] += acc;
          if (dx != nullptr && wrow[r] != 0.0F) {
            float* drow = dcol.data() + static_cast<std::size_t>(r) * columns;
            for (int c = 0; c < columns; ++c) drow[c] += wrow[r] * grow[c];
          }
        }
      }
      if (dx == nullptr) continue;
      std::size_t row = 0;
      for (int ic = 0; ic < in_c; ++ic) {
        for (int ky = 0; ky < k; ++ky) {
          for (int kx = 0; kx < k; ++kx, ++row) {
            const float* drow = dcol.data() + row * static_cast<std::size_t>(columns);
            for (int y = 0; y < oh; ++y) {
              const int iy = y * stride + ky - pad;
              if (iy < 0 || iy >= x.h()) continue;
              for (int xo = 0; xo < ow; ++xo) {
                const int ix = xo * stride + kx - pad;
                if (ix >= 0 && ix < x.w()) dx->at(n, ic, iy, ix) += drow[y * ow + xo];
              }
            }
          }
        }
      }
    }
  }
};

// --- kernels ----------------------------------------------------------------

void bench_conv(int threads) {
  common::parallel::set_thread_count(threads);
  dl::Conv2d conv("c", kInC, kOutC, 3, 1, 1);
  common::Rng rng(7);
  conv.init_params(rng);
  dl::Tensor x({kBatch, kInC, kSide, kSide});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  conv.setup({&x}, top);
  conv.forward({&x}, top, true);  // size the arenas outside the timed loop

  const double columns = static_cast<double>(kSide) * kSide;
  const double kk = static_cast<double>(kInC) * 9;
  const double flops = 2.0 * kk * kOutC * columns * kBatch;

  auto start = Clock::now();
  for (int i = 0; i < kFwdReps; ++i) conv.forward({&x}, top, true);
  emit("conv_fwd", threads, seconds_since(start), kFwdReps, flops, "gflops",
       checksum(top.data(), top.size()));

  dl::Tensor top_grad;
  top_grad.reshape(top.shape());
  for (float& v : top_grad.span()) v = static_cast<float>(rng.uniform(-0.01, 0.01));
  dl::Tensor x_grad;
  x_grad.reshape(x.shape());
  std::vector<dl::Tensor*> bottom_grads{&x_grad};
  conv.backward({&x}, top, top_grad, bottom_grads);  // size dcol_
  start = Clock::now();
  for (int i = 0; i < kBwdReps; ++i) {
    x_grad.zero();
    conv.backward({&x}, top, top_grad, bottom_grads);
  }
  // dW, dcol and col2im each stream the full GEMM volume: ~3x forward work.
  emit("conv_bwd", threads, seconds_since(start), kBwdReps, 3.0 * flops, "gflops",
       checksum(x_grad.data(), x_grad.size()));
}

void bench_conv_scalar_reference() {
  dl::Conv2d init("c", kInC, kOutC, 3, 1, 1);
  common::Rng rng(7);
  init.init_params(rng);
  dl::Tensor x({kBatch, kInC, kSide, kSide});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  init.setup({&x}, top);

  RefConv ref{kInC, kOutC, 3, 1, 1, top.h(), top.w(), {}};
  const float* w = init.params()[0]->value.data();
  const float* b = init.params()[1]->value.data();
  const double columns = static_cast<double>(kSide) * kSide;
  const double kk = static_cast<double>(kInC) * 9;
  const double flops = 2.0 * kk * kOutC * columns * kBatch;

  ref.forward(x, w, b, top);
  auto start = Clock::now();
  for (int i = 0; i < kFwdReps; ++i) ref.forward(x, w, b, top);
  emit("conv_fwd_scalar_ref", 1, seconds_since(start), kFwdReps, flops, "gflops",
       checksum(top.data(), top.size()));

  dl::Tensor top_grad;
  top_grad.reshape(top.shape());
  for (float& v : top_grad.span()) v = static_cast<float>(rng.uniform(-0.01, 0.01));
  dl::Tensor x_grad;
  x_grad.reshape(x.shape());
  std::vector<float> dw(init.params()[0]->value.size());
  std::vector<float> db(init.params()[1]->value.size());
  start = Clock::now();
  for (int i = 0; i < kBwdReps; ++i) {
    x_grad.zero();
    ref.backward(x, top_grad, w, dw.data(), db.data(), &x_grad);
  }
  emit("conv_bwd_scalar_ref", 1, seconds_since(start), kBwdReps, 3.0 * flops, "gflops",
       checksum(x_grad.data(), x_grad.size()));
}

void bench_seasgd(int threads) {
  common::parallel::set_thread_count(threads);
  common::Rng rng(11);
  std::vector<float> local(kSpan);
  std::vector<float> global(kSpan);
  std::vector<float> delta(kSpan);
  for (float& v : local) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : global) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<float> local0 = local;

  core::elastic_exchange_parallel(local, global, 0.25F, delta);  // warm pool
  auto start = Clock::now();
  for (int i = 0; i < kSpanReps; ++i) {
    std::copy(local0.begin(), local0.end(), local.begin());
    core::elastic_exchange_parallel(local, global, 0.25F, delta);
  }
  emit("seasgd_exchange", threads, seconds_since(start), kSpanReps,
       static_cast<double>(kSpan), "gelems", checksum(delta.data(), delta.size()));
}

void bench_smb_accumulate(int threads) {
  common::parallel::set_thread_count(threads);
  smb::SmbServerOptions options;
  options.capacity_bytes = 256LL << 20;
  smb::SmbServer server(options);
  const smb::Handle src = server.create_floats(1, kSpan);
  const smb::Handle dst = server.create_floats(2, kSpan);
  common::Rng rng(13);
  std::vector<float> delta(kSpan);
  for (float& v : delta) v = static_cast<float>(rng.uniform(-0.01, 0.01));
  server.write(src, delta);

  server.accumulate(src, dst);  // warm pool + scratch
  auto start = Clock::now();
  for (int i = 0; i < kSpanReps; ++i) server.accumulate(src, dst);
  const double elapsed = seconds_since(start);
  std::vector<float> out(kSpan);
  server.read(dst, out);
  emit("smb_accumulate", threads, elapsed, kSpanReps, static_cast<double>(kSpan),
       "gelems", checksum(out.data(), out.size()));
}

}  // namespace

int main() {
  for (const int threads : {1, 2, 4}) {
    bench_conv(threads);
    bench_seasgd(threads);
    bench_smb_accumulate(threads);
  }
  bench_conv_scalar_reference();
  common::parallel::shutdown();

  // The determinism contract, enforced where the numbers are produced: a
  // kernel's checksum must not depend on the pool width.  (The accumulate
  // rows intentionally differ — each run adds into the same destination —
  // so they are exempt.)
  for (const Row& a : rows) {
    for (const Row& b : rows) {
      if (std::string_view(a.name) != b.name || a.threads >= b.threads) continue;
      if (std::string_view(a.name) == "smb_accumulate") continue;
      if (a.check != b.check) {
        std::fprintf(stderr, "checksum mismatch for %s: t%d=%.17g t%d=%.17g\n", a.name,
                     a.threads, a.check, b.threads, b.check);
        return 1;
      }
    }
  }

  std::printf("{\n  \"schema\": \"bench_micro_kernels/v1\",\n");
  std::printf("  \"conv\": {\"batch\": %d, \"in_c\": %d, \"out_c\": %d, \"side\": %d},\n",
              kBatch, kInC, kOutC, kSide);
  std::printf("  \"span_elements\": %zu,\n", kSpan);
  std::printf("  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"name\": \"%s_t%d\", \"threads\": %d, \"ms_per_iter\": %.4f, "
                "\"throughput\": %.4f, \"units\": \"%s\", \"checksum\": %.9g}%s\n",
                r.name, r.threads, r.threads, r.ms, r.throughput, r.units, r.check,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
