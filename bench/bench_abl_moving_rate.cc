// Ablation: the moving_rate (alpha) hyper-parameter of SEASGD (§III-A).
//
// alpha scales the elastic pull between local and global weights (eqs. 5-7).
// Too small: workers barely share knowledge.  Too large: the elastic force
// destabilises exploration.  The paper trains with alpha = 0.2.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/trainer.h"

int main() {
  using namespace shmcaffe;
  const int scale = bench::bench_scale();
  bench::print_header("Ablation — moving_rate (alpha) sweep",
                      "SEASGD stability vs the elastic averaging rate (paper default 0.2)");

  common::TextTable table({"moving_rate", "final accuracy", "final loss"});
  for (double alpha : {0.05, 0.1, 0.2, 0.5, 0.9}) {
    core::DistTrainOptions options;
    options.model_family = "mlp";
    options.workers = 8;
    options.input = dl::ModelInputSpec{1, 12, 12, 8};
    options.train_data.channels = 1;
    options.train_data.height = 12;
    options.train_data.width = 12;
    options.train_data.classes = 8;
    options.train_data.size = 2048UL * static_cast<std::size_t>(scale);
    options.train_data.noise_stddev = 0.4;
    options.test_data = options.train_data;
    options.test_data.size = 512;
    options.test_data.seed = 0x7e57;
    options.batch_size = 16;
    options.epochs = 4;
    options.solver.base_lr = 0.05;
    options.moving_rate = alpha;
    const core::TrainResult result = core::train_shmcaffe(options);
    table.add_row({common::format_fixed(alpha, 2),
                   common::format_percent(result.final_accuracy),
                   common::format_fixed(result.final_loss, 3)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
