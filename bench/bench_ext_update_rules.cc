// Extension: update-rule comparison from the paper's related work (§II).
//
// The paper motivates SEASGD against classic asynchronous SGD ("EASGD ...
// performs better than the Downpour SGD by reducing the delay time of
// global weight updating") and against synchronous SGD ("the synchronous
// method has a large aggregation overhead").  This bench trains the same
// model/data with all three update rules at 8 workers:
//
//   SSGD      — MPI-Allreduce synchronous SGD (MPICaffe)
//   Downpour  — classic parameter server, gradient push / weight fetch
//   SEASGD    — ShmCaffe-A elastic averaging over the SMB
#include <cstdio>
#include <string>

#include "baselines/async_ps.h"
#include "baselines/functional_ssgd.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/trainer.h"

namespace {

using namespace shmcaffe;

core::DistTrainOptions make_options(int scale) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 8;
  options.input = dl::ModelInputSpec{1, 12, 12, 8};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 8;
  options.train_data.size = 4096UL * static_cast<std::size_t>(scale);
  options.train_data.noise_stddev = 0.4;
  options.test_data = options.train_data;
  options.test_data.size = 512;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 8;
  options.solver.base_lr = 0.05;
  return options;
}

}  // namespace

int main() {
  const int scale = bench::bench_scale();
  bench::print_header("Extension — update rules: SSGD vs Downpour ASGD vs SEASGD",
                      "same model, data and budget; 8 workers");

  const core::DistTrainOptions base = make_options(scale);
  const core::TrainResult ssgd =
      baselines::train_ssgd(base, baselines::SsgdTransport::kMpiAllReduce);

  common::TextTable table({"rule", "comm interval", "final accuracy", "final loss"});
  table.add_row({"SSGD (allreduce)", "1", common::format_percent(ssgd.final_accuracy),
                 common::format_fixed(ssgd.final_loss, 3)});
  // The asynchronous rules trade accuracy for communication sparsity in
  // different ways: sweep how often each worker talks to the shared state.
  for (int interval : {1, 4, 8}) {
    baselines::DownpourOptions downpour;
    downpour.fetch_interval = interval;
    downpour.push_interval = interval;
    const core::TrainResult dp = baselines::train_downpour(base, downpour);
    table.add_row({"Downpour ASGD", std::to_string(interval),
                   common::format_percent(dp.final_accuracy),
                   common::format_fixed(dp.final_loss, 3)});
  }
  for (int interval : {1, 4, 8}) {
    core::DistTrainOptions options = base;
    options.update_interval = interval;
    const core::TrainResult se = core::train_shmcaffe(options);
    table.add_row({"SEASGD (ShmCaffe-A)", std::to_string(interval),
                   common::format_percent(se.final_accuracy),
                   common::format_fixed(se.final_loss, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nobserved: SSGD is the accuracy ceiling and every rule loses accuracy as\n"
      "exchanges get sparser.  At this toy scale (hundreds of iterations per\n"
      "worker) Downpour's direct gradient application degrades more slowly than\n"
      "elastic averaging; the EASGD-over-Downpour advantage the paper cites\n"
      "(reduced update delay, better long-horizon exploration) needs training\n"
      "budgets orders of magnitude longer than this bench runs — see the\n"
      "scale-substitution notes in EXPERIMENTS.md.\n");
  return 0;
}
