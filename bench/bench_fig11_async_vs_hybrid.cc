// Fig. 11: test accuracy and loss — ShmCaffe-A vs ShmCaffe-H as the worker
// count scales 1 -> 16.
//
// Paper: pure asynchronous SEASGD (ShmCaffe-A) slowly loses accuracy as
// workers grow — 5.7% below the 1-GPU baseline at 16 — while hybrid SGD
// (ShmCaffe-H, sync groups of the node size) stays within 0.9-2.2% of it.
//
// Scaled-down note (see EXPERIMENTS.md): at this repository's toy scale
// each of 16 workers performs a few hundred iterations instead of the
// paper's 20,000, which *amplifies* asynchrony damage.  The MLP family
// degrades gracefully and reproduces the paper's shape; the CNN families
// collapse outright under pure ASGD at 8+ toy-scale workers — a stronger
// version of the same phenomenon — so this bench reports the MLP sweep as
// the Fig. 11 reproduction and adds a mini-Inception A-vs-H contrast at 16
// workers showing the hybrid rescue.
//
// Hybrid grouping follows the paper's Table III: 4 GPUs = 2 nodes x 2,
// 8/16 GPUs = nodes of 4.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/trainer.h"

namespace {

using namespace shmcaffe;

core::DistTrainOptions make_options(const std::string& family, int workers, int group_size,
                                    int scale) {
  core::DistTrainOptions options;
  options.model_family = family;
  options.workers = workers;
  options.group_size = group_size;
  options.input = dl::ModelInputSpec{1, 12, 12, 8};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 8;
  options.train_data.size = 4096UL * static_cast<std::size_t>(scale);
  options.train_data.noise_stddev = 0.4;
  options.test_data = options.train_data;
  options.test_data.size = 512;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 10;
  options.solver.base_lr = 0.05;
  options.moving_rate = 0.2;
  options.update_interval = 1;
  return options;
}

int hybrid_group(int workers) {
  if (workers >= 8) return 4;  // paper: 2x4 and 4x4 node layouts
  if (workers == 4) return 2;  // paper: 2 nodes x 2 GPUs
  return 1;
}

}  // namespace

int main() {
  const int scale = bench::bench_scale();
  bench::print_header(
      "Fig. 11 — ShmCaffe-A vs ShmCaffe-H accuracy/loss vs workers",
      "paper: A degrades as workers grow (-5.7% at 16); H stays within ~2% of 1 GPU");

  common::TextTable table({"mode", "workers", "groups", "final accuracy", "final loss"});
  double baseline_accuracy = 0.0;
  double a16 = 0.0;
  double h16 = 0.0;
  for (int workers : {1, 2, 4, 8, 16}) {
    const core::TrainResult a =
        core::train_shmcaffe(make_options("mlp", workers, 1, scale));
    table.add_row({"ShmCaffe-A", std::to_string(workers), std::to_string(workers),
                   common::format_percent(a.final_accuracy),
                   common::format_fixed(a.final_loss, 3)});
    if (workers == 1) baseline_accuracy = a.final_accuracy;
    if (workers == 16) a16 = a.final_accuracy;
    if (workers >= 4) {
      const int group = hybrid_group(workers);
      const core::TrainResult h =
          core::train_shmcaffe(make_options("mlp", workers, group, scale));
      table.add_row({"ShmCaffe-H", std::to_string(workers),
                     std::to_string(workers / group),
                     common::format_percent(h.final_accuracy),
                     common::format_fixed(h.final_loss, 3)});
      if (workers == 16) h16 = h.final_accuracy;
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n1-GPU baseline accuracy: %s\n",
              common::format_percent(baseline_accuracy).c_str());
  std::printf("ShmCaffe-A @16: %+.1f%% vs baseline (paper: -5.7%%)\n",
              100.0 * (a16 - baseline_accuracy));
  std::printf("ShmCaffe-H @16: %+.1f%% vs baseline (paper: -0.9..-2.2%%)\n\n",
              100.0 * (h16 - baseline_accuracy));

  // The CNN contrast: at toy scale, pure async collapses where hybrid holds.
  const core::TrainResult cnn_a =
      core::train_shmcaffe(make_options("mini_inception", 16, 1, scale));
  const core::TrainResult cnn_h =
      core::train_shmcaffe(make_options("mini_inception", 16, 4, scale));
  common::TextTable cnn({"mini-Inception @16", "final accuracy", "final loss"});
  cnn.add_row({"ShmCaffe-A", common::format_percent(cnn_a.final_accuracy),
               common::format_fixed(cnn_a.final_loss, 3)});
  cnn.add_row({"ShmCaffe-H (4x4)", common::format_percent(cnn_h.final_accuracy),
               common::format_fixed(cnn_h.final_loss, 3)});
  std::printf("%s", cnn.render().c_str());
  std::printf("\nscaled-down amplification: with ~%d iterations per worker (vs the\n"
              "paper's ~20,000) pure ASGD cannot keep CNN replicas in one basin;\n"
              "the hybrid's intra-group averaging restores convergence.\n",
              static_cast<int>(10 * 4096 * scale / 16 / 16));
  return 0;
}
