// Extension: multiple SMB servers (the paper's stated future work, §V).
//
// The single SMB server is the scalability ceiling of ShmCaffe-A: its HCA
// carries every worker's read+write and its accumulate engine serialises
// every global update.  Sharding the global buffer across N servers divides
// both.  This bench quantifies the win at 16 workers for every model, plus
// the timed ShmCaffe-A 16-GPU configuration rerun under 2 and 4 servers.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;
  bench::print_header(
      "Extension — multiple SMB servers (paper future work)",
      "ShmCaffe-A at 16 workers with the global buffer sharded across N servers");

  common::TextTable table({"model", "servers", "iteration", "communication",
                           "comm ratio", "vs 1 server"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    SimTime base_iteration = 0;
    for (int servers : {1, 2, 4}) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = 16;
      options.iterations = 150;
      options.smb_servers = servers;
      const cluster::PlatformTiming t = core::simulate_shmcaffe(options);
      if (servers == 1) base_iteration = t.mean_iteration();
      table.add_row({model.name, std::to_string(servers),
                     common::format_duration(t.mean_iteration()),
                     common::format_duration(t.mean_comm),
                     common::format_percent(t.comm_ratio()),
                     common::format_fixed(static_cast<double>(base_iteration) /
                                              static_cast<double>(t.mean_iteration()),
                                          2) +
                         "x"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nreading: communication-bound models regain near-linear scaling once\n"
              "the SMB data path and accumulate engine are sharded; compute-bound\n"
              "models (inception_v1) see little change — they were never limited by\n"
              "the server.\n");
  return 0;
}
