// Figs. 12-13 + Table V (and Table IV): ShmCaffe-A computation and
// communication time per iteration for the four CNN models as workers scale
// 1 -> 16.
//
// Paper anchors: Inception-v1's communication ratio stays modest (16.3% at
// 8 GPUs, 26% at 16); ResNet-50 reaches 30% / 56%; Inception-ResNet-v2's
// communication "increases rapidly" at 16 workers (6848 MB of traffic per
// iteration); VGG16 is communication-bound already at 2 workers (727.7 ms
// of communication vs 194.9 ms of computation).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;

  bench::print_header("Table IV — CNN model profiles",
                      "parameter size and 1-GPU iteration time (batch 60), from the paper");
  common::TextTable profile_table({"model", "parameters", "comp / iteration"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    profile_table.add_row({model.name, common::format_bytes(model.param_bytes),
                           common::format_duration(model.comp_time)});
  }
  std::printf("%s\n", profile_table.render().c_str());

  bench::print_header(
      "Figs. 12-13 + Table V — ShmCaffe-A computation/communication per model",
      "SEASGD (update_interval=1, one SMB server) as workers scale 1 -> 16");

  common::TextTable table(
      {"model", "workers", "computation", "communication", "iteration", "comm ratio"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    for (int workers : {1, 2, 4, 8, 16}) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = workers;
      options.group_size = 1;
      options.iterations = 200;
      const cluster::PlatformTiming t = core::simulate_shmcaffe(options);
      table.add_row({model.name, std::to_string(workers),
                     common::format_duration(t.mean_comp),
                     common::format_duration(t.mean_comm),
                     common::format_duration(t.mean_iteration()),
                     common::format_percent(t.comm_ratio())});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper anchors: inception_v1 ratio modest and growing; resnet_50 ~30%%@8,\n"
      ">50%%@16; inception_resnet_v2 blows up at 16 workers; vgg16 communication-\n"
      "bound from 2 workers (comm 727.7 ms vs comp 194.9 ms).\n");
  return 0;
}
