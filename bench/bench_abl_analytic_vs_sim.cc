// Ablation: eq. (8) analytic model vs the discrete-event simulation.
//
// With contention effects switched off (no jitter, 2 workers so there is a
// real exchange), the simulated SEASGD iteration must match the closed-form
// T_iter = max(T_comp, T_wwi + T_ugw) + T_rgw + T_ulw.  With 16 workers the
// simulation adds what the formula cannot express: bandwidth sharing and
// accumulate-queue serialisation at the SMB server.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/analytic.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;
  bench::print_header("Ablation — eq. (8) analytic model vs discrete-event simulation",
                      "contention-free agreement, then the contention gap at scale");

  common::TextTable table({"model", "analytic iter", "sim iter (2 workers)",
                           "sim iter (16 workers)", "contention gap @16"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    cluster::TestbedSpec spec;
    core::AnalyticIteration analytic = core::analytic_seasgd_iteration(model, spec);
    // The simulator's binding constraint on the data path is the per-client
    // stream rate.
    const double wire = spec.smb_client_stream_bandwidth * spec.fabric_efficiency;
    analytic.t_rgw = units::transfer_time(model.param_bytes, wire);
    analytic.t_wwi = analytic.t_rgw;

    core::SimShmCaffeOptions options;
    options.model = model.kind;
    options.iterations = 120;
    options.jitter.slow_probability = 0.0;
    options.workers = 2;
    const SimTime sim2 = core::simulate_shmcaffe(options).mean_iteration();
    options.workers = 16;
    const SimTime sim16 = core::simulate_shmcaffe(options).mean_iteration();

    table.add_row({model.name, common::format_duration(analytic.iteration()),
                   common::format_duration(sim2), common::format_duration(sim16),
                   common::format_percent(static_cast<double>(sim16 - sim2) /
                                          static_cast<double>(sim2))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: sim(2 workers) within a few %% of eq. (8); the 16-worker gap\n"
              "is pure contention (shared HCA + serialised accumulates).\n");
  return 0;
}
