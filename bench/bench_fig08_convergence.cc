// Fig. 8: test accuracy and loss during training — Caffe vs Caffe-MPI vs
// MPICaffe vs ShmCaffe at 8 and 16 workers.
//
// Functional reproduction: real distributed training (threads, real SMB
// server, real MiniMPI/NCCL collectives) of a mini-Inception network on the
// synthetic ImageNet stand-in.  The paper's observation: all platforms
// converge; ShmCaffe tracks the synchronous baselines closely while training
// asynchronously.
//
// SHMCAFFE_BENCH_SCALE multiplies the dataset size and epoch count.
#include <cstdio>
#include <string>

#include "baselines/functional_ssgd.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/trainer.h"

namespace {

using namespace shmcaffe;

core::DistTrainOptions make_options(int workers, int scale) {
  core::DistTrainOptions options;
  options.model_family = "mini_inception";
  options.workers = workers;
  options.input = dl::ModelInputSpec{1, 12, 12, 8};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 8;
  options.train_data.size = 4096UL * static_cast<std::size_t>(scale);
  options.train_data.noise_stddev = 0.4;
  options.test_data = options.train_data;
  options.test_data.size = 512;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 6;
  options.solver.base_lr = 0.05;
  // Paper hyper-parameters: moving_rate 0.2, update_interval 1.
  options.moving_rate = 0.2;
  options.update_interval = 1;
  return options;
}

core::TrainResult run_platform(const std::string& platform, int workers, int scale) {
  core::DistTrainOptions options = make_options(workers, scale);
  if (platform == "Caffe") {
    return baselines::train_ssgd(options, baselines::SsgdTransport::kNcclAllReduce);
  }
  if (platform == "Caffe-MPI") {
    return baselines::train_ssgd(options, baselines::SsgdTransport::kMpiStar);
  }
  if (platform == "MPICaffe") {
    return baselines::train_ssgd(options, baselines::SsgdTransport::kMpiAllReduce);
  }
  options.group_size = 4;  // ShmCaffe runs hybrid SGD in this experiment
  return core::train_shmcaffe(options);
}

}  // namespace

int main() {
  const int scale = bench::bench_scale();
  bench::print_header(
      "Fig. 8 — test accuracy and loss per platform (mini-Inception)",
      "functional distributed training on the synthetic dataset;\n"
      "paper: all platforms converge, ShmCaffe tracks the synchronous baselines");

  common::TextTable table({"platform", "workers", "epoch", "test accuracy", "test loss"});
  for (const char* platform : {"Caffe", "Caffe-MPI", "MPICaffe", "ShmCaffe"}) {
    for (int workers : {8, 16}) {
      const core::TrainResult result = run_platform(platform, workers, scale);
      for (const core::EpochMetrics& epoch : result.curve) {
        table.add_row({platform, std::to_string(workers), std::to_string(epoch.epoch),
                       common::format_percent(epoch.test_accuracy),
                       common::format_fixed(epoch.test_loss, 3)});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
