// Extension: fault / straggler sensitivity of the training platforms.
//
// The paper's decoupling argument (§III-E) is qualitative: an asynchronous
// SEASGD worker that slows down costs only its own contribution, while a
// synchronous platform pays max-over-workers every iteration.  This bench
// quantifies it.  A shared deterministic FaultPlan injects one transient
// stall per worker with increasing mean severity, and the same plan drives
// ShmCaffe-A, ShmCaffe-H and the synchronous Caffe baseline.  A final point
// adds a mid-run fail-stop crash: the asynchronous platforms keep training
// on the survivors, the synchronous one halts at the crash iteration.
//
// Output is a single JSON document of simulated quantities only, so two
// runs with the same seed are byte-identical (the determinism the fault
// plan guarantees).  Pipe through `python3 -m json.tool` to pretty-print.
#include <cstdio>
#include <vector>

#include "baselines/sim_platforms.h"
#include "common/units.h"
#include "core/sim_shmcaffe.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"

namespace {

constexpr std::uint64_t kSeed = 0xfa117;
constexpr int kWorkers = 8;
constexpr std::int64_t kIterations = 100;

void print_platform(const char* name, const shmcaffe::cluster::PlatformTiming& t,
                    bool last) {
  using shmcaffe::units::to_seconds;
  std::printf(
      "        \"%s\": {\"makespan_seconds\": %.9f, \"mean_iteration_seconds\": %.9f, "
      "\"comm_ratio\": %.6f, \"completed_worker_iterations\": %lld, "
      "\"crashed_workers\": %d}%s\n",
      name, to_seconds(t.makespan), to_seconds(t.mean_iteration()), t.comm_ratio(),
      static_cast<long long>(t.completed_worker_iterations), t.crashed_workers,
      last ? "" : ",");
}

void print_point(const char* label, double severity,
                 const shmcaffe::fault::FaultInjector& injector, bool last) {
  using namespace shmcaffe;

  core::SimShmCaffeOptions a;
  a.workers = kWorkers;
  a.group_size = 1;
  a.iterations = kIterations;
  a.faults = &injector;
  const cluster::PlatformTiming shmcaffe_a = core::simulate_shmcaffe(a);

  core::SimShmCaffeOptions h = a;
  h.group_size = 4;  // 2 hybrid groups of 4 GPUs
  const cluster::PlatformTiming shmcaffe_h = core::simulate_shmcaffe(h);

  baselines::SimPlatformOptions s;
  s.workers = kWorkers;
  s.iterations = kIterations;
  s.faults = &injector;
  const cluster::PlatformTiming caffe_sync = baselines::simulate_caffe(s);

  std::printf("    {\n");
  std::printf("      \"label\": \"%s\",\n", label);
  std::printf("      \"mean_stall_seconds\": %.6f,\n", severity);
  std::printf("      \"plan_fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(injector.fingerprint()));
  std::printf("      \"plan_events\": %zu,\n", injector.plan().size());
  std::printf("      \"platforms\": {\n");
  print_platform("shmcaffe_a", shmcaffe_a, false);
  print_platform("shmcaffe_h", shmcaffe_h, false);
  print_platform("caffe_sync", caffe_sync, true);
  std::printf("      }\n");
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  using namespace shmcaffe;

  std::printf("{\n");
  std::printf("  \"bench\": \"ext_fault_sensitivity\",\n");
  std::printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::printf("  \"workers\": %d,\n", kWorkers);
  std::printf("  \"iterations\": %lld,\n", static_cast<long long>(kIterations));
  std::printf("  \"points\": [\n");

  // Straggler sweep: every worker suffers one transient stall whose mean
  // duration grows; the same plan (same seed) drives all three platforms.
  const std::vector<double> severities{0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0};
  for (double severity : severities) {
    fault::FaultPlanSpec spec;
    spec.seed = kSeed;
    spec.workers = kWorkers;
    spec.horizon_iterations = kIterations;
    spec.stall_probability = severity > 0.0 ? 1.0 : 0.0;
    spec.mean_stall_seconds = severity;
    const fault::FaultInjector injector(fault::FaultPlan::generate(spec));
    char label[64];
    std::snprintf(label, sizeof label, "stall_%.2fs", severity);
    print_point(label, severity, injector, /*last=*/false);
  }

  // Crash point: worker 4 fail-stops halfway.  ShmCaffe-A loses one worker,
  // ShmCaffe-H loses the whole group rooted at worker 4 (a dead node takes
  // all its GPUs), and the synchronous baseline cannot complete another
  // collective, so it truncates at the crash iteration.
  {
    fault::FaultPlan plan;
    fault::FaultEvent crash;
    crash.kind = fault::FaultKind::kWorkerCrash;
    crash.target = 4;
    crash.iteration = kIterations / 2;
    plan.add(crash);
    const fault::FaultInjector injector(plan);
    print_point("crash_halfway", 0.0, injector, /*last=*/true);
  }

  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
