// Micro-benchmarks of the functional communication substrates: MiniMPI ring
// allreduce, star exchanges and the SMB exchange path, on real threads.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "coll/nccl.h"
#include "core/seasgd_math.h"
#include "minimpi/minimpi.h"
#include "smb/server.h"

namespace {

using namespace shmcaffe;

void BM_RingAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elements = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    minimpi::Context context(ranks);
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&context, r, elements] {
        minimpi::Endpoint ep = context.endpoint(r);
        std::vector<float> data(elements, static_cast<float>(r));
        for (int round = 0; round < 8; ++round) ep.allreduce_sum(data);
        benchmark::DoNotOptimize(data.data());
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetBytesProcessed(state.iterations() * 8 *
                          static_cast<std::int64_t>(elements * sizeof(float) * ranks));
}
BENCHMARK(BM_RingAllreduce)->Args({2, 1 << 14})->Args({4, 1 << 14})->Args({4, 1 << 17});

void BM_NcclStyleGroupAllreduce(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  constexpr std::size_t kElements = 1 << 15;
  for (auto _ : state) {
    coll::DeviceGroup group(devices);
    std::vector<std::thread> threads;
    for (int d = 0; d < devices; ++d) {
      threads.emplace_back([&group, d] {
        coll::Communicator comm = group.communicator(d);
        std::vector<float> grad(kElements, 1.0F);
        for (int round = 0; round < 8; ++round) comm.all_reduce_mean(grad);
        benchmark::DoNotOptimize(grad.data());
      });
    }
    for (auto& t : threads) t.join();
  }
}
BENCHMARK(BM_NcclStyleGroupAllreduce)->Arg(2)->Arg(4);

void BM_SeasgdFullExchange(benchmark::State& state) {
  // One worker's complete exchange against a live SMB server: read W_g,
  // elastic update, write dW, server-side accumulate.
  const auto elements = static_cast<std::size_t>(state.range(0));
  smb::SmbServer server;
  const smb::Handle global = server.create_floats(1, elements);
  const smb::Handle delta_seg = server.create_floats(2, elements);
  std::vector<float> local(elements, 1.0F);
  std::vector<float> global_copy(elements);
  std::vector<float> delta(elements);
  for (auto _ : state) {
    server.read(global, global_copy);
    core::elastic_exchange(local, global_copy, 0.2F, delta);
    server.write(delta_seg, delta);
    server.accumulate(delta_seg, global);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(elements * sizeof(float) * 4));
}
BENCHMARK(BM_SeasgdFullExchange)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
