// Extension: cost of end-to-end SMB data integrity.
//
// The integrity tentpole claims checksummed segments with replica
// read-repair turn silent corruption into a bounded, repairable event.
// This bench quantifies that claim on the simulated stack at a 32-worker
// scale, all from one corruption plan:
//
//   * fault_free      — integrity fully on, nothing injected: the scrub
//                       passes are the only integrity activity;
//   * unprotected     — corruptions land with checksums off: nothing is
//                       detected, the damage is silent (the baseline the
//                       paper's operator would actually be running);
//   * detect_only     — verify-on-read catches every marker but repair is
//                       disabled: detection latency without repair cost;
//   * detect_repair   — the full policy: every detection triggers a
//                       replica-vote rewrite, whose modelled cost lands on
//                       the makespan.
//
// Every row reports the run's makespan, aggregate throughput (completed
// worker-iterations per simulated second — the `"throughput"` key
// tools/check.sh fences at 20%), the integrity counters, the mean
// injection-to-detection latency, the total repair cost, and the executed
// integrity fingerprint.  A final sweep scales the per-copy repair cost to
// show the makespan charge is linear in it.  All quantities are simulated
// and seeded: two runs are byte-identical.  Pipe through
// `python3 -m json.tool` to pretty-print.
#include <cstdio>
#include <vector>

#include "common/units.h"
#include "core/sim_shmcaffe.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "recovery/integrity.h"

namespace {

using namespace shmcaffe;
using units::to_seconds;

constexpr int kWorkers = 32;
constexpr std::int64_t kIterations = 80;
constexpr int kShards = 2;
constexpr int kReplicas = 2;

core::SimShmCaffeOptions base_options() {
  core::SimShmCaffeOptions options;
  options.workers = kWorkers;
  options.group_size = 1;
  options.iterations = kIterations;
  options.smb_servers = kShards;
  options.smb_replicas = kReplicas;
  return options;
}

recovery::IntegrityPolicy full_policy() {
  recovery::IntegrityPolicy policy;
  policy.checksum_chunks = true;
  policy.verify_on_read = true;
  policy.read_repair = true;
  policy.scrub_on_checkpoint = true;
  return policy;
}

// Six corruptions spread over the run and over all four physical replicas
// (shard s replica r = physical s * kReplicas + r), plus one torn write per
// shard primary with a low ordinal every run reaches.
fault::FaultPlan corruption_plan() {
  fault::FaultPlan plan;
  const struct { int target; double at; std::uint64_t marker; } hits[] = {
      {0, 0.4, 0x1001}, {1, 0.9, 0x1002}, {2, 1.3, 0x1003},
      {3, 1.8, 0x1004}, {0, 2.2, 0x1005}, {2, 2.6, 0x1006},
  };
  for (const auto& hit : hits) {
    fault::FaultEvent rot;
    rot.kind = fault::FaultKind::kSegmentCorruption;
    rot.target = hit.target;
    rot.start_seconds = hit.at;
    rot.sequence = hit.marker;
    rot.severity = 3.0;  // bit flips per poisoned chunk
    plan.add(rot);
  }
  for (int shard = 0; shard < kShards; ++shard) {
    fault::FaultEvent torn;
    torn.kind = fault::FaultKind::kTornWrite;
    torn.target = shard * kReplicas;
    torn.sequence = 2 + shard;  // write ordinal; the run makes far more
    torn.severity = 0.5;        // fraction of the write applied
    plan.add(torn);
  }
  return plan;
}

void emit(const char* name, const cluster::PlatformTiming& timing, bool last) {
  const double seconds = to_seconds(timing.makespan);
  const double throughput =
      seconds > 0.0 ? static_cast<double>(timing.completed_worker_iterations) / seconds
                    : 0.0;
  std::printf("    {\"name\": \"%s\", \"throughput\": %.6f,\n", name, throughput);
  std::printf("     \"makespan_seconds\": %.9f, \"completed_worker_iterations\": %lld,\n",
              seconds, static_cast<long long>(timing.completed_worker_iterations));
  std::printf("     \"corruptions_detected\": %lld, \"repairs\": %lld, "
              "\"scrub_passes\": %lld,\n",
              static_cast<long long>(timing.corruptions_detected),
              static_cast<long long>(timing.integrity_repairs),
              static_cast<long long>(timing.scrub_passes));
  std::printf("     \"detection_latency_seconds\": %.9f, "
              "\"repair_time_seconds\": %.9f,\n",
              to_seconds(timing.detection_latency), to_seconds(timing.repair_time));
  std::printf("     \"integrity_fingerprint\": %llu}%s\n",
              static_cast<unsigned long long>(timing.integrity_fingerprint),
              last ? "" : ",");
}

}  // namespace

int main() {
  const fault::FaultPlan plan = corruption_plan();
  const fault::FaultInjector injector(plan);

  std::printf("{\n  \"bench\": \"ext_integrity\",\n");
  std::printf("  \"workers\": %d, \"iterations\": %lld, "
              "\"smb_servers\": %d, \"smb_replicas\": %d,\n",
              kWorkers, static_cast<long long>(kIterations), kShards, kReplicas);
  std::printf("  \"plan\": {\"segment_corruptions\": 6, \"torn_writes\": %d, "
              "\"fingerprint\": %llu},\n",
              kShards, static_cast<unsigned long long>(plan.fingerprint()));
  std::printf("  \"scenarios\": [\n");

  // --- fault-free: the integrity layer's standing cost ---------------------
  core::SimShmCaffeOptions clean = base_options();
  clean.integrity = full_policy();
  emit("integrity/fault_free", core::simulate_shmcaffe(clean), false);

  // --- unprotected: the same corruptions with checksums off ----------------
  core::SimShmCaffeOptions unprotected = base_options();
  unprotected.faults = &injector;
  emit("integrity/unprotected", core::simulate_shmcaffe(unprotected), false);

  // --- detect only: verification without repair ----------------------------
  core::SimShmCaffeOptions detect_only = base_options();
  detect_only.faults = &injector;
  detect_only.integrity = full_policy();
  detect_only.integrity.read_repair = false;
  emit("integrity/detect_only", core::simulate_shmcaffe(detect_only), false);

  // --- detect + repair: the full policy ------------------------------------
  core::SimShmCaffeOptions repaired = base_options();
  repaired.faults = &injector;
  repaired.integrity = full_policy();
  emit("integrity/detect_repair", core::simulate_shmcaffe(repaired), true);

  std::printf("  ],\n");

  // Sweep the modelled per-copy repair cost: the makespan charge should be
  // linear in it (repairs are fixed by the plan and the policy).
  std::printf("  \"repair_cost_sweep\": [\n");
  const std::vector<double> costs = {0.001, 0.005, 0.02};
  for (std::size_t i = 0; i < costs.size(); ++i) {
    core::SimShmCaffeOptions swept = base_options();
    swept.faults = &injector;
    swept.integrity = full_policy();
    swept.integrity.sim_repair_seconds = costs[i];
    const cluster::PlatformTiming timing = core::simulate_shmcaffe(swept);
    std::printf("    {\"repair_seconds_per_copy\": %.3f, \"repairs\": %lld, "
                "\"repair_time_seconds\": %.9f, \"makespan_seconds\": %.9f}%s\n",
                costs[i], static_cast<long long>(timing.integrity_repairs),
                to_seconds(timing.repair_time), to_seconds(timing.makespan),
                i + 1 < costs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
