#!/usr/bin/env bash
# One-command correctness gate: plain build + full test suite (including the
# `ctest -L lint` static-analysis pass), then the concurrency suites under
# ThreadSanitizer, then the full suite under AddressSanitizer+UBSan.
#
# Usage:
#   tools/check.sh            # run the whole matrix
#   tools/check.sh plain      # just the plain build + full ctest (+ lint,
#                             # incl. the lock-coverage snapshot gate)
#   tools/check.sh tsan       # just the TSan build + `ctest -L tsan`
#   tools/check.sh asan       # just the ASan/UBSan build + full ctest
#   tools/check.sh lint       # `ctest -L lint` + `shmcaffe-lint --coverage`
#                             # gated against LINT_coverage.json: unannotated
#                             # fields fail, per-class unguarded counts and
#                             # pin_escapes must not grow, and the root/
#                             # contract counters (deterministic_roots,
#                             # hot_kernel_roots, blocking_roots,
#                             # nonblocking_contracts) must not shrink
#                             # (--force overrides)
#   tools/check.sh recovery   # `ctest -L recovery` in the plain AND TSan trees
#   tools/check.sh elastic    # `ctest -L elastic` in the plain AND TSan trees,
#                             # then the Release bench_ext_elastic snapshot into
#                             # BENCH_elastic.json; refuses to overwrite the
#                             # baseline on a >20% throughput regression unless
#                             # --force is also given
#   tools/check.sh integrity  # `ctest -L integrity` in the plain AND ASan
#                             # trees (checksum/repair paths are memory hot
#                             # spots), then the Release bench_ext_integrity
#                             # snapshot into BENCH_integrity.json; refuses to
#                             # overwrite the baseline on a >20% throughput
#                             # regression unless --force is also given
#   tools/check.sh simd       # the `simd`-labelled kernel-equivalence tests in
#                             # the AVX2 tree AND a -DSHMCAFFE_SIMD=OFF scalar
#                             # tree: the SIMD tier must be bitwise identical
#                             # to the scalar cores, build to build
#   tools/check.sh bench      # Release build + bench_micro_kernels snapshot
#                             # into BENCH_kernels.json; refuses to overwrite
#                             # the baseline on a >20% throughput regression
#                             # unless --force is also given
#
# Each configuration builds into its own tree (build/, build-tsan/,
# build-asan/, build-bench/) so incremental reruns are cheap.  Exits non-zero
# on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
FORCE=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --force) FORCE=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done
STAGES=("${ARGS[@]:-plain tsan asan}")
STAGES=(${STAGES[@]})  # re-split when the default multi-word string is used

run_stage() {
  local name=$1 build_dir=$2 sanitize=$3 ctest_args=$4
  echo "==> [$name] configure + build ($build_dir)"
  cmake -B "$build_dir" -S . -DSHMCAFFE_SANITIZE="$sanitize" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  echo "==> [$name] ctest $ctest_args"
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS" $ctest_args)
}

# Lock-coverage snapshot: `shmcaffe-lint --coverage` against the committed
# LINT_coverage.json baseline.  Fails if any class has unannotated fields, or
# if a class's `unguarded` count grew versus the baseline (declaring a field
# SHMCAFFE_UNGUARDED is an explicit, reviewed loosening — the snapshot pins
# it).  The flow-sensitive counters are pinned the same way: a class's
# `unguarded_access` count (guarded-field reads/writes the lock-region pass
# could not prove held) and the summary `tainted` count (statements the
# determinism pass reaches from a SHMCAFFE_DETERMINISTIC root) must not grow.
# The summary `deterministic_roots` count must not SHRINK: the roots are the
# cross-stack reproducibility contract (recovery/membership/integrity
# fingerprints), and silently dropping an annotation un-gates its callees.
# On success the new report becomes the baseline; a regression keeps the old
# baseline unless --force is given.
lint_coverage_gate() {
  local build_dir=$1
  echo "==> [lint] shmcaffe-lint --coverage gate"
  if [[ ! -x "./$build_dir/tools/lint/shmcaffe-lint" ]]; then
    echo "==> [lint] ./$build_dir/tools/lint/shmcaffe-lint is missing — the $build_dir tree" \
         "is stale; run 'tools/check.sh plain' (or: cmake --build $build_dir" \
         "--target shmcaffe-lint) and retry" >&2
    exit 1
  fi
  local new_json
  new_json=$(mktemp)
  "./$build_dir/tools/lint/shmcaffe-lint" . --coverage > "$new_json"
  local extract='s/.*"class": "\([^"]*\)".*"unguarded": \([0-9]*\), "unannotated": \([0-9]*\).*/\1 \2 \3/p'
  local extract_access='s/.*"class": "\([^"]*\)".*"unguarded_access": \([0-9]*\).*/\1 \2/p'
  local extract_tainted='s/.*"tainted": \([0-9]*\).*/\1/p'
  if grep -q '"unannotated": [1-9]' "$new_json"; then
    echo "==> [lint] classes with unannotated fields (guarded-by rule should have caught this):" >&2
    sed -n "$extract" "$new_json" | awk '$3 > 0' >&2
    rm -f "$new_json"
    exit 1
  fi
  if [[ -f LINT_coverage.json && "$FORCE" != 1 ]]; then
    if ! awk 'NR==FNR { old[$1] = $2; next }
              ($1 in old) && $2 > old[$1] {
                printf "coverage regression: %s unguarded %d -> %d\n", $1, old[$1], $2
                bad = 1
              }
              END { exit bad }' \
          <(sed -n "$extract" LINT_coverage.json) \
          <(sed -n "$extract" "$new_json"); then
      echo "==> [lint] unguarded field count grew vs LINT_coverage.json;" \
           "baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    if ! awk 'NR==FNR { old[$1] = $2; next }
              ($1 in old) && $2 > old[$1] {
                printf "coverage regression: %s unguarded_access %d -> %d\n", $1, old[$1], $2
                bad = 1
              }
              END { exit bad }' \
          <(sed -n "$extract_access" LINT_coverage.json) \
          <(sed -n "$extract_access" "$new_json"); then
      echo "==> [lint] unguarded guarded-field accesses grew vs LINT_coverage.json;" \
           "baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    local old_tainted new_tainted
    old_tainted=$(sed -n "$extract_tainted" LINT_coverage.json | head -1)
    new_tainted=$(sed -n "$extract_tainted" "$new_json" | head -1)
    if [[ -n "$old_tainted" && -n "$new_tainted" && "$new_tainted" -gt "$old_tainted" ]]; then
      echo "==> [lint] determinism-tainted statement count grew vs LINT_coverage.json" \
           "($old_tainted -> $new_tainted); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    local extract_roots='s/.*"deterministic_roots": \([0-9]*\).*/\1/p'
    local old_roots new_roots
    old_roots=$(sed -n "$extract_roots" LINT_coverage.json | head -1)
    new_roots=$(sed -n "$extract_roots" "$new_json" | head -1)
    if [[ -n "$old_roots" && -n "$new_roots" && "$new_roots" -lt "$old_roots" ]]; then
      echo "==> [lint] SHMCAFFE_DETERMINISTIC root count shrank vs LINT_coverage.json" \
           "($old_roots -> $new_roots); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    # The hot-path allocation counters mirror the determinism pair: the
    # `hot_allocs` count (suppressed allocation sites reachable from
    # SHMCAFFE_HOT_KERNEL roots, net of justified lint:allow escapes) must
    # not grow, and the `hot_kernel_roots` count must not shrink — dropping
    # a root annotation silently un-gates every callee's allocations.
    local extract_hot_allocs='s/.*"hot_allocs": \([0-9]*\).*/\1/p'
    local old_hot new_hot
    old_hot=$(sed -n "$extract_hot_allocs" LINT_coverage.json | head -1)
    new_hot=$(sed -n "$extract_hot_allocs" "$new_json" | head -1)
    if [[ -n "$old_hot" && -n "$new_hot" && "$new_hot" -gt "$old_hot" ]]; then
      echo "==> [lint] hot-kernel allocation count grew vs LINT_coverage.json" \
           "($old_hot -> $new_hot); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    local extract_hot_roots='s/.*"hot_kernel_roots": \([0-9]*\).*/\1/p'
    local old_hroots new_hroots
    old_hroots=$(sed -n "$extract_hot_roots" LINT_coverage.json | head -1)
    new_hroots=$(sed -n "$extract_hot_roots" "$new_json" | head -1)
    if [[ -n "$old_hroots" && -n "$new_hroots" && "$new_hroots" -lt "$old_hroots" ]]; then
      echo "==> [lint] SHMCAFFE_HOT_KERNEL root count shrank vs LINT_coverage.json" \
           "($old_hroots -> $new_hroots); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    # The blocking-contract counters follow the same grow/shrink discipline:
    # `blocking_roots` (annotated SHMCAFFE_BLOCKS groups) and
    # `nonblocking_contracts` (SHMCAFFE_NONBLOCKING groups, each lint-verified
    # to never reach a blocking root) must not shrink — dropping either kind
    # of annotation silently weakens the no-blocking-under-lock pass — and
    # `pin_escapes` (fields + functions annotated SHMCAFFE_PIN_ESCAPE) must
    # not grow: every new escaped pinned view is a reviewed lifetime hazard.
    local extract_blocking='s/.*"blocking_roots": \([0-9]*\).*/\1/p'
    local old_blk new_blk
    old_blk=$(sed -n "$extract_blocking" LINT_coverage.json | head -1)
    new_blk=$(sed -n "$extract_blocking" "$new_json" | head -1)
    if [[ -n "$old_blk" && -n "$new_blk" && "$new_blk" -lt "$old_blk" ]]; then
      echo "==> [lint] SHMCAFFE_BLOCKS root count shrank vs LINT_coverage.json" \
           "($old_blk -> $new_blk); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    local extract_contracts='s/.*"nonblocking_contracts": \([0-9]*\).*/\1/p'
    local old_nbc new_nbc
    old_nbc=$(sed -n "$extract_contracts" LINT_coverage.json | head -1)
    new_nbc=$(sed -n "$extract_contracts" "$new_json" | head -1)
    if [[ -n "$old_nbc" && -n "$new_nbc" && "$new_nbc" -lt "$old_nbc" ]]; then
      echo "==> [lint] SHMCAFFE_NONBLOCKING contract count shrank vs LINT_coverage.json" \
           "($old_nbc -> $new_nbc); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
    local extract_escapes='s/.*"pin_escapes": \([0-9]*\).*/\1/p'
    local old_esc new_esc
    old_esc=$(sed -n "$extract_escapes" LINT_coverage.json | head -1)
    new_esc=$(sed -n "$extract_escapes" "$new_json" | head -1)
    if [[ -n "$old_esc" && -n "$new_esc" && "$new_esc" -gt "$old_esc" ]]; then
      echo "==> [lint] SHMCAFFE_PIN_ESCAPE count grew vs LINT_coverage.json" \
           "($old_esc -> $new_esc); baseline kept (rerun with --force after review)" >&2
      rm -f "$new_json"
      exit 1
    fi
  fi
  mv "$new_json" LINT_coverage.json
  echo "==> [lint] snapshot written to LINT_coverage.json"
}

MATRIX_START=$(date +%s)
for stage in "${STAGES[@]}"; do
  STAGE_START=$(date +%s)
  case "$stage" in
    plain)
      # The plain tree runs everything: unit + integration suites, the
      # shmcaffe-lint repo scan (`-L lint`), and the lock-order detector
      # guards embedded in the concurrency suites.
      run_stage plain build "" ""
      lint_coverage_gate build
      ;;
    tsan)
      # Data-race + (via the LockOrder guard tests) deadlock-potential pass
      # over the suites that drive real threads.
      run_stage tsan build-tsan thread "-L tsan"
      ;;
    asan)
      # Heap/stack/UB pass over the full suite; `address` also enables UBSan.
      run_stage asan build-asan address ""
      ;;
    lint)
      # Static half (`ctest -L lint`: the repo scan + rule unit tests), then
      # the lock-coverage snapshot gate.
      run_stage lint build "" "-L lint"
      lint_coverage_gate build
      ;;
    recovery)
      # Focused gate for the recovery layer (replicated-SMB failover,
      # checkpoints, re-admission): its suite in the plain tree, then the
      # same tests under ThreadSanitizer — failover and re-admission are
      # concurrency hot spots.
      run_stage recovery-plain build "" "-L recovery"
      run_stage recovery-tsan build-tsan thread "-L recovery"
      ;;
    elastic)
      # Focused gate for the elastic membership layer (live join/drain,
      # shard rebalancing, straggler quarantine): its suite in the plain
      # tree, then under ThreadSanitizer — membership transitions race
      # against live training — and finally the simulated elastic bench
      # snapshotted against the committed baseline.  The bench quantities
      # are simulated (deterministic, build-type independent), so the 20%
      # throughput fence catches modelling regressions, not machine noise.
      run_stage elastic-plain build "" "-L elastic"
      run_stage elastic-tsan build-tsan thread "-L elastic"
      echo "==> [elastic] configure + build (build-bench, Release)"
      cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
            -DSHMCAFFE_LOCK_ASSERTS=OFF >/dev/null
      cmake --build build-bench -j "$JOBS" --target bench_ext_elastic
      echo "==> [elastic] bench_ext_elastic"
      new_json=$(mktemp)
      ./build-bench/bench/bench_ext_elastic > "$new_json"
      extract='s/.*"name": "\([^"]*\)".*"throughput": \([0-9.eE+-]*\).*/\1 \2/p'
      if [[ -f BENCH_elastic.json && "$FORCE" != 1 ]]; then
        if ! awk 'NR==FNR { old[$1] = $2; next }
                  ($1 in old) && old[$1] > 0 && $2 < 0.8 * old[$1] {
                    printf "regression: %s %.4f -> %.4f (-%.0f%%)\n",
                           $1, old[$1], $2, 100 * (1 - $2 / old[$1]); bad = 1
                  }
                  END { exit bad }' \
              <(sed -n "$extract" BENCH_elastic.json) \
              <(sed -n "$extract" "$new_json"); then
          echo "==> [elastic] >20% throughput regression vs BENCH_elastic.json;" \
               "baseline kept (rerun with --force to overwrite)" >&2
          rm -f "$new_json"
          exit 1
        fi
      fi
      mv "$new_json" BENCH_elastic.json
      echo "==> [elastic] snapshot written to BENCH_elastic.json"
      ;;
    integrity)
      # Focused gate for the data-integrity layer (chunk checksums,
      # verify-on-read, replica read-repair, scrubbing): its suite in the
      # plain tree, then the same tests under AddressSanitizer+UBSan — the
      # checksum and repair paths do raw byte-span arithmetic over segment
      # storage, so memory errors are the failure mode to hunt — and finally
      # the simulated integrity bench snapshotted against the committed
      # baseline.  The bench quantities are simulated (deterministic,
      # build-type independent), so the 20% throughput fence catches
      # modelling regressions, not machine noise.
      run_stage integrity-plain build "" "-L integrity"
      run_stage integrity-asan build-asan address "-L integrity"
      echo "==> [integrity] configure + build (build-bench, Release)"
      cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
            -DSHMCAFFE_LOCK_ASSERTS=OFF >/dev/null
      cmake --build build-bench -j "$JOBS" --target bench_ext_integrity
      echo "==> [integrity] bench_ext_integrity"
      new_json=$(mktemp)
      ./build-bench/bench/bench_ext_integrity > "$new_json"
      extract='s/.*"name": "\([^"]*\)".*"throughput": \([0-9.eE+-]*\).*/\1 \2/p'
      if [[ -f BENCH_integrity.json && "$FORCE" != 1 ]]; then
        if ! awk 'NR==FNR { old[$1] = $2; next }
                  ($1 in old) && old[$1] > 0 && $2 < 0.8 * old[$1] {
                    printf "regression: %s %.4f -> %.4f (-%.0f%%)\n",
                           $1, old[$1], $2, 100 * (1 - $2 / old[$1]); bad = 1
                  }
                  END { exit bad }' \
              <(sed -n "$extract" BENCH_integrity.json) \
              <(sed -n "$extract" "$new_json"); then
          echo "==> [integrity] >20% throughput regression vs BENCH_integrity.json;" \
               "baseline kept (rerun with --force to overwrite)" >&2
          rm -f "$new_json"
          exit 1
        fi
      fi
      mv "$new_json" BENCH_integrity.json
      echo "==> [integrity] snapshot written to BENCH_integrity.json"
      ;;
    simd)
      # Kernel-core tier cross-check: build a second tree with the SIMD tier
      # compiled out (-DSHMCAFFE_SIMD=OFF forces the scalar cores) and run
      # the kernel-equivalence suites in both.  The contract under test is
      # bitwise identity: the `simd`-labelled tests hash training floats and
      # kernel outputs, and those hashes must agree between the two builds
      # (each build asserts its own invariance; the shared expectations in
      # the tests pin the cross-build equality).
      run_stage simd-on build "" "-L simd"
      echo "==> [simd] configure + build (build-scalar, SIMD tier off)"
      cmake -B build-scalar -S . -DSHMCAFFE_SIMD=OFF >/dev/null
      cmake --build build-scalar -j "$JOBS"
      echo "==> [simd] ctest -L simd (scalar cores)"
      (cd build-scalar && ctest --output-on-failure -j "$JOBS" -L simd)
      ;;
    bench)
      # Micro-kernel throughput snapshot.  Optimised tree (the sanitizer
      # trees and default RelWithDebInfo mismeasure the kernels), one run,
      # then a guarded overwrite of the committed baseline: every kernel
      # present in both old and new snapshots must stay within 20% of its
      # recorded throughput, or the stage fails and keeps the baseline
      # (override with --force after an intentional change).
      echo "==> [bench] configure + build (build-bench, Release)"
      # Lock-held assertions off: the kernels are measured, not checked, and
      # the per-call held-list scan would perturb the hot paths.
      cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
            -DSHMCAFFE_LOCK_ASSERTS=OFF >/dev/null
      cmake --build build-bench -j "$JOBS" --target bench_micro_kernels
      echo "==> [bench] bench_micro_kernels"
      new_json=$(mktemp)
      ./build-bench/bench/bench_micro_kernels > "$new_json"
      extract='s/.*"name": "\([^"]*\)".*"throughput": \([0-9.eE+-]*\).*/\1 \2/p'
      if [[ -f BENCH_kernels.json && "$FORCE" != 1 ]]; then
        if ! awk 'NR==FNR { old[$1] = $2; next }
                  ($1 in old) && old[$1] > 0 && $2 < 0.8 * old[$1] {
                    printf "regression: %s %.4f -> %.4f (-%.0f%%)\n",
                           $1, old[$1], $2, 100 * (1 - $2 / old[$1]); bad = 1
                  }
                  END { exit bad }' \
              <(sed -n "$extract" BENCH_kernels.json) \
              <(sed -n "$extract" "$new_json"); then
          echo "==> [bench] >20% throughput regression vs BENCH_kernels.json;" \
               "baseline kept (rerun with --force to overwrite)" >&2
          rm -f "$new_json"
          exit 1
        fi
      fi
      mv "$new_json" BENCH_kernels.json
      echo "==> [bench] snapshot written to BENCH_kernels.json"
      ;;
    *)
      echo "unknown stage '$stage' (expected plain|tsan|asan|lint|recovery|elastic|integrity|simd|bench)" >&2
      exit 2
      ;;
  esac
  echo "==> [$stage] stage wall clock: $(( $(date +%s) - STAGE_START ))s"
done

echo "==> all stages passed ($(( $(date +%s) - MATRIX_START ))s total)"
