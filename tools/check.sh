#!/usr/bin/env bash
# One-command correctness gate: plain build + full test suite (including the
# `ctest -L lint` static-analysis pass), then the concurrency suites under
# ThreadSanitizer, then the full suite under AddressSanitizer+UBSan.
#
# Usage:
#   tools/check.sh            # run the whole matrix
#   tools/check.sh plain      # just the plain build + full ctest (+ lint)
#   tools/check.sh tsan       # just the TSan build + `ctest -L tsan`
#   tools/check.sh asan       # just the ASan/UBSan build + full ctest
#   tools/check.sh recovery   # `ctest -L recovery` in the plain AND TSan trees
#
# Each configuration builds into its own tree (build/, build-tsan/,
# build-asan/) so incremental reruns are cheap.  Exits non-zero on the first
# failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STAGES=("${@:-plain tsan asan}")
STAGES=(${STAGES[@]})  # re-split when the default multi-word string is used

run_stage() {
  local name=$1 build_dir=$2 sanitize=$3 ctest_args=$4
  echo "==> [$name] configure + build ($build_dir)"
  cmake -B "$build_dir" -S . -DSHMCAFFE_SANITIZE="$sanitize" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  echo "==> [$name] ctest $ctest_args"
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS" $ctest_args)
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    plain)
      # The plain tree runs everything: unit + integration suites, the
      # shmcaffe-lint repo scan (`-L lint`), and the lock-order detector
      # guards embedded in the concurrency suites.
      run_stage plain build "" ""
      ;;
    tsan)
      # Data-race + (via the LockOrder guard tests) deadlock-potential pass
      # over the suites that drive real threads.
      run_stage tsan build-tsan thread "-L tsan"
      ;;
    asan)
      # Heap/stack/UB pass over the full suite; `address` also enables UBSan.
      run_stage asan build-asan address ""
      ;;
    lint)
      run_stage lint build "" "-L lint"
      ;;
    recovery)
      # Focused gate for the recovery layer (replicated-SMB failover,
      # checkpoints, re-admission): its suite in the plain tree, then the
      # same tests under ThreadSanitizer — failover and re-admission are
      # concurrency hot spots.
      run_stage recovery-plain build "" "-L recovery"
      run_stage recovery-tsan build-tsan thread "-L recovery"
      ;;
    *)
      echo "unknown stage '$stage' (expected plain|tsan|asan|lint|recovery)" >&2
      exit 2
      ;;
  esac
done

echo "==> all stages passed"
