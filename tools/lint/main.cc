// shmcaffe-lint driver: walks src/, tests/ and bench/ under the given repo
// root, lints every .h/.cc, and prints findings (`path:line: rule: message`,
// or JSON with --json).  Exit status 0 iff the tree is clean — which is what
// the `lint.repo` ctest asserts.  --coverage prints the guarded-by
// lock-coverage report instead (always exit 0): one row per mutex-owning
// class with annotation counts plus the flow-sensitive access columns
// (`accesses` / `unguarded_access` from the lock-region pass) and a summary
// carrying the determinism counters (`deterministic_roots` / `tainted`);
// tools/check.sh snapshots it as LINT_coverage.json and fails on regressions.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  bool coverage = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--coverage") {
      coverage = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: shmcaffe-lint [repo-root] [--json] [--coverage]\n");
      return 0;
    } else {
      root = arg;
    }
  }

  std::vector<shmcaffe::lint::SourceFile> files;
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(shmcaffe::lint::SourceFile{
            fs::relative(entry.path(), root).generic_string(),
            read_file(entry.path())});
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const shmcaffe::lint::SourceFile& a, const shmcaffe::lint::SourceFile& b) {
              return a.path < b.path;
            });

  if (coverage) {
    std::fputs(shmcaffe::lint::coverage_json(files).c_str(), stdout);
    return 0;
  }

  const std::vector<shmcaffe::lint::Finding> findings = shmcaffe::lint::lint_repo(files);

  if (json) {
    std::fputs(shmcaffe::lint::to_json(findings).c_str(), stdout);
  } else {
    std::fputs(shmcaffe::lint::to_text(findings).c_str(), stdout);
    std::fprintf(stdout, "shmcaffe-lint: %zu file(s), %zu finding(s)\n", files.size(),
                 findings.size());
  }
  return findings.empty() ? 0 : 1;
}
