// shmcaffe-lint — repo-specific correctness rules, mechanically enforced.
//
// The simulators demand strict determinism (seeded RNG only, no wall clock
// in simulated paths) and the concurrent stacks demand disciplined locking
// (RAII guards, ranked mutexes).  Instead of relying on review, this tiny
// analyser scans src/, tests/ and bench/ and reports violations of the
// rules below.  It is registered as a ctest (`ctest -L lint`) so the gate
// runs with the ordinary suite, and tests/lint_test.cc exercises every rule
// against in-memory fixtures.
//
// Rules (rule id — what it flags):
//   rng-source        raw entropy (`rand()`, `srand`, `std::random_device`,
//                     `mt19937`, ...) outside src/common/rng: all randomness
//                     must flow through the seeded common::Rng.
//   wall-clock        `std::chrono::system_clock` anywhere: wall-clock time
//                     is nondeterministic and jumps; use steady_clock in
//                     functional code, sim::Simulation::now() in simulators.
//   sim-wall-clock    `steady_clock` / `high_resolution_clock` / `sleep_for`
//                     / `sleep_until` / `this_thread` inside simulated code
//                     (src/sim/, src/net/, and any `sim_*` source): the
//                     discrete-event clock is the only time source there.
//   raii-lock         bare `.lock()` / `.unlock()` (and shared/try variants)
//                     on an identifier that names a mutex: use scoped_lock /
//                     unique_lock / shared_lock so unwinding releases it.
//   sim-ptr-container pointer-keyed `std::unordered_{set,map}` declared in
//                     simulated code: hash order of pointers varies run to
//                     run (ASLR), so any iteration is nondeterministic.
//   pragma-once       header missing `#pragma once`.
//   include-hygiene   quoted includes must be repo-relative from src/
//                     ("dir/file.h": no `../`, no `./`, must contain a
//                     directory); project headers must not be included with
//                     angle brackets.
//   no-naked-epoch    comparison operators applied directly to a service
//                     epoch (an identifier containing `service_epoch`)
//                     outside src/recovery/epoch.h: epochs are fenced
//                     through epoch_is_current / epoch_is_stale so the
//                     0-means-never-resolved sentinel is handled once.
//   no-raw-thread     `std::thread` / `std::jthread` in library code
//                     (src/ outside the work pool itself, the Fig. 6
//                     protocol in core/trainer.cc, and the MiniMPI / sim
//                     internals): compute parallelism must go through
//                     common/parallel.h so float results stay invariant
//                     under SHMCAFFE_THREADS.  Tests and benches are exempt.
//
// A finding on a line carrying `// lint:allow(<rule>)` is suppressed; the
// annotation should state the reason.  Output is machine-readable:
// `path:line: rule: message` per finding (or JSON via --json).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace shmcaffe::lint {

struct Finding {
  std::string file;     ///< repo-relative, '/'-separated
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "sim-wall-clock"
  std::string message;
};

/// All rule ids, in reporting order (for docs and tests).
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// True if `path` (repo-relative) is simulated code: src/sim/, src/net/, or
/// a source whose basename starts with "sim_" (sim_smb, sim_platforms,
/// sim_mpi, sim_shmcaffe, ...).
[[nodiscard]] bool is_sim_path(std::string_view path);

/// Comment/string-literal scrubber: returns `contents` split into lines with
/// comments and literal bodies removed (quotes kept), so rule patterns never
/// fire on prose or fixture strings.  Handles //, /*...*/ and R"(...)".
[[nodiscard]] std::vector<std::string> scrub_source(std::string_view contents);

/// Runs every rule against one in-memory source file.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view contents);

/// `path:line: rule: message` lines, one per finding.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

/// JSON array of {file, line, rule, message}.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

}  // namespace shmcaffe::lint
