// shmcaffe-lint — repo-specific correctness rules, mechanically enforced.
//
// The simulators demand strict determinism (seeded RNG only, no wall clock
// in simulated paths) and the concurrent stacks demand disciplined locking
// (RAII guards, ranked mutexes, declared lock coverage).  Instead of relying
// on review, this analyser scans src/, tests/ and bench/ and reports
// violations of the rules below.  It is registered as a ctest
// (`ctest -L lint`) so the gate runs with the ordinary suite, and
// tests/lint_test.cc exercises every rule against in-memory fixtures.
//
// The analyser is multi-pass and symbol-aware:
//   pass 1  builds a declaration index over every given source: classes,
//           their fields, and which fields are OrderedMutex /
//           OrderedSharedMutex members (index_classes);
//   pass 2  evaluates the per-line pattern rules plus the index-driven
//           guarded-by rule (lint_repo);
//   pass 3  checks the #include graph of src/ against the declared
//           directory DAG (the include-layering rule, also in lint_repo).
//
// Rules (rule id — what it flags):
//   rng-source        raw entropy (`rand()`, `srand`, `std::random_device`,
//                     `mt19937`, ...) outside src/common/rng: all randomness
//                     must flow through the seeded common::Rng.
//   wall-clock        `std::chrono::system_clock` anywhere: wall-clock time
//                     is nondeterministic and jumps; use steady_clock in
//                     functional code, sim::Simulation::now() in simulators.
//   sim-wall-clock    `steady_clock` / `high_resolution_clock` / `sleep_for`
//                     / `sleep_until` / `this_thread` inside simulated code
//                     (src/sim/, src/net/, and any `sim_*` source): the
//                     discrete-event clock is the only time source there.
//   raii-lock         bare `.lock()` / `.unlock()` (and shared/try variants)
//                     on an identifier that names a mutex: use scoped_lock /
//                     unique_lock / shared_lock so unwinding releases it.
//   sim-ptr-container pointer-keyed `std::unordered_{set,map}` declared in
//                     simulated code: hash order of pointers varies run to
//                     run (ASLR), so any iteration is nondeterministic.
//   pragma-once       header missing `#pragma once`.
//   include-hygiene   quoted includes must be repo-relative from src/
//                     ("dir/file.h": no `../`, no `./`, must contain a
//                     directory); project headers must not be included with
//                     angle brackets.
//   no-naked-epoch    comparison operators applied directly to a service
//                     epoch (an identifier containing `service_epoch`)
//                     outside src/recovery/epoch.h: epochs are fenced
//                     through epoch_is_current / epoch_is_stale so the
//                     0-means-never-resolved sentinel is handled once.
//   no-raw-thread     `std::thread` / `std::jthread` in library code
//                     (src/ outside the work pool itself, the Fig. 6
//                     protocol in core/trainer.cc, and the MiniMPI / sim
//                     internals): compute parallelism must go through
//                     common/parallel.h so float results stay invariant
//                     under SHMCAFFE_THREADS.  Tests and benches are exempt.
//   guarded-by        in any src/ class owning an OrderedMutex or
//                     OrderedSharedMutex, a mutable field that carries
//                     neither SHMCAFFE_GUARDED_BY(mu) nor SHMCAFFE_UNGUARDED
//                     (see src/common/ordered_mutex.h), or whose guard names
//                     no mutex member of the class or a lexically enclosing
//                     class.  Immutable fields (leading const, references),
//                     std::atomic<...> fields, condition variables, mutexes
//                     themselves and static/constexpr members are exempt.
//   include-layering  a quoted project include from src/<dir>/ whose target
//                     directory is not in <dir>'s declared dependency set
//                     (the directory DAG in tools/lint/lint.cc, documented
//                     in DESIGN.md): upward or cyclic includes between
//                     layers.  Same-directory includes are always allowed.
//   lock-region       flow-sensitive lock-coverage over function bodies in
//                     src/: a read/write of a SHMCAFFE_GUARDED_BY(mu) field
//                     outside a lexical scope holding `mu` (via scoped_lock /
//                     lock_guard / unique_lock / shared_lock over the named
//                     mutex, SHMCAFFE_ASSERT_HELD(mu), or the function's own
//                     SHMCAFFE_REQUIRES(mu)); a call to a function that
//                     SHMCAFFE_REQUIRES a mutex (or is `_locked`-suffixed
//                     with an inferable sole mutex) from a caller that does
//                     not hold it; and a `_locked` function whose class owns
//                     several mutexes but carries no SHMCAFFE_REQUIRES.
//                     Mutexes are matched by the last identifier of the lock
//                     expression (object-insensitive by design: `a.mu` and
//                     `b.mu` are the same region).
//   determinism       nondeterminism reachable from a SHMCAFFE_DETERMINISTIC
//                     root through the pass-1 call index: unordered-container
//                     iteration, wall-clock reads, non-seeded RNG or
//                     environment reads, and address-dependent ordering
//                     (pointer hashing / pointer-keyed containers) anywhere
//                     in the taint set.
//   no-hot-alloc      heap allocation reachable from a SHMCAFFE_HOT_KERNEL
//                     root through the pass-1 call index: `new`,
//                     make_unique/make_shared, owning-container declarations
//                     (vector/string/map/...), and container growth calls
//                     (resize/reserve/push_back/emplace_back).  Per-iteration
//                     kernels must recycle storage through common::arena —
//                     statements that route through it (`arena::`,
//                     `global_arena`) are exempt.
//   no-blocking-under-lock
//                     interprocedural blocking-contract pass: SHMCAFFE_BLOCKS
//                     annotations plus intrinsically blocking bodies (a
//                     literal condition-variable / future wait or a thread
//                     sleep) are roots, blocking-ness propagates caller-ward
//                     through the pass-1 call index, and the lock-region
//                     scope walk reports any blocking statement or call
//                     issued while a mutex guard is lexically held.  Two
//                     shapes are exempt because the wait *releases* the lock
//                     it names: `cv.wait(lock)` over a guard declared in
//                     scope (or, for a unique_lock parameter, the function's
//                     own SHMCAFFE_REQUIRES mutexes), and a call into a
//                     SHMCAFFE_REQUIRES(mu) callee while holding `mu` (the
//                     prepare_write_locked idiom).  A SHMCAFFE_NONBLOCKING
//                     function that can reach a BLOCKS root — or carries
//                     both annotations — is itself a finding.
//   pin-lifetime      pinned/arena views (PinnedFloats, PinnedShard,
//                     arena::Buffer) must stay frame-local: a pin-typed
//                     field, a function returning a pin type by value, or a
//                     lambda explicitly capturing a pin-typed local is a
//                     finding unless the holder carries SHMCAFFE_PIN_ESCAPE
//                     (trailing on fields, before the return type on
//                     functions).  The lock-region walk also flags pin
//                     *acquisition* (a call to a pin-returning function)
//                     while any mutex guard is held: the COW retirement
//                     protocol is pin-then-lock only.  Blanket `[&]` / `[=]`
//                     captures are not resolved (documented limitation); the
//                     arena implementation itself (src/common/arena.*) is
//                     exempt.
//   stale-allow       a `lint:allow` / `lint:allow-next-line` annotation that
//                     suppressed no finding in the whole-repo run: the escape
//                     hatch is stale (or the rule id is misspelled) and must
//                     be removed.  Only reported by lint_repo().
//
// A finding on a line carrying `// lint:allow(<rule>)` is suppressed; a
// comma-separated list (`lint:allow(rule-a,rule-b)`) suppresses several
// rules at once, and `lint:allow-next-line(<rule>)` suppresses the rule on
// the following line (for multi-line declarations).  The annotation should
// state the reason.  Output is machine-readable: `path:line: rule: message`
// per finding (or JSON via --json); --coverage emits the guarded-by
// lock-coverage report that tools/check.sh snapshots as LINT_coverage.json.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace shmcaffe::lint {

struct Finding {
  std::string file;     ///< repo-relative, '/'-separated
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "sim-wall-clock"
  std::string message;
};

/// One in-memory source file (repo-relative path + contents), the unit the
/// repo-wide passes consume.
struct SourceFile {
  std::string path;
  std::string contents;
};

/// One data member discovered by the declaration index.
struct FieldInfo {
  std::string name;
  std::string type;      ///< declared type text (annotations stripped)
  int line = 0;          ///< declaration start line, 1-based
  bool is_mutex = false; ///< OrderedMutex / OrderedSharedMutex member
  bool exempt = false;   ///< not subject to guarded-by (atomic, const, cv, ...)
  bool guarded = false;  ///< carries SHMCAFFE_GUARDED_BY(...)
  bool unguarded = false;///< carries SHMCAFFE_UNGUARDED
  bool pin_escape = false;  ///< carries SHMCAFFE_PIN_ESCAPE (pin-lifetime)
  std::string guard;     ///< the expression inside SHMCAFFE_GUARDED_BY
};

/// One class/struct discovered by the declaration index.  `name` is
/// nesting-qualified ("SmbServer::Segment"); namespaces are not part of the
/// qualification (the repo's class names are unique per file).
struct ClassInfo {
  std::string name;
  std::string enclosing;  ///< qualified name of the lexically enclosing class
  std::string file;
  int line = 0;
  bool owns_ordered_mutex = false;
  std::vector<FieldInfo> fields;
};

/// One function discovered by the declaration index: a declaration (no body)
/// or a definition (body captured for the flow-sensitive passes).  `name` is
/// unqualified; `class_name` is the nesting-qualified class ("" for free
/// functions), taken from the lexical scope or the `Foo::bar` definition
/// qualifier.  Constructors, destructors and operators are not indexed.
struct FunctionInfo {
  std::string name;
  std::string class_name;
  std::string file;
  int line = 0;           ///< head start line, 1-based
  std::string head;       ///< scrubbed head text, annotations stripped
  bool has_body = false;
  std::string body;       ///< scrubbed body text, newlines preserved
  int body_line = 0;      ///< 1-based line of the first body character
  std::vector<std::string> requires_locks;  ///< SHMCAFFE_REQUIRES expressions
  bool deterministic = false;               ///< carries SHMCAFFE_DETERMINISTIC
  bool hot_kernel = false;                  ///< carries SHMCAFFE_HOT_KERNEL
  bool blocks = false;                      ///< carries SHMCAFFE_BLOCKS
  bool nonblocking = false;                 ///< carries SHMCAFFE_NONBLOCKING
  bool pin_escape = false;                  ///< carries SHMCAFFE_PIN_ESCAPE
};

/// All rule ids, in reporting order (for docs and tests).
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// True if `path` (repo-relative) is simulated code: src/sim/, src/net/, or
/// a source whose basename starts with "sim_" (sim_smb, sim_platforms,
/// sim_mpi, sim_shmcaffe, ...).
[[nodiscard]] bool is_sim_path(std::string_view path);

/// Comment/string-literal scrubber: returns `contents` split into lines with
/// comments and literal bodies removed (quotes kept), so rule patterns never
/// fire on prose or fixture strings.  Handles //, /*...*/, (prefixed) raw
/// strings (R"(...)", u8R"(...)", ...) and backslash line continuations in
/// line comments and ordinary literals.
[[nodiscard]] std::vector<std::string> scrub_source(std::string_view contents);

/// Pass 1: the declaration index over the given sources.
[[nodiscard]] std::vector<ClassInfo> index_classes(const std::vector<SourceFile>& files);

/// Pass 1 (function half): the function/call index the lock-region and
/// determinism passes walk.  Annotations are merged between declarations and
/// definitions of the same (class, name) when their files are related by the
/// #include closure; `_locked` functions of single-mutex classes get their
/// requirement inferred.
[[nodiscard]] std::vector<FunctionInfo> index_functions(const std::vector<SourceFile>& files);

/// Runs the per-line rules (including include-layering) against one
/// in-memory source file.  The index-driven guarded-by rule needs the whole
/// repo and only runs under lint_repo().
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view contents);

/// Runs every rule — per-line rules on each file plus the index-driven
/// guarded-by pass — over the whole set.  Findings are ordered by
/// (file, line).
[[nodiscard]] std::vector<Finding> lint_repo(const std::vector<SourceFile>& files);

/// The guarded-by lock-coverage report: one entry per src/ class owning an
/// ordered mutex, with guarded/unguarded/unannotated field counts plus the
/// lock-region access counters (`accesses`: guarded-field access sites the
/// flow pass checked; `unguarded_access`: sites it found outside the lock,
/// net of justified suppressions), and a summary that also carries the
/// determinism counters (`deterministic_roots`, `tainted`), the hot-path
/// allocation counters (`hot_kernel_roots`, `hot_allocs`), and the
/// blocking/pin-contract counters (`blocking_roots`: SHMCAFFE_BLOCKS
/// function groups; `nonblocking_contracts`: SHMCAFFE_NONBLOCKING function
/// groups; `pin_escapes`: SHMCAFFE_PIN_ESCAPE annotations on fields and
/// function groups).  tools/check.sh snapshots this as LINT_coverage.json
/// and fails on regressions.
[[nodiscard]] std::string coverage_json(const std::vector<SourceFile>& files);

/// The declared src/ directory DAG of the include-layering rule: the
/// directories it knows, and whether `from_dir` may include from `to_dir`.
[[nodiscard]] const std::vector<std::string>& layering_dirs();
[[nodiscard]] bool layering_allows(std::string_view from_dir, std::string_view to_dir);

/// `path:line: rule: message` lines, one per finding.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

/// JSON array of {file, line, rule, message}.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

}  // namespace shmcaffe::lint
