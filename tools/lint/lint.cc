#include "tools/lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <regex>
#include <sstream>

namespace shmcaffe::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Per-line `lint:allow(rule)` annotations, extracted from the *raw* source
/// (they live inside comments, which the scrubber removes).
std::vector<std::vector<std::string>> collect_allows(std::string_view contents) {
  static const std::regex kAllow(R"(lint:allow\(([a-z0-9-]+)\))");
  std::vector<std::vector<std::string>> per_line;
  std::size_t begin = 0;
  while (begin <= contents.size()) {
    std::size_t end = contents.find('\n', begin);
    if (end == std::string_view::npos) end = contents.size();
    const std::string line(contents.substr(begin, end - begin));
    std::vector<std::string> allows;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
      allows.push_back((*it)[1].str());
    }
    per_line.push_back(std::move(allows));
    if (end == contents.size()) break;
    begin = end + 1;
  }
  return per_line;
}

std::vector<std::string> split_lines(std::string_view contents) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= contents.size()) {
    std::size_t end = contents.find('\n', begin);
    if (end == std::string_view::npos) end = contents.size();
    lines.emplace_back(contents.substr(begin, end - begin));
    if (end == contents.size()) break;
    begin = end + 1;
  }
  return lines;
}

bool allowed(const std::vector<std::vector<std::string>>& allows, int line,
             std::string_view rule) {
  const auto index = static_cast<std::size_t>(line - 1);
  if (index >= allows.size()) return false;
  const std::vector<std::string>& on_line = allows[index];
  return std::find(on_line.begin(), on_line.end(), rule) != on_line.end();
}

/// Top-level project directories: a quoted include must start with one of
/// these, and an angle include must not.
constexpr std::array<std::string_view, 17> kProjectDirs = {
    "common/", "core/",     "smb/",  "sim/",  "net/",       "rdma/",
    "minimpi/", "coll/",    "dl/",   "data/", "cluster/",   "baselines/",
    "fault/",   "bench/",   "tests/", "tools/", "recovery/"};

bool is_project_include(std::string_view target) {
  for (const std::string_view dir : kProjectDirs) {
    if (starts_with(target, dir)) return true;
  }
  return false;
}

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<PatternRule>& rng_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"rng-source", std::regex(R"(\b(rand|srand)\s*\()"),
                 "raw libc entropy; draw from a seeded common::Rng instead"});
    r.push_back({"rng-source", std::regex(R"(\brandom_device\b)"),
                 "std::random_device is nondeterministic; seed a common::Rng explicitly"});
    r.push_back({"rng-source",
                 std::regex(R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b)"),
                 "std::<random> engine; the project's only generator is common::Rng"});
    return r;
  }();
  return rules;
}

const std::vector<PatternRule>& sim_clock_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"sim-wall-clock",
                 std::regex(R"(\b(steady_clock|high_resolution_clock)\b)"),
                 "wall clock in simulated code; use the Simulation's virtual clock"});
    r.push_back({"sim-wall-clock", std::regex(R"(\b(sleep_for|sleep_until)\b)"),
                 "thread sleep in simulated code; co_await sim.delay(...) instead"});
    r.push_back({"sim-wall-clock", std::regex(R"(\bthis_thread\b)"),
                 "std::this_thread in simulated code; sim processes are coroutines"});
    return r;
  }();
  return rules;
}

/// Paths where spawning std::thread directly is the point: the work pool
/// itself, the Fig. 6 worker protocol (update thread + worker launch), and
/// the MiniMPI / simulation internals that model hosts as threads.
/// Everything else under src/ parallelises through common/parallel.h; a raw
/// thread there is either compute parallelism that would break thread-count
/// determinism or a lifecycle hazard the pool already solves.
bool raw_thread_allowed_path(std::string_view path) {
  return starts_with(path, "src/common/parallel.") ||
         starts_with(path, "src/core/trainer.cc") ||
         starts_with(path, "src/minimpi/") || starts_with(path, "src/sim/");
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "rng-source",       "wall-clock",  "sim-wall-clock",  "raii-lock",
      "sim-ptr-container", "pragma-once", "include-hygiene", "no-naked-epoch",
      "no-raw-thread"};
  return ids;
}

bool is_sim_path(std::string_view path) {
  if (starts_with(path, "src/sim/") || starts_with(path, "src/net/")) return true;
  return starts_with(basename_of(path), "sim_");
}

std::vector<std::string> scrub_source(std::string_view contents) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<std::string> lines;
  std::string current;
  State state = State::kCode;
  std::string raw_delim;  // the `)delim"` terminator of an active raw string

  const std::size_t n = contents.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';
    if (c == '\n') {
      // Unterminated ordinary strings/chars/line comments reset at EOL;
      // block comments and raw strings continue across lines.
      if (state == State::kLineComment || state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.push_back(std::move(current));
      current.clear();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(contents[i - 1])) &&
                               contents[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < n && contents[open] != '(' && contents[open] != '\n') {
            delim.push_back(contents[open]);
            ++open;
          }
          if (open < n && contents[open] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            current += "R\"\"";  // keep a token so the line is not empty
            i = open;            // consumed through the opening '('
          } else {
            current.push_back(c);
          }
        } else if (c == '"') {
          state = State::kString;
          current.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          current.push_back('\'');
        } else {
          current.push_back(c);
        }
        break;
      case State::kLineComment:
        break;  // dropped until EOL
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (an escaped newline would be ill-formed anyway)
        } else if (c == '"') {
          state = State::kCode;
          current.push_back('"');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current.push_back('\'');
        }
        break;
      case State::kRawString:
        if (c == ')' && contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view contents) {
  std::vector<Finding> findings;
  const std::vector<std::vector<std::string>> allows = collect_allows(contents);
  const std::vector<std::string> lines = scrub_source(contents);
  const std::vector<std::string> raw_lines = split_lines(contents);
  const bool sim = is_sim_path(path);
  const bool in_rng = starts_with(path, "src/common/rng");
  // no-raw-thread covers library code only: tests and benches drive threads
  // deliberately (pool shutdown races, concurrency suites).
  const bool raw_thread_applies =
      starts_with(path, "src/") && !raw_thread_allowed_path(path);
  // The fencing helpers themselves necessarily compare raw epoch values.
  const bool in_epoch_helpers = starts_with(path, "src/recovery/epoch");
  const bool header = ends_with(path, ".h");

  auto report = [&](int line, std::string_view rule, std::string message) {
    if (allowed(allows, line, rule)) return;
    findings.push_back(Finding{std::string(path), line, std::string(rule), std::move(message)});
  };

  static const std::regex kWallClock(R"(\bsystem_clock\b)");
  // no-raw-thread: std::thread / std::jthread construction or mention in
  // library code.  Matches the type name, not this_thread (the \b after ::
  // does not reach across this_thread's underscore).
  static const std::regex kRawThread(R"(\bstd\s*::\s*j?thread\b)");
  // no-naked-epoch: a comparison operator adjacent to a service-epoch value
  // (identifier containing `service_epoch`, optionally a call).  Service
  // epochs are fenced through epoch_is_current / epoch_is_stale so the
  // 0-means-never-resolved sentinel cannot be mishandled; a plain `=`
  // assignment never matches.  The `[^=!<>\-]` guard keeps `<<`, `>>`,
  // compound tokens and `->member` accesses from firing.
  static const std::regex kNakedEpochLeft(
      R"(\w*service_epoch\w*\s*(?:\(\s*\))?\s*(?:[=!<>]=|<(?!<)|>(?!>)))");
  static const std::regex kNakedEpochRight(
      R"((?:^|[^=!<>\-])(?:[=!<>]=|<(?!<)|>(?!>))\s*\w*service_epoch\w*)");
  static const std::regex kBareLock(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*(lock|unlock|try_lock|lock_shared|unlock_shared|try_lock_shared)\s*\()");
  static const std::regex kPtrContainer(R"(\bunordered_(?:set|map)\s*<\s*([^,<>]*\*)\s*[,>])");
  static const std::regex kQuotedInclude("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  static const std::regex kQuotedIncludeShape("^\\s*#\\s*include\\s*\"");
  static const std::regex kAngleInclude(R"(^\s*#\s*include\s*<([^>]+)>)");

  bool saw_pragma_once = false;

  for (std::size_t index = 0; index < lines.size(); ++index) {
    const std::string& line = lines[index];
    const int lineno = static_cast<int>(index) + 1;
    if (line.find("#pragma once") != std::string::npos) saw_pragma_once = true;

    if (!in_rng) {
      for (const PatternRule& rule : rng_patterns()) {
        if (std::regex_search(line, rule.pattern)) report(lineno, rule.rule, rule.message);
      }
    }
    if (raw_thread_applies && std::regex_search(line, kRawThread)) {
      report(lineno, "no-raw-thread",
             "raw std::thread in library code; use the shared work pool "
             "(common/parallel.h) so results stay thread-count-invariant");
    }
    if (std::regex_search(line, kWallClock)) {
      report(lineno, "wall-clock",
             "std::chrono::system_clock is nondeterministic wall time; use steady_clock "
             "(functional code) or the simulation clock");
    }
    if (!in_epoch_helpers && (std::regex_search(line, kNakedEpochLeft) ||
                              std::regex_search(line, kNakedEpochRight))) {
      report(lineno, "no-naked-epoch",
             "naked comparison on a service epoch; use epoch_is_current / "
             "epoch_is_stale (src/recovery/epoch.h) so fencing semantics stay "
             "in one place");
    }
    if (sim) {
      for (const PatternRule& rule : sim_clock_patterns()) {
        if (std::regex_search(line, rule.pattern)) report(lineno, rule.rule, rule.message);
      }
      std::smatch container;
      if (std::regex_search(line, container, kPtrContainer)) {
        report(lineno, "sim-ptr-container",
               "pointer-keyed " + container.str(0).substr(0, container.str(0).find('<')) +
                   " in simulated code iterates in ASLR-dependent order; key by a "
                   "stable id or use an ordered container");
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kBareLock);
         it != std::sregex_iterator(); ++it) {
      const std::string receiver = lowercase((*it)[1].str());
      if (receiver.find("mutex") != std::string::npos ||
          receiver.find("mtx") != std::string::npos) {
        report(lineno, "raii-lock",
               "bare ." + (*it)[2].str() + "() on '" + (*it)[1].str() +
                   "'; use std::scoped_lock / unique_lock / shared_lock");
      }
    }
    // The scrubber blanks string-literal bodies, so the quoted target must be
    // re-extracted from the raw line; the scrubbed line gates on the directive
    // itself so commented-out includes stay ignored.
    std::smatch include;
    if (std::regex_search(line, kQuotedIncludeShape) && index < raw_lines.size() &&
        std::regex_search(raw_lines[index], include, kQuotedInclude)) {
      const std::string target = include[1].str();
      if (target.find("../") != std::string::npos || starts_with(target, "./")) {
        report(lineno, "include-hygiene",
               "relative include \"" + target + "\"; use the repo-relative path from src/");
      } else if (target.find('/') == std::string::npos) {
        report(lineno, "include-hygiene",
               "directory-less include \"" + target +
                   "\"; project headers are included as \"dir/file.h\"");
      }
    } else if (std::regex_search(line, include, kAngleInclude)) {
      const std::string target = include[1].str();
      if (is_project_include(target)) {
        report(lineno, "include-hygiene",
               "project header <" + target + "> included with angle brackets; use quotes");
      }
    }
  }

  if (header && !saw_pragma_once) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": " << f.rule << ": " << f.message << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"file\": \"" << escape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << f.rule << "\", \"message\": \"" << escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace shmcaffe::lint
