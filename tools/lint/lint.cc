#include "tools/lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace shmcaffe::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

/// One `lint:allow` suppression entry, with usage tracking: the stale-allow
/// pass reports entries that suppressed nothing over the whole-repo run.
struct AllowEntry {
  int anno_line = 0;    ///< 1-based line the annotation comment sits on
  int target_line = 0;  ///< 1-based line it suppresses
  std::string rule;
  bool used = false;
};
using FileAllows = std::vector<AllowEntry>;

/// `lint:allow(rule[,rule...])` annotations, extracted from the *raw* source
/// (they live inside comments, which the scrubber removes).
/// `lint:allow-next-line(...)` attaches its rules to the following line, for
/// declarations too long to carry a trailing comment.
FileAllows collect_allows(std::string_view contents) {
  static const std::regex kAllow(R"(lint:allow(-next-line)?\(([a-z0-9][a-z0-9,\s-]*)\))");
  std::vector<std::string> raw_lines;
  {
    std::size_t begin = 0;
    while (begin <= contents.size()) {
      std::size_t end = contents.find('\n', begin);
      if (end == std::string_view::npos) end = contents.size();
      raw_lines.emplace_back(contents.substr(begin, end - begin));
      if (end == contents.size()) break;
      begin = end + 1;
    }
  }
  FileAllows entries;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
      const int anno_line = static_cast<int>(i) + 1;
      const int target_line = (*it)[1].matched ? anno_line + 1 : anno_line;
      std::stringstream rules((*it)[2].str());
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        rule = trim(rule);
        if (!rule.empty()) entries.push_back(AllowEntry{anno_line, target_line, rule, false});
      }
    }
  }
  return entries;
}

std::vector<std::string> split_lines(std::string_view contents) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= contents.size()) {
    std::size_t end = contents.find('\n', begin);
    if (end == std::string_view::npos) end = contents.size();
    lines.emplace_back(contents.substr(begin, end - begin));
    if (end == contents.size()) break;
    begin = end + 1;
  }
  return lines;
}

/// True if a suppression for `rule` targets `line`; every matching entry is
/// marked used (the stale-allow pass reports the never-used ones).
bool allowed(FileAllows& allows, int line, std::string_view rule) {
  bool hit = false;
  for (AllowEntry& entry : allows) {
    if (entry.target_line == line && entry.rule == rule) {
      entry.used = true;
      hit = true;
    }
  }
  return hit;
}

/// Top-level project directories: a quoted include must start with one of
/// these, and an angle include must not.
constexpr std::array<std::string_view, 18> kProjectDirs = {
    "common/", "core/",     "smb/",  "sim/",  "net/",       "rdma/",
    "minimpi/", "coll/",    "dl/",   "data/", "cluster/",   "baselines/",
    "fault/",   "bench/",   "tests/", "tools/", "recovery/", "elastic/"};

bool is_project_include(std::string_view target) {
  for (const std::string_view dir : kProjectDirs) {
    if (starts_with(target, dir)) return true;
  }
  return false;
}

// --- include-layering: the declared src/ directory DAG ----------------------
//
// Each entry lists the directories a src/<dir>/ source may include from
// (same-directory includes are always allowed and not listed).  The DAG is
// documented in DESIGN.md ("Include layering"); edges point strictly
// downward, so an upward or cyclic include cannot be expressed — the rule
// reports it instead.  Growing a new dependency means adding the edge here
// *and* justifying it in DESIGN.md.
struct LayerEntry {
  std::string_view dir;
  std::vector<std::string_view> deps;
};

const std::vector<LayerEntry>& layering_table() {
  static const std::vector<LayerEntry> table = {
      {"common", {}},
      {"sim", {"common"}},
      {"fault", {"common"}},
      {"dl", {"common"}},
      {"cluster", {"common"}},
      {"net", {"common", "sim"}},
      {"data", {"common", "dl"}},
      {"rdma", {"common", "net", "sim"}},
      {"minimpi", {"common", "net", "sim"}},
      {"smb", {"common", "net", "rdma", "sim"}},
      {"coll", {"common", "minimpi"}},
      {"recovery", {"common", "fault", "smb"}},
      {"elastic", {"common", "fault", "recovery"}},
      {"core",
       {"cluster", "coll", "common", "data", "dl", "elastic", "fault", "minimpi", "net",
        "recovery", "sim", "smb"}},
      {"baselines",
       {"cluster", "coll", "common", "core", "data", "dl", "elastic", "fault", "minimpi",
        "net", "sim"}},
  };
  return table;
}

const LayerEntry* layer_of(std::string_view dir) {
  for (const LayerEntry& entry : layering_table()) {
    if (entry.dir == dir) return &entry;
  }
  return nullptr;
}

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<PatternRule>& rng_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"rng-source", std::regex(R"(\b(rand|srand)\s*\()"),
                 "raw libc entropy; draw from a seeded common::Rng instead"});
    r.push_back({"rng-source", std::regex(R"(\brandom_device\b)"),
                 "std::random_device is nondeterministic; seed a common::Rng explicitly"});
    r.push_back({"rng-source",
                 std::regex(R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b)"),
                 "std::<random> engine; the project's only generator is common::Rng"});
    return r;
  }();
  return rules;
}

const std::vector<PatternRule>& sim_clock_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"sim-wall-clock",
                 std::regex(R"(\b(steady_clock|high_resolution_clock)\b)"),
                 "wall clock in simulated code; use the Simulation's virtual clock"});
    r.push_back({"sim-wall-clock", std::regex(R"(\b(sleep_for|sleep_until)\b)"),
                 "thread sleep in simulated code; co_await sim.delay(...) instead"});
    r.push_back({"sim-wall-clock", std::regex(R"(\bthis_thread\b)"),
                 "std::this_thread in simulated code; sim processes are coroutines"});
    return r;
  }();
  return rules;
}

/// Paths where spawning std::thread directly is the point: the work pool
/// itself, the Fig. 6 worker protocol (update thread + worker launch), and
/// the MiniMPI / simulation internals that model hosts as threads.
/// Everything else under src/ parallelises through common/parallel.h; a raw
/// thread there is either compute parallelism that would break thread-count
/// determinism or a lifecycle hazard the pool already solves.
bool raw_thread_allowed_path(std::string_view path) {
  return starts_with(path, "src/common/parallel.") ||
         starts_with(path, "src/core/trainer.cc") ||
         starts_with(path, "src/minimpi/") || starts_with(path, "src/sim/");
}

// --- pass 1: the declaration index ------------------------------------------

/// Strips C++ attributes (`[[...]]`) from a statement.
std::string strip_attributes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '[' && i + 1 < s.size() && s[i + 1] == '[') {
      const std::size_t close = s.find("]]", i + 2);
      if (close == std::string_view::npos) break;
      i = close + 1;
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

/// Identifier tokens of a statement, in order.
std::vector<std::string> identifier_tokens(std::string_view s) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < s.size()) {
    const auto c = static_cast<unsigned char>(s[i]);
    if (std::isalpha(c) || c == '_') {
      std::size_t j = i;
      while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
        ++j;
      }
      tokens.emplace_back(s.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return tokens;
}

bool has_token(const std::vector<std::string>& tokens, std::string_view token) {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

/// True if `s` contains a '(' outside template angle brackets.  Used to tell
/// function declarations/definitions from field declarations: a field's
/// parens (std::function<void(int)>) only ever live inside its template
/// arguments once initialisers are cut.
bool has_top_level_paren(std::string_view s) {
  int angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '<') {
      if (next == '<' || next == '=') {
        ++i;
        continue;
      }
      ++angle;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') continue;  // ->
      if (next == '=') {
        ++i;
        continue;
      }
      if (next == '>' && angle >= 2) {
        angle -= 2;
        ++i;
        continue;
      }
      if (angle > 0) --angle;
    } else if (c == '(' && angle == 0) {
      return true;
    }
  }
  return false;
}

/// Position of the first `wanted` character outside parens/brackets/angles,
/// or npos.  `::` never counts as the ':' it contains.
std::size_t top_level_pos(std::string_view s, char wanted) {
  int angle = 0;
  int paren = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '(' || c == '[') {
      ++paren;
    } else if (c == ')' || c == ']') {
      if (paren > 0) --paren;
    } else if (c == '<') {
      if (next == '<' || next == '=') {
        ++i;
        continue;
      }
      ++angle;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') continue;
      if (next == '=') {
        ++i;
        continue;
      }
      if (next == '>' && angle >= 2) {
        angle -= 2;
        ++i;
        continue;
      }
      if (angle > 0) --angle;
    } else if (c == ':' && (next == ':' || (i > 0 && s[i - 1] == ':'))) {
      continue;  // scope resolution
    } else if (c == wanted && angle == 0 && paren == 0) {
      // '=' must be the assignment, not ==, <=, >=, != (the angle branch
      // already swallowed <= / >=).
      if (wanted == '=' && (next == '=' || (i > 0 && (s[i - 1] == '=' || s[i - 1] == '!')))) {
        continue;
      }
      return i;
    }
  }
  return std::string_view::npos;
}

/// Extracts and removes SHMCAFFE_GUARDED_BY(...) / SHMCAFFE_UNGUARDED /
/// SHMCAFFE_PIN_ESCAPE from a declaration statement.
void extract_annotations(std::string& stmt, bool& guarded, std::string& guard,
                         bool& unguarded, bool& pin_escape) {
  static const std::string kGuardedBy = "SHMCAFFE_GUARDED_BY";
  static const std::string kUnguarded = "SHMCAFFE_UNGUARDED";
  static const std::string kPinEscape = "SHMCAFFE_PIN_ESCAPE";
  for (std::size_t at; (at = stmt.find(kPinEscape)) != std::string::npos;) {
    pin_escape = true;
    stmt.erase(at, kPinEscape.size());
  }
  std::size_t at = stmt.find(kGuardedBy);
  if (at != std::string::npos) {
    std::size_t open = stmt.find('(', at + kGuardedBy.size());
    if (open != std::string::npos) {
      int depth = 1;
      std::size_t close = open + 1;
      while (close < stmt.size() && depth > 0) {
        if (stmt[close] == '(') ++depth;
        if (stmt[close] == ')') --depth;
        ++close;
      }
      guarded = true;
      guard = trim(stmt.substr(open + 1, close - open - 2));
      stmt.erase(at, close - at);
    }
  }
  at = stmt.find(kUnguarded);
  if (at != std::string::npos) {
    unguarded = true;
    stmt.erase(at, kUnguarded.size());
  }
}

/// Position of the first '(' outside template angle brackets, or npos (the
/// position counterpart of has_top_level_paren, for name extraction).
std::size_t top_level_paren_pos(std::string_view s) {
  int angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '<') {
      if (next == '<' || next == '=') {
        ++i;
        continue;
      }
      ++angle;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') continue;  // ->
      if (next == '=') {
        ++i;
        continue;
      }
      if (next == '>' && angle >= 2) {
        angle -= 2;
        ++i;
        continue;
      }
      if (angle > 0) --angle;
    } else if (c == '(' && angle == 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

/// Extracts and removes SHMCAFFE_REQUIRES(...) / SHMCAFFE_DETERMINISTIC /
/// SHMCAFFE_HOT_KERNEL / SHMCAFFE_NONBLOCKING / SHMCAFFE_BLOCKS /
/// SHMCAFFE_PIN_ESCAPE from a function head.
void extract_function_annotations(std::string& head, std::vector<std::string>& requires_locks,
                                  bool& deterministic, bool& hot_kernel, bool& blocks,
                                  bool& nonblocking, bool& pin_escape) {
  static const std::string kRequires = "SHMCAFFE_REQUIRES";
  static const std::string kDeterministic = "SHMCAFFE_DETERMINISTIC";
  static const std::string kHotKernel = "SHMCAFFE_HOT_KERNEL";
  // NONBLOCKING before BLOCKS: neither is a substring of the other, but the
  // order makes the intent explicit.
  static const std::string kNonblocking = "SHMCAFFE_NONBLOCKING";
  static const std::string kBlocks = "SHMCAFFE_BLOCKS";
  static const std::string kPinEscape = "SHMCAFFE_PIN_ESCAPE";
  std::size_t at;
  while ((at = head.find(kRequires)) != std::string::npos) {
    const std::size_t open = head.find('(', at + kRequires.size());
    if (open == std::string::npos) break;
    int depth = 1;
    std::size_t close = open + 1;
    while (close < head.size() && depth > 0) {
      if (head[close] == '(') ++depth;
      if (head[close] == ')') --depth;
      ++close;
    }
    requires_locks.push_back(trim(head.substr(open + 1, close - open - 2)));
    head.erase(at, close - at);
  }
  while ((at = head.find(kDeterministic)) != std::string::npos) {
    deterministic = true;
    head.erase(at, kDeterministic.size());
  }
  while ((at = head.find(kHotKernel)) != std::string::npos) {
    hot_kernel = true;
    head.erase(at, kHotKernel.size());
  }
  while ((at = head.find(kNonblocking)) != std::string::npos) {
    nonblocking = true;
    head.erase(at, kNonblocking.size());
  }
  while ((at = head.find(kBlocks)) != std::string::npos) {
    blocks = true;
    head.erase(at, kBlocks.size());
  }
  while ((at = head.find(kPinEscape)) != std::string::npos) {
    pin_escape = true;
    head.erase(at, kPinEscape.size());
  }
}

/// Last `::` component of a qualified class name.
std::string class_tail(const std::string& qualified) {
  const std::size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

/// Splits a function head into the (possibly empty) `Foo::bar` class
/// qualifier and the unqualified name — the qualified identifier immediately
/// before the parameter list.  False when the head is not function-shaped
/// (no top-level parens, an operator, a ctor-init fragment, a keyword).
bool function_head_name(const std::string& head, std::string& class_name, std::string& name) {
  const std::size_t paren = top_level_paren_pos(head);
  if (paren == std::string::npos) return false;
  const std::string before = trim(head.substr(0, paren));
  if (before.empty() || before.front() == ',' || before.front() == ':') return false;
  static const std::regex kTail(
      R"((~?[A-Za-z_][A-Za-z0-9_]*(\s*::\s*~?[A-Za-z_][A-Za-z0-9_]*)*)\s*$)");
  std::smatch m;
  if (!std::regex_search(before, m, kTail)) return false;
  std::string qualified = m[1].str();
  qualified.erase(std::remove_if(qualified.begin(), qualified.end(),
                                 [](unsigned char c) { return std::isspace(c) != 0; }),
                  qualified.end());
  const std::size_t sep = qualified.rfind("::");
  if (sep == std::string::npos) {
    name = qualified;
    class_name.clear();
  } else {
    name = qualified.substr(sep + 2);
    class_name = qualified.substr(0, sep);
  }
  static const std::array<std::string_view, 12> kNotNames = {
      "if", "for", "while", "switch", "return", "sizeof", "decltype", "alignof",
      "catch", "static_assert", "noexcept", "operator"};
  for (const std::string_view keyword : kNotNames) {
    if (name == keyword) return false;
  }
  return !starts_with(name, "SHMCAFFE_");  // a trailing macro, not a function
}

/// Scrubbed source with preprocessor lines (and their backslash
/// continuations) blanked, joined back into one text: the indexer's input.
std::string indexable_text(std::string_view contents) {
  std::vector<std::string> lines = scrub_source(contents);
  bool continuation = false;
  for (std::string& line : lines) {
    const std::string body = trim(line);
    const bool active = continuation || (!body.empty() && body.front() == '#');
    continuation = active && !body.empty() && body.back() == '\\';
    if (active) line.clear();
  }
  std::string text;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) text.push_back('\n');
    text += lines[i];
  }
  return text;
}

/// Recursive-descent declaration scanner over scrubbed, preprocessor-blanked
/// source.  It understands just enough C++ structure to find class/struct
/// bodies and split them into member declarations: function bodies and
/// initialisers are skipped, nested classes extend the qualified name.
class ClassIndexer {
 public:
  ClassIndexer(std::string text, std::string file, std::vector<ClassInfo>* out,
               std::vector<FunctionInfo>* funcs = nullptr)
      : text_(std::move(text)), file_(std::move(file)), out_(out), funcs_(funcs) {}

  void run() { parse_scope("", -1); }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  char get() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Consumes a balanced brace block whose '{' was already consumed.
  void skip_braces() {
    int depth = 1;
    while (!eof() && depth > 0) {
      const char c = get();
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
  }

  /// Consumes a balanced brace block like skip_braces, but returns its text
  /// with newlines preserved (the flow passes map offsets back to lines).
  /// `body_line` is the line of the first body character.
  std::string capture_braces(int& body_line) {
    body_line = line_;
    std::string body;
    int depth = 1;
    while (!eof() && depth > 0) {
      const char c = get();
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (depth > 0) body.push_back(c);
    }
    return body;
  }

  /// Consumes through the next top-level ';' (trailing declarators after a
  /// class/enum body, the tail of a brace-initialised member).  Stops short
  /// of a scope-closing '}'.
  void consume_to_semicolon() {
    int depth = 0;
    while (!eof()) {
      if (depth == 0 && text_[pos_] == '}') return;
      const char c = get();
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (c == ';' && depth == 0) return;
    }
  }

  /// Accumulates a statement until ';', '{' or '}' at paren depth 0;
  /// returns the (consumed) terminator, '\0' at EOF.
  char collect(std::string& stmt, int& stmt_line) {
    stmt.clear();
    stmt_line = 0;
    int paren = 0;
    while (!eof()) {
      const char c = text_[pos_];
      if (paren == 0 && (c == ';' || c == '{' || c == '}')) {
        get();
        return c;
      }
      const int at_line = line_;
      get();
      if (c == '(' || c == '[') ++paren;
      if ((c == ')' || c == ']') && paren > 0) --paren;
      if (stmt_line == 0 && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line = at_line;
      }
      stmt.push_back(c == '\n' ? ' ' : c);
    }
    return '\0';
  }

  /// The (possibly ::-qualified) name after the class-key, or "<anonymous>".
  static std::string class_name_of(const std::string& head) {
    static const std::regex kKey(R"(\b(class|struct|union)\b)");
    static const std::regex kName(R"(^\s*([A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_][A-Za-z0-9_]*)*))");
    std::smatch key;
    if (!std::regex_search(head, key, kKey)) return "<anonymous>";
    const std::string rest = key.suffix().str();
    std::smatch name;
    if (!std::regex_search(rest, name, kName)) return "<anonymous>";
    return name[1].str();
  }

  void parse_scope(const std::string& prefix, int class_index) {
    std::string stmt;
    int stmt_line = 0;
    while (!eof()) {
      const char term = collect(stmt, stmt_line);
      if (term == ';') {
        if (!handle_function(stmt, stmt_line, prefix, false, {}, 0) && class_index >= 0) {
          handle_field(stmt, stmt_line, class_index);
        }
        continue;
      }
      if (term == '}' || term == '\0') return;
      // term == '{': classify the head.
      const std::string head = trim(strip_attributes(stmt));
      if (head.empty()) {
        skip_braces();
        continue;
      }
      const std::vector<std::string> tokens = identifier_tokens(head);
      if (top_level_pos(head, '=') != std::string::npos && !has_token(tokens, "operator")) {
        // `type name = { ... };` — brace initialiser after '='.  The operator
        // token exempts `operator=` / `operator==` definitions, whose '=' is
        // part of the name, not an initialiser.
        skip_braces();
        consume_to_semicolon();
        if (class_index >= 0) handle_field(head, stmt_line, class_index);
        continue;
      }
      if (has_token(tokens, "namespace")) {
        parse_scope(prefix, class_index);
        continue;
      }
      if (has_token(tokens, "enum")) {
        skip_braces();
        consume_to_semicolon();
        continue;
      }
      const bool function_like = has_top_level_paren(head) || has_token(tokens, "operator");
      const bool class_like = has_token(tokens, "class") || has_token(tokens, "struct") ||
                              has_token(tokens, "union");
      if (class_like && !function_like) {
        const std::string name = class_name_of(head);
        const std::string qualified = prefix.empty() ? name : prefix + "::" + name;
        const int index = static_cast<int>(out_->size());
        ClassInfo info;
        info.name = qualified;
        info.enclosing = prefix;
        info.file = file_;
        info.line = stmt_line;
        out_->push_back(std::move(info));
        parse_scope(qualified, index);
        consume_to_semicolon();  // `} trailing_declarator;`
        continue;
      }
      if (function_like) {
        int body_line = 0;
        std::string body = capture_braces(body_line);
        handle_function(stmt, stmt_line, prefix, true, std::move(body), body_line);
        continue;
      }
      if (class_index >= 0) {
        // `type name{init};` — brace-initialised member.
        skip_braces();
        consume_to_semicolon();
        handle_field(head, stmt_line, class_index);
        continue;
      }
      skip_braces();  // unrecognised block at namespace scope
    }
  }

  /// Records a function declaration (`has_body` false) or definition found
  /// in scope `prefix`.  Returns true iff the statement was function-shaped
  /// — even when nothing is recorded (constructors, destructors, operators)
  /// — so the caller does not mistake it for a field.
  bool handle_function(const std::string& raw_head, int line, const std::string& prefix,
                       bool has_body, std::string body, int body_line) {
    std::string head = trim(strip_attributes(raw_head));
    static const std::regex kAccess(R"(^\s*(public|private|protected)\s*:)");
    std::smatch access;
    while (std::regex_search(head, access, kAccess) && head[access.position(0)] != ':') {
      head = trim(access.suffix().str());
    }
    std::vector<std::string> requires_locks;
    bool deterministic = false;
    bool hot_kernel = false;
    bool blocks = false;
    bool nonblocking = false;
    bool pin_escape = false;
    extract_function_annotations(head, requires_locks, deterministic, hot_kernel, blocks,
                                 nonblocking, pin_escape);
    const std::vector<std::string> tokens = identifier_tokens(head);
    static const std::array<std::string_view, 6> kSkipLead = {
        "using", "typedef", "friend", "template", "enum", "namespace"};
    for (const std::string_view lead : kSkipLead) {
      if (!tokens.empty() && tokens.front() == lead) return false;
    }
    if (has_token(tokens, "operator")) return has_top_level_paren(head);
    std::string class_name;
    std::string name;
    if (!function_head_name(head, class_name, name)) return false;
    if (class_name.empty()) class_name = prefix;
    // Constructors and destructors are function-shaped but not indexed: the
    // flow passes would only see member-init noise on a not-yet-shared object.
    if (name.front() == '~' || (!class_name.empty() && name == class_tail(class_name))) {
      return true;
    }
    if (funcs_ == nullptr) return true;
    FunctionInfo info;
    info.name = std::move(name);
    info.class_name = std::move(class_name);
    info.file = file_;
    info.line = line;
    info.head = std::move(head);
    info.has_body = has_body;
    info.body = std::move(body);
    info.body_line = body_line;
    info.requires_locks = std::move(requires_locks);
    info.deterministic = deterministic;
    info.hot_kernel = hot_kernel;
    info.blocks = blocks;
    info.nonblocking = nonblocking;
    info.pin_escape = pin_escape;
    funcs_->push_back(std::move(info));
    return true;
  }

  void handle_field(std::string stmt, int line, int class_index) {
    bool guarded = false;
    bool unguarded = false;
    bool pin_escape = false;
    std::string guard;
    extract_annotations(stmt, guarded, guard, unguarded, pin_escape);
    stmt = trim(strip_attributes(stmt));
    // Strip access-specifier labels glued to the first declaration.
    static const std::regex kAccess(R"(^\s*(public|private|protected)\s*:)");
    std::smatch access;
    while (std::regex_search(stmt, access, kAccess) && stmt[access.position(0)] != ':') {
      stmt = trim(access.suffix().str());
    }
    if (stmt.empty()) return;
    const std::vector<std::string> tokens = identifier_tokens(stmt);
    if (tokens.empty()) return;
    static const std::array<std::string_view, 9> kSkipLead = {
        "using", "typedef", "friend", "template", "class", "struct", "union", "enum",
        "namespace"};
    for (const std::string_view lead : kSkipLead) {
      if (tokens.front() == lead) return;
    }
    // static / constexpr members have no per-instance state to guard.
    if (has_token(tokens, "static") || has_token(tokens, "constexpr") ||
        has_token(tokens, "operator")) {
      return;
    }
    const std::size_t init = top_level_pos(stmt, '=');
    if (init != std::string::npos) stmt = trim(stmt.substr(0, init));
    if (stmt.empty()) return;
    if (has_top_level_paren(stmt)) return;  // function declaration
    const std::size_t bitfield = top_level_pos(stmt, ':');
    if (bitfield != std::string::npos) stmt = trim(stmt.substr(0, bitfield));
    static const std::regex kDeclName(
        R"(([A-Za-z_][A-Za-z0-9_]*)\s*(\[[^\]]*\]\s*)*$)");
    std::smatch name_match;
    if (!std::regex_search(stmt, name_match, kDeclName)) return;
    const std::string name = name_match[1].str();
    const std::string type = trim(stmt.substr(0, static_cast<std::size_t>(name_match.position(1))));
    if (type.empty()) return;  // lone identifier: a macro invocation, not a field

    static const std::regex kOrderedMutexType(R"(\bOrdered(Shared)?Mutex\b)");
    static const std::regex kPlainMutexType(
        R"(\b(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex)\b)");
    static const std::regex kConditionVariable(R"(\bcondition_variable(_any)?\b)");
    static const std::regex kAtomicLead(
        R"(^((mutable|volatile|inline)\s+)*std\s*::\s*atomic\b)");
    static const std::regex kConstLead(R"(^((mutable|volatile|inline)\s+)*const\b)");

    FieldInfo field;
    field.name = name;
    field.type = type;
    field.line = line;
    field.guarded = guarded;
    field.guard = guard;
    field.unguarded = unguarded;
    field.pin_escape = pin_escape;
    const bool value_type = type.find('*') == std::string::npos &&
                            type.find('&') == std::string::npos;
    field.is_mutex = value_type && std::regex_search(type, kOrderedMutexType);
    field.exempt = field.is_mutex ||
                   (value_type && std::regex_search(type, kPlainMutexType)) ||
                   std::regex_search(type, kConditionVariable) ||
                   std::regex_search(type, kAtomicLead) ||
                   (value_type && std::regex_search(type, kConstLead)) ||
                   type.find('&') != std::string::npos;
    ClassInfo& cls = (*out_)[static_cast<std::size_t>(class_index)];
    if (field.is_mutex) cls.owns_ordered_mutex = true;
    cls.fields.push_back(std::move(field));
  }

  std::string text_;
  std::string file_;
  std::vector<ClassInfo>* out_;
  std::vector<FunctionInfo>* funcs_ = nullptr;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Last identifier of a lock expression: the mutex identity the flow passes
/// match on ("data_mutex" of `segment->data_mutex` — object-insensitive by
/// design, so every instance of a class shares one lock region, exactly like
/// the runtime LockSite name).
std::string last_identifier(std::string_view expr) {
  const std::vector<std::string> tokens = identifier_tokens(expr);
  return tokens.empty() ? std::string() : tokens.back();
}

// --- the #include closure ---------------------------------------------------
//
// Cross-file resolution (decl/def annotation merge, call-index lookups) is
// scoped by what a file can actually see: its transitive quoted includes
// within the given file set.  This keeps an unrelated same-named function in
// a file the caller never includes from polluting the call graph.
using IncludeClosure = std::map<std::string, std::vector<std::string>>;

IncludeClosure include_closure(const std::vector<SourceFile>& files) {
  static const std::regex kInclude("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  std::set<std::string> paths;
  for (const SourceFile& file : files) paths.insert(file.path);
  std::map<std::string, std::vector<std::string>> direct;
  for (const SourceFile& file : files) {
    std::vector<std::string>& out = direct[file.path];
    for (const std::string& line : split_lines(file.contents)) {
      std::smatch m;
      if (!std::regex_search(line, m, kInclude)) continue;
      const std::string target = m[1].str();
      if (paths.count("src/" + target) != 0) {
        out.push_back("src/" + target);
      } else if (paths.count(target) != 0) {
        out.push_back(target);
      }
    }
  }
  IncludeClosure closure;
  for (const SourceFile& file : files) {
    std::vector<std::string> todo = {file.path};
    std::set<std::string> seen = {file.path};
    while (!todo.empty()) {
      const std::string current = todo.back();
      todo.pop_back();
      const auto it = direct.find(current);
      if (it == direct.end()) continue;
      for (const std::string& next : it->second) {
        if (seen.insert(next).second) todo.push_back(next);
      }
    }
    closure[file.path].assign(seen.begin(), seen.end());  // sorted (from the set)
  }
  return closure;
}

bool closure_contains(const IncludeClosure& closure, const std::string& from,
                      const std::string& to) {
  const auto it = closure.find(from);
  return it != closure.end() && std::binary_search(it->second.begin(), it->second.end(), to);
}

/// True if either file can see the other through the include graph (a .cc
/// sees its header; the header "sees" its .cc for merge purposes).
bool closure_related(const IncludeClosure& closure, const std::string& a, const std::string& b) {
  return a == b || closure_contains(closure, a, b) || closure_contains(closure, b, a);
}

/// The ClassInfo for `name` nearest to `file`: a closure-related definition
/// if one exists, else any definition of that name.
const ClassInfo* find_class(const std::vector<ClassInfo>& classes, const std::string& name,
                            const std::string& file, const IncludeClosure& closure) {
  const ClassInfo* fallback = nullptr;
  for (const ClassInfo& cls : classes) {
    if (cls.name != name) continue;
    if (closure_related(closure, cls.file, file)) return &cls;
    if (fallback == nullptr) fallback = &cls;
  }
  return fallback;
}

/// Function-index groups: all declarations/definitions of one (class, name).
using FunctionGroups = std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>;

FunctionGroups group_functions(const std::vector<FunctionInfo>& funcs) {
  FunctionGroups groups;
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    groups[{funcs[i].class_name, funcs[i].name}].push_back(i);
  }
  return groups;
}

/// Unifies SHMCAFFE_REQUIRES / SHMCAFFE_DETERMINISTIC / SHMCAFFE_HOT_KERNEL /
/// SHMCAFFE_BLOCKS / SHMCAFFE_NONBLOCKING / SHMCAFFE_PIN_ESCAPE
/// between declarations and definitions of the same (class, name) whose
/// files are related through the include closure: annotating either site
/// annotates both.
void merge_function_annotations(std::vector<FunctionInfo>& funcs, const IncludeClosure& closure) {
  const FunctionGroups groups = group_functions(funcs);
  for (const auto& [key, members] : groups) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::size_t a : members) {
        for (const std::size_t b : members) {
          if (a == b || !closure_related(closure, funcs[a].file, funcs[b].file)) continue;
          FunctionInfo& into = funcs[a];
          const FunctionInfo& from = funcs[b];
          if (from.deterministic && !into.deterministic) {
            into.deterministic = true;
            changed = true;
          }
          if (from.hot_kernel && !into.hot_kernel) {
            into.hot_kernel = true;
            changed = true;
          }
          if (from.blocks && !into.blocks) {
            into.blocks = true;
            changed = true;
          }
          if (from.nonblocking && !into.nonblocking) {
            into.nonblocking = true;
            changed = true;
          }
          if (from.pin_escape && !into.pin_escape) {
            into.pin_escape = true;
            changed = true;
          }
          for (const std::string& req : from.requires_locks) {
            if (std::find(into.requires_locks.begin(), into.requires_locks.end(), req) ==
                into.requires_locks.end()) {
              into.requires_locks.push_back(req);
              changed = true;
            }
          }
        }
      }
    }
  }
}

/// The `_locked()` naming contract: a `_locked` member function of a class
/// with exactly one ordered-mutex member implicitly REQUIRES that mutex.
/// With several mutexes the annotation is mandatory (the lock-region pass
/// reports the omission at the definition).
void infer_locked_requirements(std::vector<FunctionInfo>& funcs,
                               const std::vector<ClassInfo>& classes,
                               const IncludeClosure& closure) {
  for (FunctionInfo& func : funcs) {
    if (!func.requires_locks.empty() || func.class_name.empty()) continue;
    if (!ends_with(func.name, "_locked")) continue;
    const ClassInfo* cls = find_class(classes, func.class_name, func.file, closure);
    if (cls == nullptr) continue;
    std::string sole;
    int mutexes = 0;
    for (const FieldInfo& field : cls->fields) {
      if (field.is_mutex) {
        ++mutexes;
        sole = field.name;
      }
    }
    if (mutexes == 1) func.requires_locks.push_back(sole);
  }
}

/// First identifier of a SHMCAFFE_GUARDED_BY expression ("mu_", or "mu_" of
/// "other.mu_"); the guard must name a mutex member.
std::string guard_identifier(const std::string& guard) {
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  std::smatch m;
  if (!std::regex_search(guard, m, kIdent)) return {};
  return m.str(0);
}

/// True if `cls` (or a lexically enclosing class) has an ordered-mutex
/// member named `name`.
bool resolves_to_mutex(const std::vector<ClassInfo>& index, const ClassInfo& cls,
                       const std::string& name) {
  const ClassInfo* current = &cls;
  while (current != nullptr) {
    for (const FieldInfo& field : current->fields) {
      if (field.is_mutex && field.name == name) return true;
    }
    const std::string& enclosing = current->enclosing;
    current = nullptr;
    if (!enclosing.empty()) {
      for (const ClassInfo& candidate : index) {
        if (candidate.name == enclosing && candidate.file == cls.file) {
          current = &candidate;
          break;
        }
      }
    }
  }
  return false;
}

/// Pass 2 (index-driven half): the guarded-by rule over every src/ class
/// owning an ordered mutex.
std::vector<Finding> guarded_by_findings(
    const std::vector<ClassInfo>& index,
    std::map<std::string, FileAllows>& allows_by_file) {
  std::vector<Finding> findings;
  for (const ClassInfo& cls : index) {
    if (!cls.owns_ordered_mutex || !starts_with(cls.file, "src/")) continue;
    const auto allows = allows_by_file.find(cls.file);
    for (const FieldInfo& field : cls.fields) {
      if (field.is_mutex || field.exempt || field.unguarded) continue;
      std::string message;
      if (!field.guarded) {
        message = "field '" + field.name + "' of mutex-owning class '" + cls.name +
                  "' has neither SHMCAFFE_GUARDED_BY(mu) nor SHMCAFFE_UNGUARDED "
                  "(see src/common/ordered_mutex.h)";
      } else {
        const std::string ident = guard_identifier(field.guard);
        if (!ident.empty() && resolves_to_mutex(index, cls, ident)) continue;
        message = "SHMCAFFE_GUARDED_BY(" + field.guard + ") on field '" + field.name +
                  "' names no ordered-mutex member of '" + cls.name +
                  "' or an enclosing class";
      }
      if (allows != allows_by_file.end() &&
          allowed(allows->second, field.line, "guarded-by")) {
        continue;
      }
      findings.push_back(Finding{cls.file, field.line, "guarded-by", std::move(message)});
    }
  }
  return findings;
}

// --- pass 4: flow-sensitive lock regions and determinism taint --------------

/// One collect()-style statement of a captured function body: text
/// accumulated to ';' / '{' / '}' at paren depth 0, with its 1-based line.
struct BodyStatement {
  std::string text;
  int line = 0;
  char term = '\0';
};

std::vector<BodyStatement> body_statements(const std::string& body, int body_line) {
  std::vector<BodyStatement> out;
  int line = body_line;
  BodyStatement stmt;
  int paren = 0;
  const auto flush = [&](char term) {
    stmt.term = term;
    if (stmt.line == 0) stmt.line = line;
    out.push_back(std::move(stmt));
    stmt = BodyStatement{};
    paren = 0;
  };
  for (const char c : body) {
    if (c == '\n') {
      stmt.text.push_back(' ');
      ++line;
      continue;
    }
    if (paren == 0 && (c == ';' || c == '{' || c == '}')) {
      flush(c);
      continue;
    }
    if (c == '(' || c == '[') ++paren;
    if ((c == ')' || c == ']') && paren > 0) --paren;
    if (stmt.line == 0 && std::isspace(static_cast<unsigned char>(c)) == 0) stmt.line = line;
    stmt.text.push_back(c);
  }
  if (!trim(stmt.text).empty()) flush('\0');
  return out;
}

/// One RAII guard declaration found in a statement.
struct LockEvent {
  std::string var;                   ///< the guard variable
  std::vector<std::string> mutexes;  ///< last identifiers of the lock args
  bool held = true;                  ///< false for std::defer_lock
};

/// RAII guard declarations: `std::scoped_lock l(mu_)`, lock_guard /
/// unique_lock / shared_lock with optional template arguments, multi-mutex
/// scoped_lock, and the defer/try/adopt tags (try_to_lock and adopt_lock
/// still hold on success paths; defer_lock holds only after `l.lock()`).
std::vector<LockEvent> lock_events(const std::string& stmt) {
  static const std::regex kGuard(R"(\b(scoped_lock|lock_guard|unique_lock|shared_lock)\b)");
  std::vector<LockEvent> events;
  for (auto it = std::sregex_iterator(stmt.begin(), stmt.end(), kGuard);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position(0)) + it->length(0);
    const auto skip_space = [&] {
      while (pos < stmt.size() && std::isspace(static_cast<unsigned char>(stmt[pos])) != 0) ++pos;
    };
    skip_space();
    if (pos < stmt.size() && stmt[pos] == '<') {
      int depth = 1;
      ++pos;
      while (pos < stmt.size() && depth > 0) {
        if (stmt[pos] == '<') ++depth;
        if (stmt[pos] == '>') --depth;
        ++pos;
      }
    }
    skip_space();
    const std::size_t name_begin = pos;
    while (pos < stmt.size() &&
           (std::isalnum(static_cast<unsigned char>(stmt[pos])) != 0 || stmt[pos] == '_')) {
      ++pos;
    }
    if (pos == name_begin) continue;  // a mention, not a declaration
    LockEvent event;
    event.var = stmt.substr(name_begin, pos - name_begin);
    skip_space();
    if (pos >= stmt.size() || (stmt[pos] != '(' && stmt[pos] != '{')) continue;
    int depth = 1;
    std::size_t arg_begin = ++pos;
    std::vector<std::string> args;
    while (pos < stmt.size() && depth > 0) {
      const char c = stmt[pos];
      if (c == '(' || c == '{' || c == '[') ++depth;
      if (c == ')' || c == '}' || c == ']') {
        --depth;
        if (depth == 0) break;
      }
      if (c == ',' && depth == 1) {
        args.push_back(stmt.substr(arg_begin, pos - arg_begin));
        arg_begin = pos + 1;
      }
      ++pos;
    }
    args.push_back(stmt.substr(arg_begin, pos - arg_begin));
    for (const std::string& raw : args) {
      const std::string arg = trim(raw);
      if (arg.empty()) continue;
      if (arg.find("defer_lock") != std::string::npos) {
        event.held = false;
        continue;
      }
      if (arg.find("try_to_lock") != std::string::npos ||
          arg.find("adopt_lock") != std::string::npos) {
        continue;
      }
      const std::string mutex = last_identifier(arg);
      if (!mutex.empty()) event.mutexes.push_back(mutex);
    }
    if (!event.mutexes.empty()) events.push_back(std::move(event));
  }
  return events;
}

/// An identifier token and its position in the statement.
struct Token {
  std::string text;
  std::size_t pos = 0;
};

std::vector<Token> tokens_with_pos(const std::string& s) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < s.size()) {
    const auto c = static_cast<unsigned char>(s[i]);
    if (std::isalpha(c) != 0 || c == '_') {
      std::size_t j = i;
      while (j < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[j])) != 0 || s[j] == '_')) {
        ++j;
      }
      tokens.push_back(Token{s.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return tokens;
}

/// Call-site receiver shape of a token.
enum class CallForm { kPlain, kMember, kQualified };

CallForm call_form(const std::string& s, std::size_t pos, std::string& qualifier) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1])) != 0) --i;
  if (i >= 2 && s[i - 1] == ':' && s[i - 2] == ':') {
    std::size_t q = i - 2;
    while (q > 0 && (std::isalnum(static_cast<unsigned char>(s[q - 1])) != 0 || s[q - 1] == '_')) {
      --q;
    }
    qualifier = s.substr(q, i - 2 - q);
    return CallForm::kQualified;
  }
  if (i >= 1 && s[i - 1] == '.') return CallForm::kMember;
  if (i >= 2 && s[i - 1] == '>' && s[i - 2] == '-') return CallForm::kMember;
  return CallForm::kPlain;
}

bool keyword_token(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "return", "sizeof", "decltype", "alignof",
      "catch", "static_assert", "assert", "throw", "new", "delete", "defined",
      "alignas", "noexcept", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "scoped_lock", "lock_guard", "unique_lock", "shared_lock"};
  return kKeywords.count(t) != 0;
}

/// Method names too generic to resolve through the object-insensitive call
/// index (std:: container / algorithm / guard vocabulary): receiver calls
/// with these names are never traversed — `first_crash.find(...)` must not
/// resolve to SmbServer::find.
bool generic_method_name(const std::string& name) {
  static const std::set<std::string> kGeneric = {
      "find", "count", "contains", "begin", "end", "cbegin", "cend", "rbegin", "rend",
      "size", "empty", "clear", "insert", "erase", "emplace", "emplace_back",
      "push_back", "pop_back", "push", "pop", "front", "back", "top", "at", "reserve",
      "resize", "assign", "swap", "data", "get", "reset", "str", "c_str", "substr",
      "append", "compare", "length", "load", "store", "exchange", "fetch_add",
      "fetch_sub", "wait", "wait_for", "notify_one", "notify_all", "lock", "unlock",
      "try_lock", "owns_lock", "value", "has_value", "subspan", "lower_bound",
      "upper_bound", "to_string"};
  return kGeneric.count(name) != 0;
}

/// Names declared with an unordered container type in `text` (a function
/// head's parameters, a body's locals, or — via FieldInfo::type — a class
/// field).  The declared name is the identifier after the closing '>'.
void collect_unordered_idents(const std::string& text, std::set<std::string>& out) {
  static const std::regex kUnordered(R"(\bunordered_(?:map|set|multimap|multiset)\b)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kUnordered);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position(0)) + it->length(0);
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
    if (pos < text.size() && text[pos] == '<') {
      int depth = 1;
      ++pos;
      while (pos < text.size() && depth > 0) {
        if (text[pos] == '<') ++depth;
        if (text[pos] == '>') --depth;
        ++pos;
      }
    }
    while (pos < text.size() && (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
                                 text[pos] == '&' || text[pos] == '*')) {
      ++pos;
    }
    std::size_t begin = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 || text[pos] == '_')) {
      ++pos;
    }
    if (pos > begin) {
      const std::string name = text.substr(begin, pos - begin);
      if (name != "const") out.insert(name);
    }
  }
}

/// A guarded field visible to a function, with the class that owns it (for
/// the per-class access counters).
struct GuardedField {
  std::string guard;  ///< last identifier of the SHMCAFFE_GUARDED_BY expression
  std::string owner;  ///< qualified class name owning the field
};

/// Per-class lock-region access counters for the coverage report.
struct AccessStats {
  int accesses = 0;
  int unguarded = 0;
};

/// Result of the flow-sensitive passes over the whole set.
struct RepoAnalysis {
  std::vector<Finding> findings;
  std::map<std::string, AccessStats> access;  ///< class name -> counters
  int deterministic_roots = 0;
  int tainted = 0;
  int hot_kernel_roots = 0;
  int hot_allocs = 0;
  int blocking_roots = 0;        ///< SHMCAFFE_BLOCKS function groups in src/
  int nonblocking_contracts = 0; ///< SHMCAFFE_NONBLOCKING function groups in src/
  int pin_escapes = 0;           ///< SHMCAFFE_PIN_ESCAPE fields + function groups in src/
};

/// Pin-view types the pin-lifetime pass tracks: the SMB zero-copy views and
/// the arena slab RAII handle.  Matched against declared types, return types
/// and local-declaration statements.
const std::regex& pin_type_pattern() {
  static const std::regex kPinType(R"(\b(?:PinnedFloats|PinnedShard)\b|\barena\s*::\s*Buffer\b)");
  return kPinType;
}

/// The arena implementation is the sanctioned home of arena::Buffer itself:
/// its internals necessarily store, return and hand out the views the rule
/// polices everywhere else.
bool pin_exempt_file(const std::string& file) {
  return starts_with(file, "src/common/arena.");
}

/// True if the function's declared return type mentions a pin view *by
/// value* (a `PinnedFloats&` accessor aliases an existing pin and creates no
/// new escape).
bool returns_pin_by_value(const FunctionInfo& func) {
  const std::size_t paren = top_level_paren_pos(func.head);
  if (paren == std::string::npos) return false;
  const std::string before = func.head.substr(0, paren);
  return before.find('&') == std::string::npos &&
         std::regex_search(before, pin_type_pattern());
}

/// Guarded fields a member function of `class_name` can touch without an
/// object qualifier or through sibling objects: the class itself, its nested
/// classes, and the lexically enclosing chain (object-insensitive, like the
/// mutex identity).
std::map<std::string, GuardedField> family_guarded_fields(
    const std::vector<ClassInfo>& classes, const std::string& class_name,
    const std::string& file, const IncludeClosure& closure) {
  std::map<std::string, GuardedField> out;
  if (class_name.empty()) return out;
  std::set<std::string> family = {class_name};
  const ClassInfo* cls = find_class(classes, class_name, file, closure);
  while (cls != nullptr && !cls->enclosing.empty()) {
    family.insert(cls->enclosing);
    cls = find_class(classes, cls->enclosing, file, closure);
  }
  for (const ClassInfo& candidate : classes) {
    bool in_family = family.count(candidate.name) != 0;
    if (!in_family) {
      for (const std::string& name : family) {
        if (starts_with(candidate.name, name + "::")) {
          in_family = true;
          break;
        }
      }
    }
    if (!in_family || !closure_related(closure, candidate.file, file)) continue;
    for (const FieldInfo& field : candidate.fields) {
      if (field.guarded && !field.guard.empty()) {
        out.emplace(field.name, GuardedField{last_identifier(field.guard), candidate.name});
      }
    }
  }
  return out;
}

/// The flow-sensitive lock-region pass and the determinism-taint pass, run
/// together over the indexed function bodies (src/ only).  `allows_by_file`
/// is shared with the other passes so stale-allow accounting sees every rule.
RepoAnalysis analyze_repo(const std::vector<SourceFile>& files,
                          const std::vector<ClassInfo>& classes,
                          const std::vector<FunctionInfo>& funcs,
                          std::map<std::string, FileAllows>& allows_by_file) {
  RepoAnalysis result;
  const IncludeClosure closure = include_closure(files);
  const FunctionGroups groups = group_functions(funcs);

  // name -> indices, for call resolution.
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < funcs.size(); ++i) by_name[funcs[i].name].push_back(i);

  // A candidate is visible from `file` if any decl/def of its (class, name)
  // group lives in `file`'s include closure: a .cc's definition is reachable
  // through the header that declares it.
  const auto group_visible = [&](std::size_t candidate, const std::string& file) {
    const auto it = groups.find({funcs[candidate].class_name, funcs[candidate].name});
    if (it == groups.end()) return false;
    for (const std::size_t member : it->second) {
      if (funcs[member].file == file || closure_contains(closure, file, funcs[member].file)) {
        return true;
      }
    }
    return false;
  };

  // Resolves a call-site token to candidate function indices.
  const auto resolve_call = [&](const std::string& name, CallForm form,
                                const std::string& qualifier, const FunctionInfo& caller,
                                const std::set<std::string>& caller_family) {
    std::vector<std::size_t> out;
    if (keyword_token(name) || starts_with(name, "SHMCAFFE_")) return out;
    if (form == CallForm::kQualified && qualifier == "std") return out;
    if (form == CallForm::kMember && generic_method_name(name)) return out;
    const auto it = by_name.find(name);
    if (it == by_name.end()) return out;
    for (const std::size_t idx : it->second) {
      const FunctionInfo& callee = funcs[idx];
      if (form == CallForm::kMember && callee.class_name.empty()) continue;
      if (form == CallForm::kPlain && !callee.class_name.empty() &&
          caller_family.count(callee.class_name) == 0) {
        continue;
      }
      if (form == CallForm::kQualified && !qualifier.empty() &&
          !callee.class_name.empty() && class_tail(callee.class_name) != qualifier &&
          callee.class_name != qualifier) {
        continue;
      }
      if (!group_visible(idx, caller.file)) continue;
      out.push_back(idx);
    }
    return out;
  };

  const auto allows_of = [&](const std::string& file) -> FileAllows& {
    return allows_by_file[file];
  };

  // The object-insensitive class family of a function (its class plus the
  // lexically enclosing chain), shared by every call-resolving pass.
  const auto family_of = [&](const FunctionInfo& func) {
    std::set<std::string> family;
    if (!func.class_name.empty()) {
      family.insert(func.class_name);
      const ClassInfo* cls = find_class(classes, func.class_name, func.file, closure);
      while (cls != nullptr && !cls->enclosing.empty()) {
        family.insert(cls->enclosing);
        cls = find_class(classes, cls->enclosing, func.file, closure);
      }
    }
    return family;
  };

  // ---- blocking classification (no-blocking-under-lock) --------------------
  // Roots are SHMCAFFE_BLOCKS annotations plus intrinsically blocking bodies
  // (a literal condition-variable / future wait or a thread sleep).
  // Blocking-ness then propagates caller-ward over the resolved call edges to
  // a fixpoint, and is unified across each (class, name) group so a
  // declaration carries its definition's classification.
  static const std::regex kIntrinsicWait(R"((?:\.|->)\s*wait(?:_for|_until)?\s*\()");
  static const std::regex kIntrinsicWaitArg(
      R"((?:\.|->)\s*wait(?:_for|_until)?\s*\(\s*([A-Za-z_]\w*))");
  static const std::regex kIntrinsicSleep(R"(\b(?:sleep_for|sleep_until)\b)");

  // Resolved callee edges, computed once: the fixpoint iterates them and the
  // lock-region walk re-resolves per statement for line-accurate reporting.
  std::vector<std::vector<std::size_t>> callees(funcs.size());
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    if (!funcs[i].has_body) continue;
    const std::set<std::string> family = family_of(funcs[i]);
    for (const BodyStatement& stmt : body_statements(funcs[i].body, funcs[i].body_line)) {
      for (const Token& token : tokens_with_pos(stmt.text)) {
        std::size_t after = token.pos + token.text.size();
        while (after < stmt.text.size() &&
               std::isspace(static_cast<unsigned char>(stmt.text[after])) != 0) {
          ++after;
        }
        if (after >= stmt.text.size() || stmt.text[after] != '(') continue;
        std::string qualifier;
        const CallForm form = call_form(stmt.text, token.pos, qualifier);
        for (const std::size_t idx : resolve_call(token.text, form, qualifier, funcs[i], family)) {
          callees[i].push_back(idx);
        }
      }
    }
  }

  std::vector<char> blocking(funcs.size(), 0);
  std::vector<std::string> blocking_why(funcs.size());
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    if (funcs[i].blocks) {
      blocking[i] = 1;
      blocking_why[i] = "is annotated SHMCAFFE_BLOCKS";
    } else if (funcs[i].has_body && std::regex_search(funcs[i].body, kIntrinsicWait)) {
      blocking[i] = 1;
      blocking_why[i] = "contains a condition-variable wait";
    } else if (funcs[i].has_body && std::regex_search(funcs[i].body, kIntrinsicSleep)) {
      blocking[i] = 1;
      blocking_why[i] = "contains a thread sleep";
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      if (blocking[i]) continue;
      for (const std::size_t callee : callees[i]) {
        if (!blocking[callee]) continue;
        blocking[i] = 1;
        blocking_why[i] = "calls '" + funcs[callee].name + "', which " + blocking_why[callee];
        changed = true;
        break;
      }
    }
    // Decl <-> def unification, scoped like the annotation merge.
    for (const auto& [key, members] : groups) {
      std::size_t from = members.size();
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (blocking[members[k]]) {
          from = k;
          break;
        }
      }
      if (from == members.size()) continue;
      for (const std::size_t member : members) {
        if (blocking[member] ||
            !closure_related(closure, funcs[member].file, funcs[members[from]].file)) {
          continue;
        }
        blocking[member] = 1;
        blocking_why[member] = blocking_why[members[from]];
        changed = true;
      }
    }
  }

  {
    std::set<std::pair<std::string, std::string>> block_keys;
    std::set<std::pair<std::string, std::string>> nonblock_keys;
    for (const FunctionInfo& func : funcs) {
      if (!starts_with(func.file, "src/")) continue;
      if (func.blocks) block_keys.insert({func.class_name, func.name});
      if (func.nonblocking) nonblock_keys.insert({func.class_name, func.name});
    }
    result.blocking_roots = static_cast<int>(block_keys.size());
    result.nonblocking_contracts = static_cast<int>(nonblock_keys.size());
  }

  // SHMCAFFE_NONBLOCKING verification: the contract is violated when the
  // function can reach a blocking root (or carries both annotations).
  // Reported once per (class, name) group, at the definition when one exists.
  for (const auto& [key, members] : groups) {
    const FunctionInfo* site = nullptr;
    bool any_nonblocking = false;
    bool any_blocks_annotation = false;
    bool any_blocking = false;
    std::string why;
    bool suppressed = false;
    for (const std::size_t member : members) {
      const FunctionInfo& func = funcs[member];
      if (!starts_with(func.file, "src/")) continue;
      any_nonblocking = any_nonblocking || func.nonblocking;
      any_blocks_annotation = any_blocks_annotation || func.blocks;
      if (blocking[member] && !any_blocking) {
        any_blocking = true;
        why = blocking_why[member];
      }
      if (site == nullptr || (func.has_body && !site->has_body)) site = &func;
      if (allowed(allows_of(func.file), func.line, "no-blocking-under-lock")) suppressed = true;
    }
    if (site == nullptr || !any_nonblocking || suppressed) continue;
    if (any_blocks_annotation) {
      result.findings.push_back(Finding{
          site->file, site->line, "no-blocking-under-lock",
          "'" + site->name + "' carries both SHMCAFFE_NONBLOCKING and SHMCAFFE_BLOCKS; "
          "the contracts are contradictory"});
    } else if (any_blocking) {
      result.findings.push_back(Finding{
          site->file, site->line, "no-blocking-under-lock",
          "'" + site->name + "' is annotated SHMCAFFE_NONBLOCKING but can block: " + why});
    }
  }

  // ---- pin-lifetime classification ------------------------------------------
  // A (class, name) group returns a pin if any member's return type names a
  // pin view by value; SHMCAFFE_PIN_ESCAPE on any member annotates the group.
  std::vector<char> pin_return(funcs.size(), 0);
  std::vector<char> pin_escape_fn(funcs.size(), 0);
  for (const auto& [key, members] : groups) {
    bool returns = false;
    bool escape = false;
    for (const std::size_t member : members) {
      returns = returns || returns_pin_by_value(funcs[member]);
      escape = escape || funcs[member].pin_escape;
    }
    for (const std::size_t member : members) {
      pin_return[member] = returns ? 1 : 0;
      pin_escape_fn[member] = escape ? 1 : 0;
    }
  }

  {
    int escapes = 0;
    for (const ClassInfo& cls : classes) {
      if (!starts_with(cls.file, "src/")) continue;
      for (const FieldInfo& field : cls.fields) {
        if (field.pin_escape) ++escapes;
      }
    }
    std::set<std::pair<std::string, std::string>> fn_keys;
    for (const FunctionInfo& func : funcs) {
      if (func.pin_escape && starts_with(func.file, "src/")) {
        fn_keys.insert({func.class_name, func.name});
      }
    }
    result.pin_escapes = escapes + static_cast<int>(fn_keys.size());
  }

  // Declarative pin-lifetime findings: pin-typed fields and pin-returning
  // functions without SHMCAFFE_PIN_ESCAPE.
  for (const ClassInfo& cls : classes) {
    if (!starts_with(cls.file, "src/") || pin_exempt_file(cls.file)) continue;
    for (const FieldInfo& field : cls.fields) {
      if (field.pin_escape || !std::regex_search(field.type, pin_type_pattern())) continue;
      if (field.type.find('&') != std::string::npos ||
          field.type.find('*') != std::string::npos) {
        continue;  // non-owning alias, not a stored view
      }
      if (allowed(allows_of(cls.file), field.line, "pin-lifetime")) continue;
      result.findings.push_back(Finding{
          cls.file, field.line, "pin-lifetime",
          "pin-typed field '" + field.name + "' ('" + field.type + "') of '" + cls.name +
              "' stores a pinned view beyond its frame; annotate SHMCAFFE_PIN_ESCAPE "
              "with a justification or keep the view frame-local"});
    }
  }
  for (const auto& [key, members] : groups) {
    const FunctionInfo* site = nullptr;
    bool returns = false;
    bool escape = false;
    bool suppressed = false;
    for (const std::size_t member : members) {
      const FunctionInfo& func = funcs[member];
      if (!starts_with(func.file, "src/") || pin_exempt_file(func.file)) continue;
      returns = returns || pin_return[member] != 0;
      escape = escape || pin_escape_fn[member] != 0;
      if (site == nullptr || (func.has_body && !site->has_body)) site = &func;
      if (allowed(allows_of(func.file), func.line, "pin-lifetime")) suppressed = true;
    }
    if (site == nullptr || !returns || escape || suppressed) continue;
    result.findings.push_back(Finding{
        site->file, site->line, "pin-lifetime",
        "'" + site->name + "' returns a pinned view by value without "
        "SHMCAFFE_PIN_ESCAPE; pinned views must stay frame-local unless the "
        "escape is annotated and justified"});
  }

  // ---- lock-region pass ----------------------------------------------------
  static const std::regex kAssertHeld(R"(\bSHMCAFFE_ASSERT_HELD\s*\(([^)]*)\))");
  static const std::regex kVarLockOp(R"(\b([A-Za-z_]\w*)\s*\.\s*(unlock|lock)\s*\(\s*\))");

  for (const FunctionInfo& func : funcs) {
    if (!func.has_body || !starts_with(func.file, "src/")) continue;
    const std::map<std::string, GuardedField> fields =
        family_guarded_fields(classes, func.class_name, func.file, closure);
    const std::set<std::string> caller_family = family_of(func);

    // `_locked` contract: no annotation and no unique mutex to infer it from.
    // The contract only binds classes that own several ordered mutexes: with
    // zero the name is vocabulary, not a lock protocol (sim coroutine mutexes
    // etc.), and with exactly one the requirement was inferred.
    if (ends_with(func.name, "_locked") && func.requires_locks.empty()) {
      int class_mutexes = 0;
      if (const ClassInfo* cls =
              find_class(classes, func.class_name, func.file, closure)) {
        for (const FieldInfo& field : cls->fields) {
          if (field.is_mutex) ++class_mutexes;
        }
      }
      if (class_mutexes >= 2 &&
          !allowed(allows_of(func.file), func.line, "lock-region")) {
        result.findings.push_back(Finding{
            func.file, func.line, "lock-region",
            "'" + func.name + "' follows the _locked() naming contract but has no "
            "SHMCAFFE_REQUIRES(mu) and its class does not own exactly one ordered "
            "mutex to infer it from; annotate the required mutex"});
      }
    }

    // Held state is a stack of frames of signed entries ("+mu" held, "-mu"
    // released), resolved innermost-last-entry first.  An unlock records a
    // frame-local override, so `if (...) { lock.unlock(); return; }` does not
    // poison the statements after the branch.
    struct Frame {
      std::vector<std::pair<std::string, bool>> held;  ///< (mutex, is_held)
      std::map<std::string, std::vector<std::string>> lock_vars;
    };
    std::vector<Frame> stack(1);
    for (const std::string& req : func.requires_locks) {
      stack[0].held.emplace_back(last_identifier(req), true);
    }
    const auto holds = [&](const std::string& mutex) {
      for (auto frame = stack.rbegin(); frame != stack.rend(); ++frame) {
        for (auto entry = frame->held.rbegin(); entry != frame->held.rend(); ++entry) {
          if (entry->first == mutex) return entry->second;
        }
      }
      return false;
    };
    // Every mutex currently held, resolved with the same last-entry-wins
    // semantics as holds(): the blocking/pin checks test the whole set.
    const auto held_mutexes = [&]() {
      std::map<std::string, bool> state;
      for (const Frame& scope : stack) {
        for (const auto& entry : scope.held) state[entry.first] = entry.second;
      }
      std::vector<std::string> held;
      for (const auto& [mutex, is_held] : state) {
        if (is_held) held.push_back(mutex);
      }
      return held;
    };

    const bool pin_rules = !pin_exempt_file(func.file);
    std::set<std::string> pin_locals;  // pin-typed locals declared so far
    std::set<std::pair<int, std::string>> reported;  // (line, token) dedupe
    for (const BodyStatement& stmt : body_statements(func.body, func.body_line)) {
      if (stmt.term == '{') stack.emplace_back();
      Frame& frame = stack.back();
      // Lock events first: an if-init guard covers the condition's accesses.
      for (const LockEvent& event : lock_events(stmt.text)) {
        frame.lock_vars[event.var] = event.mutexes;
        if (event.held) {
          for (const std::string& mutex : event.mutexes) {
            frame.held.emplace_back(mutex, true);
          }
        }
      }
      for (auto it = std::sregex_iterator(stmt.text.begin(), stmt.text.end(), kAssertHeld);
           it != std::sregex_iterator(); ++it) {
        const std::string mutex = last_identifier((*it)[1].str());
        if (!mutex.empty()) frame.held.emplace_back(mutex, true);
      }
      for (auto it = std::sregex_iterator(stmt.text.begin(), stmt.text.end(), kVarLockOp);
           it != std::sregex_iterator(); ++it) {
        const std::string var = (*it)[1].str();
        const bool is_lock = (*it)[2].str() == "lock";
        // The override lands in the *current* frame regardless of where the
        // guard variable was declared: leaving the branch discards it.
        for (const Frame& scope : stack) {
          const auto lock_var = scope.lock_vars.find(var);
          if (lock_var == scope.lock_vars.end()) continue;
          for (const std::string& mutex : lock_var->second) {
            frame.held.emplace_back(mutex, is_lock);
          }
        }
      }

      // pin-lifetime: track pin-typed locals (explicit pin declarations and
      // `auto x = ...read_pinned(...)` initialisers) and flag explicit lambda
      // captures of them.  Blanket [&] / [=] captures are not resolved.
      if (pin_rules) {
        const bool pin_stmt = std::regex_search(stmt.text, pin_type_pattern()) ||
                              stmt.text.find("read_pinned") != std::string::npos;
        if (pin_stmt) {
          const std::size_t assign = top_level_pos(stmt.text, '=');
          std::string declared;
          if (assign != std::string::npos) {
            declared = last_identifier(stmt.text.substr(0, assign));
          } else if (stmt.term == ';' && !has_top_level_paren(stmt.text) &&
                     std::regex_search(stmt.text, pin_type_pattern())) {
            declared = last_identifier(stmt.text);
          }
          if (!declared.empty() && !keyword_token(declared)) pin_locals.insert(declared);
        }
        static const std::regex kCapture(
            R"(\[([^\[\]]*)\]\s*(?:\(|\{|mutable\b|noexcept\b|->|$))");
        for (auto it = std::sregex_iterator(stmt.text.begin(), stmt.text.end(), kCapture);
             it != std::sregex_iterator(); ++it) {
          for (const std::string& ident : identifier_tokens((*it)[1].str())) {
            if (ident == "this" || pin_locals.count(ident) == 0) continue;
            if (allowed(allows_of(func.file), stmt.line, "pin-lifetime")) continue;
            if (reported.emplace(stmt.line, "pin-capture/" + ident).second) {
              result.findings.push_back(Finding{
                  func.file, stmt.line, "pin-lifetime",
                  "pinned view '" + ident + "' captured by a lambda in '" + func.name +
                      "'; pinned views must stay frame-local — release before the "
                      "lambda outlives the frame or justify with "
                      "lint:allow(pin-lifetime)"});
            }
          }
        }
      }

      // no-blocking-under-lock: a literal wait/sleep in this statement while
      // a guard is held.  A cv wait over a guard declared in scope releases
      // that guard's mutexes for the duration of the wait; a wait over an
      // unresolvable guard variable (a unique_lock parameter) releases the
      // function's own SHMCAFFE_REQUIRES mutexes by convention.
      const bool waits = std::regex_search(stmt.text, kIntrinsicWait);
      const bool sleeps = !waits && std::regex_search(stmt.text, kIntrinsicSleep);
      if (waits || sleeps) {
        std::set<std::string> released;
        std::smatch wait_arg;
        if (waits && std::regex_search(stmt.text, wait_arg, kIntrinsicWaitArg)) {
          const std::string guard_var = wait_arg[1].str();
          for (const Frame& scope : stack) {
            const auto lock_var = scope.lock_vars.find(guard_var);
            if (lock_var == scope.lock_vars.end()) continue;
            released.insert(lock_var->second.begin(), lock_var->second.end());
          }
          if (released.empty()) {
            for (const std::string& req : func.requires_locks) {
              released.insert(last_identifier(req));
            }
          }
        }
        for (const std::string& mutex : held_mutexes()) {
          if (released.count(mutex) != 0) continue;
          if (allowed(allows_of(func.file), stmt.line, "no-blocking-under-lock")) continue;
          if (reported.emplace(stmt.line, "block/" + mutex).second) {
            result.findings.push_back(Finding{
                func.file, stmt.line, "no-blocking-under-lock",
                std::string(waits ? "blocking wait" : "thread sleep") + " in '" +
                    func.name + "' while holding '" + mutex +
                    "'; hoist the wait out of the lock region"});
          }
        }
      }

      for (const Token& token : tokens_with_pos(stmt.text)) {
        std::string qualifier;
        const CallForm form = call_form(stmt.text, token.pos, qualifier);
        std::size_t after = token.pos + token.text.size();
        while (after < stmt.text.size() &&
               std::isspace(static_cast<unsigned char>(stmt.text[after])) != 0) {
          ++after;
        }
        const bool is_call = after < stmt.text.size() && stmt.text[after] == '(';

        const auto field = fields.find(token.text);
        if (field != fields.end() && form != CallForm::kQualified) {
          // A guarded-field access (reads, writes, and std::function fields
          // invoked as calls all count).
          ++result.access[field->second.owner].accesses;
          if (!holds(field->second.guard)) {
            if (allowed(allows_of(func.file), stmt.line, "lock-region")) continue;
            if (reported.emplace(stmt.line, token.text).second) {
              result.findings.push_back(Finding{
                  func.file, stmt.line, "lock-region",
                  "field '" + token.text + "' (SHMCAFFE_GUARDED_BY " +
                      field->second.guard + ") accessed in '" + func.name +
                      "' without holding '" + field->second.guard + "'"});
              ++result.access[field->second.owner].unguarded;
            }
          }
          continue;
        }
        if (!is_call) continue;
        for (const std::size_t idx :
             resolve_call(token.text, form, qualifier, func, caller_family)) {
          const FunctionInfo& callee = funcs[idx];
          for (const std::string& req : callee.requires_locks) {
            const std::string mutex = last_identifier(req);
            if (mutex.empty() || holds(mutex)) continue;
            if (allowed(allows_of(func.file), stmt.line, "lock-region")) continue;
            if (reported.emplace(stmt.line, token.text + "/" + mutex).second) {
              result.findings.push_back(Finding{
                  func.file, stmt.line, "lock-region",
                  "call to '" + callee.name + "' which SHMCAFFE_REQUIRES(" + req +
                      ") while not holding '" + mutex + "'"});
            }
          }
          // no-blocking-under-lock: a call into the blocking set while a
          // guard is held.  A mutex the callee SHMCAFFE_REQUIRES is exempt:
          // the callee waits *on* the caller's lock and releases it (the
          // prepare_write_locked idiom).
          if (blocking[idx] != 0) {
            for (const std::string& mutex : held_mutexes()) {
              bool callee_releases = false;
              for (const std::string& req : callee.requires_locks) {
                if (last_identifier(req) == mutex) {
                  callee_releases = true;
                  break;
                }
              }
              if (callee_releases) continue;
              if (allowed(allows_of(func.file), stmt.line, "no-blocking-under-lock")) {
                continue;
              }
              if (reported.emplace(stmt.line, token.text + "/block/" + mutex).second) {
                result.findings.push_back(Finding{
                    func.file, stmt.line, "no-blocking-under-lock",
                    "call to '" + callee.name + "', which " + blocking_why[idx] +
                        ", while holding '" + mutex +
                        "'; hoist the blocking call out of the lock region"});
              }
            }
          }
          // pin-lifetime: pin acquisition while any guard is held inverts
          // the pin-then-lock retirement protocol.
          if (pin_rules && pin_return[idx] != 0) {
            const std::vector<std::string> held = held_mutexes();
            if (!held.empty() &&
                !allowed(allows_of(func.file), stmt.line, "pin-lifetime") &&
                reported.emplace(stmt.line, token.text + "/pin").second) {
              result.findings.push_back(Finding{
                  func.file, stmt.line, "pin-lifetime",
                  "pin acquired via '" + callee.name + "' in '" + func.name +
                      "' while holding '" + held.front() +
                      "'; the retirement protocol is pin-then-lock — take the pin "
                      "before locking or justify with lint:allow(pin-lifetime)"});
            }
          }
        }
      }
      if (stmt.term == '}' && stack.size() > 1) stack.pop_back();
    }
  }

  // ---- determinism-taint pass ----------------------------------------------
  static const std::regex kDetClock(
      R"(\b(system_clock|steady_clock|high_resolution_clock)\b|::now\s*\(|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\btime\s*\(|\bclock\s*\(\s*\))");
  static const std::regex kDetRng(
      R"(\b(rand|srand)\s*\(|\brandom_device\b|\bmt19937(_64)?\b|\bdefault_random_engine\b|\bgetenv\b|\bhardware_concurrency\b)");
  static const std::regex kDetAddr(
      R"(reinterpret_cast\s*<[^>]*intptr_t\s*>|\bhash\s*<[^<>]*\*\s*>|\bunordered_(?:map|set)\s*<[^,<>]*\*)");
  static const std::regex kBeginEnd(
      R"(\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?r?(?:begin|end)\s*\()");
  static const std::regex kRangeFor(R"(\bfor\s*\()");

  std::set<std::pair<std::string, std::string>> root_keys;
  for (const FunctionInfo& func : funcs) {
    if (func.deterministic && starts_with(func.file, "src/")) {
      root_keys.insert({func.class_name, func.name});
    }
  }
  result.deterministic_roots = static_cast<int>(root_keys.size());

  std::set<std::size_t> visited;
  std::vector<std::pair<std::size_t, std::string>> todo;  // (def index, root label)
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    if (!funcs[i].has_body || !funcs[i].deterministic) continue;
    if (!starts_with(funcs[i].file, "src/")) continue;
    if (visited.insert(i).second) todo.push_back({i, funcs[i].name});
  }
  while (!todo.empty()) {
    const auto [index, root] = todo.back();
    todo.pop_back();
    const FunctionInfo& func = funcs[index];

    std::set<std::string> unordered;
    collect_unordered_idents(func.head, unordered);
    collect_unordered_idents(func.body, unordered);
    std::set<std::string> caller_family;
    if (!func.class_name.empty()) {
      caller_family.insert(func.class_name);
      const ClassInfo* cls = find_class(classes, func.class_name, func.file, closure);
      for (const ClassInfo& candidate : classes) {
        if (caller_family.count(candidate.name) == 0 &&
            !starts_with(candidate.name, func.class_name + "::")) {
          continue;
        }
        for (const FieldInfo& field : candidate.fields) {
          if (field.type.find("unordered_") != std::string::npos) unordered.insert(field.name);
        }
      }
      while (cls != nullptr && !cls->enclosing.empty()) {
        caller_family.insert(cls->enclosing);
        cls = find_class(classes, cls->enclosing, func.file, closure);
      }
    }

    const std::string suffix = root == func.name
                                   ? "' (a SHMCAFFE_DETERMINISTIC root)"
                                   : "', reachable from SHMCAFFE_DETERMINISTIC root '" +
                                         root + "'";
    const auto taint = [&](int line, const std::string& what) {
      if (allowed(allows_of(func.file), line, "determinism")) return;
      result.findings.push_back(Finding{func.file, line, "determinism",
                                        what + " in '" + func.name + suffix});
      ++result.tainted;
    };

    for (const BodyStatement& stmt : body_statements(func.body, func.body_line)) {
      if (std::regex_search(stmt.text, kDetClock)) {
        taint(stmt.line, "wall-clock read");
      }
      if (std::regex_search(stmt.text, kDetRng)) {
        taint(stmt.line, "non-seeded RNG / environment read");
      }
      if (std::regex_search(stmt.text, kDetAddr)) {
        taint(stmt.line, "address-dependent ordering");
      }
      std::smatch for_match;
      if (std::regex_search(stmt.text, for_match, kRangeFor)) {
        // `for (decl : range)` — the range is the tail after the last
        // non-scope ':' inside the for-head's parentheses.  A brace-less
        // loop body can trail the head in the same statement, so bound the
        // search at the matching close paren rather than the statement end.
        const std::size_t open =
            static_cast<std::size_t>(for_match.position(0)) + for_match.length(0) - 1;
        std::size_t close = open;
        int depth = 0;
        for (std::size_t i = open; i < stmt.text.size(); ++i) {
          if (stmt.text[i] == '(') ++depth;
          if (stmt.text[i] == ')' && --depth == 0) {
            close = i;
            break;
          }
        }
        std::size_t colon = std::string::npos;
        for (std::size_t i = open; i < close; ++i) {
          if (stmt.text[i] != ':') continue;
          if (i > 0 && stmt.text[i - 1] == ':') continue;
          if (i + 1 < stmt.text.size() && stmt.text[i + 1] == ':') {
            ++i;
            continue;
          }
          colon = i;
        }
        if (colon != std::string::npos && close > colon) {
          const std::string range = last_identifier(stmt.text.substr(colon + 1, close - colon - 1));
          if (unordered.count(range) != 0) {
            taint(stmt.line, "iteration over unordered container '" + range + "'");
          }
        }
      }
      for (auto it = std::sregex_iterator(stmt.text.begin(), stmt.text.end(), kBeginEnd);
           it != std::sregex_iterator(); ++it) {
        if (unordered.count((*it)[1].str()) != 0) {
          taint(stmt.line, "iteration over unordered container '" + (*it)[1].str() + "'");
        }
      }

      for (const Token& token : tokens_with_pos(stmt.text)) {
        std::size_t after = token.pos + token.text.size();
        while (after < stmt.text.size() &&
               std::isspace(static_cast<unsigned char>(stmt.text[after])) != 0) {
          ++after;
        }
        if (after >= stmt.text.size() || stmt.text[after] != '(') continue;
        std::string qualifier;
        const CallForm form = call_form(stmt.text, token.pos, qualifier);
        for (const std::size_t idx :
             resolve_call(token.text, form, qualifier, func, caller_family)) {
          if (!funcs[idx].has_body) continue;
          if (visited.insert(idx).second) todo.push_back({idx, root});
        }
      }
    }
  }

  // ---- no-hot-alloc pass ---------------------------------------------------
  // Same reachability walk as the determinism pass, rooted at the
  // SHMCAFFE_HOT_KERNEL annotations: per-iteration kernels and everything
  // they call must not touch the heap.  Arena-routed statements are the
  // sanctioned allocation channel (the registry recycles slabs across
  // iterations), so any statement mentioning the arena is exempt.
  static const std::regex kHotNew(
      R"(\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|\bmalloc\s*\(|\bcalloc\s*\()");
  static const std::regex kHotContainer(
      R"(\b(?:std\s*::\s*)?(?:vector|string|deque|list|map|set|multimap|multiset|unordered_map|unordered_set)\s*<[^;{}]*>\s+[A-Za-z_]\w*\s*[({=;])");
  static const std::regex kHotGrow(
      R"([.\>]\s*(?:resize|reserve|push_back|emplace_back|emplace|shrink_to_fit)\s*\()");
  static const std::regex kArenaRouted(R"(\barena\s*::|\bglobal_arena\b|\bArena\b)");

  std::set<std::pair<std::string, std::string>> hot_root_keys;
  for (const FunctionInfo& func : funcs) {
    if (func.hot_kernel && starts_with(func.file, "src/")) {
      hot_root_keys.insert({func.class_name, func.name});
    }
  }
  result.hot_kernel_roots = static_cast<int>(hot_root_keys.size());

  std::set<std::size_t> hot_visited;
  std::vector<std::pair<std::size_t, std::string>> hot_todo;  // (def index, root label)
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    if (!funcs[i].has_body || !funcs[i].hot_kernel) continue;
    if (!starts_with(funcs[i].file, "src/")) continue;
    if (hot_visited.insert(i).second) hot_todo.push_back({i, funcs[i].name});
  }
  while (!hot_todo.empty()) {
    const auto [index, root] = hot_todo.back();
    hot_todo.pop_back();
    const FunctionInfo& func = funcs[index];
    // The arena implementation is the sanctioned allocation channel itself:
    // neither flagged nor walked further (its slab path bottoms out in
    // ::operator new by design).
    if (starts_with(func.file, "src/common/arena.")) continue;

    std::set<std::string> caller_family;
    if (!func.class_name.empty()) {
      caller_family.insert(func.class_name);
      const ClassInfo* cls = find_class(classes, func.class_name, func.file, closure);
      while (cls != nullptr && !cls->enclosing.empty()) {
        caller_family.insert(cls->enclosing);
        cls = find_class(classes, cls->enclosing, func.file, closure);
      }
    }

    const std::string suffix = root == func.name
                                   ? "' (a SHMCAFFE_HOT_KERNEL root)"
                                   : "', reachable from SHMCAFFE_HOT_KERNEL root '" +
                                         root + "'";
    const auto flag = [&](int line, const std::string& what) {
      if (allowed(allows_of(func.file), line, "no-hot-alloc")) return;
      result.findings.push_back(Finding{
          func.file, line, "no-hot-alloc",
          what + " in '" + func.name + suffix +
              "; route per-iteration storage through common::arena"});
      ++result.hot_allocs;
    };

    for (const BodyStatement& stmt : body_statements(func.body, func.body_line)) {
      if (!std::regex_search(stmt.text, kArenaRouted)) {
        if (std::regex_search(stmt.text, kHotNew)) {
          flag(stmt.line, "heap allocation");
        } else if (std::regex_search(stmt.text, kHotContainer)) {
          flag(stmt.line, "owning-container declaration");
        } else if (std::regex_search(stmt.text, kHotGrow)) {
          flag(stmt.line, "container growth");
        }
      }

      for (const Token& token : tokens_with_pos(stmt.text)) {
        std::size_t after = token.pos + token.text.size();
        while (after < stmt.text.size() &&
               std::isspace(static_cast<unsigned char>(stmt.text[after])) != 0) {
          ++after;
        }
        if (after >= stmt.text.size() || stmt.text[after] != '(') continue;
        std::string qualifier;
        const CallForm form = call_form(stmt.text, token.pos, qualifier);
        for (const std::size_t idx :
             resolve_call(token.text, form, qualifier, func, caller_family)) {
          if (!funcs[idx].has_body) continue;
          if (hot_visited.insert(idx).second) hot_todo.push_back({idx, root});
        }
      }
    }
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file : a.line < b.line;
                   });
  return result;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "rng-source",       "wall-clock",  "sim-wall-clock",  "raii-lock",
      "sim-ptr-container", "pragma-once", "include-hygiene", "no-naked-epoch",
      "no-raw-thread",     "guarded-by",  "include-layering", "lock-region",
      "determinism",       "no-hot-alloc", "no-blocking-under-lock",
      "pin-lifetime",      "stale-allow"};
  return ids;
}

bool is_sim_path(std::string_view path) {
  if (starts_with(path, "src/sim/") || starts_with(path, "src/net/")) return true;
  return starts_with(basename_of(path), "sim_");
}

const std::vector<std::string>& layering_dirs() {
  static const std::vector<std::string> dirs = [] {
    std::vector<std::string> out;
    for (const LayerEntry& entry : layering_table()) out.emplace_back(entry.dir);
    return out;
  }();
  return dirs;
}

bool layering_allows(std::string_view from_dir, std::string_view to_dir) {
  if (from_dir == to_dir) return true;
  const LayerEntry* entry = layer_of(from_dir);
  if (entry == nullptr) return false;
  return std::find(entry->deps.begin(), entry->deps.end(), to_dir) != entry->deps.end();
}

std::vector<std::string> scrub_source(std::string_view contents) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<std::string> lines;
  std::string current;
  State state = State::kCode;
  std::string raw_delim;  // the `)delim"` terminator of an active raw string

  const std::size_t n = contents.size();
  // True if the 'R' at index i opens a raw string: the preceding identifier
  // run must be empty or one of the encoding prefixes (u8R", uR", LR", UR").
  const auto raw_string_at = [&](std::size_t i) {
    std::size_t start = i;
    while (start > 0 && (std::isalnum(static_cast<unsigned char>(contents[start - 1])) ||
                         contents[start - 1] == '_')) {
      --start;
    }
    const std::string_view prefix = contents.substr(start, i - start);
    return prefix.empty() || prefix == "u8" || prefix == "u" || prefix == "L" ||
           prefix == "U";
  };

  for (std::size_t i = 0; i < n; ++i) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';
    if (c == '\n') {
      // Unterminated ordinary strings/chars/line comments reset at EOL —
      // unless the newline is escaped (a backslash line continuation, legal
      // in line comments and literals alike).  Block comments and raw
      // strings continue across lines regardless.
      const bool spliced =
          (i >= 1 && contents[i - 1] == '\\') ||
          (i >= 2 && contents[i - 1] == '\r' && contents[i - 2] == '\\');
      if (!spliced &&
          (state == State::kLineComment || state == State::kString || state == State::kChar)) {
        state = State::kCode;
      }
      lines.push_back(std::move(current));
      current.clear();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' && raw_string_at(i)) {
          // (prefix)R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < n && contents[open] != '(' && contents[open] != '\n') {
            delim.push_back(contents[open]);
            ++open;
          }
          if (open < n && contents[open] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            current += "R\"\"";  // keep a token so the line is not empty
            i = open;            // consumed through the opening '('
          } else {
            current.push_back(c);
          }
        } else if (c == '"') {
          state = State::kString;
          current.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          current.push_back('\'');
        } else {
          current.push_back(c);
        }
        break;
      case State::kLineComment:
        break;  // dropped until EOL
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (next != '\n') ++i;  // never swallow a newline: line counts stay exact
        } else if (c == '"') {
          state = State::kCode;
          current.push_back('"');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (next != '\n') ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current.push_back('\'');
        }
        break;
      case State::kRawString:
        if (c == ')' && contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

std::vector<ClassInfo> index_classes(const std::vector<SourceFile>& files) {
  std::vector<ClassInfo> index;
  for (const SourceFile& file : files) {
    ClassIndexer indexer(indexable_text(file.contents), file.path, &index);
    indexer.run();
  }
  return index;
}

std::vector<FunctionInfo> index_functions(const std::vector<SourceFile>& files) {
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> funcs;
  for (const SourceFile& file : files) {
    ClassIndexer indexer(indexable_text(file.contents), file.path, &classes, &funcs);
    indexer.run();
  }
  const IncludeClosure closure = include_closure(files);
  merge_function_annotations(funcs, closure);
  infer_locked_requirements(funcs, classes, closure);
  return funcs;
}

namespace {

/// lint_source body, over a caller-owned allow list so lint_repo can account
/// for suppression usage (the stale-allow rule) across every pass.
std::vector<Finding> lint_source_impl(std::string_view path, std::string_view contents,
                                      FileAllows& allows) {
  std::vector<Finding> findings;
  const std::vector<std::string> lines = scrub_source(contents);
  const std::vector<std::string> raw_lines = split_lines(contents);
  const bool sim = is_sim_path(path);
  const bool in_rng = starts_with(path, "src/common/rng");
  // no-raw-thread covers library code only: tests and benches drive threads
  // deliberately (pool shutdown races, concurrency suites).
  const bool raw_thread_applies =
      starts_with(path, "src/") && !raw_thread_allowed_path(path);
  // The fencing helpers themselves necessarily compare raw epoch values.
  const bool in_epoch_helpers = starts_with(path, "src/recovery/epoch");
  const bool header = ends_with(path, ".h");
  // include-layering applies to src/<dir>/ sources with a known layer dir.
  std::string from_dir;
  if (starts_with(path, "src/")) {
    const std::string_view rest = path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) from_dir = std::string(rest.substr(0, slash));
  }

  auto report = [&](int line, std::string_view rule, std::string message) {
    if (allowed(allows, line, rule)) return;
    findings.push_back(Finding{std::string(path), line, std::string(rule), std::move(message)});
  };

  static const std::regex kWallClock(R"(\bsystem_clock\b)");
  // no-raw-thread: std::thread / std::jthread construction or mention in
  // library code.  Matches the type name, not this_thread (the \b after ::
  // does not reach across this_thread's underscore).
  static const std::regex kRawThread(R"(\bstd\s*::\s*j?thread\b)");
  // no-naked-epoch: a comparison operator adjacent to a service-epoch value
  // (identifier containing `service_epoch`, optionally a call).  Service
  // epochs are fenced through epoch_is_current / epoch_is_stale so the
  // 0-means-never-resolved sentinel cannot be mishandled; a plain `=`
  // assignment never matches.  The `[^=!<>\-]` guard keeps `<<`, `>>`,
  // compound tokens and `->member` accesses from firing.
  static const std::regex kNakedEpochLeft(
      R"(\w*service_epoch\w*\s*(?:\(\s*\))?\s*(?:[=!<>]=|<(?!<)|>(?!>)))");
  static const std::regex kNakedEpochRight(
      R"((?:^|[^=!<>\-])(?:[=!<>]=|<(?!<)|>(?!>))\s*\w*service_epoch\w*)");
  static const std::regex kBareLock(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*(lock|unlock|try_lock|lock_shared|unlock_shared|try_lock_shared)\s*\()");
  static const std::regex kPtrContainer(R"(\bunordered_(?:set|map)\s*<\s*([^,<>]*\*)\s*[,>])");
  static const std::regex kQuotedInclude("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  static const std::regex kQuotedIncludeShape("^\\s*#\\s*include\\s*\"");
  static const std::regex kAngleInclude(R"(^\s*#\s*include\s*<([^>]+)>)");

  bool saw_pragma_once = false;

  for (std::size_t index = 0; index < lines.size(); ++index) {
    const std::string& line = lines[index];
    const int lineno = static_cast<int>(index) + 1;
    if (line.find("#pragma once") != std::string::npos) saw_pragma_once = true;

    if (!in_rng) {
      for (const PatternRule& rule : rng_patterns()) {
        if (std::regex_search(line, rule.pattern)) report(lineno, rule.rule, rule.message);
      }
    }
    if (raw_thread_applies && std::regex_search(line, kRawThread)) {
      report(lineno, "no-raw-thread",
             "raw std::thread in library code; use the shared work pool "
             "(common/parallel.h) so results stay thread-count-invariant");
    }
    if (std::regex_search(line, kWallClock)) {
      report(lineno, "wall-clock",
             "std::chrono::system_clock is nondeterministic wall time; use steady_clock "
             "(functional code) or the simulation clock");
    }
    if (!in_epoch_helpers && (std::regex_search(line, kNakedEpochLeft) ||
                              std::regex_search(line, kNakedEpochRight))) {
      report(lineno, "no-naked-epoch",
             "naked comparison on a service epoch; use epoch_is_current / "
             "epoch_is_stale (src/recovery/epoch.h) so fencing semantics stay "
             "in one place");
    }
    if (sim) {
      for (const PatternRule& rule : sim_clock_patterns()) {
        if (std::regex_search(line, rule.pattern)) report(lineno, rule.rule, rule.message);
      }
      std::smatch container;
      if (std::regex_search(line, container, kPtrContainer)) {
        report(lineno, "sim-ptr-container",
               "pointer-keyed " + container.str(0).substr(0, container.str(0).find('<')) +
                   " in simulated code iterates in ASLR-dependent order; key by a "
                   "stable id or use an ordered container");
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kBareLock);
         it != std::sregex_iterator(); ++it) {
      const std::string receiver = lowercase((*it)[1].str());
      if (receiver.find("mutex") != std::string::npos ||
          receiver.find("mtx") != std::string::npos) {
        report(lineno, "raii-lock",
               "bare ." + (*it)[2].str() + "() on '" + (*it)[1].str() +
                   "'; use std::scoped_lock / unique_lock / shared_lock");
      }
    }
    // The scrubber blanks string-literal bodies, so the quoted target must be
    // re-extracted from the raw line; the scrubbed line gates on the directive
    // itself so commented-out includes stay ignored.
    std::smatch include;
    if (std::regex_search(line, kQuotedIncludeShape) && index < raw_lines.size() &&
        std::regex_search(raw_lines[index], include, kQuotedInclude)) {
      const std::string target = include[1].str();
      if (target.find("../") != std::string::npos || starts_with(target, "./")) {
        report(lineno, "include-hygiene",
               "relative include \"" + target + "\"; use the repo-relative path from src/");
      } else if (target.find('/') == std::string::npos) {
        report(lineno, "include-hygiene",
               "directory-less include \"" + target +
                   "\"; project headers are included as \"dir/file.h\"");
      } else if (!from_dir.empty()) {
        // include-layering: the target's top directory must be in this
        // directory's declared dependency set (or the same directory).
        const std::string to_dir = target.substr(0, target.find('/'));
        if (to_dir != from_dir) {
          if (layer_of(from_dir) == nullptr) {
            report(lineno, "include-layering",
                   "src/" + from_dir + "/ is not a registered layer; add it (and its "
                   "dependencies) to the directory DAG in tools/lint/lint.cc");
          } else if (layer_of(to_dir) == nullptr) {
            report(lineno, "include-layering",
                   "include \"" + target + "\": '" + to_dir +
                       "' is not a src/ layer in the directory DAG (src/ must not "
                       "include from tests/, bench/ or tools/)");
          } else if (!layering_allows(from_dir, to_dir)) {
            report(lineno, "include-layering",
                   "include \"" + target + "\" from src/" + from_dir +
                       "/: '" + to_dir + "' is not in '" + from_dir +
                       "'s dependency set (upward or cyclic include; see the "
                       "layering DAG in DESIGN.md)");
          }
        }
      }
    } else if (std::regex_search(line, include, kAngleInclude)) {
      const std::string target = include[1].str();
      if (is_project_include(target)) {
        report(lineno, "include-hygiene",
               "project header <" + target + "> included with angle brackets; use quotes");
      }
    }
  }

  if (header && !saw_pragma_once) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

}  // namespace

std::vector<Finding> lint_source(std::string_view path, std::string_view contents) {
  FileAllows allows = collect_allows(contents);
  return lint_source_impl(path, contents, allows);
}

std::vector<Finding> lint_repo(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // One allow list per file, shared by every pass, so a suppression that
  // catches a finding in *any* pass counts as used for stale-allow.
  std::map<std::string, FileAllows> allows_by_file;
  for (const SourceFile& file : files) {
    allows_by_file[file.path] = collect_allows(file.contents);
  }
  for (const SourceFile& file : files) {
    std::vector<Finding> file_findings =
        lint_source_impl(file.path, file.contents, allows_by_file[file.path]);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  const std::vector<ClassInfo> index = index_classes(files);
  const std::vector<FunctionInfo> funcs = index_functions(files);
  std::vector<Finding> guarded = guarded_by_findings(index, allows_by_file);
  findings.insert(findings.end(), std::make_move_iterator(guarded.begin()),
                  std::make_move_iterator(guarded.end()));
  RepoAnalysis analysis = analyze_repo(files, index, funcs, allows_by_file);
  findings.insert(findings.end(), std::make_move_iterator(analysis.findings.begin()),
                  std::make_move_iterator(analysis.findings.end()));
  // stale-allow: every annotation that suppressed nothing above.  A stale
  // annotation can itself be silenced with lint:allow(stale-allow) on its
  // line (for fixture files that exist to exercise the annotations).
  for (auto& [path, allows] : allows_by_file) {
    for (std::size_t i = 0; i < allows.size(); ++i) {
      if (allows[i].used || allows[i].rule == "stale-allow") continue;
      const int anno_line = allows[i].anno_line;
      const std::string rule = allows[i].rule;
      if (allowed(allows, anno_line, "stale-allow")) continue;
      findings.push_back(Finding{
          path, anno_line, "stale-allow",
          "lint:allow(" + rule + ") suppresses no finding; remove the stale "
          "annotation (or fix the rule id)"});
    }
  }
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return findings;
}

std::string coverage_json(const std::vector<SourceFile>& files) {
  struct Row {
    std::string name;
    std::string file;
    int mutexes = 0;
    int fields = 0;
    int guarded = 0;
    int unguarded = 0;
    int unannotated = 0;
    int accesses = 0;
    int unguarded_access = 0;
  };
  const std::vector<ClassInfo> classes = index_classes(files);
  const std::vector<FunctionInfo> funcs = index_functions(files);
  std::map<std::string, FileAllows> allows_by_file;
  for (const SourceFile& file : files) {
    allows_by_file[file.path] = collect_allows(file.contents);
  }
  const RepoAnalysis analysis = analyze_repo(files, classes, funcs, allows_by_file);
  std::vector<Row> rows;
  for (const ClassInfo& cls : classes) {
    if (!cls.owns_ordered_mutex || !starts_with(cls.file, "src/")) continue;
    Row row;
    row.name = cls.name;
    row.file = cls.file;
    for (const FieldInfo& field : cls.fields) {
      if (field.is_mutex) {
        ++row.mutexes;
        continue;
      }
      if (field.exempt) continue;
      ++row.fields;
      if (field.guarded) {
        ++row.guarded;
      } else if (field.unguarded) {
        ++row.unguarded;
      } else {
        ++row.unannotated;
      }
    }
    const auto access = analysis.access.find(cls.name);
    if (access != analysis.access.end()) {
      row.accesses = access->second.accesses;
      row.unguarded_access = access->second.unguarded;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  Row total;
  for (const Row& row : rows) {
    total.mutexes += row.mutexes;
    total.fields += row.fields;
    total.guarded += row.guarded;
    total.unguarded += row.unguarded;
    total.unannotated += row.unannotated;
  }
  // Summary access counters come from the analysis directly so accesses in
  // guarded classes without a mutex of their own (fields guarded by an
  // enclosing class's mutex) are not dropped.
  for (const auto& [owner, stats] : analysis.access) {
    total.accesses += stats.accesses;
    total.unguarded_access += stats.unguarded;
  }
  std::ostringstream out;
  // Field order matters to tools/check.sh: its sed extracts key off
  // `"unguarded": ` and `"unguarded_access": ` — the new counters sit after
  // "unannotated" so the original extract cannot mis-bind.
  out << "{\n  \"classes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"class\": \"" << row.name << "\", \"file\": \"" << row.file
        << "\", \"mutexes\": " << row.mutexes << ", \"fields\": " << row.fields
        << ", \"guarded\": " << row.guarded << ", \"unguarded\": " << row.unguarded
        << ", \"unannotated\": " << row.unannotated
        << ", \"accesses\": " << row.accesses
        << ", \"unguarded_access\": " << row.unguarded_access << "}"
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"summary\": {\"classes\": " << rows.size() << ", \"mutexes\": " << total.mutexes
      << ", \"fields\": " << total.fields << ", \"guarded\": " << total.guarded
      << ", \"unguarded\": " << total.unguarded << ", \"unannotated\": " << total.unannotated
      << ", \"accesses\": " << total.accesses
      << ", \"unguarded_access\": " << total.unguarded_access
      << ", \"deterministic_roots\": " << analysis.deterministic_roots
      << ", \"tainted\": " << analysis.tainted
      << ", \"hot_kernel_roots\": " << analysis.hot_kernel_roots
      << ", \"hot_allocs\": " << analysis.hot_allocs
      << ", \"blocking_roots\": " << analysis.blocking_roots
      << ", \"nonblocking_contracts\": " << analysis.nonblocking_contracts
      << ", \"pin_escapes\": " << analysis.pin_escapes << "}\n}\n";
  return out.str();
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": " << f.rule << ": " << f.message << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  // Control characters and non-ASCII bytes are \u-escaped so the output is
  // always parseable ASCII JSON, whatever a finding message or path carries
  // (multi-byte UTF-8 sequences come out as one \u00XX escape per byte —
  // lossy as text, but the check.sh gates only need well-formed JSON).
  auto escape = [](const std::string& s) {
    std::string out;
    char buf[8];
    for (const char raw : s) {
      const auto c = static_cast<unsigned char>(raw);
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (c < 0x20 || c >= 0x7f) {
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(raw);
          }
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"file\": \"" << escape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << f.rule << "\", \"message\": \"" << escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace shmcaffe::lint
