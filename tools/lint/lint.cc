#include "tools/lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <regex>
#include <sstream>

namespace shmcaffe::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

/// Per-line `lint:allow(rule[,rule...])` annotations, extracted from the
/// *raw* source (they live inside comments, which the scrubber removes).
/// `lint:allow-next-line(...)` attaches its rules to the following line,
/// for declarations too long to carry a trailing comment.
std::vector<std::vector<std::string>> collect_allows(std::string_view contents) {
  static const std::regex kAllow(R"(lint:allow(-next-line)?\(([a-z0-9][a-z0-9,\s-]*)\))");
  std::vector<std::string> raw_lines;
  {
    std::size_t begin = 0;
    while (begin <= contents.size()) {
      std::size_t end = contents.find('\n', begin);
      if (end == std::string_view::npos) end = contents.size();
      raw_lines.emplace_back(contents.substr(begin, end - begin));
      if (end == contents.size()) break;
      begin = end + 1;
    }
  }
  // One extra slot so allow-next-line on the last line stays in bounds.
  std::vector<std::vector<std::string>> per_line(raw_lines.size() + 1);
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
      const std::size_t target = (*it)[1].matched ? i + 1 : i;
      std::stringstream rules((*it)[2].str());
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        rule = trim(rule);
        if (!rule.empty()) per_line[target].push_back(rule);
      }
    }
  }
  return per_line;
}

std::vector<std::string> split_lines(std::string_view contents) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= contents.size()) {
    std::size_t end = contents.find('\n', begin);
    if (end == std::string_view::npos) end = contents.size();
    lines.emplace_back(contents.substr(begin, end - begin));
    if (end == contents.size()) break;
    begin = end + 1;
  }
  return lines;
}

bool allowed(const std::vector<std::vector<std::string>>& allows, int line,
             std::string_view rule) {
  const auto index = static_cast<std::size_t>(line - 1);
  if (index >= allows.size()) return false;
  const std::vector<std::string>& on_line = allows[index];
  return std::find(on_line.begin(), on_line.end(), rule) != on_line.end();
}

/// Top-level project directories: a quoted include must start with one of
/// these, and an angle include must not.
constexpr std::array<std::string_view, 18> kProjectDirs = {
    "common/", "core/",     "smb/",  "sim/",  "net/",       "rdma/",
    "minimpi/", "coll/",    "dl/",   "data/", "cluster/",   "baselines/",
    "fault/",   "bench/",   "tests/", "tools/", "recovery/", "elastic/"};

bool is_project_include(std::string_view target) {
  for (const std::string_view dir : kProjectDirs) {
    if (starts_with(target, dir)) return true;
  }
  return false;
}

// --- include-layering: the declared src/ directory DAG ----------------------
//
// Each entry lists the directories a src/<dir>/ source may include from
// (same-directory includes are always allowed and not listed).  The DAG is
// documented in DESIGN.md ("Include layering"); edges point strictly
// downward, so an upward or cyclic include cannot be expressed — the rule
// reports it instead.  Growing a new dependency means adding the edge here
// *and* justifying it in DESIGN.md.
struct LayerEntry {
  std::string_view dir;
  std::vector<std::string_view> deps;
};

const std::vector<LayerEntry>& layering_table() {
  static const std::vector<LayerEntry> table = {
      {"common", {}},
      {"sim", {"common"}},
      {"fault", {"common"}},
      {"dl", {"common"}},
      {"cluster", {"common"}},
      {"net", {"common", "sim"}},
      {"data", {"common", "dl"}},
      {"rdma", {"common", "net", "sim"}},
      {"minimpi", {"common", "net", "sim"}},
      {"smb", {"common", "net", "rdma", "sim"}},
      {"coll", {"common", "minimpi"}},
      {"recovery", {"common", "fault", "smb"}},
      {"elastic", {"common", "fault", "recovery"}},
      {"core",
       {"cluster", "coll", "common", "data", "dl", "elastic", "fault", "minimpi", "net",
        "recovery", "sim", "smb"}},
      {"baselines",
       {"cluster", "coll", "common", "core", "data", "dl", "elastic", "fault", "minimpi",
        "net", "sim"}},
  };
  return table;
}

const LayerEntry* layer_of(std::string_view dir) {
  for (const LayerEntry& entry : layering_table()) {
    if (entry.dir == dir) return &entry;
  }
  return nullptr;
}

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<PatternRule>& rng_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"rng-source", std::regex(R"(\b(rand|srand)\s*\()"),
                 "raw libc entropy; draw from a seeded common::Rng instead"});
    r.push_back({"rng-source", std::regex(R"(\brandom_device\b)"),
                 "std::random_device is nondeterministic; seed a common::Rng explicitly"});
    r.push_back({"rng-source",
                 std::regex(R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b)"),
                 "std::<random> engine; the project's only generator is common::Rng"});
    return r;
  }();
  return rules;
}

const std::vector<PatternRule>& sim_clock_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    r.push_back({"sim-wall-clock",
                 std::regex(R"(\b(steady_clock|high_resolution_clock)\b)"),
                 "wall clock in simulated code; use the Simulation's virtual clock"});
    r.push_back({"sim-wall-clock", std::regex(R"(\b(sleep_for|sleep_until)\b)"),
                 "thread sleep in simulated code; co_await sim.delay(...) instead"});
    r.push_back({"sim-wall-clock", std::regex(R"(\bthis_thread\b)"),
                 "std::this_thread in simulated code; sim processes are coroutines"});
    return r;
  }();
  return rules;
}

/// Paths where spawning std::thread directly is the point: the work pool
/// itself, the Fig. 6 worker protocol (update thread + worker launch), and
/// the MiniMPI / simulation internals that model hosts as threads.
/// Everything else under src/ parallelises through common/parallel.h; a raw
/// thread there is either compute parallelism that would break thread-count
/// determinism or a lifecycle hazard the pool already solves.
bool raw_thread_allowed_path(std::string_view path) {
  return starts_with(path, "src/common/parallel.") ||
         starts_with(path, "src/core/trainer.cc") ||
         starts_with(path, "src/minimpi/") || starts_with(path, "src/sim/");
}

// --- pass 1: the declaration index ------------------------------------------

/// Strips C++ attributes (`[[...]]`) from a statement.
std::string strip_attributes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '[' && i + 1 < s.size() && s[i + 1] == '[') {
      const std::size_t close = s.find("]]", i + 2);
      if (close == std::string_view::npos) break;
      i = close + 1;
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

/// Identifier tokens of a statement, in order.
std::vector<std::string> identifier_tokens(std::string_view s) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < s.size()) {
    const auto c = static_cast<unsigned char>(s[i]);
    if (std::isalpha(c) || c == '_') {
      std::size_t j = i;
      while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
        ++j;
      }
      tokens.emplace_back(s.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return tokens;
}

bool has_token(const std::vector<std::string>& tokens, std::string_view token) {
  return std::find(tokens.begin(), tokens.end(), token) != tokens.end();
}

/// True if `s` contains a '(' outside template angle brackets.  Used to tell
/// function declarations/definitions from field declarations: a field's
/// parens (std::function<void(int)>) only ever live inside its template
/// arguments once initialisers are cut.
bool has_top_level_paren(std::string_view s) {
  int angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '<') {
      if (next == '<' || next == '=') {
        ++i;
        continue;
      }
      ++angle;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') continue;  // ->
      if (next == '=') {
        ++i;
        continue;
      }
      if (next == '>' && angle >= 2) {
        angle -= 2;
        ++i;
        continue;
      }
      if (angle > 0) --angle;
    } else if (c == '(' && angle == 0) {
      return true;
    }
  }
  return false;
}

/// Position of the first `wanted` character outside parens/brackets/angles,
/// or npos.  `::` never counts as the ':' it contains.
std::size_t top_level_pos(std::string_view s, char wanted) {
  int angle = 0;
  int paren = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '(' || c == '[') {
      ++paren;
    } else if (c == ')' || c == ']') {
      if (paren > 0) --paren;
    } else if (c == '<') {
      if (next == '<' || next == '=') {
        ++i;
        continue;
      }
      ++angle;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') continue;
      if (next == '=') {
        ++i;
        continue;
      }
      if (next == '>' && angle >= 2) {
        angle -= 2;
        ++i;
        continue;
      }
      if (angle > 0) --angle;
    } else if (c == ':' && (next == ':' || (i > 0 && s[i - 1] == ':'))) {
      continue;  // scope resolution
    } else if (c == wanted && angle == 0 && paren == 0) {
      // '=' must be the assignment, not ==, <=, >=, != (the angle branch
      // already swallowed <= / >=).
      if (wanted == '=' && (next == '=' || (i > 0 && (s[i - 1] == '=' || s[i - 1] == '!')))) {
        continue;
      }
      return i;
    }
  }
  return std::string_view::npos;
}

/// Extracts and removes SHMCAFFE_GUARDED_BY(...) / SHMCAFFE_UNGUARDED from a
/// declaration statement.
void extract_annotations(std::string& stmt, bool& guarded, std::string& guard,
                         bool& unguarded) {
  static const std::string kGuardedBy = "SHMCAFFE_GUARDED_BY";
  static const std::string kUnguarded = "SHMCAFFE_UNGUARDED";
  std::size_t at = stmt.find(kGuardedBy);
  if (at != std::string::npos) {
    std::size_t open = stmt.find('(', at + kGuardedBy.size());
    if (open != std::string::npos) {
      int depth = 1;
      std::size_t close = open + 1;
      while (close < stmt.size() && depth > 0) {
        if (stmt[close] == '(') ++depth;
        if (stmt[close] == ')') --depth;
        ++close;
      }
      guarded = true;
      guard = trim(stmt.substr(open + 1, close - open - 2));
      stmt.erase(at, close - at);
    }
  }
  at = stmt.find(kUnguarded);
  if (at != std::string::npos) {
    unguarded = true;
    stmt.erase(at, kUnguarded.size());
  }
}

/// Scrubbed source with preprocessor lines (and their backslash
/// continuations) blanked, joined back into one text: the indexer's input.
std::string indexable_text(std::string_view contents) {
  std::vector<std::string> lines = scrub_source(contents);
  bool continuation = false;
  for (std::string& line : lines) {
    const std::string body = trim(line);
    const bool active = continuation || (!body.empty() && body.front() == '#');
    continuation = active && !body.empty() && body.back() == '\\';
    if (active) line.clear();
  }
  std::string text;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) text.push_back('\n');
    text += lines[i];
  }
  return text;
}

/// Recursive-descent declaration scanner over scrubbed, preprocessor-blanked
/// source.  It understands just enough C++ structure to find class/struct
/// bodies and split them into member declarations: function bodies and
/// initialisers are skipped, nested classes extend the qualified name.
class ClassIndexer {
 public:
  ClassIndexer(std::string text, std::string file, std::vector<ClassInfo>* out)
      : text_(std::move(text)), file_(std::move(file)), out_(out) {}

  void run() { parse_scope("", -1); }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  char get() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Consumes a balanced brace block whose '{' was already consumed.
  void skip_braces() {
    int depth = 1;
    while (!eof() && depth > 0) {
      const char c = get();
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
  }

  /// Consumes through the next top-level ';' (trailing declarators after a
  /// class/enum body, the tail of a brace-initialised member).  Stops short
  /// of a scope-closing '}'.
  void consume_to_semicolon() {
    int depth = 0;
    while (!eof()) {
      if (depth == 0 && text_[pos_] == '}') return;
      const char c = get();
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (c == ';' && depth == 0) return;
    }
  }

  /// Accumulates a statement until ';', '{' or '}' at paren depth 0;
  /// returns the (consumed) terminator, '\0' at EOF.
  char collect(std::string& stmt, int& stmt_line) {
    stmt.clear();
    stmt_line = 0;
    int paren = 0;
    while (!eof()) {
      const char c = text_[pos_];
      if (paren == 0 && (c == ';' || c == '{' || c == '}')) {
        get();
        return c;
      }
      const int at_line = line_;
      get();
      if (c == '(' || c == '[') ++paren;
      if ((c == ')' || c == ']') && paren > 0) --paren;
      if (stmt_line == 0 && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line = at_line;
      }
      stmt.push_back(c == '\n' ? ' ' : c);
    }
    return '\0';
  }

  /// The (possibly ::-qualified) name after the class-key, or "<anonymous>".
  static std::string class_name_of(const std::string& head) {
    static const std::regex kKey(R"(\b(class|struct|union)\b)");
    static const std::regex kName(R"(^\s*([A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_][A-Za-z0-9_]*)*))");
    std::smatch key;
    if (!std::regex_search(head, key, kKey)) return "<anonymous>";
    const std::string rest = key.suffix().str();
    std::smatch name;
    if (!std::regex_search(rest, name, kName)) return "<anonymous>";
    return name[1].str();
  }

  void parse_scope(const std::string& prefix, int class_index) {
    std::string stmt;
    int stmt_line = 0;
    while (!eof()) {
      const char term = collect(stmt, stmt_line);
      if (term == ';') {
        if (class_index >= 0) handle_field(stmt, stmt_line, class_index);
        continue;
      }
      if (term == '}' || term == '\0') return;
      // term == '{': classify the head.
      const std::string head = trim(strip_attributes(stmt));
      if (head.empty()) {
        skip_braces();
        continue;
      }
      const std::vector<std::string> tokens = identifier_tokens(head);
      if (top_level_pos(head, '=') != std::string::npos) {
        // `type name = { ... };` — brace initialiser after '='.
        skip_braces();
        consume_to_semicolon();
        if (class_index >= 0) handle_field(head, stmt_line, class_index);
        continue;
      }
      if (has_token(tokens, "namespace")) {
        parse_scope(prefix, class_index);
        continue;
      }
      if (has_token(tokens, "enum")) {
        skip_braces();
        consume_to_semicolon();
        continue;
      }
      const bool function_like = has_top_level_paren(head) || has_token(tokens, "operator");
      const bool class_like = has_token(tokens, "class") || has_token(tokens, "struct") ||
                              has_token(tokens, "union");
      if (class_like && !function_like) {
        const std::string name = class_name_of(head);
        const std::string qualified = prefix.empty() ? name : prefix + "::" + name;
        const int index = static_cast<int>(out_->size());
        ClassInfo info;
        info.name = qualified;
        info.enclosing = prefix;
        info.file = file_;
        info.line = stmt_line;
        out_->push_back(std::move(info));
        parse_scope(qualified, index);
        consume_to_semicolon();  // `} trailing_declarator;`
        continue;
      }
      if (function_like) {
        skip_braces();
        continue;
      }
      if (class_index >= 0) {
        // `type name{init};` — brace-initialised member.
        skip_braces();
        consume_to_semicolon();
        handle_field(head, stmt_line, class_index);
        continue;
      }
      skip_braces();  // unrecognised block at namespace scope
    }
  }

  void handle_field(std::string stmt, int line, int class_index) {
    bool guarded = false;
    bool unguarded = false;
    std::string guard;
    extract_annotations(stmt, guarded, guard, unguarded);
    stmt = trim(strip_attributes(stmt));
    // Strip access-specifier labels glued to the first declaration.
    static const std::regex kAccess(R"(^\s*(public|private|protected)\s*:)");
    std::smatch access;
    while (std::regex_search(stmt, access, kAccess) && stmt[access.position(0)] != ':') {
      stmt = trim(access.suffix().str());
    }
    if (stmt.empty()) return;
    const std::vector<std::string> tokens = identifier_tokens(stmt);
    if (tokens.empty()) return;
    static const std::array<std::string_view, 9> kSkipLead = {
        "using", "typedef", "friend", "template", "class", "struct", "union", "enum",
        "namespace"};
    for (const std::string_view lead : kSkipLead) {
      if (tokens.front() == lead) return;
    }
    // static / constexpr members have no per-instance state to guard.
    if (has_token(tokens, "static") || has_token(tokens, "constexpr") ||
        has_token(tokens, "operator")) {
      return;
    }
    const std::size_t init = top_level_pos(stmt, '=');
    if (init != std::string::npos) stmt = trim(stmt.substr(0, init));
    if (stmt.empty()) return;
    if (has_top_level_paren(stmt)) return;  // function declaration
    const std::size_t bitfield = top_level_pos(stmt, ':');
    if (bitfield != std::string::npos) stmt = trim(stmt.substr(0, bitfield));
    static const std::regex kDeclName(
        R"(([A-Za-z_][A-Za-z0-9_]*)\s*(\[[^\]]*\]\s*)*$)");
    std::smatch name_match;
    if (!std::regex_search(stmt, name_match, kDeclName)) return;
    const std::string name = name_match[1].str();
    const std::string type = trim(stmt.substr(0, static_cast<std::size_t>(name_match.position(1))));
    if (type.empty()) return;  // lone identifier: a macro invocation, not a field

    static const std::regex kOrderedMutexType(R"(\bOrdered(Shared)?Mutex\b)");
    static const std::regex kPlainMutexType(
        R"(\b(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex)\b)");
    static const std::regex kConditionVariable(R"(\bcondition_variable(_any)?\b)");
    static const std::regex kAtomicLead(
        R"(^((mutable|volatile|inline)\s+)*std\s*::\s*atomic\b)");
    static const std::regex kConstLead(R"(^((mutable|volatile|inline)\s+)*const\b)");

    FieldInfo field;
    field.name = name;
    field.line = line;
    field.guarded = guarded;
    field.guard = guard;
    field.unguarded = unguarded;
    const bool value_type = type.find('*') == std::string::npos &&
                            type.find('&') == std::string::npos;
    field.is_mutex = value_type && std::regex_search(type, kOrderedMutexType);
    field.exempt = field.is_mutex ||
                   (value_type && std::regex_search(type, kPlainMutexType)) ||
                   std::regex_search(type, kConditionVariable) ||
                   std::regex_search(type, kAtomicLead) ||
                   (value_type && std::regex_search(type, kConstLead)) ||
                   type.find('&') != std::string::npos;
    ClassInfo& cls = (*out_)[static_cast<std::size_t>(class_index)];
    if (field.is_mutex) cls.owns_ordered_mutex = true;
    cls.fields.push_back(std::move(field));
  }

  std::string text_;
  std::string file_;
  std::vector<ClassInfo>* out_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// First identifier of a SHMCAFFE_GUARDED_BY expression ("mu_", or "mu_" of
/// "other.mu_"); the guard must name a mutex member.
std::string guard_identifier(const std::string& guard) {
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  std::smatch m;
  if (!std::regex_search(guard, m, kIdent)) return {};
  return m.str(0);
}

/// True if `cls` (or a lexically enclosing class) has an ordered-mutex
/// member named `name`.
bool resolves_to_mutex(const std::vector<ClassInfo>& index, const ClassInfo& cls,
                       const std::string& name) {
  const ClassInfo* current = &cls;
  while (current != nullptr) {
    for (const FieldInfo& field : current->fields) {
      if (field.is_mutex && field.name == name) return true;
    }
    const std::string& enclosing = current->enclosing;
    current = nullptr;
    if (!enclosing.empty()) {
      for (const ClassInfo& candidate : index) {
        if (candidate.name == enclosing && candidate.file == cls.file) {
          current = &candidate;
          break;
        }
      }
    }
  }
  return false;
}

/// Pass 2 (index-driven half): the guarded-by rule over every src/ class
/// owning an ordered mutex.
std::vector<Finding> guarded_by_findings(
    const std::vector<SourceFile>& files, const std::vector<ClassInfo>& index) {
  std::map<std::string, std::vector<std::vector<std::string>>> allows_by_file;
  for (const SourceFile& file : files) {
    allows_by_file[file.path] = collect_allows(file.contents);
  }
  std::vector<Finding> findings;
  for (const ClassInfo& cls : index) {
    if (!cls.owns_ordered_mutex || !starts_with(cls.file, "src/")) continue;
    const auto allows = allows_by_file.find(cls.file);
    for (const FieldInfo& field : cls.fields) {
      if (field.is_mutex || field.exempt || field.unguarded) continue;
      std::string message;
      if (!field.guarded) {
        message = "field '" + field.name + "' of mutex-owning class '" + cls.name +
                  "' has neither SHMCAFFE_GUARDED_BY(mu) nor SHMCAFFE_UNGUARDED "
                  "(see src/common/ordered_mutex.h)";
      } else {
        const std::string ident = guard_identifier(field.guard);
        if (!ident.empty() && resolves_to_mutex(index, cls, ident)) continue;
        message = "SHMCAFFE_GUARDED_BY(" + field.guard + ") on field '" + field.name +
                  "' names no ordered-mutex member of '" + cls.name +
                  "' or an enclosing class";
      }
      if (allows != allows_by_file.end() &&
          allowed(allows->second, field.line, "guarded-by")) {
        continue;
      }
      findings.push_back(Finding{cls.file, field.line, "guarded-by", std::move(message)});
    }
  }
  return findings;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "rng-source",       "wall-clock",  "sim-wall-clock",  "raii-lock",
      "sim-ptr-container", "pragma-once", "include-hygiene", "no-naked-epoch",
      "no-raw-thread",     "guarded-by",  "include-layering"};
  return ids;
}

bool is_sim_path(std::string_view path) {
  if (starts_with(path, "src/sim/") || starts_with(path, "src/net/")) return true;
  return starts_with(basename_of(path), "sim_");
}

const std::vector<std::string>& layering_dirs() {
  static const std::vector<std::string> dirs = [] {
    std::vector<std::string> out;
    for (const LayerEntry& entry : layering_table()) out.emplace_back(entry.dir);
    return out;
  }();
  return dirs;
}

bool layering_allows(std::string_view from_dir, std::string_view to_dir) {
  if (from_dir == to_dir) return true;
  const LayerEntry* entry = layer_of(from_dir);
  if (entry == nullptr) return false;
  return std::find(entry->deps.begin(), entry->deps.end(), to_dir) != entry->deps.end();
}

std::vector<std::string> scrub_source(std::string_view contents) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<std::string> lines;
  std::string current;
  State state = State::kCode;
  std::string raw_delim;  // the `)delim"` terminator of an active raw string

  const std::size_t n = contents.size();
  // True if the 'R' at index i opens a raw string: the preceding identifier
  // run must be empty or one of the encoding prefixes (u8R", uR", LR", UR").
  const auto raw_string_at = [&](std::size_t i) {
    std::size_t start = i;
    while (start > 0 && (std::isalnum(static_cast<unsigned char>(contents[start - 1])) ||
                         contents[start - 1] == '_')) {
      --start;
    }
    const std::string_view prefix = contents.substr(start, i - start);
    return prefix.empty() || prefix == "u8" || prefix == "u" || prefix == "L" ||
           prefix == "U";
  };

  for (std::size_t i = 0; i < n; ++i) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';
    if (c == '\n') {
      // Unterminated ordinary strings/chars/line comments reset at EOL —
      // unless the newline is escaped (a backslash line continuation, legal
      // in line comments and literals alike).  Block comments and raw
      // strings continue across lines regardless.
      const bool spliced =
          (i >= 1 && contents[i - 1] == '\\') ||
          (i >= 2 && contents[i - 1] == '\r' && contents[i - 2] == '\\');
      if (!spliced &&
          (state == State::kLineComment || state == State::kString || state == State::kChar)) {
        state = State::kCode;
      }
      lines.push_back(std::move(current));
      current.clear();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' && raw_string_at(i)) {
          // (prefix)R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < n && contents[open] != '(' && contents[open] != '\n') {
            delim.push_back(contents[open]);
            ++open;
          }
          if (open < n && contents[open] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            current += "R\"\"";  // keep a token so the line is not empty
            i = open;            // consumed through the opening '('
          } else {
            current.push_back(c);
          }
        } else if (c == '"') {
          state = State::kString;
          current.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          current.push_back('\'');
        } else {
          current.push_back(c);
        }
        break;
      case State::kLineComment:
        break;  // dropped until EOL
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (next != '\n') ++i;  // never swallow a newline: line counts stay exact
        } else if (c == '"') {
          state = State::kCode;
          current.push_back('"');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (next != '\n') ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current.push_back('\'');
        }
        break;
      case State::kRawString:
        if (c == ')' && contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

std::vector<ClassInfo> index_classes(const std::vector<SourceFile>& files) {
  std::vector<ClassInfo> index;
  for (const SourceFile& file : files) {
    ClassIndexer indexer(indexable_text(file.contents), file.path, &index);
    indexer.run();
  }
  return index;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view contents) {
  std::vector<Finding> findings;
  const std::vector<std::vector<std::string>> allows = collect_allows(contents);
  const std::vector<std::string> lines = scrub_source(contents);
  const std::vector<std::string> raw_lines = split_lines(contents);
  const bool sim = is_sim_path(path);
  const bool in_rng = starts_with(path, "src/common/rng");
  // no-raw-thread covers library code only: tests and benches drive threads
  // deliberately (pool shutdown races, concurrency suites).
  const bool raw_thread_applies =
      starts_with(path, "src/") && !raw_thread_allowed_path(path);
  // The fencing helpers themselves necessarily compare raw epoch values.
  const bool in_epoch_helpers = starts_with(path, "src/recovery/epoch");
  const bool header = ends_with(path, ".h");
  // include-layering applies to src/<dir>/ sources with a known layer dir.
  std::string from_dir;
  if (starts_with(path, "src/")) {
    const std::string_view rest = path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) from_dir = std::string(rest.substr(0, slash));
  }

  auto report = [&](int line, std::string_view rule, std::string message) {
    if (allowed(allows, line, rule)) return;
    findings.push_back(Finding{std::string(path), line, std::string(rule), std::move(message)});
  };

  static const std::regex kWallClock(R"(\bsystem_clock\b)");
  // no-raw-thread: std::thread / std::jthread construction or mention in
  // library code.  Matches the type name, not this_thread (the \b after ::
  // does not reach across this_thread's underscore).
  static const std::regex kRawThread(R"(\bstd\s*::\s*j?thread\b)");
  // no-naked-epoch: a comparison operator adjacent to a service-epoch value
  // (identifier containing `service_epoch`, optionally a call).  Service
  // epochs are fenced through epoch_is_current / epoch_is_stale so the
  // 0-means-never-resolved sentinel cannot be mishandled; a plain `=`
  // assignment never matches.  The `[^=!<>\-]` guard keeps `<<`, `>>`,
  // compound tokens and `->member` accesses from firing.
  static const std::regex kNakedEpochLeft(
      R"(\w*service_epoch\w*\s*(?:\(\s*\))?\s*(?:[=!<>]=|<(?!<)|>(?!>)))");
  static const std::regex kNakedEpochRight(
      R"((?:^|[^=!<>\-])(?:[=!<>]=|<(?!<)|>(?!>))\s*\w*service_epoch\w*)");
  static const std::regex kBareLock(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*(lock|unlock|try_lock|lock_shared|unlock_shared|try_lock_shared)\s*\()");
  static const std::regex kPtrContainer(R"(\bunordered_(?:set|map)\s*<\s*([^,<>]*\*)\s*[,>])");
  static const std::regex kQuotedInclude("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  static const std::regex kQuotedIncludeShape("^\\s*#\\s*include\\s*\"");
  static const std::regex kAngleInclude(R"(^\s*#\s*include\s*<([^>]+)>)");

  bool saw_pragma_once = false;

  for (std::size_t index = 0; index < lines.size(); ++index) {
    const std::string& line = lines[index];
    const int lineno = static_cast<int>(index) + 1;
    if (line.find("#pragma once") != std::string::npos) saw_pragma_once = true;

    if (!in_rng) {
      for (const PatternRule& rule : rng_patterns()) {
        if (std::regex_search(line, rule.pattern)) report(lineno, rule.rule, rule.message);
      }
    }
    if (raw_thread_applies && std::regex_search(line, kRawThread)) {
      report(lineno, "no-raw-thread",
             "raw std::thread in library code; use the shared work pool "
             "(common/parallel.h) so results stay thread-count-invariant");
    }
    if (std::regex_search(line, kWallClock)) {
      report(lineno, "wall-clock",
             "std::chrono::system_clock is nondeterministic wall time; use steady_clock "
             "(functional code) or the simulation clock");
    }
    if (!in_epoch_helpers && (std::regex_search(line, kNakedEpochLeft) ||
                              std::regex_search(line, kNakedEpochRight))) {
      report(lineno, "no-naked-epoch",
             "naked comparison on a service epoch; use epoch_is_current / "
             "epoch_is_stale (src/recovery/epoch.h) so fencing semantics stay "
             "in one place");
    }
    if (sim) {
      for (const PatternRule& rule : sim_clock_patterns()) {
        if (std::regex_search(line, rule.pattern)) report(lineno, rule.rule, rule.message);
      }
      std::smatch container;
      if (std::regex_search(line, container, kPtrContainer)) {
        report(lineno, "sim-ptr-container",
               "pointer-keyed " + container.str(0).substr(0, container.str(0).find('<')) +
                   " in simulated code iterates in ASLR-dependent order; key by a "
                   "stable id or use an ordered container");
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kBareLock);
         it != std::sregex_iterator(); ++it) {
      const std::string receiver = lowercase((*it)[1].str());
      if (receiver.find("mutex") != std::string::npos ||
          receiver.find("mtx") != std::string::npos) {
        report(lineno, "raii-lock",
               "bare ." + (*it)[2].str() + "() on '" + (*it)[1].str() +
                   "'; use std::scoped_lock / unique_lock / shared_lock");
      }
    }
    // The scrubber blanks string-literal bodies, so the quoted target must be
    // re-extracted from the raw line; the scrubbed line gates on the directive
    // itself so commented-out includes stay ignored.
    std::smatch include;
    if (std::regex_search(line, kQuotedIncludeShape) && index < raw_lines.size() &&
        std::regex_search(raw_lines[index], include, kQuotedInclude)) {
      const std::string target = include[1].str();
      if (target.find("../") != std::string::npos || starts_with(target, "./")) {
        report(lineno, "include-hygiene",
               "relative include \"" + target + "\"; use the repo-relative path from src/");
      } else if (target.find('/') == std::string::npos) {
        report(lineno, "include-hygiene",
               "directory-less include \"" + target +
                   "\"; project headers are included as \"dir/file.h\"");
      } else if (!from_dir.empty()) {
        // include-layering: the target's top directory must be in this
        // directory's declared dependency set (or the same directory).
        const std::string to_dir = target.substr(0, target.find('/'));
        if (to_dir != from_dir) {
          if (layer_of(from_dir) == nullptr) {
            report(lineno, "include-layering",
                   "src/" + from_dir + "/ is not a registered layer; add it (and its "
                   "dependencies) to the directory DAG in tools/lint/lint.cc");
          } else if (layer_of(to_dir) == nullptr) {
            report(lineno, "include-layering",
                   "include \"" + target + "\": '" + to_dir +
                       "' is not a src/ layer in the directory DAG (src/ must not "
                       "include from tests/, bench/ or tools/)");
          } else if (!layering_allows(from_dir, to_dir)) {
            report(lineno, "include-layering",
                   "include \"" + target + "\" from src/" + from_dir +
                       "/: '" + to_dir + "' is not in '" + from_dir +
                       "'s dependency set (upward or cyclic include; see the "
                       "layering DAG in DESIGN.md)");
          }
        }
      }
    } else if (std::regex_search(line, include, kAngleInclude)) {
      const std::string target = include[1].str();
      if (is_project_include(target)) {
        report(lineno, "include-hygiene",
               "project header <" + target + "> included with angle brackets; use quotes");
      }
    }
  }

  if (header && !saw_pragma_once) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::vector<Finding> lint_repo(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> file_findings = lint_source(file.path, file.contents);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  const std::vector<ClassInfo> index = index_classes(files);
  std::vector<Finding> guarded = guarded_by_findings(files, index);
  findings.insert(findings.end(), std::make_move_iterator(guarded.begin()),
                  std::make_move_iterator(guarded.end()));
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return findings;
}

std::string coverage_json(const std::vector<SourceFile>& files) {
  struct Row {
    std::string name;
    std::string file;
    int mutexes = 0;
    int fields = 0;
    int guarded = 0;
    int unguarded = 0;
    int unannotated = 0;
  };
  std::vector<Row> rows;
  for (const ClassInfo& cls : index_classes(files)) {
    if (!cls.owns_ordered_mutex || !starts_with(cls.file, "src/")) continue;
    Row row;
    row.name = cls.name;
    row.file = cls.file;
    for (const FieldInfo& field : cls.fields) {
      if (field.is_mutex) {
        ++row.mutexes;
        continue;
      }
      if (field.exempt) continue;
      ++row.fields;
      if (field.guarded) {
        ++row.guarded;
      } else if (field.unguarded) {
        ++row.unguarded;
      } else {
        ++row.unannotated;
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  Row total;
  for (const Row& row : rows) {
    total.mutexes += row.mutexes;
    total.fields += row.fields;
    total.guarded += row.guarded;
    total.unguarded += row.unguarded;
    total.unannotated += row.unannotated;
  }
  std::ostringstream out;
  out << "{\n  \"classes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"class\": \"" << row.name << "\", \"file\": \"" << row.file
        << "\", \"mutexes\": " << row.mutexes << ", \"fields\": " << row.fields
        << ", \"guarded\": " << row.guarded << ", \"unguarded\": " << row.unguarded
        << ", \"unannotated\": " << row.unannotated << "}"
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"summary\": {\"classes\": " << rows.size() << ", \"mutexes\": " << total.mutexes
      << ", \"fields\": " << total.fields << ", \"guarded\": " << total.guarded
      << ", \"unguarded\": " << total.unguarded << ", \"unannotated\": " << total.unannotated
      << "}\n}\n";
  return out.str();
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": " << f.rule << ": " << f.message << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"file\": \"" << escape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << f.rule << "\", \"message\": \"" << escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace shmcaffe::lint
