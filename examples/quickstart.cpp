// Quickstart: distributed deep learning with ShmCaffe in ~40 lines.
//
// Four asynchronous workers train a mini-Inception network on the synthetic
// dataset, sharing parameters through the Soft Memory Box with SEASGD
// (moving_rate 0.2, update_interval 1 — the paper's defaults).
//
//   $ ./quickstart
#include <cstdio>

#include "core/trainer.h"

int main() {
  using namespace shmcaffe;

  core::DistTrainOptions options;
  options.model_family = "mini_inception";
  options.workers = 4;        // 4 SEASGD workers (group_size 1 = ShmCaffe-A)
  options.batch_size = 16;
  options.epochs = 6;

  // The synthetic stand-in for ImageNet: 8 pattern classes, 12x12 images.
  options.input = dl::ModelInputSpec{1, 12, 12, 8};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 8;
  options.train_data.size = 2048;
  options.train_data.noise_stddev = 0.3;
  options.test_data = options.train_data;
  options.test_data.size = 512;
  options.test_data.seed = 0x7e57;  // held-out split

  std::printf("training %s with %d ShmCaffe workers...\n",
              options.model_family.c_str(), options.workers);
  const core::TrainResult result = core::train_shmcaffe(options);

  for (const core::EpochMetrics& epoch : result.curve) {
    std::printf("  epoch %d: accuracy %.1f%%, loss %.3f\n", epoch.epoch,
                100.0 * epoch.test_accuracy, epoch.test_loss);
  }
  std::printf("final: accuracy %.1f%%, loss %.3f (wall %.1fs)\n",
              100.0 * result.final_accuracy, result.final_loss, result.wall_seconds);
  return result.final_accuracy > 0.5 ? 0 : 1;
}
