// ImageNet-style end-to-end run: pick a platform, model family and worker
// layout; trains functionally on the synthetic dataset and prints the
// convergence curve.
//
//   $ ./imagenet_sim --platform shmcaffe-h --workers 8 --group 4
//                    --model mini_resnet --epochs 6     (one line)
//
// Platforms: shmcaffe-a | shmcaffe-h | caffe | caffe-mpi | mpicaffe
// Models:    mlp | mini_vgg | mini_inception | mini_resnet
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/functional_ssgd.h"
#include "core/trainer.h"

namespace {

using namespace shmcaffe;

struct Args {
  std::string platform = "shmcaffe-a";
  std::string model = "mini_inception";
  int workers = 4;
  int group = 4;
  int epochs = 4;
  double moving_rate = 0.2;
  int update_interval = 1;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--platform") {
      const char* v = next();
      if (v == nullptr) return false;
      args.platform = v;
    } else if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--workers") {
      const char* v = next();
      if (v == nullptr) return false;
      args.workers = std::atoi(v);
    } else if (flag == "--group") {
      const char* v = next();
      if (v == nullptr) return false;
      args.group = std::atoi(v);
    } else if (flag == "--epochs") {
      const char* v = next();
      if (v == nullptr) return false;
      args.epochs = std::atoi(v);
    } else if (flag == "--moving-rate") {
      const char* v = next();
      if (v == nullptr) return false;
      args.moving_rate = std::atof(v);
    } else if (flag == "--update-interval") {
      const char* v = next();
      if (v == nullptr) return false;
      args.update_interval = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return args.workers >= 1 && args.epochs >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--platform shmcaffe-a|shmcaffe-h|caffe|caffe-mpi|mpicaffe]\n"
                 "          [--model mlp|mini_vgg|mini_inception|mini_resnet]\n"
                 "          [--workers N] [--group G] [--epochs E]\n"
                 "          [--moving-rate A] [--update-interval U]\n",
                 argv[0]);
    return 2;
  }

  core::DistTrainOptions options;
  options.model_family = args.model;
  options.workers = args.workers;
  options.epochs = args.epochs;
  options.batch_size = 16;
  options.moving_rate = args.moving_rate;
  options.update_interval = args.update_interval;
  options.input = dl::ModelInputSpec{1, 12, 12, 8};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 8;
  options.train_data.size = 2048;
  options.test_data = options.train_data;
  options.test_data.size = 512;
  options.test_data.seed = 0x7e57;

  core::TrainResult result;
  if (args.platform == "shmcaffe-a") {
    options.group_size = 1;
    result = core::train_shmcaffe(options);
  } else if (args.platform == "shmcaffe-h") {
    options.group_size = args.group;
    result = core::train_shmcaffe(options);
  } else if (args.platform == "caffe") {
    result = baselines::train_ssgd(options, baselines::SsgdTransport::kNcclAllReduce);
  } else if (args.platform == "caffe-mpi") {
    result = baselines::train_ssgd(options, baselines::SsgdTransport::kMpiStar);
  } else if (args.platform == "mpicaffe") {
    result = baselines::train_ssgd(options, baselines::SsgdTransport::kMpiAllReduce);
  } else {
    std::fprintf(stderr, "unknown platform: %s\n", args.platform.c_str());
    return 2;
  }

  std::printf("platform=%s model=%s workers=%d\n", args.platform.c_str(),
              args.model.c_str(), args.workers);
  for (const core::EpochMetrics& epoch : result.curve) {
    std::printf("  epoch %d: accuracy %.1f%%, loss %.3f\n", epoch.epoch,
                100.0 * epoch.test_accuracy, epoch.test_loss);
  }
  std::printf("final accuracy %.1f%% in %.1fs\n", 100.0 * result.final_accuracy,
              result.wall_seconds);
  if (!result.worker_stats.empty()) {
    std::printf("\nper-worker breakdown (the paper's comp-vs-comm split, measured):\n");
    for (std::size_t w = 0; w < result.worker_stats.size(); ++w) {
      const core::WorkerStats& stats = result.worker_stats[w];
      std::printf(
          "  worker %zu: %lld iters, train %.2fs, exchange %.2fs (%lld), "
          "collectives %.2fs, data wait %.2fs\n",
          w, static_cast<long long>(stats.iterations), stats.train_seconds,
          stats.exchange_seconds, static_cast<long long>(stats.exchanges),
          stats.collective_seconds, stats.data_wait_seconds);
    }
  }
  return 0;
}
