// Using the Soft Memory Box API directly.
//
// This example exercises the SMB surface the way §III-B/E of the paper
// describes, without any deep learning on top:
//
//   1. a "master" creates a float segment and a counter segment,
//   2. "slave" threads attach by SHM key, write private increment segments
//      and ask the server to accumulate them into the global buffer,
//   3. everyone publishes progress on the shared board, and all threads
//      align their termination on the average-progress criterion,
//   4. update notifications (segment versions) let a monitor thread react
//      to global-buffer changes without polling the data.
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "core/progress_board.h"
#include "smb/server.h"

int main() {
  using namespace shmcaffe;

  smb::SmbServer server;
  constexpr smb::ShmKey kGlobalKey = 100;
  constexpr smb::ShmKey kBoardKey = 200;
  constexpr std::size_t kElements = 1 << 16;
  constexpr int kWorkers = 4;
  constexpr std::int64_t kTargetRounds = 50;

  // Master: create the shared global buffer and the progress board.
  const smb::Handle global = server.create_floats(kGlobalKey, kElements);
  core::ProgressBoard board(server, kBoardKey, kWorkers, /*create=*/true);

  // Monitor: wait on version notifications at absolute thresholds (the
  // board guarantees at least kWorkers * kTargetRounds accumulates).
  std::thread monitor([&server, global] {
    for (int report = 1; report <= 4; ++report) {
      // Deadline-based wait: if the writers die, the monitor gives up
      // instead of blocking the process forever.
      const std::optional<std::uint64_t> version = server.wait_version_at_least(
          global, static_cast<std::uint64_t>(report) * 50, std::chrono::seconds(30));
      if (!version.has_value()) {
        std::printf("[monitor] timed out waiting for version %d\n", report * 50);
        return;
      }
      std::vector<float> probe(1);
      server.read(global, probe);
      std::printf("[monitor] global version %llu, first element %.1f\n",
                  static_cast<unsigned long long>(*version), probe[0]);
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&server, w] {
      // Slaves attach by the SHM key the master published.
      const smb::Handle shared = server.attach_floats(kGlobalKey);
      core::ProgressBoard my_board(server, kBoardKey, kWorkers, /*create=*/false);
      const smb::Handle delta =
          server.create_floats(1000 + static_cast<smb::ShmKey>(w), kElements);

      const std::vector<float> ones(kElements, 1.0F);
      std::int64_t round = 0;
      bool stop = false;
      while (!stop) {
        server.write(delta, ones);           // stage the increment...
        server.accumulate(delta, shared);    // ...and fold it into the global
        ++round;
        stop = my_board.should_stop(core::TerminationCriterion::kAverageIterations, w,
                                    round, kTargetRounds);
      }
      std::printf("[worker %d] stopped after %lld rounds\n", w,
                  static_cast<long long>(round));
      server.release(delta);
      server.release(shared);
      my_board.release();
    });
  }
  for (auto& t : workers) t.join();
  monitor.join();

  // Every accumulate added exactly 1.0 to every element.
  std::vector<float> result(1);
  server.read(global, result);
  const smb::SmbServerStats stats = server.stats();
  std::printf("total accumulates: %llu, global[0] = %.1f\n",
              static_cast<unsigned long long>(stats.accumulates), result[0]);
  std::printf("board: min=%lld max=%lld mean=%.1f (termination aligned)\n",
              static_cast<long long>(board.min_iterations()),
              static_cast<long long>(board.max_iterations()), board.mean_iterations());
  board.release();
  server.release(global);
  return 0;
}
