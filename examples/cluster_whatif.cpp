// What-if analysis with the timed cluster simulator.
//
// The paper ends by noting that VGG16-class models should not be scaled
// across nodes, and plans multiple SMB servers as future work.  This example
// uses the simulator to answer both questions quantitatively for every
// model: how far does ShmCaffe-A scale before communication overtakes
// computation, and how much would a faster accumulate engine buy?
#include <algorithm>
#include <cstdio>

#include "cluster/model_profiles.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sim_shmcaffe.h"

int main() {
  using namespace shmcaffe;

  std::printf("What-if: ShmCaffe-A scaling sweet spots on the paper's testbed\n\n");

  // 1. Throughput-optimal worker count per model (images/second of the
  //    whole cluster; batch 60 per worker).
  common::TextTable sweet({"model", "best workers", "cluster throughput", "comm ratio there"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    double best_throughput = 0.0;
    int best_workers = 1;
    double best_ratio = 0.0;
    for (int workers : {1, 2, 4, 8, 16}) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = workers;
      options.iterations = 120;
      const cluster::PlatformTiming timing = core::simulate_shmcaffe(options);
      const double throughput =
          60.0 * workers / units::to_seconds(timing.mean_iteration());
      if (throughput > best_throughput) {
        best_throughput = throughput;
        best_workers = workers;
        best_ratio = timing.comm_ratio();
      }
    }
    sweet.add_row({model.name, std::to_string(best_workers),
                   common::format_fixed(best_throughput, 0) + " img/s",
                   common::format_percent(best_ratio)});
  }
  std::printf("%s\n", sweet.render().c_str());

  // 2. Future work: how much does a faster SMB accumulate engine help the
  //    16-worker configurations?  (The paper plans multiple SMB servers;
  //    doubling/quadrupling the accumulate bandwidth approximates 2/4
  //    servers sharding the global buffer.)
  std::printf("Accumulate-engine scaling at 16 workers (~= multiple SMB servers):\n\n");
  common::TextTable engines({"model", "1x engine", "2x engine", "4x engine"});
  for (const cluster::ModelProfile& model : cluster::all_profiles()) {
    std::vector<std::string> row{model.name};
    for (double factor : {1.0, 2.0, 4.0}) {
      core::SimShmCaffeOptions options;
      options.model = model.kind;
      options.workers = 16;
      options.iterations = 120;
      options.testbed.smb_accumulate_bandwidth *= factor;
      const cluster::PlatformTiming timing = core::simulate_shmcaffe(options);
      row.push_back(common::format_duration(timing.mean_iteration()));
    }
    engines.add_row(std::move(row));
  }
  std::printf("%s\n", engines.render().c_str());
  std::printf("reading: models whose 16-worker iteration shrinks strongly with the\n"
              "engine factor are accumulate-bound at the single SMB server — the\n"
              "bottleneck the paper's multi-SMB future work targets.\n");
  return 0;
}
