# Empty compiler generated dependencies file for imagenet_sim.
# This may be replaced when dependencies are built.
