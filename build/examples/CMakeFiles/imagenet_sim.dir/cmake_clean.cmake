file(REMOVE_RECURSE
  "CMakeFiles/imagenet_sim.dir/imagenet_sim.cpp.o"
  "CMakeFiles/imagenet_sim.dir/imagenet_sim.cpp.o.d"
  "imagenet_sim"
  "imagenet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagenet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
