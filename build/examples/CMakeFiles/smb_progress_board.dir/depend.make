# Empty dependencies file for smb_progress_board.
# This may be replaced when dependencies are built.
