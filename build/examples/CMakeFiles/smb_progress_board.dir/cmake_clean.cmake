file(REMOVE_RECURSE
  "CMakeFiles/smb_progress_board.dir/smb_progress_board.cpp.o"
  "CMakeFiles/smb_progress_board.dir/smb_progress_board.cpp.o.d"
  "smb_progress_board"
  "smb_progress_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smb_progress_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
