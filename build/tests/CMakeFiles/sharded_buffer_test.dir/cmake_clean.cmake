file(REMOVE_RECURSE
  "CMakeFiles/sharded_buffer_test.dir/sharded_buffer_test.cc.o"
  "CMakeFiles/sharded_buffer_test.dir/sharded_buffer_test.cc.o.d"
  "sharded_buffer_test"
  "sharded_buffer_test.pdb"
  "sharded_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
