# Empty compiler generated dependencies file for sharded_buffer_test.
# This may be replaced when dependencies are built.
