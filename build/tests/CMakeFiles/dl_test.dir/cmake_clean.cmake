file(REMOVE_RECURSE
  "CMakeFiles/dl_test.dir/dl_test.cc.o"
  "CMakeFiles/dl_test.dir/dl_test.cc.o.d"
  "dl_test"
  "dl_test.pdb"
  "dl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
