file(REMOVE_RECURSE
  "CMakeFiles/async_ps_test.dir/async_ps_test.cc.o"
  "CMakeFiles/async_ps_test.dir/async_ps_test.cc.o.d"
  "async_ps_test"
  "async_ps_test.pdb"
  "async_ps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_ps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
