# Empty dependencies file for async_ps_test.
# This may be replaced when dependencies are built.
