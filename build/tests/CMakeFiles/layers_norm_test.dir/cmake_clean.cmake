file(REMOVE_RECURSE
  "CMakeFiles/layers_norm_test.dir/layers_norm_test.cc.o"
  "CMakeFiles/layers_norm_test.dir/layers_norm_test.cc.o.d"
  "layers_norm_test"
  "layers_norm_test.pdb"
  "layers_norm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layers_norm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
