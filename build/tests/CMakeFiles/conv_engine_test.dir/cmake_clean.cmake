file(REMOVE_RECURSE
  "CMakeFiles/conv_engine_test.dir/conv_engine_test.cc.o"
  "CMakeFiles/conv_engine_test.dir/conv_engine_test.cc.o.d"
  "conv_engine_test"
  "conv_engine_test.pdb"
  "conv_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
