file(REMOVE_RECURSE
  "CMakeFiles/sim_smb_test.dir/sim_smb_test.cc.o"
  "CMakeFiles/sim_smb_test.dir/sim_smb_test.cc.o.d"
  "sim_smb_test"
  "sim_smb_test.pdb"
  "sim_smb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_smb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
