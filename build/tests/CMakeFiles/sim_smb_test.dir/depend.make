# Empty dependencies file for sim_smb_test.
# This may be replaced when dependencies are built.
