file(REMOVE_RECURSE
  "CMakeFiles/smb_test.dir/smb_test.cc.o"
  "CMakeFiles/smb_test.dir/smb_test.cc.o.d"
  "smb_test"
  "smb_test.pdb"
  "smb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
