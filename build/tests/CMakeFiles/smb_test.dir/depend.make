# Empty dependencies file for smb_test.
# This may be replaced when dependencies are built.
