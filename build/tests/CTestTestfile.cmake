# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/smb_test[1]_include.cmake")
include("/root/repo/build/tests/sim_smb_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build/tests/coll_test[1]_include.cmake")
include("/root/repo/build/tests/dl_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/async_ps_test[1]_include.cmake")
include("/root/repo/build/tests/layers_norm_test[1]_include.cmake")
include("/root/repo/build/tests/conv_engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/model_gradcheck_test[1]_include.cmake")
