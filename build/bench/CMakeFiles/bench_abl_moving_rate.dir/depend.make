# Empty dependencies file for bench_abl_moving_rate.
# This may be replaced when dependencies are built.
