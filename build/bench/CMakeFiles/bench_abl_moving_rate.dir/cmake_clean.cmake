file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_moving_rate.dir/bench_abl_moving_rate.cc.o"
  "CMakeFiles/bench_abl_moving_rate.dir/bench_abl_moving_rate.cc.o.d"
  "bench_abl_moving_rate"
  "bench_abl_moving_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_moving_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
