# Empty dependencies file for bench_fig12_table5_shmcaffe_a.
# This may be replaced when dependencies are built.
