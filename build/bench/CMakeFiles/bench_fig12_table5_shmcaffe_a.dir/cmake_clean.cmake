file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_table5_shmcaffe_a.dir/bench_fig12_table5_shmcaffe_a.cc.o"
  "CMakeFiles/bench_fig12_table5_shmcaffe_a.dir/bench_fig12_table5_shmcaffe_a.cc.o.d"
  "bench_fig12_table5_shmcaffe_a"
  "bench_fig12_table5_shmcaffe_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_table5_shmcaffe_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
