file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_smb.dir/bench_micro_smb.cc.o"
  "CMakeFiles/bench_micro_smb.dir/bench_micro_smb.cc.o.d"
  "bench_micro_smb"
  "bench_micro_smb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_smb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
