# Empty dependencies file for bench_micro_smb.
# This may be replaced when dependencies are built.
