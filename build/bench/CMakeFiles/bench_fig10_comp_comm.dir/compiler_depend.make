# Empty compiler generated dependencies file for bench_fig10_comp_comm.
# This may be replaced when dependencies are built.
