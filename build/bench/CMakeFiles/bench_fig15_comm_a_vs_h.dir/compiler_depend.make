# Empty compiler generated dependencies file for bench_fig15_comm_a_vs_h.
# This may be replaced when dependencies are built.
