file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_comm_a_vs_h.dir/bench_fig15_comm_a_vs_h.cc.o"
  "CMakeFiles/bench_fig15_comm_a_vs_h.dir/bench_fig15_comm_a_vs_h.cc.o.d"
  "bench_fig15_comm_a_vs_h"
  "bench_fig15_comm_a_vs_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_comm_a_vs_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
