# Empty compiler generated dependencies file for bench_fig09_table2_training_time.
# This may be replaced when dependencies are built.
