# Empty dependencies file for bench_ext_multi_smb.
# This may be replaced when dependencies are built.
