file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_smb.dir/bench_ext_multi_smb.cc.o"
  "CMakeFiles/bench_ext_multi_smb.dir/bench_ext_multi_smb.cc.o.d"
  "bench_ext_multi_smb"
  "bench_ext_multi_smb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_smb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
