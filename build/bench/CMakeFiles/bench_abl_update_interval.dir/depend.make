# Empty dependencies file for bench_abl_update_interval.
# This may be replaced when dependencies are built.
