# Empty compiler generated dependencies file for bench_abl_link_model.
# This may be replaced when dependencies are built.
