file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dl.dir/bench_micro_dl.cc.o"
  "CMakeFiles/bench_micro_dl.dir/bench_micro_dl.cc.o.d"
  "bench_micro_dl"
  "bench_micro_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
