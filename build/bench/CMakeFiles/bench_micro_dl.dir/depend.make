# Empty dependencies file for bench_micro_dl.
# This may be replaced when dependencies are built.
