# Empty dependencies file for bench_fig11_async_vs_hybrid.
# This may be replaced when dependencies are built.
