file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_model_zoo.dir/bench_ext_model_zoo.cc.o"
  "CMakeFiles/bench_ext_model_zoo.dir/bench_ext_model_zoo.cc.o.d"
  "bench_ext_model_zoo"
  "bench_ext_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
