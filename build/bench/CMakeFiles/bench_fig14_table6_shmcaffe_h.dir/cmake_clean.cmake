file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_table6_shmcaffe_h.dir/bench_fig14_table6_shmcaffe_h.cc.o"
  "CMakeFiles/bench_fig14_table6_shmcaffe_h.dir/bench_fig14_table6_shmcaffe_h.cc.o.d"
  "bench_fig14_table6_shmcaffe_h"
  "bench_fig14_table6_shmcaffe_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_table6_shmcaffe_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
