# Empty dependencies file for bench_fig14_table6_shmcaffe_h.
# This may be replaced when dependencies are built.
