file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_update_rules.dir/bench_ext_update_rules.cc.o"
  "CMakeFiles/bench_ext_update_rules.dir/bench_ext_update_rules.cc.o.d"
  "bench_ext_update_rules"
  "bench_ext_update_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_update_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
