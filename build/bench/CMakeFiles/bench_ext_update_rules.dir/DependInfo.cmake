
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_update_rules.cc" "bench/CMakeFiles/bench_ext_update_rules.dir/bench_ext_update_rules.cc.o" "gcc" "bench/CMakeFiles/bench_ext_update_rules.dir/bench_ext_update_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/shm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/shm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/shm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/shm_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/shm_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/smb/CMakeFiles/shm_smb.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/shm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/shm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/shm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
