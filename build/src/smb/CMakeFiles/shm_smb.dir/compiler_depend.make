# Empty compiler generated dependencies file for shm_smb.
# This may be replaced when dependencies are built.
