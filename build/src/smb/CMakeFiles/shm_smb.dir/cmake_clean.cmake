file(REMOVE_RECURSE
  "CMakeFiles/shm_smb.dir/server.cc.o"
  "CMakeFiles/shm_smb.dir/server.cc.o.d"
  "CMakeFiles/shm_smb.dir/sim_smb.cc.o"
  "CMakeFiles/shm_smb.dir/sim_smb.cc.o.d"
  "libshm_smb.a"
  "libshm_smb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_smb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
