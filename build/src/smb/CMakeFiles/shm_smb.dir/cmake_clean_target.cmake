file(REMOVE_RECURSE
  "libshm_smb.a"
)
