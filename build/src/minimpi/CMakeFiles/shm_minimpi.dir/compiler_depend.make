# Empty compiler generated dependencies file for shm_minimpi.
# This may be replaced when dependencies are built.
