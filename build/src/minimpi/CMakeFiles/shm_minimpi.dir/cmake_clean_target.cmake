file(REMOVE_RECURSE
  "libshm_minimpi.a"
)
