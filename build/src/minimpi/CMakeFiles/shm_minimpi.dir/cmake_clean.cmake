file(REMOVE_RECURSE
  "CMakeFiles/shm_minimpi.dir/minimpi.cc.o"
  "CMakeFiles/shm_minimpi.dir/minimpi.cc.o.d"
  "CMakeFiles/shm_minimpi.dir/sim_mpi.cc.o"
  "CMakeFiles/shm_minimpi.dir/sim_mpi.cc.o.d"
  "libshm_minimpi.a"
  "libshm_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
