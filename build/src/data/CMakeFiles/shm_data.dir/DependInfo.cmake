
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/loader.cc" "src/data/CMakeFiles/shm_data.dir/loader.cc.o" "gcc" "src/data/CMakeFiles/shm_data.dir/loader.cc.o.d"
  "/root/repo/src/data/record_store.cc" "src/data/CMakeFiles/shm_data.dir/record_store.cc.o" "gcc" "src/data/CMakeFiles/shm_data.dir/record_store.cc.o.d"
  "/root/repo/src/data/synth_dataset.cc" "src/data/CMakeFiles/shm_data.dir/synth_dataset.cc.o" "gcc" "src/data/CMakeFiles/shm_data.dir/synth_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/shm_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/shm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
