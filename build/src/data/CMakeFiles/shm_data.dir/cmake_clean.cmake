file(REMOVE_RECURSE
  "CMakeFiles/shm_data.dir/loader.cc.o"
  "CMakeFiles/shm_data.dir/loader.cc.o.d"
  "CMakeFiles/shm_data.dir/record_store.cc.o"
  "CMakeFiles/shm_data.dir/record_store.cc.o.d"
  "CMakeFiles/shm_data.dir/synth_dataset.cc.o"
  "CMakeFiles/shm_data.dir/synth_dataset.cc.o.d"
  "libshm_data.a"
  "libshm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
