# Empty dependencies file for shm_data.
# This may be replaced when dependencies are built.
