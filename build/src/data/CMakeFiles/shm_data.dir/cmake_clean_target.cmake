file(REMOVE_RECURSE
  "libshm_data.a"
)
