file(REMOVE_RECURSE
  "libshm_sim.a"
)
