# Empty compiler generated dependencies file for shm_sim.
# This may be replaced when dependencies are built.
