file(REMOVE_RECURSE
  "CMakeFiles/shm_sim.dir/simulation.cc.o"
  "CMakeFiles/shm_sim.dir/simulation.cc.o.d"
  "libshm_sim.a"
  "libshm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
