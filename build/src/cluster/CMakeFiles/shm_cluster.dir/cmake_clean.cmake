file(REMOVE_RECURSE
  "CMakeFiles/shm_cluster.dir/model_profiles.cc.o"
  "CMakeFiles/shm_cluster.dir/model_profiles.cc.o.d"
  "libshm_cluster.a"
  "libshm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
