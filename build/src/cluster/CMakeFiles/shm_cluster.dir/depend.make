# Empty dependencies file for shm_cluster.
# This may be replaced when dependencies are built.
