file(REMOVE_RECURSE
  "libshm_cluster.a"
)
