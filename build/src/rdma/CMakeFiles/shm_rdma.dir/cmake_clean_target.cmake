file(REMOVE_RECURSE
  "libshm_rdma.a"
)
