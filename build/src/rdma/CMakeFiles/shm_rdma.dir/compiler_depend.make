# Empty compiler generated dependencies file for shm_rdma.
# This may be replaced when dependencies are built.
