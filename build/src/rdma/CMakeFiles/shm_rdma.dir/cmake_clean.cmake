file(REMOVE_RECURSE
  "CMakeFiles/shm_rdma.dir/verbs.cc.o"
  "CMakeFiles/shm_rdma.dir/verbs.cc.o.d"
  "libshm_rdma.a"
  "libshm_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
