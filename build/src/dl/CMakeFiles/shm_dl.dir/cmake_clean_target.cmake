file(REMOVE_RECURSE
  "libshm_dl.a"
)
