
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/layers.cc" "src/dl/CMakeFiles/shm_dl.dir/layers.cc.o" "gcc" "src/dl/CMakeFiles/shm_dl.dir/layers.cc.o.d"
  "/root/repo/src/dl/layers_norm.cc" "src/dl/CMakeFiles/shm_dl.dir/layers_norm.cc.o" "gcc" "src/dl/CMakeFiles/shm_dl.dir/layers_norm.cc.o.d"
  "/root/repo/src/dl/models.cc" "src/dl/CMakeFiles/shm_dl.dir/models.cc.o" "gcc" "src/dl/CMakeFiles/shm_dl.dir/models.cc.o.d"
  "/root/repo/src/dl/net.cc" "src/dl/CMakeFiles/shm_dl.dir/net.cc.o" "gcc" "src/dl/CMakeFiles/shm_dl.dir/net.cc.o.d"
  "/root/repo/src/dl/serialize.cc" "src/dl/CMakeFiles/shm_dl.dir/serialize.cc.o" "gcc" "src/dl/CMakeFiles/shm_dl.dir/serialize.cc.o.d"
  "/root/repo/src/dl/solver.cc" "src/dl/CMakeFiles/shm_dl.dir/solver.cc.o" "gcc" "src/dl/CMakeFiles/shm_dl.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
