# Empty dependencies file for shm_dl.
# This may be replaced when dependencies are built.
