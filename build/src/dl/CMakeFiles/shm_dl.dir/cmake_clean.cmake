file(REMOVE_RECURSE
  "CMakeFiles/shm_dl.dir/layers.cc.o"
  "CMakeFiles/shm_dl.dir/layers.cc.o.d"
  "CMakeFiles/shm_dl.dir/layers_norm.cc.o"
  "CMakeFiles/shm_dl.dir/layers_norm.cc.o.d"
  "CMakeFiles/shm_dl.dir/models.cc.o"
  "CMakeFiles/shm_dl.dir/models.cc.o.d"
  "CMakeFiles/shm_dl.dir/net.cc.o"
  "CMakeFiles/shm_dl.dir/net.cc.o.d"
  "CMakeFiles/shm_dl.dir/serialize.cc.o"
  "CMakeFiles/shm_dl.dir/serialize.cc.o.d"
  "CMakeFiles/shm_dl.dir/solver.cc.o"
  "CMakeFiles/shm_dl.dir/solver.cc.o.d"
  "libshm_dl.a"
  "libshm_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
