file(REMOVE_RECURSE
  "CMakeFiles/shm_core.dir/evaluate.cc.o"
  "CMakeFiles/shm_core.dir/evaluate.cc.o.d"
  "CMakeFiles/shm_core.dir/progress_board.cc.o"
  "CMakeFiles/shm_core.dir/progress_board.cc.o.d"
  "CMakeFiles/shm_core.dir/sharded_buffer.cc.o"
  "CMakeFiles/shm_core.dir/sharded_buffer.cc.o.d"
  "CMakeFiles/shm_core.dir/sim_shmcaffe.cc.o"
  "CMakeFiles/shm_core.dir/sim_shmcaffe.cc.o.d"
  "CMakeFiles/shm_core.dir/trainer.cc.o"
  "CMakeFiles/shm_core.dir/trainer.cc.o.d"
  "libshm_core.a"
  "libshm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
