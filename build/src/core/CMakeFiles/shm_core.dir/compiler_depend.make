# Empty compiler generated dependencies file for shm_core.
# This may be replaced when dependencies are built.
