file(REMOVE_RECURSE
  "libshm_core.a"
)
