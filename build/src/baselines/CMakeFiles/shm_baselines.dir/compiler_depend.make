# Empty compiler generated dependencies file for shm_baselines.
# This may be replaced when dependencies are built.
