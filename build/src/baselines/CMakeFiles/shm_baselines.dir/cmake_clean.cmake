file(REMOVE_RECURSE
  "CMakeFiles/shm_baselines.dir/async_ps.cc.o"
  "CMakeFiles/shm_baselines.dir/async_ps.cc.o.d"
  "CMakeFiles/shm_baselines.dir/functional_ssgd.cc.o"
  "CMakeFiles/shm_baselines.dir/functional_ssgd.cc.o.d"
  "CMakeFiles/shm_baselines.dir/sim_platforms.cc.o"
  "CMakeFiles/shm_baselines.dir/sim_platforms.cc.o.d"
  "libshm_baselines.a"
  "libshm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
