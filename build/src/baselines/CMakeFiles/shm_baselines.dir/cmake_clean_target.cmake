file(REMOVE_RECURSE
  "libshm_baselines.a"
)
