# Empty dependencies file for shm_common.
# This may be replaced when dependencies are built.
