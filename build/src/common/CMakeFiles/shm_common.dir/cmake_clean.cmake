file(REMOVE_RECURSE
  "CMakeFiles/shm_common.dir/log.cc.o"
  "CMakeFiles/shm_common.dir/log.cc.o.d"
  "CMakeFiles/shm_common.dir/rng.cc.o"
  "CMakeFiles/shm_common.dir/rng.cc.o.d"
  "CMakeFiles/shm_common.dir/stats.cc.o"
  "CMakeFiles/shm_common.dir/stats.cc.o.d"
  "CMakeFiles/shm_common.dir/strings.cc.o"
  "CMakeFiles/shm_common.dir/strings.cc.o.d"
  "CMakeFiles/shm_common.dir/table.cc.o"
  "CMakeFiles/shm_common.dir/table.cc.o.d"
  "libshm_common.a"
  "libshm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
