file(REMOVE_RECURSE
  "libshm_common.a"
)
