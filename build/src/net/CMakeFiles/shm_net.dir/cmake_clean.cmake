file(REMOVE_RECURSE
  "CMakeFiles/shm_net.dir/fabric.cc.o"
  "CMakeFiles/shm_net.dir/fabric.cc.o.d"
  "libshm_net.a"
  "libshm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
