# Empty dependencies file for shm_net.
# This may be replaced when dependencies are built.
