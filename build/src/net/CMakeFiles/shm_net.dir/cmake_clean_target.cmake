file(REMOVE_RECURSE
  "libshm_net.a"
)
