// Tests for the baseline platforms: the three functional SSGD transports
// (correctness + mutual equivalence) and the timed Caffe / Caffe-MPI /
// MPICaffe models against the paper's Table II anchors.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/functional_ssgd.h"
#include "baselines/sim_platforms.h"
#include "cluster/model_profiles.h"

namespace shmcaffe::baselines {
namespace {

core::DistTrainOptions small_options(int workers) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = workers;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 4;
  return options;
}

class Transports : public ::testing::TestWithParam<SsgdTransport> {};

TEST_P(Transports, LearnsTheSyntheticTask) {
  const core::TrainResult result = train_ssgd(small_options(4), GetParam());
  EXPECT_GT(result.final_accuracy, 0.8);
  EXPECT_EQ(result.curve.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(All, Transports,
                         ::testing::Values(SsgdTransport::kNcclAllReduce,
                                           SsgdTransport::kMpiStar,
                                           SsgdTransport::kMpiAllReduce),
                         [](const ::testing::TestParamInfo<SsgdTransport>& info) {
                           switch (info.param) {
                             case SsgdTransport::kNcclAllReduce: return "nccl";
                             case SsgdTransport::kMpiStar: return "star";
                             case SsgdTransport::kMpiAllReduce: return "allreduce";
                           }
                           return "unknown";
                         });

TEST(Transports, AllThreeComputeTheSameTrainingTrajectory) {
  // Same seed, same shards: the three transports implement the same maths,
  // so their final models must agree up to floating-point association noise.
  const core::TrainResult nccl = train_ssgd(small_options(4), SsgdTransport::kNcclAllReduce);
  const core::TrainResult star = train_ssgd(small_options(4), SsgdTransport::kMpiStar);
  const core::TrainResult ring = train_ssgd(small_options(4), SsgdTransport::kMpiAllReduce);
  EXPECT_NEAR(nccl.final_accuracy, star.final_accuracy, 0.08);
  EXPECT_NEAR(nccl.final_accuracy, ring.final_accuracy, 0.08);
  EXPECT_NEAR(nccl.final_loss, star.final_loss, 0.25);
  ASSERT_EQ(nccl.curve.size(), star.curve.size());
  for (std::size_t e = 0; e < nccl.curve.size(); ++e) {
    EXPECT_NEAR(nccl.curve[e].test_loss, star.curve[e].test_loss, 0.3) << "epoch " << e;
  }
}

TEST(Transports, SingleWorkerMatchesSequentialSgd) {
  const core::TrainResult result = train_ssgd(small_options(1), SsgdTransport::kNcclAllReduce);
  EXPECT_GT(result.final_accuracy, 0.85);
}

// --- timed platform models (Table II anchors) ---

SimPlatformOptions timing_options(int workers) {
  SimPlatformOptions options;
  options.workers = workers;
  options.iterations = 250;
  return options;
}

TEST(SimCaffe, SingleGpuIterationMatchesProfile) {
  const auto timing = simulate_caffe(timing_options(1));
  const SimTime comp = cluster::profile(cluster::ModelKind::kInceptionV1).comp_time;
  EXPECT_NEAR(static_cast<double>(timing.mean_iteration()), static_cast<double>(comp),
              static_cast<double>(comp) * 0.1);
  EXPECT_EQ(timing.mean_comm, 0);
}

TEST(SimCaffe, TableTwoScalability) {
  // Paper Table II: Caffe reaches only ~2.7x on 8 GPUs and ~2.3x on 16.
  const auto one = simulate_caffe(timing_options(1));
  const auto eight = simulate_caffe(timing_options(8));
  const auto sixteen = simulate_caffe(timing_options(16));
  const double speedup8 = 8.0 * static_cast<double>(one.mean_iteration()) /
                          static_cast<double>(eight.mean_iteration());
  const double speedup16 = 16.0 * static_cast<double>(one.mean_iteration()) /
                           static_cast<double>(sixteen.mean_iteration());
  EXPECT_NEAR(speedup8, 2.7, 0.5);
  EXPECT_NEAR(speedup16, 2.3, 0.5);
  EXPECT_GT(speedup8, speedup16);  // Caffe scales *backwards* past 8 GPUs
}

TEST(SimCaffeMpi, StarCommunicationDominatesAtScale) {
  const auto eight = simulate_caffe_mpi(timing_options(8));
  const auto sixteen = simulate_caffe_mpi(timing_options(16));
  EXPECT_GT(sixteen.mean_comm, eight.mean_comm);
  EXPECT_GT(sixteen.mean_comm, sixteen.mean_comp);  // comm-bound at 16
}

TEST(SimMpiCaffe, AllreduceBeatsStar) {
  const auto star = simulate_caffe_mpi(timing_options(16));
  const auto ring = simulate_mpicaffe(timing_options(16));
  EXPECT_LT(ring.mean_comm, star.mean_comm);
  EXPECT_LT(ring.mean_iteration(), star.mean_iteration());
}

TEST(SimPlatforms, SynchronousPlatformsPayStragglerTax) {
  // With jitter on, mean comm of a synchronous platform includes waiting
  // for the slowest worker; with jitter off it is transfer time only.
  SimPlatformOptions with_jitter = timing_options(8);
  SimPlatformOptions without = timing_options(8);
  without.jitter.slow_probability = 0.0;
  const auto jittered = simulate_mpicaffe(with_jitter);
  const auto calm = simulate_mpicaffe(without);
  EXPECT_GT(jittered.mean_comm, calm.mean_comm);
}

TEST(SimPlatforms, DeterministicForSameSeed) {
  const auto a = simulate_caffe_mpi(timing_options(8));
  const auto b = simulate_caffe_mpi(timing_options(8));
  EXPECT_EQ(a.mean_comm, b.mean_comm);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SimPlatforms, InvalidOptionsThrow) {
  SimPlatformOptions bad = timing_options(0);
  EXPECT_THROW((void)simulate_caffe(bad), std::invalid_argument);
  bad = timing_options(2);
  bad.iterations = 0;
  EXPECT_THROW((void)simulate_mpicaffe(bad), std::invalid_argument);
}

}  // namespace
}  // namespace shmcaffe::baselines
