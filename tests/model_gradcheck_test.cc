// End-to-end numerical gradient checks through every deterministic model
// family — the strongest whole-net correctness statement the library makes:
// conv (GEMM engine), pooling, concat, residual adds, batch norm and LRN all
// compose into analytically-correct gradients.
//
// mini_vgg is excluded: its dropout draws fresh masks per forward pass, so
// central differences are not well-defined for it.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "dl/gradcheck.h"
#include "dl/models.h"

namespace shmcaffe::dl {
namespace {

class ModelGradCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelGradCheck, WholeModelAnalyticMatchesNumeric) {
  common::Rng rng(2026);
  ModelInputSpec spec;
  spec.channels = 2;
  spec.height = 8;
  spec.width = 8;
  spec.classes = 4;
  Net net = make_model(GetParam(), spec);
  net.init_params(rng);
  // The residual families zero-initialise their branch-output convolutions,
  // which parks downstream ReLU inputs exactly at the kink (sum == bottom,
  // and bottom contains exact zeros from earlier ReLUs); central differences
  // are ill-defined there.  Nudge every learnable parameter off zero so the
  // check is well-posed.
  for (ParamBlob* blob : net.params()) {
    if (!blob->learnable) continue;
    for (float& v : blob->value.span()) v += static_cast<float>(rng.uniform(-0.05, 0.05));
  }

  Tensor& data = net.input("data");
  data.reshape({2, spec.channels, spec.height, spec.width});
  for (float& v : data.span()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor& labels = net.input("label");
  labels.reshape({2});
  for (float& v : labels.span()) {
    v = static_cast<float>(rng.uniform_int(0, spec.classes - 1));
  }

  const GradCheckResult result = check_gradients(net, 1e-3, 80, rng);
  EXPECT_EQ(result.checked, 80u);
  // Quantile assertions: a wrong gradient corrupts most samples; a handful
  // of large errors are expected kink-straddling artifacts of deep ReLU
  // stacks under finite differences.
  EXPECT_LT(result.rel_error_quantile(0.5), 0.01) << GetParam();
  EXPECT_LT(result.rel_error_quantile(0.9), 0.05) << GetParam();
  EXPECT_LT(result.max_rel_error, 0.5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, ModelGradCheck,
                         ::testing::Values("mlp", "mini_inception", "mini_resnet",
                                           "mini_inception_resnet"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace shmcaffe::dl
