// Lock-order detector tests: the instrumented mutexes must flag rank
// inversions and acquisition-graph cycles (potential deadlocks) without
// requiring the deadlock to actually strike, and must stay silent for
// well-ordered locking — including the std::scoped_lock same-rank pair
// protocol the SMB server uses.
#include "common/ordered_mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace shmcaffe::common {
namespace {

bool any_contains(const std::vector<std::string>& haystack, const std::string& needle) {
  for (const std::string& s : haystack) {
    if (s.find(needle) != std::string::npos) return true;
  }
  return false;
}

class OrderedMutexTest : public ::testing::Test {
 protected:
  void SetUp() override { LockOrderRegistry::instance().clear(); }
  void TearDown() override { LockOrderRegistry::instance().clear(); }
};

TEST_F(OrderedMutexTest, WellOrderedAcquisitionIsClean) {
  OrderedMutex a("test.outer", 1);
  OrderedMutex b("test.inner", 2);
  {
    std::scoped_lock la(a);
    std::scoped_lock lb(b);
  }
  EXPECT_EQ(LockOrderRegistry::instance().violation_count(), 0U);
  EXPECT_EQ(LockOrderRegistry::instance().edge_count(), 1U);
}

TEST_F(OrderedMutexTest, AbBaCycleIsDetectedWithoutDeadlocking) {
  OrderedMutex a("test.a", 1);
  OrderedMutex b("test.b", 2);
  {
    std::scoped_lock la(a);
    std::scoped_lock lb(b);  // records a -> b
  }
  {
    std::scoped_lock lb(b);
    std::scoped_lock la(a);  // records b -> a: closes the cycle, inverts ranks
  }
  const std::vector<std::string> violations = LockOrderRegistry::instance().violations();
  EXPECT_TRUE(any_contains(violations, "cycle")) << "got: " << ::testing::PrintToString(violations);
  EXPECT_TRUE(any_contains(violations, "rank inversion"))
      << "got: " << ::testing::PrintToString(violations);
  EXPECT_TRUE(any_contains(violations, "test.a"));
  EXPECT_TRUE(any_contains(violations, "test.b"));
}

TEST_F(OrderedMutexTest, CycleAcrossThreeLocksIsDetected) {
  OrderedMutex a("test.c3.a", 1);
  OrderedMutex b("test.c3.b", 2);
  OrderedMutex c("test.c3.c", 3);
  {
    std::scoped_lock la(a);
    std::scoped_lock lb(b);  // a -> b
  }
  {
    std::scoped_lock lb(b);
    std::scoped_lock lc(c);  // b -> c
  }
  {
    std::scoped_lock lc(c);
    std::scoped_lock la(a);  // c -> a: a -> b -> c -> a
  }
  EXPECT_TRUE(any_contains(LockOrderRegistry::instance().violations(), "cycle"));
}

TEST_F(OrderedMutexTest, RankInversionAloneIsReported) {
  OrderedMutex low("test.low", 10);
  OrderedMutex high("test.high", 20);
  std::scoped_lock lh(high);
  std::scoped_lock ll(low);  // blocking-acquiring rank 10 while holding 20
  const std::vector<std::string> violations = LockOrderRegistry::instance().violations();
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_NE(violations[0].find("rank inversion"), std::string::npos);
}

TEST_F(OrderedMutexTest, ScopedLockPairOfEqualRankIsAllowed) {
  // The SMB accumulate() pattern: two segment locks of the same rank taken
  // together via std::scoped_lock's deadlock-avoiding try-lock protocol.
  OrderedMutex s1("test.segment", 5);
  OrderedMutex s2("test.segment", 5);
  {
    std::scoped_lock both(s1, s2);
  }
  {
    std::scoped_lock both(s2, s1);  // opposite order: still fine via std::lock
  }
  EXPECT_EQ(LockOrderRegistry::instance().violation_count(), 0U);
}

TEST_F(OrderedMutexTest, SharedMutexParticipatesInOrdering) {
  OrderedMutex outer("test.shared.outer", 1);
  OrderedSharedMutex table("test.shared.table", 2);
  {
    std::scoped_lock lo(outer);
    std::shared_lock lt(table);  // outer -> table, reader side
  }
  EXPECT_EQ(LockOrderRegistry::instance().violation_count(), 0U);
  {
    std::shared_lock lt(table);
    std::scoped_lock lo(outer);  // table -> outer: cycle + inversion
  }
  EXPECT_TRUE(any_contains(LockOrderRegistry::instance().violations(), "cycle"));
}

TEST_F(OrderedMutexTest, ViolationsAreDeduplicated) {
  OrderedMutex a("test.dup.a", 1);
  OrderedMutex b("test.dup.b", 2);
  for (int i = 0; i < 8; ++i) {
    std::scoped_lock lb(b);
    std::scoped_lock la(a);
  }
  // One rank inversion + at most one cycle report, not 8 of each.
  EXPECT_LE(LockOrderRegistry::instance().violation_count(), 2U);
  EXPECT_GE(LockOrderRegistry::instance().violation_count(), 1U);
}

TEST_F(OrderedMutexTest, ClearResetsGraphAndMemo) {
  OrderedMutex a("test.clear.a", 1);
  OrderedMutex b("test.clear.b", 2);
  {
    std::scoped_lock lb(b);
    std::scoped_lock la(a);
  }
  EXPECT_GE(LockOrderRegistry::instance().violation_count(), 1U);
  LockOrderRegistry::instance().clear();
  EXPECT_EQ(LockOrderRegistry::instance().violation_count(), 0U);
  EXPECT_EQ(LockOrderRegistry::instance().edge_count(), 0U);
  // The same inversion is re-detected after clear() (epoch invalidates the
  // per-thread memo), so a later suite cannot hide behind an earlier one.
  {
    std::scoped_lock lb(b);
    std::scoped_lock la(a);
  }
  EXPECT_GE(LockOrderRegistry::instance().violation_count(), 1U);
}

TEST_F(OrderedMutexTest, ContendedUseFromManyThreadsStaysClean) {
  OrderedMutex outer("test.mt.outer", 1);
  OrderedMutex inner("test.mt.inner", 2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        std::scoped_lock lo(outer);
        std::scoped_lock li(inner);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(LockOrderRegistry::instance().violation_count(), 0U);
}

TEST_F(OrderedMutexTest, ConditionVariableAnyWaitWorks) {
  OrderedMutex m("test.cv", 1);
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaller([&] {
    std::scoped_lock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return ready; });
  }
  signaller.join();
  EXPECT_EQ(LockOrderRegistry::instance().violation_count(), 0U);
}

#if SHMCAFFE_LOCK_ASSERTS

// Runtime half of the guarded-by contract (static half: shmcaffe-lint).
// SHMCAFFE_ASSERT_HELD must pass while the calling thread holds the lock —
// exclusively or shared — and abort with the lock's name when it does not.

TEST_F(OrderedMutexTest, AssertHeldPassesWhileLocked) {
  OrderedMutex m("test.assert", 1);
  std::scoped_lock lock(m);
  SHMCAFFE_ASSERT_HELD(m);  // must not abort
}

TEST_F(OrderedMutexTest, AssertHeldPassesUnderSharedAndExclusiveOwnership) {
  OrderedSharedMutex m("test.assert.shared", 1);
  {
    std::shared_lock lock(m);
    SHMCAFFE_ASSERT_HELD(m);
  }
  {
    std::unique_lock lock(m);
    SHMCAFFE_ASSERT_HELD(m);
  }
}

TEST_F(OrderedMutexTest, AssertHeldAbortsWhenTheLockIsNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex m("test.assert.unheld", 1);
  EXPECT_DEATH({ SHMCAFFE_ASSERT_HELD(m); },
               "lock assertion failed: 'm' \\(lock 'test.assert.unheld', rank 1\\)");
}

TEST_F(OrderedMutexTest, AssertHeldAbortsWhenOnlyAnotherThreadHoldsIt) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex m("test.assert.other", 1);
  EXPECT_DEATH(
      {
        std::mutex ready_mutex;
        std::condition_variable ready_cv;
        bool held = false;
        std::thread owner([&] {
          std::scoped_lock lock(m);
          {
            std::scoped_lock ready(ready_mutex);
            held = true;
          }
          ready_cv.notify_one();
          // Hold until the abort tears the process down (or, if the assert
          // wrongly passed, exit so the test can report the escape).
          std::this_thread::sleep_for(std::chrono::seconds(5));
        });
        {
          std::unique_lock ready(ready_mutex);
          ready_cv.wait(ready, [&] { return held; });
        }
        SHMCAFFE_ASSERT_HELD(m);  // held by `owner`, not by this thread
        owner.join();
      },
      "lock assertion failed");
}

TEST_F(OrderedMutexTest, AssertHeldAbortsAfterRelease) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex m("test.assert.released", 1);
  EXPECT_DEATH(
      {
        { std::scoped_lock lock(m); }
        SHMCAFFE_ASSERT_HELD(m);
      },
      "lock assertion failed: 'm' \\(lock 'test.assert.released', rank 1\\)");
}

#endif  // SHMCAFFE_LOCK_ASSERTS

}  // namespace
}  // namespace shmcaffe::common
