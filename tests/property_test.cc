// Property-based tests: randomised workloads checked against first-principle
// invariants rather than hand-computed expectations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

using shmcaffe::units::kMillisecond;

// ---------------------------------------------------------------------------
// Fabric properties under random flow sets.
// ---------------------------------------------------------------------------

struct RandomFlowCase {
  std::uint64_t seed;
};

class FabricProperties : public ::testing::TestWithParam<RandomFlowCase> {};

TEST_P(FabricProperties, RandomFlowsRespectConservationAndCapacity) {
  common::Rng rng(GetParam().seed);
  sim::Simulation sim;
  net::FabricOptions options;
  options.message_latency = 0;
  options.efficiency = 1.0;
  net::Fabric fabric(sim, options);

  // Random topology: 3-6 links with random capacities.
  const int link_count = static_cast<int>(rng.uniform_int(3, 6));
  std::vector<net::LinkId> links;
  std::vector<double> capacities;
  for (int l = 0; l < link_count; ++l) {
    const double cap = rng.uniform(0.5e9, 4e9);
    links.push_back(fabric.add_link("l" + std::to_string(l), cap));
    capacities.push_back(cap);
  }

  // Random flows: each crosses 1-2 distinct links, random size, random start.
  struct FlowSpec {
    std::vector<net::LinkId> path;
    std::int64_t bytes;
    SimTime start;
    SimTime finished = -1;
  };
  const int flow_count = static_cast<int>(rng.uniform_int(4, 12));
  std::vector<FlowSpec> flows(static_cast<std::size_t>(flow_count));
  for (FlowSpec& flow : flows) {
    const int first = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(link_count)));
    flow.path.push_back(links[static_cast<std::size_t>(first)]);
    if (rng.chance(0.5) && link_count > 1) {
      int second = first;
      while (second == first) {
        second = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(link_count)));
      }
      flow.path.push_back(links[static_cast<std::size_t>(second)]);
    }
    flow.bytes = rng.uniform_int(100'000, 5'000'000);
    flow.start = rng.uniform_int(0, 2 * kMillisecond);
  }

  for (FlowSpec& flow : flows) {
    sim.spawn([](sim::Simulation& s, net::Fabric& f, FlowSpec& spec) -> sim::Task<> {
      co_await s.delay(spec.start);
      co_await f.transfer(spec.path, spec.bytes);
      spec.finished = s.now();
    }(sim, fabric, flow));
  }
  sim.run();

  // P1: every flow completes.
  for (const FlowSpec& flow : flows) ASSERT_GE(flow.finished, flow.start);

  // P2: no flow beats the physics: finish >= start + bytes / min path capacity.
  for (const FlowSpec& flow : flows) {
    double min_cap = 1e18;
    for (net::LinkId id : flow.path) {
      min_cap = std::min(min_cap, fabric.stats(id).capacity_bps);
    }
    const SimTime physical_floor = units::transfer_time(flow.bytes, min_cap);
    EXPECT_GE(flow.finished - flow.start, physical_floor - 1000)
        << "flow finished faster than its bottleneck allows";
  }

  // P3: per-link throughput never exceeds capacity over the run.
  for (std::size_t l = 0; l < links.size(); ++l) {
    const auto& stats = fabric.stats(links[l]);
    const double elapsed = units::to_seconds(sim.now());
    if (elapsed > 0) {
      EXPECT_LE(static_cast<double>(stats.bytes_carried) / elapsed,
                capacities[l] * 1.001)
          << "link " << l << " exceeded capacity";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricProperties,
                         ::testing::Values(RandomFlowCase{1}, RandomFlowCase{2},
                                           RandomFlowCase{3}, RandomFlowCase{4},
                                           RandomFlowCase{5}, RandomFlowCase{6},
                                           RandomFlowCase{7}, RandomFlowCase{8}));

TEST(FabricProperties, FifoAndFairDeliverSameTotalBytes) {
  for (std::uint64_t seed : {10ULL, 11ULL, 12ULL}) {
    std::map<net::SharingModel, SimTime> makespans;
    for (net::SharingModel model :
         {net::SharingModel::kMaxMinFair, net::SharingModel::kFifoSerial}) {
      common::Rng rng(seed);
      sim::Simulation sim;
      net::FabricOptions options;
      options.message_latency = 0;
      options.efficiency = 1.0;
      options.sharing = model;
      net::Fabric fabric(sim, options);
      const net::LinkId link = fabric.add_link("shared", 1e9);
      for (int f = 0; f < 6; ++f) {
        const std::int64_t bytes = rng.uniform_int(500'000, 2'000'000);
        sim.spawn([](net::Fabric& fb, net::LinkId l, std::int64_t b) -> sim::Task<> {
          co_await fb.transfer(l, b);
        }(fabric, link, bytes));
      }
      sim.run();
      makespans[model] = sim.now();
    }
    // Work conservation: one busy link serving the same total bytes finishes
    // at the same time under both disciplines (all flows start at t=0).
    EXPECT_NEAR(static_cast<double>(makespans[net::SharingModel::kMaxMinFair]),
                static_cast<double>(makespans[net::SharingModel::kFifoSerial]),
                static_cast<double>(makespans[net::SharingModel::kFifoSerial]) * 0.01);
  }
}

// ---------------------------------------------------------------------------
// Simulation engine properties under random task graphs.
// ---------------------------------------------------------------------------

TEST(SimulationProperties, RandomDelayGraphMatchesAnalyticSchedule) {
  // N processes each perform a random sequence of delays; the engine must
  // finish each exactly at the sum of its delays, regardless of interleaving.
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL, 24ULL}) {
    common::Rng rng(seed);
    sim::Simulation sim;
    const int procs = static_cast<int>(rng.uniform_int(2, 10));
    std::vector<SimTime> expected(static_cast<std::size_t>(procs), 0);
    std::vector<SimTime> actual(static_cast<std::size_t>(procs), -1);
    for (int p = 0; p < procs; ++p) {
      std::vector<SimTime> delays;
      const int steps = static_cast<int>(rng.uniform_int(1, 20));
      for (int s = 0; s < steps; ++s) {
        const SimTime d = rng.uniform_int(0, 1000);
        delays.push_back(d);
        expected[static_cast<std::size_t>(p)] += d;
      }
      sim.spawn([](sim::Simulation& s, std::vector<SimTime> ds, SimTime& out) -> sim::Task<> {
        for (SimTime d : ds) co_await s.delay(d);
        out = s.now();
      }(sim, std::move(delays), actual[static_cast<std::size_t>(p)]));
    }
    sim.run();
    EXPECT_EQ(actual, expected);
  }
}

TEST(SimulationProperties, SemaphorePipelineNeverExceedsCapacityAndIsWorkConserving) {
  for (std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    common::Rng rng(seed);
    sim::Simulation sim;
    const int capacity = static_cast<int>(rng.uniform_int(1, 4));
    sim::Semaphore sem(sim, capacity);
    const int jobs = static_cast<int>(rng.uniform_int(5, 25));
    SimTime total_service = 0;
    int active = 0;
    int peak = 0;
    for (int j = 0; j < jobs; ++j) {
      const SimTime service = rng.uniform_int(1, 500);
      total_service += service;
      sim.spawn([](sim::Simulation& s, sim::Semaphore& sm, SimTime sv, int& act, int& pk)
                    -> sim::Task<> {
        co_await sm.acquire();
        ++act;
        pk = std::max(pk, act);
        co_await s.delay(sv);
        --act;
        sm.release();
      }(sim, sem, service, active, peak));
    }
    sim.run();
    EXPECT_LE(peak, capacity);
    // Work conservation: makespan >= total_service / capacity, and the
    // server is never idle while jobs wait (single batch arrival), so
    // makespan <= total_service (capacity 1 gives equality).
    EXPECT_GE(sim.now() * capacity, total_service);
    EXPECT_LE(sim.now(), total_service);
  }
}

TEST(SimulationProperties, BarrierRoundsAreTotallyOrdered) {
  // Under random per-round delays, no party may enter round r+1 before
  // every party has finished round r.
  for (std::uint64_t seed : {41ULL, 42ULL}) {
    common::Rng rng(seed);
    sim::Simulation sim;
    const int parties = static_cast<int>(rng.uniform_int(2, 6));
    constexpr int kRounds = 15;
    sim::Barrier barrier(sim, static_cast<std::size_t>(parties));
    std::vector<int> round_of(static_cast<std::size_t>(parties), 0);
    bool violated = false;
    for (int p = 0; p < parties; ++p) {
      const std::uint64_t salt = rng.next_u64();
      sim.spawn([](sim::Simulation& s, sim::Barrier& b, std::vector<int>& rounds, int id,
                   std::uint64_t sd, bool& bad) -> sim::Task<> {
        common::Rng local(sd);
        for (int r = 0; r < kRounds; ++r) {
          co_await s.delay(local.uniform_int(1, 300));
          rounds[static_cast<std::size_t>(id)] = r;
          // Everyone must be in round >= r - 1 relative to us... after the
          // barrier, everyone must have reached round r.
          co_await b.arrive_and_wait();
          for (int other : rounds) {
            if (other < r) bad = true;
          }
        }
      }(sim, barrier, round_of, p, salt, violated));
    }
    sim.run();
    EXPECT_FALSE(violated);
  }
}

// ---------------------------------------------------------------------------
// SMB server properties under random operation sequences.
// ---------------------------------------------------------------------------

TEST(SmbProperties, RandomOperationSequenceMatchesReferenceModel) {
  // Drive the SMB server with a random op sequence and mirror every op on a
  // plain in-memory reference; contents must match throughout.
  for (std::uint64_t seed : {51ULL, 52ULL, 53ULL, 54ULL}) {
    common::Rng rng(seed);
    smb::SmbServer server;
    std::map<int, smb::Handle> handles;
    std::map<int, std::vector<float>> reference;
    int next_key = 1;

    for (int step = 0; step < 300; ++step) {
      const int action = static_cast<int>(rng.uniform_int(0, 4));
      if (action == 0 || handles.empty()) {  // create
        const std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 64));
        const int key = next_key++;
        handles[key] = server.create_floats(static_cast<smb::ShmKey>(key), count);
        reference[key] = std::vector<float>(count, 0.0F);
        continue;
      }
      // Pick a random existing segment.
      auto pick = [&] {
        auto it = handles.begin();
        std::advance(it, static_cast<long>(rng.next_below(handles.size())));
        return it->first;
      };
      const int key = pick();
      const std::size_t count = reference[key].size();
      if (action == 1) {  // write random data
        std::vector<float> data(count);
        for (float& v : data) v = static_cast<float>(rng.uniform(-8, 8));
        server.write(handles[key], data);
        reference[key] = data;
      } else if (action == 2) {  // read and compare
        std::vector<float> out(count);
        server.read(handles[key], out);
        ASSERT_EQ(out, reference[key]) << "step " << step;
      } else if (action == 3) {  // accumulate into a same-sized segment
        for (const auto& [other_key, other_data] : reference) {
          if (other_key != key && other_data.size() == count) {
            server.accumulate(handles[key], handles[other_key]);
            for (std::size_t i = 0; i < count; ++i) {
              reference[other_key][i] += reference[key][i];
            }
            break;
          }
        }
      } else {  // release + recreate under a fresh key keeps table coherent
        server.release(handles[key]);
        handles.erase(key);
        reference.erase(key);
      }
    }
    // Final sweep: everything still matches.
    for (const auto& [key, data] : reference) {
      std::vector<float> out(data.size());
      server.read(handles.at(key), out);
      EXPECT_EQ(out, data);
    }
  }
}

}  // namespace
}  // namespace shmcaffe
