// Tests for the fabric model: single-flow timing, max-min fairness,
// bottleneck sharing, FIFO ablation, and conservation properties.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace shmcaffe::net {
namespace {

using shmcaffe::units::kMicrosecond;
using shmcaffe::units::kMillisecond;
using shmcaffe::units::kSecond;

FabricOptions exact_options(SharingModel sharing = SharingModel::kMaxMinFair) {
  FabricOptions opts;
  opts.sharing = sharing;
  opts.message_latency = 0;
  opts.efficiency = 1.0;
  return opts;
}

TEST(Fabric, SingleFlowTakesBytesOverCapacity) {
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const LinkId tx = fabric.add_link("tx", 1e9);  // 1 GB/s
  const LinkId rx = fabric.add_link("rx", 1e9);
  SimTime finished = -1;
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId a, LinkId b, SimTime& out) -> sim::Task<> {
    co_await f.transfer(a, b, 1'000'000);  // 1 MB at 1 GB/s = 1 ms
    out = s.now();
  }(sim, fabric, tx, rx, finished));
  sim.run();
  EXPECT_NEAR(static_cast<double>(finished), 1.0 * kMillisecond, 1000.0);
}

TEST(Fabric, MessageLatencyIsAdded) {
  sim::Simulation sim;
  FabricOptions opts = exact_options();
  opts.message_latency = 5 * kMicrosecond;
  Fabric fabric(sim, opts);
  const LinkId link = fabric.add_link("l", 1e9);
  SimTime finished = -1;
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
    co_await f.transfer(l, 1'000'000);
    out = s.now();
  }(sim, fabric, link, finished));
  sim.run();
  EXPECT_NEAR(static_cast<double>(finished), 1.0 * kMillisecond + 5.0 * kMicrosecond, 1000.0);
}

TEST(Fabric, ZeroByteTransferPaysOnlyLatency) {
  sim::Simulation sim;
  FabricOptions opts = exact_options();
  opts.message_latency = 3 * kMicrosecond;
  Fabric fabric(sim, opts);
  const LinkId link = fabric.add_link("l", 1e9);
  SimTime finished = -1;
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
    co_await f.transfer(l, 0);
    out = s.now();
  }(sim, fabric, link, finished));
  sim.run();
  EXPECT_EQ(finished, 3 * kMicrosecond);
}

TEST(Fabric, TwoEqualFlowsShareALinkFairly) {
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const LinkId shared = fabric.add_link("shared", 1e9);
  std::vector<SimTime> done(2, -1);
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
      co_await f.transfer(l, 1'000'000);
      out = s.now();
    }(sim, fabric, shared, done[i]));
  }
  sim.run();
  // Each gets 0.5 GB/s: both finish at ~2 ms.
  EXPECT_NEAR(static_cast<double>(done[0]), 2.0 * kMillisecond, 10'000.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 2.0 * kMillisecond, 10'000.0);
}

TEST(Fabric, LateArrivalSlowsExistingFlow) {
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const LinkId shared = fabric.add_link("shared", 1e9);
  SimTime first_done = -1;
  SimTime second_done = -1;
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
    co_await f.transfer(l, 2'000'000);
    out = s.now();
  }(sim, fabric, shared, first_done));
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
    co_await s.delay(1 * kMillisecond);  // first flow is halfway through
    co_await f.transfer(l, 1'000'000);
    out = s.now();
  }(sim, fabric, shared, second_done));
  sim.run();
  // t in [0,1ms): flow1 alone at 1 GB/s, moves 1 MB (1 MB left).
  // t in [1,3ms): both at 0.5 GB/s; both have 1 MB left -> finish at 3 ms.
  EXPECT_NEAR(static_cast<double>(first_done), 3.0 * kMillisecond, 10'000.0);
  EXPECT_NEAR(static_cast<double>(second_done), 3.0 * kMillisecond, 10'000.0);
}

TEST(Fabric, MaxMinRespectsPerFlowBottleneck) {
  // Flow A crosses a slow private link and the shared link; flow B only the
  // shared link.  A is capped at 0.25 GB/s; B should get the leftover
  // 0.75 GB/s of the shared link (max-min), not the 0.5 GB/s equal split.
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const LinkId slow = fabric.add_link("slow", 0.25e9);
  const LinkId shared = fabric.add_link("shared", 1e9);
  SimTime a_done = -1;
  SimTime b_done = -1;
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l1, LinkId l2, SimTime& out) -> sim::Task<> {
    co_await f.transfer(l1, l2, 1'000'000);
    out = s.now();
  }(sim, fabric, slow, shared, a_done));
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
    co_await f.transfer(l, 3'000'000);
    out = s.now();
  }(sim, fabric, shared, b_done));
  sim.run();
  EXPECT_NEAR(static_cast<double>(a_done), 4.0 * kMillisecond, 20'000.0);  // 1MB @ 0.25GB/s
  EXPECT_NEAR(static_cast<double>(b_done), 4.0 * kMillisecond, 20'000.0);  // 3MB @ 0.75GB/s
}

TEST(Fabric, ManyFlowsConserveAggregateBandwidth) {
  // N flows through one link: total bytes / makespan == link capacity.
  for (int n : {1, 3, 8, 16}) {
    sim::Simulation sim;
    Fabric fabric(sim, exact_options());
    const LinkId shared = fabric.add_link("shared", 2e9);
    const std::int64_t per_flow = 4'000'000;
    sim::JoinHandle last;
    for (int i = 0; i < n; ++i) {
      last = sim.spawn([](Fabric& f, LinkId l, std::int64_t b) -> sim::Task<> {
        co_await f.transfer(l, b);
      }(fabric, shared, per_flow));
    }
    sim.run();
    const double makespan = shmcaffe::units::to_seconds(sim.now());
    const double aggregate = static_cast<double>(n) * per_flow / makespan;
    EXPECT_NEAR(aggregate, 2e9, 2e7) << "n=" << n;
  }
}

TEST(Fabric, EfficiencyScalesDataRate) {
  sim::Simulation sim;
  FabricOptions opts = exact_options();
  opts.efficiency = 0.5;
  Fabric fabric(sim, opts);
  const LinkId link = fabric.add_link("l", 1e9);
  sim.spawn([](Fabric& f, LinkId l) -> sim::Task<> {
    co_await f.transfer(l, 1'000'000);
  }(fabric, link));
  sim.run();
  EXPECT_NEAR(static_cast<double>(sim.now()), 2.0 * kMillisecond, 10'000.0);
}

TEST(Fabric, FifoSerialisesTransfers) {
  sim::Simulation sim;
  Fabric fabric(sim, exact_options(SharingModel::kFifoSerial));
  const LinkId shared = fabric.add_link("shared", 1e9);
  std::vector<SimTime> done(3, -1);
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
      co_await f.transfer(l, 1'000'000);
      out = s.now();
    }(sim, fabric, shared, done[i]));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(done[0]), 1.0 * kMillisecond, 2000.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 2.0 * kMillisecond, 2000.0);
  EXPECT_NEAR(static_cast<double>(done[2]), 3.0 * kMillisecond, 2000.0);
}

TEST(Fabric, FairAndFifoSameMakespanDifferentCompletions) {
  // Work conservation: with identical flows the makespan matches, but FIFO
  // finishes them one by one while max-min finishes them together.
  auto run = [](SharingModel model) {
    sim::Simulation sim;
    Fabric fabric(sim, exact_options(model));
    const LinkId shared = fabric.add_link("shared", 1e9);
    std::vector<SimTime> done(4, -1);
    for (int i = 0; i < 4; ++i) {
      sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out) -> sim::Task<> {
        co_await f.transfer(l, 1'000'000);
        out = s.now();
      }(sim, fabric, shared, done[i]));
    }
    sim.run();
    return std::pair{sim.now(), done};
  };
  auto [fair_end, fair_done] = run(SharingModel::kMaxMinFair);
  auto [fifo_end, fifo_done] = run(SharingModel::kFifoSerial);
  EXPECT_NEAR(static_cast<double>(fair_end), static_cast<double>(fifo_end), 10'000.0);
  EXPECT_LT(fifo_done[0], fair_done[0]);  // FIFO's first flow finishes earlier
}

TEST(Fabric, StatsAccumulateBytesAndTransfers) {
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const LinkId link = fabric.add_link("l", 1e9);
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Fabric& f, LinkId l) -> sim::Task<> {
      co_await f.transfer(l, 1000);
    }(fabric, link));
  }
  sim.run();
  EXPECT_EQ(fabric.stats(link).bytes_carried, 5000);
  EXPECT_EQ(fabric.stats(link).transfers, 5);
  EXPECT_EQ(fabric.active_flow_count(), 0u);
}

TEST(Fabric, EndpointCreatesTxRxPair) {
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const Fabric::Endpoint ep = fabric.add_endpoint("hca0", 7e9);
  EXPECT_TRUE(ep.tx.valid());
  EXPECT_TRUE(ep.rx.valid());
  EXPECT_EQ(fabric.stats(ep.tx).name, "hca0.tx");
  EXPECT_EQ(fabric.stats(ep.rx).name, "hca0.rx");
  EXPECT_DOUBLE_EQ(fabric.stats(ep.tx).capacity_bps, 7e9);
}

TEST(Fabric, DuplexFlowsDoNotContend) {
  // One flow outbound and one inbound through the same endpoint should both
  // run at full rate (full-duplex links).
  sim::Simulation sim;
  Fabric fabric(sim, exact_options());
  const Fabric::Endpoint server = fabric.add_endpoint("server", 1e9);
  const Fabric::Endpoint client = fabric.add_endpoint("client", 1e9);
  std::vector<SimTime> done(2, -1);
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId a, LinkId b, SimTime& out) -> sim::Task<> {
    co_await f.transfer(a, b, 1'000'000);
    out = s.now();
  }(sim, fabric, client.tx, server.rx, done[0]));
  sim.spawn([](sim::Simulation& s, Fabric& f, LinkId a, LinkId b, SimTime& out) -> sim::Task<> {
    co_await f.transfer(a, b, 1'000'000);
    out = s.now();
  }(sim, fabric, server.tx, client.rx, done[1]));
  sim.run();
  EXPECT_NEAR(static_cast<double>(done[0]), 1.0 * kMillisecond, 10'000.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 1.0 * kMillisecond, 10'000.0);
}

TEST(Fabric, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulation sim;
    Fabric fabric(sim, exact_options());
    const LinkId shared = fabric.add_link("shared", 1e9);
    std::vector<SimTime> done(6, -1);
    for (int i = 0; i < 6; ++i) {
      sim.spawn([](sim::Simulation& s, Fabric& f, LinkId l, SimTime& out, int id) -> sim::Task<> {
        co_await s.delay(id * 100);
        co_await f.transfer(l, 500'000 + id * 1000);
        out = s.now();
      }(sim, fabric, shared, done[i], i));
    }
    sim.run();
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace shmcaffe::net
