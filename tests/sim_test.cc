// Tests for the discrete-event simulation engine: clock semantics,
// determinism, task composition, and every sync primitive.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace shmcaffe::sim {
namespace {

using shmcaffe::units::kMicrosecond;
using shmcaffe::units::kMillisecond;
using shmcaffe::units::kSecond;

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  SimTime observed = -1;
  sim.spawn([](Simulation& s, SimTime& out) -> Task<> {
    co_await s.delay(5 * kMillisecond);
    out = s.now();
  }(sim, observed));
  sim.run();
  EXPECT_EQ(observed, 5 * kMillisecond);
}

TEST(Simulation, ZeroAndNegativeDelaysResumeAtCurrentTime) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.spawn([](Simulation& s, std::vector<SimTime>& out) -> Task<> {
    co_await s.delay(0);
    out.push_back(s.now());
    co_await s.delay(-100);  // clamped
    out.push_back(s.now());
  }(sim, times));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], 0);
}

TEST(Simulation, SameTimeEventsRunInSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.spawn([](std::vector<int>& out, int id) -> Task<> {
      out.push_back(id);
      co_return;
    }(order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulation, InterleavesByTimestamp) {
  Simulation sim;
  std::vector<std::string> trace;
  auto proc = [](Simulation& s, std::vector<std::string>& out, std::string name,
                 SimTime period, int reps) -> Task<> {
    for (int i = 0; i < reps; ++i) {
      co_await s.delay(period);
      out.push_back(name + std::to_string(i));
    }
  };
  sim.spawn(proc(sim, trace, "a", 10, 3));
  sim.spawn(proc(sim, trace, "b", 15, 2));
  sim.run();
  // At t=30 both a2 and b1 are due; b1 was queued earlier (at t=15) so it
  // wins the deterministic (time, sequence) tie-break.
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2"}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, NestedTaskCallsReturnValues) {
  Simulation sim;
  int result = 0;
  auto leaf = [](Simulation& s, int x) -> Task<int> {
    co_await s.delay(1);
    co_return x * 2;
  };
  auto mid = [&leaf](Simulation& s, int x) -> Task<int> {
    const int a = co_await leaf(s, x);
    const int b = co_await leaf(s, x + 1);
    co_return a + b;
  };
  sim.spawn([](Simulation& s, auto& midfn, int& out) -> Task<> {
    out = co_await midfn(s, 10);
  }(sim, mid, result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Simulation, JoinHandleReportsCompletion) {
  Simulation sim;
  JoinHandle h = sim.spawn([](Simulation& s) -> Task<> { co_await s.delay(7); }(sim));
  EXPECT_FALSE(h.done());
  sim.run();
  EXPECT_TRUE(h.done());
  EXPECT_FALSE(h.failed());
}

TEST(Simulation, JoinHandleAwaitableFromAnotherProcess) {
  Simulation sim;
  SimTime joined_at = -1;
  JoinHandle worker = sim.spawn([](Simulation& s) -> Task<> { co_await s.delay(100); }(sim));
  sim.spawn([](Simulation& s, JoinHandle h, SimTime& out) -> Task<> {
    co_await h;
    out = s.now();
  }(sim, worker, joined_at));
  sim.run();
  EXPECT_EQ(joined_at, 100);
}

TEST(Simulation, ExceptionsAreCapturedPerProcess) {
  Simulation sim;
  JoinHandle bad = sim.spawn([](Simulation& s) -> Task<> {
    co_await s.delay(1);
    throw std::runtime_error("boom");
  }(sim));
  JoinHandle good = sim.spawn([](Simulation& s) -> Task<> { co_await s.delay(2); }(sim));
  sim.run();
  EXPECT_TRUE(bad.done());
  EXPECT_TRUE(bad.failed());
  EXPECT_THROW(bad.rethrow(), std::runtime_error);
  EXPECT_TRUE(good.done());
  EXPECT_FALSE(good.failed());
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int ticks = 0;
  sim.spawn([](Simulation& s, int& count) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(10);
      ++count;
    }
  }(sim, ticks));
  sim.run_until(35);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.now(), 35);
  sim.run();
  EXPECT_EQ(ticks, 10);
}

TEST(Simulation, DestroyingSimulationCancelsSuspendedProcesses) {
  bool destroyed = false;
  struct Flag {
    bool* value;
    ~Flag() { *value = true; }
  };
  {
    Simulation sim;
    sim.spawn([](Simulation& s, bool* out) -> Task<> {
      Flag flag{out};
      co_await s.delay(kSecond);
      co_await s.delay(kSecond);  // never reached
    }(sim, &destroyed));
    sim.run_until(kMillisecond);
    EXPECT_FALSE(destroyed);
    EXPECT_EQ(sim.live_process_count(), 1u);
  }
  EXPECT_TRUE(destroyed);  // frame (and its locals) destroyed with the sim
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<int> order;
    Semaphore sem(sim, 2);
    for (int i = 0; i < 6; ++i) {
      sim.spawn([](Simulation& s, Semaphore& sm, std::vector<int>& out, int id) -> Task<> {
        co_await sm.acquire();
        co_await s.delay(10 + id);
        out.push_back(id);
        sm.release();
      }(sim, sem, order, i));
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Event ---

TEST(Event, WaitBlocksUntilSet) {
  Simulation sim;
  Event ev(sim);
  SimTime woke_at = -1;
  sim.spawn([](Simulation& s, Event& e, SimTime& out) -> Task<> {
    co_await e.wait();
    out = s.now();
  }(sim, ev, woke_at));
  sim.spawn([](Simulation& s, Event& e) -> Task<> {
    co_await s.delay(50);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woke_at, 50);
}

TEST(Event, WaitCompletesImmediatelyWhenAlreadySet) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  SimTime woke_at = -1;
  sim.spawn([](Simulation& s, Event& e, SimTime& out) -> Task<> {
    co_await e.wait();
    out = s.now();
  }(sim, ev, woke_at));
  sim.run();
  EXPECT_EQ(woke_at, 0);
}

TEST(Event, SetWakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Event& e, int& count) -> Task<> {
      co_await e.wait();
      ++count;
    }(ev, woken));
  }
  sim.spawn([](Simulation& s, Event& e) -> Task<> {
    co_await s.delay(1);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woken, 5);
}

TEST(Event, ResetMakesSubsequentWaitsBlock) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  ev.reset();
  bool woke = false;
  sim.spawn([](Event& e, bool& out) -> Task<> {
    co_await e.wait();
    out = true;
  }(ev, woke));
  sim.run();
  EXPECT_FALSE(woke);  // nobody sets it again: process stays blocked
  EXPECT_EQ(sim.live_process_count(), 1u);
}

// --- Semaphore ---

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 3);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 10; ++i) {
    sim.spawn([](Simulation& s, Semaphore& sm, int& act, int& pk) -> Task<> {
      co_await sm.acquire();
      ++act;
      pk = std::max(pk, act);
      co_await s.delay(10);
      --act;
      sm.release();
    }(sim, sem, active, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 3);
}

TEST(Semaphore, FifoHandoff) {
  Simulation sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, Semaphore& sm, std::vector<int>& out, int id) -> Task<> {
      co_await sm.acquire();
      out.push_back(id);
      co_await s.delay(5);
      sm.release();
    }(sim, sem, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Semaphore, BulkReleaseWakesMultipleWaiters) {
  Simulation sim;
  Semaphore sem(sim, 0);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Semaphore& sm, int& count) -> Task<> {
      co_await sm.acquire();
      ++count;
    }(sem, woken));
  }
  sim.spawn([](Simulation& s, Semaphore& sm) -> Task<> {
    co_await s.delay(1);
    sm.release(5);
  }(sim, sem));
  sim.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(sem.available(), 2);  // 5 released, 3 consumed by waiters
}

// --- SimMutex ---

TEST(SimMutex, MutualExclusion) {
  Simulation sim;
  SimMutex mutex(sim);
  bool inside = false;
  bool violation = false;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulation& s, SimMutex& m, bool& in, bool& bad) -> Task<> {
      SimLock lock = co_await m.scoped_lock();
      if (in) bad = true;
      in = true;
      co_await s.delay(7);
      in = false;
    }(sim, mutex, inside, violation));
  }
  sim.run();
  EXPECT_FALSE(violation);
  EXPECT_FALSE(mutex.is_locked());
  EXPECT_EQ(sim.now(), 42);  // strictly serialised: 6 * 7
}

TEST(SimMutex, LockReleasesOnScopeExitEvenWithEarlyReturn) {
  Simulation sim;
  SimMutex mutex(sim);
  sim.spawn([](Simulation& s, SimMutex& m) -> Task<> {
    {
      SimLock lock = co_await m.scoped_lock();
      co_await s.delay(1);
    }
    co_return;
  }(sim, mutex));
  sim.run();
  EXPECT_FALSE(mutex.is_locked());
}

// --- Barrier ---

TEST(Barrier, ReleasesAllPartiesTogether) {
  Simulation sim;
  Barrier barrier(sim, 4);
  std::vector<SimTime> release_times;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, Barrier& b, std::vector<SimTime>& out, int id) -> Task<> {
      co_await s.delay(10 * (id + 1));  // staggered arrivals
      co_await b.arrive_and_wait();
      out.push_back(s.now());
    }(sim, barrier, release_times, i));
  }
  sim.run();
  ASSERT_EQ(release_times.size(), 4u);
  for (SimTime t : release_times) EXPECT_EQ(t, 40);  // all at the last arrival
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Simulation sim;
  Barrier barrier(sim, 2);
  int rounds_completed = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, Barrier& b, int& done, int id) -> Task<> {
      for (int round = 0; round < 3; ++round) {
        co_await s.delay(id + 1);
        co_await b.arrive_and_wait();
      }
      ++done;
    }(sim, barrier, rounds_completed, i));
  }
  sim.run();
  EXPECT_EQ(rounds_completed, 2);
}

// --- Channel ---

TEST(Channel, FifoDelivery) {
  Simulation sim;
  Channel<int> chan(sim, 4);
  std::vector<int> received;
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await c.push(i);
      co_await s.delay(1);
    }
  }(sim, chan));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 10; ++i) out.push_back(co_await c.pop());
  }(chan, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Channel, PushBlocksWhenFull) {
  Simulation sim;
  Channel<int> chan(sim, 2);
  SimTime third_push_at = -1;
  sim.spawn([](Simulation& s, Channel<int>& c, SimTime& out) -> Task<> {
    co_await c.push(1);
    co_await c.push(2);
    co_await c.push(3);  // blocks until consumer pops at t=100
    out = s.now();
  }(sim, chan, third_push_at));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(100);
    (void)co_await c.pop();
  }(sim, chan));
  sim.run();
  EXPECT_EQ(third_push_at, 100);
}

TEST(Channel, PopBlocksWhenEmpty) {
  Simulation sim;
  Channel<int> chan(sim, 2);
  SimTime popped_at = -1;
  int value = 0;
  sim.spawn([](Simulation& s, Channel<int>& c, SimTime& at, int& v) -> Task<> {
    v = co_await c.pop();
    at = s.now();
  }(sim, chan, popped_at, value));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(30);
    co_await c.push(99);
  }(sim, chan));
  sim.run();
  EXPECT_EQ(popped_at, 30);
  EXPECT_EQ(value, 99);
}

}  // namespace
}  // namespace shmcaffe::sim
