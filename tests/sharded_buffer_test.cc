// Tests for ShardedBuffer (multi-SMB-server future work) and for training
// with a sharded global buffer.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "core/sharded_buffer.h"
#include "smb/server.h"
#include "core/trainer.h"

namespace shmcaffe::core {
namespace {

struct Servers {
  std::vector<std::unique_ptr<smb::SmbServer>> owned;
  std::vector<smb::SmbServer*> ptrs;

  explicit Servers(int n) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<smb::SmbServer>());
      ptrs.push_back(owned.back().get());
    }
  }
};

TEST(ShardedBuffer, SingleServerDegeneratesToPlainSegment) {
  Servers rig(1);
  ShardedBuffer buffer = ShardedBuffer::create(rig.ptrs, 1, 100);
  EXPECT_EQ(buffer.size(), 100u);
  EXPECT_EQ(buffer.shard_count(), 1u);
  std::vector<float> data(100);
  std::iota(data.begin(), data.end(), 0.0F);
  buffer.write(data);
  std::vector<float> out(100);
  buffer.read(out);
  EXPECT_EQ(out, data);
  buffer.release();
  EXPECT_FALSE(buffer.valid());
}

class ShardCounts : public ::testing::TestWithParam<int> {};

TEST_P(ShardCounts, RoundTripsAcrossUnevenShards) {
  const int n = GetParam();
  Servers rig(n);
  constexpr std::size_t kTotal = 103;  // deliberately not divisible
  ShardedBuffer buffer = ShardedBuffer::create(rig.ptrs, 7, kTotal);
  EXPECT_EQ(buffer.shard_count(), static_cast<std::size_t>(n));
  std::vector<float> data(kTotal);
  std::iota(data.begin(), data.end(), 1.0F);
  buffer.write(data);
  std::vector<float> out(kTotal, 0.0F);
  buffer.read(out);
  EXPECT_EQ(out, data);
  // Every server holds at least one shard of sensible size.
  std::int64_t used = 0;
  for (smb::SmbServer* server : rig.ptrs) used += server->stats().bytes_in_use;
  EXPECT_EQ(used, static_cast<std::int64_t>(kTotal * sizeof(float)));
  buffer.release();
}

INSTANTIATE_TEST_SUITE_P(Counts, ShardCounts, ::testing::Values(1, 2, 3, 4, 7));

TEST(ShardedBuffer, AttachSeesCreatorsData) {
  Servers rig(3);
  ShardedBuffer creator = ShardedBuffer::create(rig.ptrs, 9, 64);
  std::vector<float> data(64, 4.5F);
  creator.write(data);
  ShardedBuffer attached = ShardedBuffer::attach(rig.ptrs, 9, 64);
  std::vector<float> out(64);
  attached.read(out);
  EXPECT_EQ(out, data);
  attached.release();
  creator.release();
}

TEST(ShardedBuffer, AccumulateIntoAddsShardwise) {
  Servers rig(2);
  ShardedBuffer global = ShardedBuffer::create(rig.ptrs, 1, 10);
  ShardedBuffer delta = ShardedBuffer::create(rig.ptrs, 2, 10);
  std::vector<float> base(10, 1.0F);
  std::vector<float> inc(10);
  std::iota(inc.begin(), inc.end(), 0.0F);
  global.write(base);
  delta.write(inc);
  delta.accumulate_into(global);
  delta.accumulate_into(global);
  std::vector<float> out(10);
  global.read(out);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(out[i], 1.0F + 2.0F * static_cast<float>(i));
  }
  delta.release();
  global.release();
}

TEST(ShardedBuffer, MismatchedShardingRejected) {
  Servers rig(2);
  ShardedBuffer a = ShardedBuffer::create(rig.ptrs, 1, 10);
  ShardedBuffer b = ShardedBuffer::create(rig.ptrs, 2, 12);
  EXPECT_THROW(a.accumulate_into(b), std::invalid_argument);
  std::vector<float> wrong(11);
  EXPECT_THROW(a.read(wrong), std::invalid_argument);
  EXPECT_THROW(a.write(wrong), std::invalid_argument);
  a.release();
  b.release();
}

TEST(ShardedBuffer, InvalidConstructionRejected) {
  Servers rig(4);
  EXPECT_THROW((void)ShardedBuffer::create(std::span<smb::SmbService* const>{}, 1, 10),
               std::invalid_argument);
  EXPECT_THROW((void)ShardedBuffer::create(rig.ptrs, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)ShardedBuffer::create(rig.ptrs, 1, 3), std::invalid_argument);
  EXPECT_THROW((void)ShardedBuffer::attach(rig.ptrs, 404, 16), smb::SmbError);
}

TEST(ShardedBuffer, PartialAttachFailureLeaksNoReferences) {
  // The key exists on server 0 only: attach acquires shard 0, fails on
  // shard 1, and must release shard 0 on the way out.
  Servers rig(2);
  const smb::Handle half = rig.ptrs[0]->create_floats(5, 8);
  EXPECT_THROW((void)ShardedBuffer::attach(rig.ptrs, 5, 16), smb::SmbError);
  // Only the creator's reference remains: releasing it frees the segment.
  rig.ptrs[0]->release(half);
  EXPECT_THROW((void)rig.ptrs[0]->attach_floats(5), smb::SmbError);
}

TEST(ShardedBuffer, ConcurrentAccumulatesStayExact) {
  Servers rig(3);
  constexpr std::size_t kCount = 300;
  ShardedBuffer global = ShardedBuffer::create(rig.ptrs, 1, kCount);
  constexpr int kWorkers = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&rig, w] {
      ShardedBuffer mine =
          ShardedBuffer::create(rig.ptrs, 100 + static_cast<smb::ShmKey>(w), kCount);
      ShardedBuffer shared = ShardedBuffer::attach(rig.ptrs, 1, kCount);
      const std::vector<float> inc(kCount, static_cast<float>(w + 1));
      for (int round = 0; round < kRounds; ++round) {
        mine.write(inc);
        mine.accumulate_into(shared);
      }
      mine.release();
      shared.release();
    });
  }
  for (auto& t : threads) t.join();
  std::vector<float> out(kCount);
  global.read(out);
  const float expected = kRounds * (kWorkers * (kWorkers + 1) / 2);
  for (float v : out) EXPECT_EQ(v, expected);
  global.release();
}

TEST(TrainShmCaffe, ConvergesWithMultipleSmbServers) {
  DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 4;
  options.smb_servers = 3;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 5;
  const TrainResult result = train_shmcaffe(options);
  EXPECT_GT(result.final_accuracy, 0.8);
}

}  // namespace
}  // namespace shmcaffe::core
