// Tests for model snapshot (de)serialisation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "dl/models.h"
#include "dl/param_vector.h"
#include "dl/serialize.h"

namespace shmcaffe::dl {
namespace {

Net make_trained_net(std::uint64_t seed) {
  common::Rng rng(seed);
  Net net = make_mini_resnet({3, 16, 16, 8});
  net.init_params(rng);
  return net;
}

TEST(Serialize, RoundTripsExactly) {
  Net source = make_trained_net(1);
  Net target = make_trained_net(2);
  const std::vector<float> expected = params_snapshot(source);
  ASSERT_NE(expected, params_snapshot(target));

  const std::vector<std::byte> blob = save_snapshot(source);
  load_snapshot(target, blob);
  EXPECT_EQ(params_snapshot(target), expected);
}

TEST(Serialize, RejectsDifferentArchitecture) {
  Net source = make_trained_net(1);
  const std::vector<std::byte> blob = save_snapshot(source);
  common::Rng rng(3);
  Net other = make_mini_inception({3, 16, 16, 8});
  other.init_params(rng);
  EXPECT_THROW(load_snapshot(other, blob), std::invalid_argument);
}

TEST(Serialize, RejectsCorruptMagicAndTruncation) {
  Net source = make_trained_net(1);
  Net target = make_trained_net(2);
  std::vector<std::byte> blob = save_snapshot(source);
  std::vector<std::byte> bad_magic = blob;
  bad_magic[0] = std::byte{0xFF};
  EXPECT_THROW(load_snapshot(target, bad_magic), std::invalid_argument);
  std::vector<std::byte> truncated(blob.begin(), blob.end() - 5);
  EXPECT_THROW(load_snapshot(target, truncated), std::invalid_argument);
  std::vector<std::byte> trailing = blob;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(load_snapshot(target, trailing), std::invalid_argument);
}

TEST(Serialize, TruncationSweepRejectsEveryPrefixAtomically) {
  // A snapshot cut at ANY byte boundary must be rejected, and — because the
  // loader validates the whole snapshot before committing anything — the
  // target net must come out bit-identical to how it went in (no partial
  // restore from a torn file).
  common::Rng rng(7);
  Net source = make_mlp({1, 4, 4, 3}, /*hidden=*/8);
  source.init_params(rng);
  Net target = make_mlp({1, 4, 4, 3}, /*hidden=*/8);
  target.init_params(rng);
  const std::vector<float> before = params_snapshot(target);
  const std::vector<std::byte> blob = save_snapshot(source);
  ASSERT_NE(params_snapshot(source), before);

  for (std::size_t length = 0; length < blob.size(); ++length) {
    const std::span<const std::byte> prefix(blob.data(), length);
    EXPECT_THROW(load_snapshot(target, prefix), std::invalid_argument)
        << "prefix length " << length;
  }
  // After the whole sweep the target is untouched.
  EXPECT_EQ(params_snapshot(target), before);

  // And the intact snapshot still applies.
  load_snapshot(target, blob);
  EXPECT_EQ(params_snapshot(target), params_snapshot(source));
}

TEST(Serialize, FileRoundTrip) {
  Net source = make_trained_net(1);
  Net target = make_trained_net(2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "shmcaffe_snapshot_test.bin").string();
  save_snapshot_file(source, path);
  load_snapshot_file(target, path);
  EXPECT_EQ(params_snapshot(target), params_snapshot(source));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Net net = make_trained_net(1);
  EXPECT_THROW(load_snapshot_file(net, "/nonexistent/dir/snapshot.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace shmcaffe::dl
