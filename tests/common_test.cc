// Tests for the common utilities: RNG determinism and distribution sanity,
// statistics, formatting, units.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace shmcaffe::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  Rng child1_again = Rng(7).fork(1);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, UniformIntCoversAllValuesInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Rng, UniformRealInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingleSample) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(SampleSet, QuantilesInterpolate) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Units, TransferTimeRoundsUp) {
  using namespace units;
  EXPECT_EQ(transfer_time(1, 1e9), 1);            // 1 byte at 1 GB/s = 1 ns
  EXPECT_EQ(transfer_time(1000, 1e9), 1000);      // 1 KB at 1 GB/s = 1 us
  EXPECT_GE(transfer_time(1, 3e9), 1);            // sub-ns rounds up to 1 ns
  EXPECT_EQ(transfer_time(0, 1e9), 0);
}

TEST(Units, SecondsRoundTrip) {
  using namespace units;
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
  EXPECT_EQ(from_millis(0.5), 500'000);
}

TEST(Strings, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(6.7e9), "6.70 GB/s");
  EXPECT_EQ(format_bandwidth(1.5e6), "1.5 MB/s");
  EXPECT_EQ(format_bandwidth(12.0), "12 B/s");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(214'000'000), "214.0 MB");
  EXPECT_EQ(format_bytes(1'000'000'000), "1.00 GB");
  EXPECT_EQ(format_bytes(512), "512 B");
}

TEST(Strings, FormatDuration) {
  using namespace units;
  EXPECT_EQ(format_duration(from_millis(257.3)), "257.3 ms");
  EXPECT_EQ(format_duration(2 * kSecond), "2.00 s");
  EXPECT_EQ(format_duration(47 * kMicrosecond), "47.0 us");
}

TEST(Strings, FormatHoursMinutesMatchesPaperStyle) {
  using namespace units;
  // Paper's Table II reports Caffe 1-GPU training time as 22:59.
  const SimTime t = 22 * 60 * 60 * kSecond + 59 * 60 * kSecond;
  EXPECT_EQ(format_hours_minutes(t), "22:59");
  EXPECT_EQ(format_hours_minutes(90 * 60 * kSecond), "1:30");
}

TEST(Strings, FormatFixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(10.0, 1), "10.0");
  EXPECT_EQ(format_percent(0.263), "26.3%");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"model", "time"});
  t.add_row({"vgg16", "727.7 ms"});
  t.add_row({"inception_v1", "90 ms"});
  const std::string out = t.render();
  EXPECT_NE(out.find("model         time"), std::string::npos);
  EXPECT_NE(out.find("vgg16         727.7 ms"), std::string::npos);
  EXPECT_NE(out.find("inception_v1  90 ms"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW({ (void)t.render(); });
}

}  // namespace
}  // namespace shmcaffe::common
