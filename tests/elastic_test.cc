// Tests for the elastic membership layer: the planned membership schedule
// and its fingerprint, executed-change filtering, the straggler-detection
// math, the MembershipService registry (epochs, shard rebalancing,
// counters), the growable progress board (cold-join slots, rate EWMAs,
// straggler sweeps), the simulated twin at scale (heterogeneous cohorts,
// staleness accounting), the elastic baseline star, and the end-to-end
// acceptance runs — workers join, drain, straggle-and-quarantine, and crash
// in one run with bit-identical membership fingerprints from the functional
// and simulated stacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "baselines/sim_platforms.h"
#include "core/config.h"
#include "core/progress_board.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"
#include "elastic/membership.h"
#include "elastic/straggler.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "recovery/epoch.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

using elastic::MembershipAction;
using elastic::MembershipChange;
using elastic::MembershipEvent;
using elastic::MembershipEventKind;
using elastic::MembershipPlan;
using elastic::MembershipPolicy;
using elastic::MembershipService;
using elastic::StragglerVerdict;
using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;

// --- shard assignment ------------------------------------------------------

TEST(ShardAssignments, ContiguousAndBalanced) {
  const std::vector<int> members{0, 1, 2, 3};
  EXPECT_EQ(elastic::shard_assignments(members, 2), (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(elastic::shard_assignments(members, 4), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(elastic::shard_assignments(std::vector<int>{7}, 4), std::vector<int>{0});
  EXPECT_TRUE(elastic::shard_assignments(std::vector<int>{}, 4).empty());
}

TEST(ShardAssignments, SingleLeaveReassignsFewWorkers) {
  const std::vector<int> before{0, 1, 2, 3, 4, 5};
  const std::vector<int> after{0, 1, 3, 4, 5};  // worker 2 left
  const std::vector<int> a = elastic::shard_assignments(before, 3);
  const std::vector<int> b = elastic::shard_assignments(after, 3);
  // Contiguous block maps move at most a handful of neighbours per change.
  int moved = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    std::size_t j = 0;
    while (before[j] != after[i]) ++j;
    if (a[j] != b[i]) ++moved;
  }
  EXPECT_LE(moved, 2);
}

// --- planned schedule ------------------------------------------------------

MembershipPolicy detection_policy() {
  MembershipPolicy policy;
  policy.straggler_detection = true;
  policy.quarantine_stall_seconds = 0.35;
  policy.evict_after_violations = 3;
  return policy;
}

TEST(MembershipSchedule, OrdersJoinsDrainsAndChainsDeterministically) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 4, 6});
  plan.add({MembershipEventKind::kDrain, 1, 9});

  FaultPlan faults;
  for (std::int64_t it : {3, 7, 11}) {
    FaultEvent stall;
    stall.kind = FaultKind::kWorkerStall;
    stall.target = 2;
    stall.iteration = it;
    stall.duration_seconds = 0.5;  // >= quarantine_stall_seconds
    faults.add(stall);
  }

  const std::vector<MembershipChange> changes =
      elastic::membership_schedule(&plan, &faults, detection_policy(), 4);
  const std::vector<MembershipChange> expected{
      {MembershipAction::kQuarantine, 2, 3},
      {MembershipAction::kReadmitContributor, 2, 3},
      {MembershipAction::kWorkerJoin, 4, 6},
      {MembershipAction::kShardRebalance, 4, 6},
      {MembershipAction::kQuarantine, 2, 7},
      {MembershipAction::kReadmitContributor, 2, 7},
      {MembershipAction::kWorkerDrain, 1, 9},
      {MembershipAction::kShardRebalance, 1, 9},
      {MembershipAction::kEvict, 2, 11},  // third violation
      {MembershipAction::kShardRebalance, 2, 11},
  };
  EXPECT_EQ(changes, expected);

  // Same inputs, same schedule, same fingerprint — every time.
  const auto again = elastic::membership_schedule(&plan, &faults, detection_policy(), 4);
  EXPECT_EQ(elastic::membership_fingerprint(changes),
            elastic::membership_fingerprint(again));
  EXPECT_NE(elastic::membership_fingerprint(changes),
            elastic::membership_fingerprint(std::vector<MembershipChange>{}));
  const std::string rendered = elastic::describe(changes);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(rendered.begin(), rendered.end(), '\n')),
            changes.size());
}

TEST(MembershipSchedule, ChainStopsAtCrashDrainAndShortStallsDeriveNothing) {
  FaultPlan faults;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 2;
  stall.iteration = 5;
  stall.duration_seconds = 0.1;  // below the planning bound: ignored
  faults.add(stall);
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 2;
  crash.iteration = 8;
  faults.add(crash);
  FaultEvent late_stall = stall;
  late_stall.iteration = 12;  // after the crash: the worker is gone
  late_stall.duration_seconds = 1.0;
  faults.add(late_stall);

  EXPECT_TRUE(
      elastic::membership_schedule(nullptr, &faults, detection_policy(), 4).empty());

  // Detection off: stalls derive nothing even when long.
  MembershipPolicy off = detection_policy();
  off.straggler_detection = false;
  FaultPlan long_stalls;
  FaultEvent s2 = stall;
  s2.duration_seconds = 2.0;
  long_stalls.add(s2);
  EXPECT_TRUE(elastic::membership_schedule(nullptr, &long_stalls, off, 4).empty());
}

TEST(MembershipPlan, CapacityAndDrainLookup) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 6, 10});
  plan.add({MembershipEventKind::kJoin, 4, 2});
  plan.add({MembershipEventKind::kDrain, 1, 30});
  EXPECT_EQ(plan.capacity(4), 7);  // max join slot + 1
  EXPECT_EQ(plan.capacity(9), 9);
  EXPECT_EQ(plan.drain_iteration(1), 30);
  EXPECT_EQ(plan.drain_iteration(0), -1);
  const std::vector<MembershipEvent> joins = plan.joins();
  ASSERT_EQ(joins.size(), 2u);
  EXPECT_EQ(joins[0].worker, 4);  // sorted by trigger iteration
  EXPECT_EQ(joins[1].worker, 6);
}

// --- executed-change filtering --------------------------------------------

TEST(FilterExecuted, KeepsExecutedChangesAndTheirRebalances) {
  const std::vector<MembershipChange> planned{
      {MembershipAction::kQuarantine, 2, 3},
      {MembershipAction::kReadmitContributor, 2, 3},
      {MembershipAction::kWorkerJoin, 4, 6},
      {MembershipAction::kShardRebalance, 4, 6},
      {MembershipAction::kWorkerDrain, 1, 9},
      {MembershipAction::kShardRebalance, 1, 9},
  };
  elastic::MembershipExecution executed;
  executed.record(MembershipAction::kQuarantine, 2);
  executed.record(MembershipAction::kReadmitContributor, 2);
  executed.record(MembershipAction::kWorkerJoin, 4);
  executed.record(MembershipAction::kShardRebalance, 4);

  const std::vector<MembershipChange> kept =
      elastic::filter_executed(planned, executed);
  // The drain never ran, so neither it nor its rebalance survives.
  const std::vector<MembershipChange> expected{
      {MembershipAction::kQuarantine, 2, 3},
      {MembershipAction::kReadmitContributor, 2, 3},
      {MembershipAction::kWorkerJoin, 4, 6},
      {MembershipAction::kShardRebalance, 4, 6},
  };
  EXPECT_EQ(kept, expected);
  EXPECT_NE(elastic::membership_fingerprint(kept),
            elastic::membership_fingerprint(planned));
}

// --- straggler math --------------------------------------------------------

TEST(StragglerMath, EwmaAdoptsFirstSampleThenSmooths) {
  EXPECT_DOUBLE_EQ(elastic::ewma(0.0, 100.0, 0.25), 100.0);
  EXPECT_DOUBLE_EQ(elastic::ewma(100.0, 200.0, 0.25), 125.0);
  EXPECT_DOUBLE_EQ(elastic::projected_staleness(0.5, 200.0), 100.0);
  EXPECT_DOUBLE_EQ(elastic::projected_staleness(-1.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(elastic::projected_staleness(0.5, 0.0), 0.0);
}

TEST(StragglerMath, VerdictsFollowThePolicyBounds) {
  MembershipPolicy policy;
  policy.straggler_detection = true;
  policy.staleness_bound_iterations = 50.0;
  policy.readmit_staleness_iterations = 10.0;
  policy.min_silence_seconds = 0.1;
  policy.evict_after_violations = 3;

  // Below the absolute silence guard: never a violation, whatever the rate.
  EXPECT_EQ(elastic::judge_alive(0.05, 1e6, 0, policy), StragglerVerdict::kNone);
  // Silent but projected under the bound: fine.
  EXPECT_EQ(elastic::judge_alive(0.2, 100.0, 0, policy), StragglerVerdict::kNone);
  // Over the bound: quarantine, then evict on the Nth violation.
  EXPECT_EQ(elastic::judge_alive(0.2, 1000.0, 0, policy), StragglerVerdict::kQuarantine);
  EXPECT_EQ(elastic::judge_alive(0.2, 1000.0, 1, policy), StragglerVerdict::kQuarantine);
  EXPECT_EQ(elastic::judge_alive(0.2, 1000.0, 2, policy), StragglerVerdict::kEvict);
  // Quarantined: readmit only once the projection collapses.
  EXPECT_EQ(elastic::judge_quarantined(1.0, 1000.0, policy), StragglerVerdict::kNone);
  EXPECT_EQ(elastic::judge_quarantined(0.005, 1000.0, policy),
            StragglerVerdict::kReadmit);
}

// --- MembershipService -----------------------------------------------------

TEST(MembershipService, EpochBumpsOnMembershipChangesOnly) {
  MembershipService service(/*initial_workers=*/3, /*capacity=*/5, /*shards=*/4);
  const elastic::MembershipEpoch initial = service.epoch();
  EXPECT_EQ(initial, recovery::kInitialServiceEpoch);
  EXPECT_EQ(service.members(), (std::vector<int>{0, 1, 2}));

  const elastic::MembershipEpoch after_join = service.join(3, 5);
  EXPECT_GT(after_join, initial);
  EXPECT_EQ(service.members(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(service.joined(), std::vector<int>{3});

  // Quarantine demotes without changing the member set: no epoch bump.
  service.quarantine(1, 7);
  EXPECT_EQ(service.epoch(), after_join);
  EXPECT_EQ(service.quarantine_events(), 1);
  service.readmit_contributor(1, 8);
  EXPECT_EQ(service.epoch(), after_join);

  const elastic::MembershipEpoch after_drain = service.drain(1, 9);
  EXPECT_GT(after_drain, after_join);
  EXPECT_EQ(service.members(), (std::vector<int>{0, 2, 3}));
  const elastic::MembershipEpoch after_evict = service.evict(2, 11);
  EXPECT_GT(after_evict, after_drain);
  EXPECT_EQ(service.members(), (std::vector<int>{0, 3}));
  EXPECT_EQ(service.evicted(), std::vector<int>{2});
  EXPECT_EQ(service.rebalances(), 3);  // join + drain + evict

  // Transitions are idempotent: replaying one changes nothing.
  EXPECT_EQ(service.join(3, 5), after_evict);
  EXPECT_EQ(service.drain(1, 9), after_evict);
  EXPECT_EQ(service.rebalances(), 3);
  EXPECT_EQ(service.joined(), std::vector<int>{3});

  const elastic::MembershipExecution executed = service.execution();
  EXPECT_EQ(executed.count(MembershipAction::kWorkerJoin, 3), 1);
  EXPECT_EQ(executed.count(MembershipAction::kWorkerDrain, 1), 1);
  EXPECT_EQ(executed.count(MembershipAction::kEvict, 2), 1);
  EXPECT_EQ(executed.count(MembershipAction::kQuarantine, 1), 1);
  // Rebalances are derived from their trigger, never counted directly.
  EXPECT_EQ(executed.count(MembershipAction::kShardRebalance, 3), 0);
}

TEST(MembershipService, HomeShardsSpreadAndRebalance) {
  MembershipService service(4, 4, 2);
  // Balanced from the start: two workers per shard ensemble.
  EXPECT_EQ(service.home_shard(0), 0);
  EXPECT_EQ(service.home_shard(3), 1);
  service.drain(0, 10);
  service.drain(1, 11);
  // The survivors spread across both shards again.
  EXPECT_EQ(service.home_shard(2), 0);
  EXPECT_EQ(service.home_shard(3), 1);
  EXPECT_GT(service.reassignments(), 0);
  // Outside the member set: fan-out starts at shard 0.
  EXPECT_EQ(service.home_shard(0), 0);
}

// --- growable progress board ----------------------------------------------

TEST(ProgressBoardElastic, ColdJoinSlotsAndAttachDerivedCapacity) {
  smb::SmbServer server;
  core::ProgressBoard board(server, 41, /*workers=*/3, /*create=*/true,
                            /*capacity=*/6);
  EXPECT_EQ(board.capacity(), 6);
  EXPECT_EQ(board.state_of(4), core::ProgressBoard::WorkerState::kAbsent);
  EXPECT_EQ(board.live_count(), 3);

  // A cold join takes a fresh slot under a brand-new incarnation.
  const std::int64_t incarnation = board.admit(4);
  EXPECT_GT(incarnation, core::ProgressBoard::kFirstIncarnation);
  EXPECT_EQ(board.state_of(4), core::ProgressBoard::WorkerState::kAlive);
  EXPECT_EQ(board.live_count(), 4);

  // Attachers recover the creator's capacity from the segment itself.
  core::ProgressBoard attached(server, 41, /*workers=*/0, /*create=*/false);
  EXPECT_EQ(attached.capacity(), 6);
  EXPECT_EQ(attached.state_of(4), core::ProgressBoard::WorkerState::kAlive);

  // Drained and absent slots stay out of every contributing reduction.
  board.report(0, 10, core::ProgressBoard::kFirstIncarnation);
  board.report(2, 20, core::ProgressBoard::kFirstIncarnation);
  board.report(4, 30, incarnation);
  board.mark_drained(1);
  EXPECT_EQ(board.state_of(1), core::ProgressBoard::WorkerState::kDrained);
  EXPECT_EQ(board.min_iterations(), 10);
  EXPECT_EQ(board.max_iterations(), 30);
  EXPECT_DOUBLE_EQ(board.mean_iterations(), 20.0);
  board.mark_evicted(4);
  EXPECT_EQ(board.state_of(4), core::ProgressBoard::WorkerState::kEvicted);
  EXPECT_EQ(board.max_iterations(), 20);
  board.release();
}

TEST(ProgressBoardElastic, RateEwmaTracksReports) {
  smb::SmbServer server;
  core::ProgressBoard board(server, 42, 2, /*create=*/true);
  EXPECT_DOUBLE_EQ(board.rate_of(0), 0.0);
  for (std::int64_t i = 1; i <= 30; ++i) {
    board.report(0, i, core::ProgressBoard::kFirstIncarnation);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(board.rate_of(0), 0.0);
  EXPECT_GT(board.mean_live_rate(), 0.0);
  // Worker 1 reported once: no interval yet, so no rate estimate.
  board.report(1, 1, core::ProgressBoard::kFirstIncarnation);
  EXPECT_DOUBLE_EQ(board.rate_of(1), 0.0);
  board.release();
}

TEST(ProgressBoardElastic, SweepQuarantinesSilentWorkerThenReadmits) {
  smb::SmbServer server;
  core::ProgressBoard board(server, 43, 2, /*create=*/true);
  MembershipPolicy policy;
  policy.straggler_detection = true;
  policy.staleness_bound_iterations = 5.0;
  policy.readmit_staleness_iterations = 3.0;
  policy.min_silence_seconds = 0.05;
  policy.evict_after_violations = 3;

  // Worker 0 reports steadily (establishing the live rate); worker 1
  // reports once, then goes silent.
  board.report(1, 1, core::ProgressBoard::kFirstIncarnation);
  const auto pump = [&board](int reports) {
    static std::int64_t iteration = 1;
    for (int i = 0; i < reports; ++i) {
      board.report(0, ++iteration, core::ProgressBoard::kFirstIncarnation);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  pump(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  pump(50);  // keep the rate estimate warm across worker 1's silence

  // Silence ~0.2s at a rate of hundreds of iterations/s projects far past
  // the bound of 5.
  const std::vector<elastic::StragglerTransition> demoted =
      board.sweep_stragglers(policy);
  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_EQ(demoted[0].worker, 1);
  EXPECT_EQ(demoted[0].verdict, StragglerVerdict::kQuarantine);
  EXPECT_EQ(board.state_of(1), core::ProgressBoard::WorkerState::kQuarantined);

  // A repeated sweep does not double-demote.
  EXPECT_TRUE(board.sweep_stragglers(policy).empty());

  // The worker catches up (a fresh report collapses its silence): readmit.
  board.report(1, 2, core::ProgressBoard::kFirstIncarnation);
  const std::vector<elastic::StragglerTransition> readmitted =
      board.sweep_stragglers(policy);
  ASSERT_EQ(readmitted.size(), 1u);
  EXPECT_EQ(readmitted[0].worker, 1);
  EXPECT_EQ(readmitted[0].verdict, StragglerVerdict::kReadmit);
  EXPECT_EQ(board.state_of(1), core::ProgressBoard::WorkerState::kAlive);
  board.release();
}

TEST(ProgressBoardElastic, RepeatedViolationsEvict) {
  smb::SmbServer server;
  core::ProgressBoard board(server, 44, 2, /*create=*/true);
  MembershipPolicy policy;
  policy.straggler_detection = true;
  policy.staleness_bound_iterations = 5.0;
  policy.min_silence_seconds = 0.05;
  policy.evict_after_violations = 1;  // first violation evicts outright

  board.report(1, 1, core::ProgressBoard::kFirstIncarnation);
  for (std::int64_t i = 1; i <= 50; ++i) {
    board.report(0, i, core::ProgressBoard::kFirstIncarnation);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  for (std::int64_t i = 51; i <= 100; ++i) {
    board.report(0, i, core::ProgressBoard::kFirstIncarnation);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<elastic::StragglerTransition> transitions =
      board.sweep_stragglers(policy);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].verdict, StragglerVerdict::kEvict);
  EXPECT_EQ(board.state_of(1), core::ProgressBoard::WorkerState::kEvicted);
  board.release();
}

// --- simulated twin --------------------------------------------------------

TEST(SimElastic, JoinsAndDrainsAreDeterministicAndFingerprinted) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 8, 5});
  plan.add({MembershipEventKind::kJoin, 9, 12});
  plan.add({MembershipEventKind::kDrain, 2, 20});

  core::SimShmCaffeOptions options;
  options.workers = 8;
  options.group_size = 1;
  options.iterations = 60;
  options.smb_servers = 2;
  options.membership = &plan;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(options);

  EXPECT_EQ(timing.joined_workers, (std::vector<int>{8, 9}));
  EXPECT_EQ(timing.drained_workers, std::vector<int>{2});
  EXPECT_EQ(timing.rebalances, 3);
  EXPECT_GT(timing.completed_worker_iterations,
            static_cast<std::int64_t>(8) * options.iterations);

  // Everything planned executed, so the fingerprint equals the plan's.
  const MembershipPolicy policy;
  EXPECT_EQ(timing.membership_fingerprint,
            elastic::membership_fingerprint(
                elastic::membership_schedule(&plan, nullptr, policy, 8)));

  const cluster::PlatformTiming again = core::simulate_shmcaffe(options);
  EXPECT_EQ(again.makespan, timing.makespan);
  EXPECT_EQ(again.membership_fingerprint, timing.membership_fingerprint);
}

TEST(SimElastic, StallChainsQuarantineThenEvict) {
  FaultPlan faults;
  for (std::int64_t it : {5, 15}) {
    FaultEvent stall;
    stall.kind = FaultKind::kWorkerStall;
    stall.target = 1;
    stall.iteration = it;
    stall.duration_seconds = 0.5;
    faults.add(stall);
  }
  const FaultInjector injector(faults);

  core::SimShmCaffeOptions options;
  options.workers = 4;
  options.group_size = 1;
  options.iterations = 40;
  options.faults = &injector;
  options.membership_policy.straggler_detection = true;
  options.membership_policy.quarantine_stall_seconds = 0.35;
  options.membership_policy.evict_after_violations = 2;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(options);

  // First stall: quarantine + readmit.  Second: eviction cuts the worker's
  // run short.
  EXPECT_EQ(timing.quarantine_events, 1);
  EXPECT_LT(timing.completed_worker_iterations,
            static_cast<std::int64_t>(4) * options.iterations);
  EXPECT_EQ(timing.membership_fingerprint,
            elastic::membership_fingerprint(elastic::membership_schedule(
                nullptr, &faults, options.membership_policy, 4)));
}

TEST(SimElastic, HeterogeneityslowsTheCohortAndViolatesStaleness) {
  core::SimShmCaffeOptions uniform;
  uniform.workers = 24;
  uniform.group_size = 1;
  uniform.iterations = 40;
  uniform.smb_servers = 2;
  uniform.membership_policy.straggler_detection = true;
  uniform.membership_policy.staleness_bound_iterations = 5.0;
  // Planning bound far above any injected stall: no quarantine chains, just
  // the staleness accounting.
  uniform.membership_policy.quarantine_stall_seconds = 1e9;
  const cluster::PlatformTiming flat = core::simulate_shmcaffe(uniform);

  core::SimShmCaffeOptions skewed = uniform;
  skewed.heterogeneity.slow_fraction = 0.25;
  skewed.heterogeneity.compute_multiplier = 3.0;
  skewed.heterogeneity.nic_multiplier = 2.0;
  const cluster::PlatformTiming het = core::simulate_shmcaffe(skewed);

  EXPECT_GT(het.makespan, flat.makespan);
  // A single-shard asynchronous cohort spreads a little even when uniform;
  // planted 3x-slow machines fall much further behind the cohort maximum.
  EXPECT_GT(het.staleness_violations, flat.staleness_violations);

  // The planted-slow selection is a pure function of (seed, worker).
  int slow = 0;
  for (int w = 0; w < 24; ++w) {
    EXPECT_EQ(skewed.heterogeneity.is_slow(w), skewed.heterogeneity.is_slow(w));
    if (skewed.heterogeneity.is_slow(w)) ++slow;
  }
  EXPECT_GT(slow, 0);
  EXPECT_LT(slow, 24);
}

TEST(SimElastic, ValidatesHybridGroupsAndJoinSlots) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 8, 5});
  core::SimShmCaffeOptions options;
  options.workers = 8;
  options.group_size = 2;
  options.membership = &plan;
  EXPECT_THROW((void)core::simulate_shmcaffe(options), std::invalid_argument);

  MembershipPlan bad;
  bad.add({MembershipEventKind::kJoin, 2, 5});  // below the initial cohort
  core::SimShmCaffeOptions low;
  low.workers = 8;
  low.group_size = 1;
  low.membership = &bad;
  EXPECT_THROW((void)core::simulate_shmcaffe(low), std::invalid_argument);
}

// --- elastic baseline star -------------------------------------------------

TEST(SimPlatformsElastic, CaffeMpiHonoursThePlanRingsIgnoreIt) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 4, 5});
  plan.add({MembershipEventKind::kDrain, 1, 15});

  baselines::SimPlatformOptions options;
  options.workers = 4;
  options.iterations = 40;
  options.membership = &plan;

  const cluster::PlatformTiming star = baselines::simulate_caffe_mpi(options);
  EXPECT_EQ(star.joined_workers, std::vector<int>{4});
  EXPECT_EQ(star.drained_workers, std::vector<int>{1});
  EXPECT_EQ(star.rebalances, 2);
  const MembershipPolicy policy;
  EXPECT_EQ(star.membership_fingerprint,
            elastic::membership_fingerprint(
                elastic::membership_schedule(&plan, nullptr, policy, 4)));

  // The fixed rings cannot resize: the plan is ignored, counters stay zero.
  const cluster::PlatformTiming ring = baselines::simulate_mpicaffe(options);
  EXPECT_TRUE(ring.joined_workers.empty());
  EXPECT_EQ(ring.membership_fingerprint, 0u);
  const cluster::PlatformTiming nccl = baselines::simulate_caffe(options);
  EXPECT_TRUE(nccl.joined_workers.empty());
}

TEST(SimPlatformsElastic, HeterogeneitySlowsEverySynchronousPlatform) {
  baselines::SimPlatformOptions uniform;
  uniform.workers = 8;
  uniform.iterations = 30;

  baselines::SimPlatformOptions skewed = uniform;
  skewed.heterogeneity.slow_fraction = 0.25;
  skewed.heterogeneity.compute_multiplier = 3.0;
  skewed.heterogeneity.nic_multiplier = 2.0;

  EXPECT_GT(baselines::simulate_caffe(skewed).makespan,
            baselines::simulate_caffe(uniform).makespan);
  EXPECT_GT(baselines::simulate_caffe_mpi(skewed).makespan,
            baselines::simulate_caffe_mpi(uniform).makespan);
  EXPECT_GT(baselines::simulate_mpicaffe(skewed).makespan,
            baselines::simulate_mpicaffe(uniform).makespan);
}

// --- end-to-end: functional trainer ----------------------------------------

core::DistTrainOptions elastic_train_options() {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 3;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 3;
  options.heartbeat_timeout_seconds = 0.5;
  return options;
}

TEST(ElasticEndToEnd, JoinAndDrainReportedFromBothStacks) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 3, 4});
  plan.add({MembershipEventKind::kDrain, 1, 30});

  core::DistTrainOptions options = elastic_train_options();
  options.membership = &plan;
  const core::TrainResult result = core::train_shmcaffe(options);

  EXPECT_EQ(result.joined_workers, std::vector<int>{3});
  EXPECT_EQ(result.drained_workers, std::vector<int>{1});
  EXPECT_EQ(result.rebalances, 2);
  ASSERT_EQ(result.worker_outcomes.size(), 4u);
  EXPECT_EQ(result.worker_outcomes[1], core::WorkerOutcome::kDrained);
  EXPECT_EQ(result.worker_outcomes[0], core::WorkerOutcome::kFinished);
  EXPECT_EQ(result.worker_outcomes[3], core::WorkerOutcome::kFinished);
  EXPECT_GT(result.final_accuracy, 0.4);

  // The simulated twin consumes the identical plan and lands on the same
  // membership fingerprint.
  core::SimShmCaffeOptions sim;
  sim.workers = 3;
  sim.group_size = 1;
  sim.iterations = 96;
  sim.membership = &plan;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(sim);
  EXPECT_EQ(timing.membership_fingerprint, result.membership_fingerprint);
  EXPECT_NE(result.membership_fingerprint, 0u);
  EXPECT_EQ(timing.joined_workers, result.joined_workers);
  EXPECT_EQ(timing.drained_workers, result.drained_workers);
  EXPECT_EQ(timing.rebalances, result.rebalances);
}

TEST(ElasticEndToEnd, JoinDuringFailover) {
  // A worker cold-joins while the SMB layer is failing over to its backup
  // replica: the join must retry its way through the pause and succeed.
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 3, 4});

  FaultPlan faults;
  FaultEvent fail_primary;
  fail_primary.kind = FaultKind::kServerFailStop;
  fail_primary.target = 0;  // shard 0, replica 0 — the active primary
  fail_primary.start_seconds = 0.05;
  faults.add(fail_primary);
  const FaultInjector injector(faults);

  core::DistTrainOptions options = elastic_train_options();
  options.membership = &plan;
  options.smb_replicas = 2;
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  EXPECT_EQ(result.smb_failovers, 1);
  EXPECT_EQ(result.joined_workers, std::vector<int>{3});
  EXPECT_EQ(result.worker_outcomes[3], core::WorkerOutcome::kFinished);

  core::SimShmCaffeOptions sim;
  sim.workers = 3;
  sim.group_size = 1;
  sim.iterations = 96;
  sim.smb_replicas = 2;
  sim.membership = &plan;
  sim.faults = &injector;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(sim);
  EXPECT_EQ(timing.membership_fingerprint, result.membership_fingerprint);
  EXPECT_EQ(timing.recovery_fingerprint, result.recovery_fingerprint);
  EXPECT_EQ(timing.smb_failovers, result.smb_failovers);
}

TEST(ElasticEndToEnd, DrainWhileCheckpointing) {
  const std::string dir = ::testing::TempDir() + "shmcaffe_elastic_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  MembershipPlan plan;
  plan.add({MembershipEventKind::kDrain, 1, 20});

  core::DistTrainOptions options = elastic_train_options();
  options.workers = 2;
  options.membership = &plan;
  options.checkpoint.directory = dir;
  options.checkpoint.interval_iterations = 16;
  const core::TrainResult result = core::train_shmcaffe(options);

  // The drain must not corrupt the checkpoint stream: checkpoints keep
  // landing and the run finishes on the survivor.
  EXPECT_GE(result.checkpoints_taken, 1);
  EXPECT_EQ(result.drained_workers, std::vector<int>{1});
  EXPECT_EQ(result.worker_outcomes[0], core::WorkerOutcome::kFinished);
  EXPECT_EQ(result.worker_outcomes[1], core::WorkerOutcome::kDrained);
  const MembershipPolicy policy;
  EXPECT_EQ(result.membership_fingerprint,
            elastic::membership_fingerprint(
                elastic::membership_schedule(&plan, nullptr, policy, 2)));
}

/// Policy used by the straggler end-to-end runs: the stall comfortably
/// clears both the absolute silence guard and the projected-staleness bound
/// at mlp iteration rates (hundreds per second), while the heartbeat
/// timeout stays far above the stall so the sweep quarantines instead of
/// fencing.
MembershipPolicy e2e_straggler_policy() {
  MembershipPolicy policy;
  policy.straggler_detection = true;
  policy.staleness_bound_iterations = 30.0;
  policy.readmit_staleness_iterations = 10.0;
  policy.min_silence_seconds = 0.2;
  policy.quarantine_stall_seconds = 0.6;
  policy.evict_after_violations = 3;
  return policy;
}

TEST(ElasticEndToEnd, QuarantineCatchUpReadmit) {
  FaultPlan faults;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 2;
  stall.iteration = 5;
  stall.duration_seconds = 0.6;
  faults.add(stall);
  const FaultInjector injector(faults);

  core::DistTrainOptions options = elastic_train_options();
  // Long enough that the run is still going when the straggler wakes, so
  // the catch-up readmission actually happens before termination.
  options.epochs = 15;
  options.membership_policy = e2e_straggler_policy();
  options.heartbeat_timeout_seconds = 3.0;
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  // One stall, one demotion; the worker caught up, was readmitted, and
  // finished — never fenced, never evicted.
  EXPECT_EQ(result.quarantine_events, 1);
  ASSERT_EQ(result.worker_outcomes.size(), 3u);
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(result.worker_outcomes[static_cast<std::size_t>(w)],
              core::WorkerOutcome::kFinished)
        << "worker " << w;
  }

  core::SimShmCaffeOptions sim;
  sim.workers = 3;
  sim.group_size = 1;
  sim.iterations = 480;
  sim.membership_policy = options.membership_policy;
  sim.faults = &injector;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(sim);
  EXPECT_EQ(timing.quarantine_events, result.quarantine_events);
  EXPECT_EQ(timing.membership_fingerprint, result.membership_fingerprint);
  EXPECT_NE(result.membership_fingerprint, 0u);
}

TEST(ElasticEndToEnd, AcceptanceJoinDrainQuarantineCrashInOneRun) {
  // The PR's acceptance run: in ONE training run a worker cold-joins, a
  // worker drains voluntarily, a worker straggles into quarantine and is
  // readmitted after catching up, and a worker crashes and is re-admitted
  // by the recovery layer — while the SMB primary fails over.  Both stacks
  // must land on bit-identical membership fingerprints.
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 4, 6});
  plan.add({MembershipEventKind::kDrain, 1, 200});

  FaultPlan faults;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 2;
  stall.iteration = 8;
  stall.duration_seconds = 0.8;
  faults.add(stall);
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 3;
  crash.iteration = 10;
  faults.add(crash);
  FaultEvent fail_primary;
  fail_primary.kind = FaultKind::kServerFailStop;
  fail_primary.target = 0;
  fail_primary.start_seconds = 0.06;
  faults.add(fail_primary);
  const FaultInjector injector(faults);

  core::DistTrainOptions options = elastic_train_options();
  options.workers = 4;
  // 360 iterations/worker.  The run cannot terminate before the crashed
  // worker is fenced (it contributes its frozen count to the mean until
  // then, and skew pacing parks the survivors), so every wall-clock event
  // — the 0.8s stall, its readmission, the 2s fence — fits comfortably.
  options.epochs = 15;
  options.membership = &plan;
  options.membership_policy = e2e_straggler_policy();
  options.smb_replicas = 2;
  options.recovery.respawn_crashed = true;
  options.heartbeat_timeout_seconds = 2.0;
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  EXPECT_EQ(result.joined_workers, std::vector<int>{4});
  EXPECT_EQ(result.drained_workers, std::vector<int>{1});
  // At least the planned stall demotion; worker 3's dying silence may trip
  // the detector too before the heartbeat fence declares it dead (the
  // detector's silence guard is far below the fencing timeout) — that
  // unplanned quarantine is exactly what filter_executed discards, so the
  // fingerprints below still match bit-for-bit.
  EXPECT_GE(result.quarantine_events, 1);
  EXPECT_EQ(result.recovered_workers, std::vector<int>{3});
  EXPECT_EQ(result.smb_failovers, 1);
  ASSERT_EQ(result.worker_outcomes.size(), 5u);
  EXPECT_EQ(result.worker_outcomes[1], core::WorkerOutcome::kDrained);
  EXPECT_EQ(result.worker_outcomes[2], core::WorkerOutcome::kFinished);
  EXPECT_EQ(result.worker_outcomes[4], core::WorkerOutcome::kFinished);

  core::SimShmCaffeOptions sim;
  sim.workers = 4;
  sim.group_size = 1;
  sim.iterations = 360;
  sim.smb_replicas = 2;
  sim.recovery = options.recovery;
  sim.membership = &plan;
  sim.membership_policy = options.membership_policy;
  sim.faults = &injector;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(sim);
  EXPECT_EQ(timing.membership_fingerprint, result.membership_fingerprint);
  EXPECT_NE(result.membership_fingerprint, 0u);
  EXPECT_EQ(timing.recovery_fingerprint, result.recovery_fingerprint);
  EXPECT_EQ(timing.joined_workers, result.joined_workers);
  EXPECT_EQ(timing.drained_workers, result.drained_workers);
  EXPECT_EQ(timing.quarantine_events, 1);  // the sim models the planned stall only
}

TEST(TrainOptions, ElasticValidation) {
  MembershipPlan plan;
  plan.add({MembershipEventKind::kJoin, 4, 5});

  core::DistTrainOptions hybrid = elastic_train_options();
  hybrid.workers = 4;
  hybrid.group_size = 2;
  hybrid.membership = &plan;
  EXPECT_THROW((void)core::train_shmcaffe(hybrid), std::invalid_argument);

  MembershipPlan bad;
  bad.add({MembershipEventKind::kJoin, 1, 5});  // collides with a live rank
  core::DistTrainOptions low = elastic_train_options();
  low.membership = &bad;
  EXPECT_THROW((void)core::train_shmcaffe(low), std::invalid_argument);
}

}  // namespace
}  // namespace shmcaffe
