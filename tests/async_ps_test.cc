// Tests for the classic parameter server and Downpour ASGD baseline.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/async_ps.h"
#include "common/ordered_mutex.h"

namespace shmcaffe::baselines {
namespace {

TEST(ParameterServer, InitializeAndPull) {
  ParameterServer server(4);
  const std::vector<float> init{1, 2, 3, 4};
  server.initialize(init);
  std::vector<float> out(4);
  server.pull(out);
  EXPECT_EQ(out, init);
  EXPECT_EQ(server.update_count(), 0u);
}

TEST(ParameterServer, PushAppliesScaledGradient) {
  ParameterServer server(3);
  server.initialize(std::vector<float>{1, 1, 1});
  server.push_gradient(std::vector<float>{1, 2, -1}, 0.5F);
  std::vector<float> out(3);
  server.pull(out);
  EXPECT_EQ(out, (std::vector<float>{0.5F, 0.0F, 1.5F}));
  EXPECT_EQ(server.update_count(), 1u);
}

TEST(ParameterServer, SizeMismatchesThrow) {
  ParameterServer server(3);
  std::vector<float> wrong(4);
  EXPECT_THROW(server.initialize(wrong), std::invalid_argument);
  EXPECT_THROW(server.pull(wrong), std::invalid_argument);
  EXPECT_THROW(server.push_gradient(wrong, 0.1F), std::invalid_argument);
  EXPECT_THROW(ParameterServer(0), std::invalid_argument);
}

TEST(ParameterServer, ConcurrentPushesAllApply) {
  ParameterServer server(16);
  server.initialize(std::vector<float>(16, 0.0F));
  constexpr int kThreads = 8;
  constexpr int kPushes = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      const std::vector<float> grad(16, -1.0F);  // W -= lr * (-1) = +lr
      for (int i = 0; i < kPushes; ++i) server.push_gradient(grad, 1.0F);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server.update_count(), static_cast<std::uint64_t>(kThreads) * kPushes);
  std::vector<float> out(16);
  server.pull(out);
  for (float v : out) EXPECT_FLOAT_EQ(v, kThreads * kPushes);
}

core::DistTrainOptions tiny_options(int workers) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = workers;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 4;
  return options;
}

TEST(Downpour, SingleWorkerLearns) {
  const core::TrainResult result = train_downpour(tiny_options(1));
  EXPECT_GT(result.final_accuracy, 0.85);
  EXPECT_EQ(result.curve.back().epoch, 4);
}

TEST(Downpour, ManyWorkersLearn) {
  const core::TrainResult result = train_downpour(tiny_options(4));
  EXPECT_GT(result.final_accuracy, 0.8);
}

TEST(Downpour, SparseCommunicationStillConverges) {
  DownpourOptions downpour;
  downpour.fetch_interval = 4;
  downpour.push_interval = 4;
  const core::TrainResult result = train_downpour(tiny_options(4), downpour);
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(Downpour, InvalidOptionsThrow) {
  DownpourOptions bad;
  bad.fetch_interval = 0;
  EXPECT_THROW(train_downpour(tiny_options(2), bad), std::invalid_argument);
}


// Lock-order guard: the suite above drives the instrumented mutexes hard
// (weights lock under concurrent push/pull); any rank inversion or acquisition-graph cycle they produced
// is a latent deadlock.  Runs last in this binary by declaration order.
TEST(LockOrder, CleanUnderParameterServer) {
  EXPECT_TRUE(shmcaffe::common::LockOrderRegistry::instance().violations().empty())
      << shmcaffe::common::LockOrderRegistry::instance().violations().size()
      << " lock-order violation(s); see stderr for details";
}

}  // namespace
}  // namespace shmcaffe::baselines
