// Tests for the data pipeline: dataset determinism and learnability
// structure, shard partitioning (no duplication, full coverage), epoch
// shuffling, prefetcher liveness, and the record store / sample codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "data/loader.h"
#include "data/record_store.h"
#include "data/synth_dataset.h"

namespace shmcaffe::data {
namespace {

SynthDatasetOptions small_options() {
  SynthDatasetOptions options;
  options.size = 256;
  options.height = 12;
  options.width = 12;
  return options;
}

TEST(SynthDataset, DeterministicAcrossInstances) {
  const SynthImageDataset a(small_options());
  const SynthImageDataset b(small_options());
  std::vector<float> image_a(a.image_elements());
  std::vector<float> image_b(b.image_elements());
  for (std::size_t i : {0UL, 17UL, 255UL}) {
    a.materialize(i, image_a);
    b.materialize(i, image_b);
    EXPECT_EQ(image_a, image_b) << "sample " << i;
  }
}

TEST(SynthDataset, DifferentSeedsProduceDifferentPixels) {
  SynthDatasetOptions options = small_options();
  const SynthImageDataset a(options);
  options.seed = 999;
  const SynthImageDataset b(options);
  std::vector<float> image_a(a.image_elements());
  std::vector<float> image_b(b.image_elements());
  a.materialize(0, image_a);
  b.materialize(0, image_b);
  EXPECT_NE(image_a, image_b);
}

TEST(SynthDataset, LabelsAreBalanced) {
  const SynthImageDataset dataset(small_options());
  std::vector<int> counts(8, 0);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const int label = dataset.label(i);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 8);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int count : counts) EXPECT_EQ(count, 32);  // 256 / 8
}

TEST(SynthDataset, SameClassSamplesDiffer) {
  const SynthImageDataset dataset(small_options());
  std::vector<float> a(dataset.image_elements());
  std::vector<float> b(dataset.image_elements());
  dataset.materialize(0, a);  // class 0
  dataset.materialize(8, b);  // class 0, different sample
  EXPECT_NE(a, b);
}

TEST(SynthDataset, ClassesAreStatisticallySeparable) {
  // Mean same-class pixel correlation must exceed cross-class correlation —
  // otherwise nothing could learn the labels.
  SynthDatasetOptions options = small_options();
  options.noise_stddev = 0.2;
  const SynthImageDataset dataset(options);
  const std::size_t dim = dataset.image_elements();

  auto normalised = [&](std::size_t index) {
    std::vector<float> image(dim);
    dataset.materialize(index, image);
    double norm = 0.0;
    for (float v : image) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    for (float& v : image) v = static_cast<float>(v / norm);
    return image;
  };
  auto dot = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) acc += static_cast<double>(a[i]) * b[i];
    return acc;
  };

  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const auto a = normalised(i);
    for (std::size_t j = i + 1; j < 64; ++j) {
      const auto b = normalised(j);
      const double d = std::abs(dot(a, b));
      if (dataset.label(i) == dataset.label(j)) {
        same += d;
        ++same_n;
      } else {
        cross += d;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, 1.5 * cross / cross_n);
}

TEST(SynthDataset, FillBatchShapesAndLabels) {
  const SynthImageDataset dataset(small_options());
  dl::Tensor images;
  dl::Tensor labels;
  const std::vector<std::size_t> indices{3, 9, 12};
  dataset.fill_batch(indices, images, labels);
  EXPECT_EQ(images.shape(), (std::vector<int>{3, 3, 12, 12}));
  EXPECT_EQ(labels.shape(), (std::vector<int>{3}));
  EXPECT_EQ(static_cast<int>(labels[0]), dataset.label(3));
  EXPECT_EQ(static_cast<int>(labels[2]), dataset.label(12));
}

TEST(SynthDataset, RejectsInvalidOptions) {
  SynthDatasetOptions options = small_options();
  options.classes = 1;
  EXPECT_THROW(SynthImageDataset{options}, std::invalid_argument);
  options = small_options();
  options.classes = 9;
  EXPECT_THROW(SynthImageDataset{options}, std::invalid_argument);
  options = small_options();
  options.size = 0;
  EXPECT_THROW(SynthImageDataset{options}, std::invalid_argument);
}

// --- ShardedLoader ---

TEST(ShardedLoader, ShardsPartitionWithoutDuplication) {
  const SynthImageDataset dataset(small_options());
  constexpr int kWorkers = 5;
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (int w = 0; w < kWorkers; ++w) {
    ShardedLoader loader(dataset, w, kWorkers, 4);
    total += loader.shard_size();
    // Drain exactly one epoch and collect indices indirectly via labels:
    // instead verify shard arithmetic directly.
  }
  EXPECT_EQ(total, dataset.size());
  // Round-robin assignment: worker w gets indices w, w+5, w+10, ...
  ShardedLoader loader0(dataset, 0, kWorkers, 4);
  EXPECT_EQ(loader0.shard_size(), (dataset.size() + kWorkers - 1) / kWorkers);
  (void)seen;
}

TEST(ShardedLoader, EpochAdvancesAndReshuffles) {
  const SynthImageDataset dataset(small_options());
  ShardedLoader loader(dataset, 0, 4, 8);  // shard 64, 8 batches/epoch
  EXPECT_EQ(loader.batches_per_epoch(), 8u);
  Batch batch;
  std::vector<float> first_epoch_first_batch;
  for (int i = 0; i < 8; ++i) {
    loader.next(batch);
    EXPECT_EQ(batch.epoch, 0);
    if (i == 0) {
      first_epoch_first_batch.assign(batch.data.span().begin(), batch.data.span().end());
    }
  }
  loader.next(batch);
  EXPECT_EQ(batch.epoch, 1);
  // Different permutation: first batch of epoch 1 differs from epoch 0's.
  const std::vector<float> second(batch.data.span().begin(), batch.data.span().end());
  EXPECT_NE(first_epoch_first_batch, second);
}

TEST(ShardedLoader, DeterministicForSameSeed) {
  const SynthImageDataset dataset(small_options());
  auto collect = [&dataset] {
    ShardedLoader loader(dataset, 1, 2, 16, 77);
    Batch batch;
    std::vector<float> all;
    for (int i = 0; i < 10; ++i) {
      loader.next(batch);
      all.insert(all.end(), batch.labels.span().begin(), batch.labels.span().end());
    }
    return all;
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ShardedLoader, RejectsBadConfig) {
  const SynthImageDataset dataset(small_options());
  EXPECT_THROW(ShardedLoader(dataset, 3, 3, 4), std::invalid_argument);
  EXPECT_THROW(ShardedLoader(dataset, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(ShardedLoader(dataset, 0, 1, 1000), std::invalid_argument);
}

TEST(Prefetcher, DeliversSameStreamAsBareLoader) {
  const SynthImageDataset dataset(small_options());
  ShardedLoader bare(dataset, 0, 2, 8, 5);
  Prefetcher prefetcher(ShardedLoader(dataset, 0, 2, 8, 5), 4);
  for (int i = 0; i < 20; ++i) {
    Batch expected;
    bare.next(expected);
    const Batch actual = prefetcher.next();
    ASSERT_EQ(actual.labels.span().size(), expected.labels.span().size());
    for (std::size_t j = 0; j < expected.labels.size(); ++j) {
      ASSERT_EQ(actual.labels[j], expected.labels[j]) << "batch " << i;
    }
  }
}

TEST(Prefetcher, StopsCleanlyWhileFull) {
  const SynthImageDataset dataset(small_options());
  {
    Prefetcher prefetcher(ShardedLoader(dataset, 0, 1, 4), 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it fill
  }  // destructor must not hang
  SUCCEED();
}

// --- RecordStore ---

TEST(RecordStore, PutGetAndDuplicateRejection) {
  RecordStore store;
  EXPECT_TRUE(store.put("a", {std::byte{1}, std::byte{2}}));
  EXPECT_FALSE(store.put("a", {std::byte{9}}));
  const auto got = store.get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 2u);
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.total_bytes(), 2);
}

TEST(RecordStore, KeysSorted) {
  RecordStore store;
  store.put("b", {});
  store.put("a", {});
  store.put("c", {});
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SampleCodec, RoundTrips) {
  const std::vector<float> image{0.5F, -1.0F, 3.25F};
  const std::vector<std::byte> record = encode_sample(image, 7);
  std::vector<float> decoded;
  int label = -1;
  ASSERT_TRUE(decode_sample(record, decoded, label));
  EXPECT_EQ(decoded, image);
  EXPECT_EQ(label, 7);
}

TEST(SampleCodec, RejectsCorruptRecords) {
  const std::vector<float> image{1.0F};
  std::vector<std::byte> record = encode_sample(image, 0);
  std::vector<float> decoded;
  int label = 0;
  EXPECT_FALSE(decode_sample(std::span(record).subspan(0, 3), decoded, label));
  record[0] = std::byte{0xFF};  // break magic
  EXPECT_FALSE(decode_sample(record, decoded, label));
  std::vector<std::byte> truncated = encode_sample(image, 0);
  truncated.pop_back();
  EXPECT_FALSE(decode_sample(truncated, decoded, label));
}

TEST(RecordStore, WriteDatasetFreezesEverySample) {
  SynthDatasetOptions options = small_options();
  options.size = 64;
  const SynthImageDataset dataset(options);
  RecordStore store;
  EXPECT_EQ(write_dataset(dataset, store), 64u);
  EXPECT_EQ(store.count(), 64u);

  // Spot-check a record decodes to the generated sample.
  std::vector<float> expected(dataset.image_elements());
  dataset.materialize(10, expected);
  const auto record = store.get(record_key(10));
  ASSERT_TRUE(record.has_value());
  std::vector<float> decoded;
  int label = -1;
  ASSERT_TRUE(decode_sample(*record, decoded, label));
  EXPECT_EQ(decoded, expected);
  EXPECT_EQ(label, dataset.label(10));
}

}  // namespace
}  // namespace shmcaffe::data
