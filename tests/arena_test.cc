// Tests for the central arena allocator (common/arena.h): size classing,
// slab reuse across iterations, per-owner accounting, and the Buffer RAII
// front end that replaces std::vector<float> in the hot paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/arena.h"

namespace shmcaffe::common::arena {
namespace {

TEST(ArenaSlabClass, RoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(Arena::slab_class(0), Arena::kMinSlabFloats);
  EXPECT_EQ(Arena::slab_class(1), Arena::kMinSlabFloats);
  EXPECT_EQ(Arena::slab_class(64), 64U);
  EXPECT_EQ(Arena::slab_class(65), 128U);
  EXPECT_EQ(Arena::slab_class(100), 128U);
  EXPECT_EQ(Arena::slab_class(128), 128U);
  EXPECT_EQ(Arena::slab_class(129), 256U);
  EXPECT_EQ(Arena::slab_class(4096), 4096U);
  EXPECT_EQ(Arena::slab_class(4097), 8192U);
}

TEST(Arena, AcquireIsAlignedAndAccounted) {
  Arena arena;
  const Arena::Slab slab = arena.acquire("test.owner", 100);
  ASSERT_NE(slab.data, nullptr);
  EXPECT_EQ(slab.capacity, 128U);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab.data) % Arena::kAlignment, 0U);

  const Stats stats = arena.stats();
  ASSERT_EQ(stats.by_owner.count("test.owner"), 1U);
  const OwnerStats& owner = stats.by_owner.at("test.owner");
  EXPECT_EQ(owner.bytes_live, 128U * sizeof(float));
  EXPECT_EQ(owner.bytes_peak, 128U * sizeof(float));
  EXPECT_EQ(owner.slab_allocs, 1U);
  EXPECT_EQ(owner.slab_reuses, 0U);
  EXPECT_EQ(stats.total.bytes_live, owner.bytes_live);

  arena.release("test.owner", slab);
  const Stats after = arena.stats();
  EXPECT_EQ(after.by_owner.at("test.owner").bytes_live, 0U);
  // Peak is a high-water mark; release does not lower it.
  EXPECT_EQ(after.by_owner.at("test.owner").bytes_peak, 128U * sizeof(float));
}

TEST(Arena, ReleasedSlabIsReusedBySameClassAcquire) {
  Arena arena;
  Arena::Slab first = arena.acquire("reuse", 200);  // class 256
  float* const recycled = first.data;
  arena.release("reuse", first);

  // Same class from a different count: must come off the free list.
  const Arena::Slab second = arena.acquire("reuse", 129);
  EXPECT_EQ(second.data, recycled);
  EXPECT_EQ(second.capacity, 256U);

  const OwnerStats owner = arena.stats().by_owner.at("reuse");
  EXPECT_EQ(owner.slab_allocs, 1U);
  EXPECT_EQ(owner.slab_reuses, 1U);
  EXPECT_EQ(owner.bytes_reused, 256U * sizeof(float));
  arena.release("reuse", second);
}

TEST(Arena, OwnersAreTrackedSeparatelyAndTotalled) {
  Arena arena;
  const Arena::Slab a = arena.acquire("owner.a", 64);
  const Arena::Slab b = arena.acquire("owner.b", 1024);
  const Stats stats = arena.stats();
  EXPECT_EQ(stats.by_owner.at("owner.a").bytes_live, 64U * sizeof(float));
  EXPECT_EQ(stats.by_owner.at("owner.b").bytes_live, 1024U * sizeof(float));
  EXPECT_EQ(stats.total.bytes_live, (64U + 1024U) * sizeof(float));
  EXPECT_EQ(stats.total.slab_allocs, 2U);
  arena.release("owner.a", a);
  arena.release("owner.b", b);
  EXPECT_EQ(arena.stats().total.bytes_live, 0U);
}

TEST(Arena, TrimDropsFreeListsButNotLiveSlabs) {
  Arena arena;
  const Arena::Slab live = arena.acquire("trim", 64);
  Arena::Slab idle = arena.acquire("trim", 512);
  arena.release("trim", idle);

  const std::size_t freed = arena.trim();
  EXPECT_EQ(freed, 512U * sizeof(float));
  // The live slab is untouched and still accounted.
  EXPECT_EQ(arena.stats().by_owner.at("trim").bytes_live, 64U * sizeof(float));

  // The trimmed class is gone: the next acquire hits the OS allocator again.
  const Arena::Slab fresh = arena.acquire("trim", 512);
  EXPECT_EQ(arena.stats().by_owner.at("trim").slab_allocs, 3U);
  arena.release("trim", fresh);
  arena.release("trim", live);
}

TEST(ArenaBuffer, EnsureGrowsAndPreservesPrefix) {
  Arena arena;
  Buffer buffer("buf.prefix", &arena);
  buffer.ensure(10);
  for (std::size_t i = 0; i < 10; ++i) buffer[i] = static_cast<float>(i);

  buffer.ensure(500);
  EXPECT_EQ(buffer.size(), 500U);
  EXPECT_GE(buffer.capacity(), 512U);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(buffer[i], static_cast<float>(i)) << "prefix lost at " << i;
  }

  // Shrinking the size never shrinks the slab.
  const std::size_t cap = buffer.capacity();
  buffer.ensure(5);
  EXPECT_EQ(buffer.size(), 5U);
  EXPECT_EQ(buffer.capacity(), cap);
}

TEST(ArenaBuffer, AssignFillsEveryElement) {
  Arena arena;
  Buffer buffer("buf.assign", &arena);
  buffer.assign(130, 3.5F);
  ASSERT_EQ(buffer.size(), 130U);
  for (const float v : buffer.span()) EXPECT_EQ(v, 3.5F);
  buffer.assign(7, 0.0F);
  for (const float v : buffer.span()) EXPECT_EQ(v, 0.0F);
}

TEST(ArenaBuffer, SteadyStateReusesWithoutFreshAllocations) {
  Arena arena;
  Buffer buffer("buf.steady", &arena);
  for (int iteration = 0; iteration < 10; ++iteration) {
    buffer.assign(1000, static_cast<float>(iteration));
  }
  // One slab for the whole loop: repeating sizes cost nothing after warmup.
  const OwnerStats owner = arena.stats().by_owner.at("buf.steady");
  EXPECT_EQ(owner.slab_allocs, 1U);
  EXPECT_EQ(owner.bytes_live, Arena::slab_class(1000) * sizeof(float));
}

TEST(ArenaBuffer, MoveTransfersSlabWithoutDoubleRelease) {
  Arena arena;
  {
    Buffer source("buf.move", &arena);
    source.assign(100, 1.0F);
    const float* const data = source.data();

    Buffer moved = std::move(source);
    EXPECT_EQ(moved.data(), data);
    EXPECT_EQ(moved.size(), 100U);
    EXPECT_EQ(source.size(), 0U);      // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(source.data(), nullptr); // NOLINT(bugprone-use-after-move)

    Buffer assigned("buf.move", &arena);
    assigned.assign(30, 2.0F);
    assigned = std::move(moved);
    EXPECT_EQ(assigned.data(), data);
    EXPECT_EQ(assigned.size(), 100U);
  }
  // Every slab returned exactly once: nothing live, nothing leaked.
  EXPECT_EQ(arena.stats().total.bytes_live, 0U);
}

TEST(ArenaBuffer, ResetReturnsSlabForReuse) {
  Arena arena;
  Buffer buffer("buf.reset", &arena);
  buffer.ensure(300);
  buffer.reset();
  EXPECT_EQ(buffer.size(), 0U);
  EXPECT_EQ(buffer.capacity(), 0U);
  EXPECT_EQ(arena.stats().by_owner.at("buf.reset").bytes_live, 0U);

  buffer.ensure(300);
  EXPECT_EQ(arena.stats().by_owner.at("buf.reset").slab_reuses, 1U);
}

TEST(ArenaGlobal, DefaultBufferChargesTheProcessArena) {
  const std::uint64_t allocs_before = global_arena().stats().total.slab_allocs;
  {
    Buffer buffer("test.global_arena");
    buffer.assign(4096, 0.0F);
    const Stats stats = global_arena().stats();
    ASSERT_EQ(stats.by_owner.count("test.global_arena"), 1U);
    EXPECT_EQ(stats.by_owner.at("test.global_arena").bytes_live,
              4096U * sizeof(float));
  }
  EXPECT_EQ(global_arena().stats().by_owner.at("test.global_arena").bytes_live, 0U);
  EXPECT_GE(global_arena().stats().total.slab_allocs, allocs_before + 1);
}

}  // namespace
}  // namespace shmcaffe::common::arena
