// Tests for the recovery layer: the replicated SMB ensemble (mirroring,
// failover, epoch fencing, idempotent tagged replay), crash-consistent
// double-buffered checkpoints, the shared recovery schedule, progress-board
// re-admission, and the end-to-end acceptance runs — training survives a
// primary SMB fail-stop plus a worker crash with an identical recovery
// fingerprint in the functional and simulated stacks, and a checkpoint
// resume reproduces the uninterrupted run's result exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/progress_board.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "recovery/checkpoint.h"
#include "recovery/replicated_smb.h"
#include "recovery/schedule.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using recovery::CheckpointStore;
using recovery::RecoveryPolicy;
using recovery::ReplicatedSmb;
using recovery::TrainCheckpoint;

// --- ReplicatedSmb: mirroring --------------------------------------------

TEST(ReplicatedSmb, MirrorsMutationsToAllReplicas) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle g = ensemble.create_floats(7, 4);
  ensemble.write(g, std::vector<float>{1, 2, 3, 4});

  // The physical segments on both replicas hold identical bits.
  for (smb::SmbServer* replica : {&a, &b}) {
    const smb::Handle ph = replica->attach_floats(7);
    std::vector<float> seen(4);
    replica->read(ph, seen);
    EXPECT_EQ(seen, (std::vector<float>{1, 2, 3, 4}));
    replica->release(ph);
  }
  ensemble.release(g);
}

TEST(ReplicatedSmb, AccumulateStaysBitIdenticalAcrossReplicas) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle src = ensemble.create_floats(1, 3);
  const smb::Handle dst = ensemble.create_floats(2, 3);
  ensemble.write(src, std::vector<float>{0.5f, -1.0f, 2.0f});
  ensemble.write(dst, std::vector<float>{1.0f, 1.0f, 1.0f});
  ensemble.accumulate(src, dst);

  std::vector<float> on_a(3);
  std::vector<float> on_b(3);
  const smb::Handle pa = a.attach_floats(2);
  const smb::Handle pb = b.attach_floats(2);
  a.read(pa, on_a);
  b.read(pb, on_b);
  EXPECT_EQ(on_a, on_b);
  EXPECT_EQ(on_a, (std::vector<float>{1.5f, 0.0f, 3.0f}));
  a.release(pa);
  b.release(pb);
}

// --- ReplicatedSmb: failover ---------------------------------------------

TEST(ReplicatedSmb, PrimaryFailStopPromotesBackupTransparently) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle g = ensemble.create_floats(9, 2);
  ensemble.write(g, std::vector<float>{3, 4});
  EXPECT_EQ(ensemble.active_replica(), 0);
  EXPECT_EQ(ensemble.service_epoch(), recovery::kInitialServiceEpoch);

  a.fail_stop();

  // The logical handle keeps working: the read discovers the fail-stop,
  // promotes the backup and retries there.
  std::vector<float> seen(2);
  ensemble.read(g, seen);
  EXPECT_EQ(seen, (std::vector<float>{3, 4}));
  EXPECT_EQ(ensemble.active_replica(), 1);
  EXPECT_EQ(ensemble.live_replica_count(), 1);
  EXPECT_EQ(ensemble.failover_count(), 1u);
  EXPECT_EQ(ensemble.failover_log(), std::vector<int>{0});
  // Every failover bumps the service epoch (fencing).
  EXPECT_GT(ensemble.service_epoch(), recovery::kInitialServiceEpoch);

  // Mutations continue on the survivor.
  ensemble.write(g, std::vector<float>{5, 6});
  ensemble.read(g, seen);
  EXPECT_EQ(seen, (std::vector<float>{5, 6}));
  ensemble.release(g);
}

TEST(ReplicatedSmb, BackupDeathIsNotAFailover) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle g = ensemble.create_floats(3, 2);
  b.fail_stop();
  // The next mutation discovers the dead backup and drops it from the
  // fan-out; the primary never changes, so no failover is recorded.
  ensemble.write(g, std::vector<float>{1, 2});
  std::vector<float> seen(2);
  ensemble.read(g, seen);
  EXPECT_EQ(seen, (std::vector<float>{1, 2}));
  EXPECT_EQ(ensemble.active_replica(), 0);
  EXPECT_EQ(ensemble.failover_count(), 0u);
  EXPECT_TRUE(ensemble.failover_log().empty());
  ensemble.release(g);
}

TEST(ReplicatedSmb, AllReplicasDeadThrowsUnavailable) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle g = ensemble.create_floats(5, 2);
  a.fail_stop();
  b.fail_stop();
  EXPECT_THROW(ensemble.write(g, std::vector<float>{1, 2}), smb::SmbUnavailable);
}

TEST(ReplicatedSmb, AccumulateAppliesExactlyOnceAcrossFailover) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle src = ensemble.create_floats(1, 2);
  const smb::Handle dst = ensemble.create_floats(2, 2);
  ensemble.write(src, std::vector<float>{1, 2});
  ensemble.write(dst, std::vector<float>{10, 20});

  a.fail_stop();
  // The fan-out hits the dead primary, fails over, and replays the op under
  // the same tag on the survivor — applied exactly once.
  ensemble.accumulate(src, dst);
  std::vector<float> seen(2);
  ensemble.read(dst, seen);
  EXPECT_EQ(seen, (std::vector<float>{11, 22}));
}

TEST(ReplicatedSmb, CountersSurviveFailover) {
  smb::SmbServer a;
  smb::SmbServer b;
  ReplicatedSmb ensemble({&a, &b});
  const smb::Handle c = ensemble.create_counters(11, 4);
  ensemble.store(c, 0, 5);
  EXPECT_EQ(ensemble.fetch_add(c, 0, 2), 5);
  a.fail_stop();
  EXPECT_EQ(ensemble.load(c, 0), 7);
  EXPECT_EQ(ensemble.fetch_add(c, 0, 1), 7);
  EXPECT_EQ(ensemble.load(c, 0), 8);
  ensemble.release(c);
}

TEST(SmbServer, TaggedReplayIsDroppedNotReapplied) {
  smb::SmbServer server;
  const smb::Handle src = server.create_floats(1, 2);
  const smb::Handle dst = server.create_floats(2, 2);
  server.write(src, std::vector<float>{1, 1});
  server.write(dst, std::vector<float>{0, 0});

  const smb::OpTag tag{/*writer=*/3, /*sequence=*/7};
  server.accumulate_tagged(src, dst, tag);
  server.accumulate_tagged(src, dst, tag);  // replay of the same op: dropped
  std::vector<float> seen(2);
  server.read(dst, seen);
  EXPECT_EQ(seen, (std::vector<float>{1, 1}));
  EXPECT_EQ(server.stats().replays_dropped, 1u);
  server.release(src);
  server.release(dst);
}

// --- checkpoints: encode/decode ------------------------------------------

TrainCheckpoint sample_checkpoint() {
  TrainCheckpoint c;
  c.sequence = 3;
  c.seed = 0x5eedc0de;
  c.owner_solver_iteration = 42;
  c.worker_iterations = {40, 41, 39, 40};
  c.global_weights = {0.5f, -1.25f, 3.0f};
  c.owner_params = {0.25f, -0.5f, 1.0f};
  c.owner_momentum = {0.0f, 0.125f, -0.75f};
  return c;
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const TrainCheckpoint original = sample_checkpoint();
  const std::vector<std::uint8_t> bytes = recovery::encode_checkpoint(original);
  const std::optional<TrainCheckpoint> decoded = recovery::decode_checkpoint(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(Checkpoint, DecodeRejectsEveryTruncation) {
  const std::vector<std::uint8_t> bytes =
      recovery::encode_checkpoint(sample_checkpoint());
  // A torn write can stop at any byte: every proper prefix must be rejected
  // (the trailing checksum never validates against a cut payload).
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::span<const std::uint8_t> prefix(bytes.data(), length);
    EXPECT_FALSE(recovery::decode_checkpoint(prefix).has_value())
        << "prefix length " << length;
  }
}

TEST(Checkpoint, DecodeRejectsBitRotAndTrailingBytes) {
  std::vector<std::uint8_t> bytes = recovery::encode_checkpoint(sample_checkpoint());
  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(recovery::decode_checkpoint(flipped).has_value());
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(recovery::decode_checkpoint(padded).has_value());
}

// --- checkpoints: double-buffered store ----------------------------------

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "shmcaffe_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Truncates the slot file currently holding `sequence` to half its size
/// (simulating a write torn by a crash).
void tear_slot_holding(const CheckpointStore& store, std::uint64_t sequence) {
  for (int slot = 0; slot < 2; ++slot) {
    const std::string& path = store.slot_path(slot);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) continue;
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<std::uint8_t> data(size);
    in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size));
    const std::optional<TrainCheckpoint> decoded = recovery::decode_checkpoint(data);
    if (!decoded.has_value() || decoded->sequence != sequence) continue;
    std::filesystem::resize_file(path, size / 2);
    return;
  }
  FAIL() << "no slot holds sequence " << sequence;
}

TEST(CheckpointStore, AlternatesSlotsAndLoadsLatest) {
  const CheckpointStore store(fresh_dir("alternate"));
  TrainCheckpoint c = sample_checkpoint();
  for (std::uint64_t sequence : {1u, 2u, 3u}) {
    c.sequence = sequence;
    c.owner_solver_iteration = static_cast<std::int64_t>(sequence * 10);
    store.save(c);
    const std::optional<TrainCheckpoint> latest = store.load_latest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->sequence, sequence);
  }
  // After three saves both slot files exist: 3 overwrote the slot of 1 while
  // the slot of 2 stayed intact.
  EXPECT_TRUE(std::filesystem::exists(store.slot_path(0)));
  EXPECT_TRUE(std::filesystem::exists(store.slot_path(1)));
}

TEST(CheckpointStore, TornLatestFallsBackToPreviousSlot) {
  const CheckpointStore store(fresh_dir("torn"));
  TrainCheckpoint c = sample_checkpoint();
  c.sequence = 1;
  store.save(c);
  c.sequence = 2;
  c.owner_solver_iteration = 99;
  store.save(c);

  tear_slot_holding(store, 2);
  const std::optional<TrainCheckpoint> latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->sequence, 1u);
}

TEST(CheckpointStore, EmptyDirectoryLoadsNothing) {
  const CheckpointStore store(fresh_dir("empty"));
  EXPECT_FALSE(store.load_latest().has_value());
}

// --- recovery schedule ----------------------------------------------------

FaultPlan recovery_plan() {
  FaultPlan plan;
  FaultEvent fail0;
  fail0.kind = FaultKind::kServerFailStop;
  fail0.target = 0;
  fail0.start_seconds = 0.10;
  plan.add(fail0);
  FaultEvent fail3;
  fail3.kind = FaultKind::kServerFailStop;
  fail3.target = 3;
  fail3.start_seconds = 0.05;
  plan.add(fail3);
  FaultEvent crash2;
  crash2.kind = FaultKind::kWorkerCrash;
  crash2.target = 2;
  crash2.iteration = 3;
  plan.add(crash2);
  FaultEvent crash1;
  crash1.kind = FaultKind::kWorkerCrash;
  crash1.target = 1;
  crash1.iteration = 9;
  plan.add(crash1);
  FaultEvent crash2_again;  // a worker dies once: the later crash is ignored
  crash2_again.kind = FaultKind::kWorkerCrash;
  crash2_again.target = 2;
  crash2_again.iteration = 12;
  plan.add(crash2_again);
  return plan;
}

TEST(RecoverySchedule, OrdersFailoversThenReadmitsDeterministically) {
  RecoveryPolicy policy;
  policy.respawn_crashed = true;
  const std::vector<recovery::RecoveryEvent> events =
      recovery_schedule(recovery_plan(), policy);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].action, recovery::RecoveryAction::kSmbFailover);
  EXPECT_EQ(events[0].target, 3);  // earliest fail-stop first
  EXPECT_EQ(events[1].action, recovery::RecoveryAction::kSmbFailover);
  EXPECT_EQ(events[1].target, 0);
  EXPECT_EQ(events[2].action, recovery::RecoveryAction::kWorkerReadmit);
  EXPECT_EQ(events[2].target, 2);
  EXPECT_EQ(events[2].at_iteration, 3);
  EXPECT_EQ(events[3].action, recovery::RecoveryAction::kWorkerReadmit);
  EXPECT_EQ(events[3].target, 1);
  EXPECT_EQ(events[3].at_iteration, 9);

  // Same inputs, same schedule, same fingerprint — every time.
  const std::vector<recovery::RecoveryEvent> again =
      recovery_schedule(recovery_plan(), policy);
  EXPECT_EQ(events, again);
  EXPECT_EQ(recovery::schedule_fingerprint(events),
            recovery::schedule_fingerprint(again));
  EXPECT_NE(recovery::schedule_fingerprint(events), 0u);
}

TEST(RecoverySchedule, PolicyGatesActions) {
  RecoveryPolicy failover_only;
  failover_only.respawn_crashed = false;
  const auto failovers = recovery_schedule(recovery_plan(), failover_only);
  ASSERT_EQ(failovers.size(), 2u);
  for (const recovery::RecoveryEvent& event : failovers) {
    EXPECT_EQ(event.action, recovery::RecoveryAction::kSmbFailover);
  }

  RecoveryPolicy nothing;
  nothing.smb_failover = false;
  nothing.respawn_crashed = false;
  EXPECT_TRUE(recovery_schedule(recovery_plan(), nothing).empty());

  RecoveryPolicy everything;
  everything.respawn_crashed = true;
  EXPECT_NE(recovery::schedule_fingerprint(recovery_schedule(recovery_plan(), everything)),
            recovery::schedule_fingerprint(failovers));
}

TEST(RecoverySchedule, DescribeMentionsEveryEvent) {
  RecoveryPolicy policy;
  policy.respawn_crashed = true;
  const auto events = recovery_schedule(recovery_plan(), policy);
  const std::string text = recovery::describe(events);
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            events.size());
}

// --- progress-board re-admission -----------------------------------------

TEST(ProgressBoardReadmit, NewIncarnationFencesThePreviousLife) {
  smb::SmbServer server;
  core::ProgressBoard board(server, 31, 3, /*create=*/true);
  board.report(2, 50, core::ProgressBoard::kFirstIncarnation);
  board.mark_dead(2);
  EXPECT_EQ(board.incarnation_of(2), core::ProgressBoard::kFirstIncarnation);

  const std::int64_t incarnation = board.readmit(2);
  EXPECT_EQ(incarnation, core::ProgressBoard::kFirstIncarnation + 1);
  EXPECT_EQ(board.state_of(2), core::ProgressBoard::WorkerState::kAlive);
  EXPECT_EQ(board.iterations_of(2), 0);  // the slot restarts from zero

  // A report stamped with the dead life's incarnation is dropped; the new
  // life's reports land.
  board.report(2, 999, core::ProgressBoard::kFirstIncarnation);
  EXPECT_EQ(board.iterations_of(2), 0);
  board.report(2, 4, incarnation);
  EXPECT_EQ(board.iterations_of(2), 4);
  board.release();
}

// --- end-to-end: failover + re-admission ----------------------------------

core::DistTrainOptions recovery_train_options() {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 4;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 4;
  options.heartbeat_timeout_seconds = 0.5;
  return options;
}

TEST(RecoveryEndToEnd, TrainingSurvivesPrimaryFailStopAndWorkerCrash) {
  // The acceptance run: kill the primary SMB replica mid-run AND crash one
  // worker; with failover + re-admission on, training must complete, the
  // crashed slot must rejoin, and accuracy must stay near the fault-free run.
  FaultPlan plan;
  FaultEvent fail_primary;
  fail_primary.kind = FaultKind::kServerFailStop;
  fail_primary.target = 0;  // shard 0, replica 0 — the active primary
  fail_primary.start_seconds = 0.05;
  plan.add(fail_primary);
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 2;
  crash.iteration = 3;
  plan.add(crash);
  const FaultInjector injector(plan);

  core::DistTrainOptions options = recovery_train_options();
  options.smb_replicas = 2;
  options.recovery.respawn_crashed = true;
  // Fence the crashed worker quickly: with the default timeout the mean-
  // iterations criterion can fire (survivors over-running the target) before
  // the sweep ever declares the crash, and no re-admission would happen.
  options.heartbeat_timeout_seconds = 0.15;
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  // The run completed: every slot finished (worker 2 under a new life).
  EXPECT_EQ(result.smb_failovers, 1);
  EXPECT_EQ(result.recovered_workers, std::vector<int>{2});
  ASSERT_EQ(result.worker_outcomes.size(), 4u);
  for (int w : {0, 1, 3}) {
    EXPECT_EQ(result.worker_outcomes[static_cast<std::size_t>(w)],
              core::WorkerOutcome::kFinished)
        << "worker " << w;
  }

  // Accuracy within tolerance of the fault-free run.
  core::DistTrainOptions clean = recovery_train_options();
  const core::TrainResult baseline = core::train_shmcaffe(clean);
  EXPECT_GT(result.final_accuracy, 0.5);
  EXPECT_NEAR(result.final_accuracy, baseline.final_accuracy, 0.25);

  // The executed recovery actions are exactly the planned schedule.
  RecoveryPolicy policy = options.recovery;
  const auto planned = recovery_schedule(plan, policy);
  EXPECT_EQ(result.recovery_fingerprint, recovery::schedule_fingerprint(planned));
  EXPECT_NE(result.recovery_fingerprint, 0u);

  // The sim twin derives the identical recovery schedule from the same plan.
  core::SimShmCaffeOptions sim;
  sim.workers = 4;
  sim.group_size = 1;
  sim.iterations = 96;
  sim.smb_servers = 1;
  sim.smb_replicas = 2;
  sim.recovery = policy;
  sim.faults = &injector;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(sim);
  EXPECT_EQ(timing.recovery_fingerprint, result.recovery_fingerprint);
  EXPECT_EQ(timing.recovered_workers, result.recovered_workers);
  EXPECT_EQ(timing.smb_failovers, result.smb_failovers);
}

TEST(RecoveryEndToEnd, SimModelsFailoverPauseAndReadmitDelay) {
  FaultPlan plan;
  FaultEvent fail_primary;
  fail_primary.kind = FaultKind::kServerFailStop;
  fail_primary.target = 0;
  fail_primary.start_seconds = 0.5;
  plan.add(fail_primary);
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 1;
  crash.iteration = 5;
  plan.add(crash);
  const FaultInjector injector(plan);

  core::SimShmCaffeOptions base;
  base.workers = 4;
  base.group_size = 1;
  base.iterations = 40;
  base.smb_replicas = 2;
  base.recovery.respawn_crashed = true;
  const cluster::PlatformTiming clean = core::simulate_shmcaffe(base);

  core::SimShmCaffeOptions faulted = base;
  faulted.faults = &injector;
  const cluster::PlatformTiming recovered = core::simulate_shmcaffe(faulted);

  // Recovery is modelled, not free: the faulted run pays the failover pause
  // and the re-admission delay, completes every worker iteration, and both
  // runs are deterministic.
  EXPECT_GT(recovered.makespan, clean.makespan);
  EXPECT_EQ(recovered.completed_worker_iterations, clean.completed_worker_iterations);
  EXPECT_EQ(recovered.recovered_workers, std::vector<int>{1});
  EXPECT_EQ(recovered.smb_failovers, 1);
  const cluster::PlatformTiming again = core::simulate_shmcaffe(faulted);
  EXPECT_EQ(again.makespan, recovered.makespan);
  EXPECT_EQ(again.recovery_fingerprint, recovered.recovery_fingerprint);
}

// --- end-to-end: checkpoint / resume -------------------------------------

core::DistTrainOptions checkpoint_train_options(const std::string& directory) {
  core::DistTrainOptions options = recovery_train_options();
  options.workers = 1;
  options.epochs = 3;
  options.train_data.size = 1024;
  options.checkpoint.directory = directory;
  options.checkpoint.interval_iterations = 20;
  return options;
}

TEST(RecoveryEndToEnd, ResumeReproducesTheUninterruptedRunExactly) {
  // Reference: a single-worker run to completion (the single-worker mlp path
  // is fully deterministic — seeded RNG, serialized exchange, no dropout).
  const std::string reference_dir = fresh_dir("ckpt_reference");
  const core::TrainResult uninterrupted =
      core::train_shmcaffe(checkpoint_train_options(reference_dir));
  ASSERT_GT(uninterrupted.checkpoints_taken, 0);

  // The same run, killed at iteration 50: checkpoints at 20 and 40 exist.
  const std::string resumed_dir = fresh_dir("ckpt_resumed");
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 0;
  crash.iteration = 50;
  plan.add(crash);
  const FaultInjector injector(plan);
  core::DistTrainOptions interrupted = checkpoint_train_options(resumed_dir);
  interrupted.faults = &injector;
  const core::TrainResult killed = core::train_shmcaffe(interrupted);
  EXPECT_EQ(killed.worker_outcomes[0], core::WorkerOutcome::kCrashed);
  EXPECT_GE(killed.checkpoints_taken, 2);

  // Resume from the latest checkpoint and finish.
  core::DistTrainOptions resume = checkpoint_train_options(resumed_dir);
  resume.checkpoint.resume = true;
  const core::TrainResult resumed = core::train_shmcaffe(resume);
  EXPECT_EQ(resumed.resumed_iterations, 40);
  EXPECT_EQ(resumed.worker_outcomes[0], core::WorkerOutcome::kFinished);

  // The restart equals the uninterrupted run: the checkpoint captured W_g,
  // the owner's parameters, momentum, solver cursor and the data cursor, so
  // the final weights — and therefore the final evaluation — are identical
  // bit for bit.
  EXPECT_EQ(resumed.final_accuracy, uninterrupted.final_accuracy);
  EXPECT_EQ(resumed.final_loss, uninterrupted.final_loss);

  // The curve tail lands on the same epochs with comparable accuracy (epoch
  // evaluations sample W_g concurrently with training, so they are close,
  // not bit-identical).
  ASSERT_FALSE(resumed.curve.empty());
  for (const core::EpochMetrics& point : resumed.curve) {
    bool matched = false;
    for (const core::EpochMetrics& ref : uninterrupted.curve) {
      if (ref.epoch != point.epoch) continue;
      matched = true;
      EXPECT_NEAR(point.test_accuracy, ref.test_accuracy, 0.35) << "epoch " << point.epoch;
    }
    EXPECT_TRUE(matched) << "epoch " << point.epoch << " missing from the reference run";
  }
}

TEST(RecoveryEndToEnd, MismatchedCheckpointIsIgnored) {
  // A checkpoint from a different run (different seed) must not be adopted.
  const std::string dir = fresh_dir("ckpt_mismatch");
  core::DistTrainOptions first = checkpoint_train_options(dir);
  (void)core::train_shmcaffe(first);

  core::DistTrainOptions other = checkpoint_train_options(dir);
  other.seed = first.seed + 1;
  other.checkpoint.resume = true;
  const core::TrainResult result = core::train_shmcaffe(other);
  EXPECT_EQ(result.resumed_iterations, 0);  // started fresh
  EXPECT_EQ(result.worker_outcomes[0], core::WorkerOutcome::kFinished);
}

TEST(TrainOptions, RecoveryValidation) {
  core::DistTrainOptions options = recovery_train_options();
  options.smb_replicas = 0;
  EXPECT_THROW((void)core::train_shmcaffe(options), std::invalid_argument);

  core::DistTrainOptions hybrid = recovery_train_options();
  hybrid.workers = 4;
  hybrid.group_size = 2;
  hybrid.recovery.respawn_crashed = true;
  EXPECT_THROW((void)core::train_shmcaffe(hybrid), std::invalid_argument);
}

}  // namespace
}  // namespace shmcaffe
