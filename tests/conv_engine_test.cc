// Equivalence tests between the direct and im2col+GEMM convolution engines:
// identical configurations must produce matching outputs and gradients
// across a parameter sweep of geometries.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "dl/layers.h"

namespace shmcaffe::dl {
namespace {

struct Geometry {
  int batch;
  int in_channels;
  int out_channels;
  int height;
  int width;
  int kernel;
  int stride;
  int pad;
};

class ConvEngines : public ::testing::TestWithParam<Geometry> {};

TEST_P(ConvEngines, ForwardAndBackwardAgree) {
  const Geometry g = GetParam();
  Conv2d direct("d", g.in_channels, g.out_channels, g.kernel, g.stride, g.pad,
                ConvEngine::kDirect);
  Conv2d gemm("g", g.in_channels, g.out_channels, g.kernel, g.stride, g.pad,
              ConvEngine::kIm2colGemm);

  common::Rng rng(31);
  direct.init_params(rng);
  // Copy the exact same weights into the GEMM instance.
  for (std::size_t p = 0; p < 2; ++p) {
    const auto src = direct.params()[p]->value.span();
    auto dst = gemm.params()[p]->value.span();
    std::copy(src.begin(), src.end(), dst.begin());
  }

  Tensor x({g.batch, g.in_channels, g.height, g.width});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));

  Tensor top_direct;
  Tensor top_gemm;
  direct.setup({&x}, top_direct);
  gemm.setup({&x}, top_gemm);
  ASSERT_EQ(top_direct.shape(), top_gemm.shape());
  direct.forward({&x}, top_direct, true);
  gemm.forward({&x}, top_gemm, true);
  for (std::size_t i = 0; i < top_direct.size(); ++i) {
    ASSERT_NEAR(top_direct[i], top_gemm[i], 1e-4F) << "forward element " << i;
  }

  Tensor top_grad;
  top_grad.reshape(top_direct.shape());
  for (float& v : top_grad.span()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor dx_direct;
  dx_direct.reshape(x.shape());
  Tensor dx_gemm;
  dx_gemm.reshape(x.shape());
  std::vector<Tensor*> grads_direct{&dx_direct};
  std::vector<Tensor*> grads_gemm{&dx_gemm};
  direct.backward({&x}, top_direct, top_grad, grads_direct);
  gemm.backward({&x}, top_gemm, top_grad, grads_gemm);

  for (std::size_t i = 0; i < dx_direct.size(); ++i) {
    ASSERT_NEAR(dx_direct[i], dx_gemm[i], 1e-3F) << "dx element " << i;
  }
  for (std::size_t p = 0; p < 2; ++p) {
    const auto gd = direct.params()[p]->grad.span();
    const auto gg = gemm.params()[p]->grad.span();
    for (std::size_t i = 0; i < gd.size(); ++i) {
      ASSERT_NEAR(gd[i], gg[i], 2e-3F) << "param " << p << " grad " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvEngines,
    ::testing::Values(Geometry{1, 1, 1, 5, 5, 3, 1, 1},     // minimal
                      Geometry{2, 3, 8, 12, 12, 3, 1, 1},   // typical model layer
                      Geometry{3, 4, 6, 9, 7, 3, 2, 1},     // strided, non-square
                      Geometry{2, 8, 4, 8, 8, 1, 1, 0},     // 1x1 projection
                      Geometry{1, 2, 2, 11, 11, 5, 2, 2},   // big kernel, stride 2
                      Geometry{2, 3, 5, 6, 6, 3, 3, 0}));   // stride == kernel

TEST(ConvEngines, NullBottomGradSupportedByBoth) {
  for (ConvEngine engine : {ConvEngine::kDirect, ConvEngine::kIm2colGemm}) {
    Conv2d conv("c", 2, 3, 3, 1, 1, engine);
    common::Rng rng(5);
    conv.init_params(rng);
    Tensor x({1, 2, 6, 6});
    for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
    Tensor top;
    conv.setup({&x}, top);
    conv.forward({&x}, top, true);
    Tensor top_grad;
    top_grad.reshape(top.shape());
    top_grad.fill(0.1F);
    std::vector<Tensor*> grads{nullptr};
    EXPECT_NO_THROW(conv.backward({&x}, top, top_grad, grads));
  }
}

}  // namespace
}  // namespace shmcaffe::dl
