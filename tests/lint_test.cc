// shmcaffe-lint rule tests: one positive (rule fires) and one negative
// (rule stays silent) fixture per rule, run against in-memory sources, plus
// the escape hatch, the comment/string scrubber, and the output formats.
//
// Fixture code is assembled from ordinary string concatenation on purpose:
// the real linter also scans THIS file, and literal bodies are scrubbed
// before rules run, so the forbidden tokens below never trip the repo gate.
#include "tools/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace shmcaffe::lint {
namespace {

std::vector<std::string> rules_fired(std::string_view path, std::string_view source) {
  std::vector<std::string> rules;
  for (const Finding& finding : lint_source(path, source)) rules.push_back(finding.rule);
  return rules;
}

bool fires(std::string_view path, std::string_view source, const std::string& rule) {
  const std::vector<std::string> fired = rules_fired(path, source);
  return std::find(fired.begin(), fired.end(), rule) != fired.end();
}

// --- rng-source ----------------------------------------------------------

TEST(RngSourceRule, FlagsRawEntropyOutsideRngModule) {
  EXPECT_TRUE(fires("src/dl/layers.cc", "int x = rand();\n", "rng-source"));
  EXPECT_TRUE(fires("src/core/trainer.cc", "srand(42);\n", "rng-source"));
  EXPECT_TRUE(fires("tests/foo_test.cc", "std::random_device rd;\n", "rng-source"));
  EXPECT_TRUE(fires("bench/bench_x.cc", "std::mt19937_64 gen(1);\n", "rng-source"));
}

TEST(RngSourceRule, AllowsTheRngModuleAndSeededRng) {
  EXPECT_FALSE(fires("src/common/rng.cc", "int x = rand();\n", "rng-source"));
  EXPECT_FALSE(fires("src/common/rng.h", "std::mt19937 reference;\n", "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "common::Rng rng(seed);\nrng.uniform();\n",
                     "rng-source"));
  // Identifiers merely containing the token are fine.
  EXPECT_FALSE(fires("src/dl/layers.cc", "int operand(int a);\n", "rng-source"));
}

// --- wall-clock ----------------------------------------------------------

TEST(WallClockRule, FlagsSystemClockEverywhere) {
  EXPECT_TRUE(fires("src/core/trainer.cc",
                    "auto t = std::chrono::system_clock::now();\n", "wall-clock"));
  EXPECT_TRUE(fires("tests/a_test.cc", "std::chrono::system_clock::now();\n", "wall-clock"));
}

TEST(WallClockRule, AllowsSteadyClockInFunctionalCode) {
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "auto t = std::chrono::steady_clock::now();\n", "wall-clock"));
}

// --- sim-wall-clock ------------------------------------------------------

TEST(SimWallClockRule, FlagsWallTimeInSimulatedCode) {
  EXPECT_TRUE(fires("src/sim/simulation.cc",
                    "auto t = std::chrono::steady_clock::now();\n", "sim-wall-clock"));
  EXPECT_TRUE(fires("src/net/fabric.cc",
                    "std::this_thread::sleep_for(std::chrono::seconds(1));\n",
                    "sim-wall-clock"));
  // Any sim_* twin counts as simulated code, wherever it lives.
  EXPECT_TRUE(fires("src/smb/sim_smb.cc", "steady_clock::now();\n", "sim-wall-clock"));
  EXPECT_TRUE(
      fires("src/baselines/sim_platforms.cc", "sleep_until(deadline);\n", "sim-wall-clock"));
  EXPECT_TRUE(fires("src/minimpi/sim_mpi.cc", "high_resolution_clock::now();\n",
                    "sim-wall-clock"));
}

TEST(SimWallClockRule, AllowsWallTimeInFunctionalCode) {
  EXPECT_FALSE(fires("src/core/trainer.cc", "steady_clock::now();\n", "sim-wall-clock"));
  EXPECT_FALSE(fires("src/smb/server.cc",
                     "std::this_thread::sleep_for(std::chrono::seconds(1));\n",
                     "sim-wall-clock"));
  EXPECT_FALSE(fires("tests/fault_test.cc", "steady_clock::now();\n", "sim-wall-clock"));
}

// --- raii-lock -----------------------------------------------------------

TEST(RaiiLockRule, FlagsBareLockAndUnlockOnMutexes) {
  EXPECT_TRUE(fires("src/smb/server.cc", "table_mutex_.lock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/smb/server.cc", "segment->data_mutex.unlock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/minimpi/minimpi.cc", "box.mutex.lock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/core/trainer.cc", "mtx->try_lock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/smb/server.cc", "table_mutex_.lock_shared();\n", "raii-lock"));
}

TEST(RaiiLockRule, AllowsRaiiGuards) {
  EXPECT_FALSE(fires("src/smb/server.cc", "std::scoped_lock lock(table_mutex_);\n",
                     "raii-lock"));
  EXPECT_FALSE(fires("src/data/loader.cc", "std::unique_lock lock(mutex_);\nlock.unlock();\n",
                     "raii-lock"));
  EXPECT_FALSE(fires("src/smb/server.cc", "std::shared_lock lock(table_mutex_);\n",
                     "raii-lock"));
}

// --- sim-ptr-container ---------------------------------------------------

TEST(SimPtrContainerRule, FlagsPointerKeyedUnorderedContainersInSim) {
  EXPECT_TRUE(fires("src/sim/simulation.h", "std::unordered_set<void*> live_roots_;\n",
                    "sim-ptr-container"));
  EXPECT_TRUE(fires("src/net/fabric.h",
                    "std::unordered_map<Flow*, int> flow_index_;\n", "sim-ptr-container"));
  EXPECT_TRUE(fires("src/smb/sim_smb.h",
                    "std::unordered_set<const Segment *> dirty_;\n", "sim-ptr-container"));
}

TEST(SimPtrContainerRule, AllowsValueKeysAndFunctionalCode) {
  EXPECT_FALSE(fires("src/sim/simulation.h", "std::unordered_set<std::uint64_t> ids_;\n",
                     "sim-ptr-container"));
  EXPECT_FALSE(fires("src/sim/simulation.h", "std::map<std::uint64_t, void*> live_roots_;\n",
                     "sim-ptr-container"));
  // Functional (non-sim) code may use pointer keys; only sim determinism
  // is at stake.
  EXPECT_FALSE(fires("src/smb/server.h", "std::unordered_set<void*> tracked_;\n",
                     "sim-ptr-container"));
}

// --- pragma-once ---------------------------------------------------------

TEST(PragmaOnceRule, FlagsHeadersWithoutPragmaOnce) {
  EXPECT_TRUE(fires("src/dl/tensor.h", "struct Tensor {};\n", "pragma-once"));
}

TEST(PragmaOnceRule, AllowsGuardedHeadersAndSources) {
  EXPECT_FALSE(fires("src/dl/tensor.h", "#pragma once\nstruct Tensor {};\n", "pragma-once"));
  EXPECT_FALSE(fires("src/dl/tensor.cc", "struct Local {};\n", "pragma-once"));
}

// --- include-hygiene -----------------------------------------------------

TEST(IncludeHygieneRule, FlagsRelativeBareAndAngleProjectIncludes) {
  EXPECT_TRUE(fires("src/smb/client.cc", "#include \"../smb/server.h\"\n",
                    "include-hygiene"));
  EXPECT_TRUE(fires("src/smb/client.cc", "#include \"./server.h\"\n", "include-hygiene"));
  EXPECT_TRUE(fires("src/smb/client.cc", "#include \"server.h\"\n", "include-hygiene"));
  EXPECT_TRUE(fires("src/smb/client.cc", "#include <smb/server.h>\n", "include-hygiene"));
}

TEST(IncludeHygieneRule, AllowsRepoRelativeAndSystemIncludes) {
  EXPECT_FALSE(fires("src/smb/client.cc", "#include \"smb/server.h\"\n", "include-hygiene"));
  EXPECT_FALSE(fires("src/smb/client.cc", "#include <vector>\n", "include-hygiene"));
  EXPECT_FALSE(
      fires("tests/smb_test.cc", "#include <gtest/gtest.h>\n", "include-hygiene"));
  EXPECT_FALSE(fires("bench/bench_x.cc", "#include \"bench/bench_util.h\"\n",
                     "include-hygiene"));
}

// --- escapes and scrubbing -----------------------------------------------

TEST(LintAllow, SuppressesTheNamedRuleOnThatLineOnly) {
  const std::string allowed = "int x = rand();  // lint:allow(rng-source) fixture\n";
  EXPECT_FALSE(fires("src/dl/layers.cc", allowed, "rng-source"));
  // A different rule's allowance does not suppress.
  const std::string wrong = "int x = rand();  // lint:allow(wall-clock) wrong rule\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", wrong, "rng-source"));
  // The next line is not covered.
  const std::string next_line = "// lint:allow(rng-source)\nint x = rand();\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", next_line, "rng-source"));
}

TEST(Scrubber, IgnoresCommentsAndStringLiterals) {
  EXPECT_FALSE(fires("src/dl/layers.cc", "// old code used rand() here\n", "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "/* rand() in a block\n   comment */\n",
                     "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "const char* s = \"rand()\";\n", "rng-source"));
  EXPECT_FALSE(fires("src/sim/simulation.cc",
                     "log(\"no steady_clock in sim\"); // steady_clock is banned\n",
                     "sim-wall-clock"));
  // But code after a comment-looking string still counts.
  EXPECT_TRUE(fires("src/dl/layers.cc", "const char* s = \"//\"; int x = rand();\n",
                    "rng-source"));
}

TEST(Scrubber, HandlesMultiLineConstructs) {
  const std::vector<std::string> lines =
      scrub_source("int a;\n/* rand()\nrand() */ int b;\nchar c = '\"'; int d = rand();\n");
  ASSERT_EQ(lines.size(), 5U);  // trailing newline yields a final empty line
  EXPECT_EQ(lines[0], "int a;");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], " int b;");
  EXPECT_NE(lines[3].find("int d = rand()"), std::string::npos);
}

// --- findings metadata and formats ---------------------------------------

TEST(Findings, CarryFileLineRuleAndMessage) {
  const std::vector<Finding> findings =
      lint_source("src/dl/layers.cc", "int a;\nint x = rand();\n");
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].file, "src/dl/layers.cc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "rng-source");
  EXPECT_FALSE(findings[0].message.empty());
}

TEST(Findings, TextFormatIsGrepable) {
  const std::vector<Finding> findings =
      lint_source("src/dl/layers.cc", "int x = rand();\n");
  const std::string text = to_text(findings);
  EXPECT_NE(text.find("src/dl/layers.cc:1: rng-source: "), std::string::npos);
}

TEST(Findings, JsonFormatIsWellFormed) {
  const std::vector<Finding> findings =
      lint_source("src/dl/layers.cc", "int x = rand();\nsrand(7);\n");
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"file\": \"src/dl/layers.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"rng-source\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(Findings, CleanSourceYieldsNoFindings) {
  const std::string clean =
      "#pragma once\n#include \"common/rng.h\"\n#include <vector>\n"
      "inline int f(shmcaffe::common::Rng& rng) { return static_cast<int>(rng.next_u64()); }\n";
  EXPECT_TRUE(lint_source("src/dl/clean.h", clean).empty());
}

// --- no-naked-epoch ------------------------------------------------------

TEST(NakedEpochRule, FlagsDirectComparisonsOnServiceEpochs) {
  // Identifier on the left of the comparison.
  EXPECT_TRUE(fires("src/core/trainer.cc",
                    "if (seen_service_epoch == current) {}\n", "no-naked-epoch"));
  EXPECT_TRUE(fires("src/smb/server.cc",
                    "if (ensemble->service_epoch() != cached) {}\n", "no-naked-epoch"));
  // Identifier on the right.
  EXPECT_TRUE(fires("src/core/sharded_buffer.cc",
                    "bool stale = cached < segment_service_epoch;\n", "no-naked-epoch"));
  EXPECT_TRUE(fires("src/recovery/replicated_smb.cc",
                    "while (x <= service_epoch_) {}\n", "no-naked-epoch"));
}

TEST(NakedEpochRule, AllowsAssignmentsCallsAndTheEpochHelpers) {
  // Assignment and plain accessor calls are not comparisons.
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "service_epoch_ = next_service_epoch(service_epoch_);\n",
                     "no-naked-epoch"));
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "const auto epoch = ensemble->service_epoch();\n", "no-naked-epoch"));
  // The sanctioned fencing helpers take epochs as arguments.
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "if (epoch_is_current(seen, service_epoch_)) {}\n", "no-naked-epoch"));
  // The CamelCase type name is not an epoch value.
  EXPECT_FALSE(fires("src/recovery/replicated_smb.cc",
                     "ServiceEpoch fresh = kInitialServiceEpoch;\n", "no-naked-epoch"));
  // Streaming is not comparing.
  EXPECT_FALSE(fires("src/recovery/schedule.cc",
                     "out << service_epoch_;\n", "no-naked-epoch"));
  // The helpers themselves implement the sentinel comparison — exempt.
  EXPECT_FALSE(fires("src/recovery/epoch.h",
                     "return seen == current_service_epoch;\n", "no-naked-epoch"));
}

// --- no-raw-thread -------------------------------------------------------

TEST(RawThreadRule, FlagsThreadConstructionInLibraryCode) {
  EXPECT_TRUE(fires("src/dl/layers.cc", "std::thread t([] {});\n", "no-raw-thread"));
  EXPECT_TRUE(fires("src/smb/server.cc", "std::vector<std::thread> pool;\n",
                    "no-raw-thread"));
  EXPECT_TRUE(fires("src/data/loader.h", "std::jthread producer_;\n", "no-raw-thread"));
  EXPECT_TRUE(fires("src/baselines/async_ps.cc", "std :: thread joiner;\n",
                    "no-raw-thread"));
}

TEST(RawThreadRule, AllowsThePoolProtocolThreadsAndTestCode) {
  // The work pool itself, the Fig. 6 protocol, and the rank models.
  EXPECT_FALSE(fires("src/common/parallel.cc", "std::vector<std::thread> workers_;\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("src/core/trainer.cc", "std::thread update_thread;\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("src/minimpi/minimpi.cc", "std::thread rank_thread;\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("src/sim/simulation.cc", "std::thread host;\n", "no-raw-thread"));
  // Tests and benches drive threads deliberately.
  EXPECT_FALSE(fires("tests/parallel_test.cc", "std::thread hammer([] {});\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("bench/bench_x.cc", "std::thread t([] {});\n", "no-raw-thread"));
  // this_thread and thread-adjacent identifiers are not the thread type.
  EXPECT_FALSE(fires("src/dl/layers.cc", "std::this_thread::yield();\n", "no-raw-thread"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "int thread_count = 4;\n", "no-raw-thread"));
}

TEST(RuleIds, EveryRuleIsListed) {
  const std::vector<std::string>& ids = rule_ids();
  for (const char* expected : {"rng-source", "wall-clock", "sim-wall-clock", "raii-lock",
                               "sim-ptr-container", "pragma-once", "include-hygiene",
                               "no-naked-epoch", "no-raw-thread"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end()) << expected;
  }
}

}  // namespace
}  // namespace shmcaffe::lint
