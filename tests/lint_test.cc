// shmcaffe-lint rule tests: one positive (rule fires) and one negative
// (rule stays silent) fixture per rule, run against in-memory sources, plus
// the escape hatch, the comment/string scrubber, and the output formats.
//
// Fixture code is assembled from ordinary string concatenation on purpose:
// the real linter also scans THIS file, and literal bodies are scrubbed
// before rules run, so the forbidden tokens below never trip the repo gate.
#include "tools/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace shmcaffe::lint {
namespace {

std::vector<std::string> rules_fired(std::string_view path, std::string_view source) {
  std::vector<std::string> rules;
  for (const Finding& finding : lint_source(path, source)) rules.push_back(finding.rule);
  return rules;
}

bool fires(std::string_view path, std::string_view source, const std::string& rule) {
  const std::vector<std::string> fired = rules_fired(path, source);
  return std::find(fired.begin(), fired.end(), rule) != fired.end();
}

// --- rng-source ----------------------------------------------------------

TEST(RngSourceRule, FlagsRawEntropyOutsideRngModule) {
  EXPECT_TRUE(fires("src/dl/layers.cc", "int x = rand();\n", "rng-source"));
  EXPECT_TRUE(fires("src/core/trainer.cc", "srand(42);\n", "rng-source"));
  EXPECT_TRUE(fires("tests/foo_test.cc", "std::random_device rd;\n", "rng-source"));
  EXPECT_TRUE(fires("bench/bench_x.cc", "std::mt19937_64 gen(1);\n", "rng-source"));
}

TEST(RngSourceRule, AllowsTheRngModuleAndSeededRng) {
  EXPECT_FALSE(fires("src/common/rng.cc", "int x = rand();\n", "rng-source"));
  EXPECT_FALSE(fires("src/common/rng.h", "std::mt19937 reference;\n", "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "common::Rng rng(seed);\nrng.uniform();\n",
                     "rng-source"));
  // Identifiers merely containing the token are fine.
  EXPECT_FALSE(fires("src/dl/layers.cc", "int operand(int a);\n", "rng-source"));
}

// --- wall-clock ----------------------------------------------------------

TEST(WallClockRule, FlagsSystemClockEverywhere) {
  EXPECT_TRUE(fires("src/core/trainer.cc",
                    "auto t = std::chrono::system_clock::now();\n", "wall-clock"));
  EXPECT_TRUE(fires("tests/a_test.cc", "std::chrono::system_clock::now();\n", "wall-clock"));
}

TEST(WallClockRule, AllowsSteadyClockInFunctionalCode) {
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "auto t = std::chrono::steady_clock::now();\n", "wall-clock"));
}

// --- sim-wall-clock ------------------------------------------------------

TEST(SimWallClockRule, FlagsWallTimeInSimulatedCode) {
  EXPECT_TRUE(fires("src/sim/simulation.cc",
                    "auto t = std::chrono::steady_clock::now();\n", "sim-wall-clock"));
  EXPECT_TRUE(fires("src/net/fabric.cc",
                    "std::this_thread::sleep_for(std::chrono::seconds(1));\n",
                    "sim-wall-clock"));
  // Any sim_* twin counts as simulated code, wherever it lives.
  EXPECT_TRUE(fires("src/smb/sim_smb.cc", "steady_clock::now();\n", "sim-wall-clock"));
  EXPECT_TRUE(
      fires("src/baselines/sim_platforms.cc", "sleep_until(deadline);\n", "sim-wall-clock"));
  EXPECT_TRUE(fires("src/minimpi/sim_mpi.cc", "high_resolution_clock::now();\n",
                    "sim-wall-clock"));
}

TEST(SimWallClockRule, AllowsWallTimeInFunctionalCode) {
  EXPECT_FALSE(fires("src/core/trainer.cc", "steady_clock::now();\n", "sim-wall-clock"));
  EXPECT_FALSE(fires("src/smb/server.cc",
                     "std::this_thread::sleep_for(std::chrono::seconds(1));\n",
                     "sim-wall-clock"));
  EXPECT_FALSE(fires("tests/fault_test.cc", "steady_clock::now();\n", "sim-wall-clock"));
}

// --- raii-lock -----------------------------------------------------------

TEST(RaiiLockRule, FlagsBareLockAndUnlockOnMutexes) {
  EXPECT_TRUE(fires("src/smb/server.cc", "table_mutex_.lock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/smb/server.cc", "segment->data_mutex.unlock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/minimpi/minimpi.cc", "box.mutex.lock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/core/trainer.cc", "mtx->try_lock();\n", "raii-lock"));
  EXPECT_TRUE(fires("src/smb/server.cc", "table_mutex_.lock_shared();\n", "raii-lock"));
}

TEST(RaiiLockRule, AllowsRaiiGuards) {
  EXPECT_FALSE(fires("src/smb/server.cc", "std::scoped_lock lock(table_mutex_);\n",
                     "raii-lock"));
  EXPECT_FALSE(fires("src/data/loader.cc", "std::unique_lock lock(mutex_);\nlock.unlock();\n",
                     "raii-lock"));
  EXPECT_FALSE(fires("src/smb/server.cc", "std::shared_lock lock(table_mutex_);\n",
                     "raii-lock"));
}

// --- sim-ptr-container ---------------------------------------------------

TEST(SimPtrContainerRule, FlagsPointerKeyedUnorderedContainersInSim) {
  EXPECT_TRUE(fires("src/sim/simulation.h", "std::unordered_set<void*> live_roots_;\n",
                    "sim-ptr-container"));
  EXPECT_TRUE(fires("src/net/fabric.h",
                    "std::unordered_map<Flow*, int> flow_index_;\n", "sim-ptr-container"));
  EXPECT_TRUE(fires("src/smb/sim_smb.h",
                    "std::unordered_set<const Segment *> dirty_;\n", "sim-ptr-container"));
}

TEST(SimPtrContainerRule, AllowsValueKeysAndFunctionalCode) {
  EXPECT_FALSE(fires("src/sim/simulation.h", "std::unordered_set<std::uint64_t> ids_;\n",
                     "sim-ptr-container"));
  EXPECT_FALSE(fires("src/sim/simulation.h", "std::map<std::uint64_t, void*> live_roots_;\n",
                     "sim-ptr-container"));
  // Functional (non-sim) code may use pointer keys; only sim determinism
  // is at stake.
  EXPECT_FALSE(fires("src/smb/server.h", "std::unordered_set<void*> tracked_;\n",
                     "sim-ptr-container"));
}

// --- pragma-once ---------------------------------------------------------

TEST(PragmaOnceRule, FlagsHeadersWithoutPragmaOnce) {
  EXPECT_TRUE(fires("src/dl/tensor.h", "struct Tensor {};\n", "pragma-once"));
}

TEST(PragmaOnceRule, AllowsGuardedHeadersAndSources) {
  EXPECT_FALSE(fires("src/dl/tensor.h", "#pragma once\nstruct Tensor {};\n", "pragma-once"));
  EXPECT_FALSE(fires("src/dl/tensor.cc", "struct Local {};\n", "pragma-once"));
}

// --- include-hygiene -----------------------------------------------------

TEST(IncludeHygieneRule, FlagsRelativeBareAndAngleProjectIncludes) {
  EXPECT_TRUE(fires("src/smb/client.cc", "#include \"../smb/server.h\"\n",
                    "include-hygiene"));
  EXPECT_TRUE(fires("src/smb/client.cc", "#include \"./server.h\"\n", "include-hygiene"));
  EXPECT_TRUE(fires("src/smb/client.cc", "#include \"server.h\"\n", "include-hygiene"));
  EXPECT_TRUE(fires("src/smb/client.cc", "#include <smb/server.h>\n", "include-hygiene"));
}

TEST(IncludeHygieneRule, AllowsRepoRelativeAndSystemIncludes) {
  EXPECT_FALSE(fires("src/smb/client.cc", "#include \"smb/server.h\"\n", "include-hygiene"));
  EXPECT_FALSE(fires("src/smb/client.cc", "#include <vector>\n", "include-hygiene"));
  EXPECT_FALSE(
      fires("tests/smb_test.cc", "#include <gtest/gtest.h>\n", "include-hygiene"));
  EXPECT_FALSE(fires("bench/bench_x.cc", "#include \"bench/bench_util.h\"\n",
                     "include-hygiene"));
}

// --- escapes and scrubbing -----------------------------------------------

TEST(LintAllow, SuppressesTheNamedRuleOnThatLineOnly) {
  const std::string allowed = "int x = rand();  // lint:" "allow(rng-source) fixture\n";
  EXPECT_FALSE(fires("src/dl/layers.cc", allowed, "rng-source"));
  // A different rule's allowance does not suppress.
  const std::string wrong = "int x = rand();  // lint:" "allow(wall-clock) wrong rule\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", wrong, "rng-source"));
  // The next line is not covered.
  const std::string next_line = "// lint:" "allow(rng-source)\nint x = rand();\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", next_line, "rng-source"));
}

TEST(Scrubber, IgnoresCommentsAndStringLiterals) {
  EXPECT_FALSE(fires("src/dl/layers.cc", "// old code used rand() here\n", "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "/* rand() in a block\n   comment */\n",
                     "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "const char* s = \"rand()\";\n", "rng-source"));
  EXPECT_FALSE(fires("src/sim/simulation.cc",
                     "log(\"no steady_clock in sim\"); // steady_clock is banned\n",
                     "sim-wall-clock"));
  // But code after a comment-looking string still counts.
  EXPECT_TRUE(fires("src/dl/layers.cc", "const char* s = \"//\"; int x = rand();\n",
                    "rng-source"));
}

TEST(Scrubber, HandlesMultiLineConstructs) {
  const std::vector<std::string> lines =
      scrub_source("int a;\n/* rand()\nrand() */ int b;\nchar c = '\"'; int d = rand();\n");
  ASSERT_EQ(lines.size(), 5U);  // trailing newline yields a final empty line
  EXPECT_EQ(lines[0], "int a;");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], " int b;");
  EXPECT_NE(lines[3].find("int d = rand()"), std::string::npos);
}

// --- findings metadata and formats ---------------------------------------

TEST(Findings, CarryFileLineRuleAndMessage) {
  const std::vector<Finding> findings =
      lint_source("src/dl/layers.cc", "int a;\nint x = rand();\n");
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].file, "src/dl/layers.cc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "rng-source");
  EXPECT_FALSE(findings[0].message.empty());
}

TEST(Findings, TextFormatIsGrepable) {
  const std::vector<Finding> findings =
      lint_source("src/dl/layers.cc", "int x = rand();\n");
  const std::string text = to_text(findings);
  EXPECT_NE(text.find("src/dl/layers.cc:1: rng-source: "), std::string::npos);
}

TEST(Findings, JsonFormatIsWellFormed) {
  const std::vector<Finding> findings =
      lint_source("src/dl/layers.cc", "int x = rand();\nsrand(7);\n");
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"file\": \"src/dl/layers.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"rng-source\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(Findings, CleanSourceYieldsNoFindings) {
  const std::string clean =
      "#pragma once\n#include \"common/rng.h\"\n#include <vector>\n"
      "inline int f(shmcaffe::common::Rng& rng) { return static_cast<int>(rng.next_u64()); }\n";
  EXPECT_TRUE(lint_source("src/dl/clean.h", clean).empty());
}

// --- no-naked-epoch ------------------------------------------------------

TEST(NakedEpochRule, FlagsDirectComparisonsOnServiceEpochs) {
  // Identifier on the left of the comparison.
  EXPECT_TRUE(fires("src/core/trainer.cc",
                    "if (seen_service_epoch == current) {}\n", "no-naked-epoch"));
  EXPECT_TRUE(fires("src/smb/server.cc",
                    "if (ensemble->service_epoch() != cached) {}\n", "no-naked-epoch"));
  // Identifier on the right.
  EXPECT_TRUE(fires("src/core/sharded_buffer.cc",
                    "bool stale = cached < segment_service_epoch;\n", "no-naked-epoch"));
  EXPECT_TRUE(fires("src/recovery/replicated_smb.cc",
                    "while (x <= service_epoch_) {}\n", "no-naked-epoch"));
}

TEST(NakedEpochRule, AllowsAssignmentsCallsAndTheEpochHelpers) {
  // Assignment and plain accessor calls are not comparisons.
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "service_epoch_ = next_service_epoch(service_epoch_);\n",
                     "no-naked-epoch"));
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "const auto epoch = ensemble->service_epoch();\n", "no-naked-epoch"));
  // The sanctioned fencing helpers take epochs as arguments.
  EXPECT_FALSE(fires("src/core/trainer.cc",
                     "if (epoch_is_current(seen, service_epoch_)) {}\n", "no-naked-epoch"));
  // The CamelCase type name is not an epoch value.
  EXPECT_FALSE(fires("src/recovery/replicated_smb.cc",
                     "ServiceEpoch fresh = kInitialServiceEpoch;\n", "no-naked-epoch"));
  // Streaming is not comparing.
  EXPECT_FALSE(fires("src/recovery/schedule.cc",
                     "out << service_epoch_;\n", "no-naked-epoch"));
  // The helpers themselves implement the sentinel comparison — exempt.
  EXPECT_FALSE(fires("src/recovery/epoch.h",
                     "return seen == current_service_epoch;\n", "no-naked-epoch"));
}

// --- no-raw-thread -------------------------------------------------------

TEST(RawThreadRule, FlagsThreadConstructionInLibraryCode) {
  EXPECT_TRUE(fires("src/dl/layers.cc", "std::thread t([] {});\n", "no-raw-thread"));
  EXPECT_TRUE(fires("src/smb/server.cc", "std::vector<std::thread> pool;\n",
                    "no-raw-thread"));
  EXPECT_TRUE(fires("src/data/loader.h", "std::jthread producer_;\n", "no-raw-thread"));
  EXPECT_TRUE(fires("src/baselines/async_ps.cc", "std :: thread joiner;\n",
                    "no-raw-thread"));
}

TEST(RawThreadRule, AllowsThePoolProtocolThreadsAndTestCode) {
  // The work pool itself, the Fig. 6 protocol, and the rank models.
  EXPECT_FALSE(fires("src/common/parallel.cc", "std::vector<std::thread> workers_;\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("src/core/trainer.cc", "std::thread update_thread;\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("src/minimpi/minimpi.cc", "std::thread rank_thread;\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("src/sim/simulation.cc", "std::thread host;\n", "no-raw-thread"));
  // Tests and benches drive threads deliberately.
  EXPECT_FALSE(fires("tests/parallel_test.cc", "std::thread hammer([] {});\n",
                     "no-raw-thread"));
  EXPECT_FALSE(fires("bench/bench_x.cc", "std::thread t([] {});\n", "no-raw-thread"));
  // this_thread and thread-adjacent identifiers are not the thread type.
  EXPECT_FALSE(fires("src/dl/layers.cc", "std::this_thread::yield();\n", "no-raw-thread"));
  EXPECT_FALSE(fires("src/dl/layers.cc", "int thread_count = 4;\n", "no-raw-thread"));
}

// --- scrubber: raw-string prefixes, line continuations, exact line counts --

TEST(Scrubber, RecognisesEncodingPrefixedRawStrings) {
  // u8R"(...)", uR"(...)", LR"(...)", UR"(...)" are raw strings too; their
  // bodies must be scrubbed just like plain R"(...)".
  for (const char* prefix : {"", "u8", "u", "L", "U"}) {
    const std::string source =
        std::string("const auto* s = ") + prefix + "R\"(rand())\";\n";
    EXPECT_FALSE(fires("src/dl/layers.cc", source, "rng-source")) << prefix;
  }
  // An identifier ending in R is NOT a raw-string prefix: the literal after
  // it is ordinary, and code before it still scans.
  const std::string not_raw = "int x = FOOBAR\"\" + rand();\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", not_raw, "rng-source"));
}

TEST(Scrubber, ContinuesLineCommentsAcrossBackslashNewline) {
  // A line comment ending in '\' splices the next physical line into the
  // comment; tokens there must not fire, and line numbers must stay exact.
  const std::string source = "// spliced comment \\\nint a = rand();\nint b = rand();\n";
  const std::vector<Finding> findings = lint_source("src/dl/layers.cc", source);
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "rng-source");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(Scrubber, KeepsLineCountsExactAcrossSplicedStrings) {
  // A backslash-newline inside a string literal continues the literal; the
  // newline must still produce a line so later findings keep their numbers.
  const std::string source = "const char* s = \"a\\\nrand()\";\nint x = rand();\n";
  const std::vector<std::string> lines = scrub_source(source);
  ASSERT_EQ(lines.size(), 4U);  // 3 physical lines + trailing empty
  const std::vector<Finding> findings = lint_source("src/dl/layers.cc", source);
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].line, 3);
}

// --- allow-list extensions -------------------------------------------------

TEST(LintAllow, CommaListSuppressesSeveralRulesAtOnce) {
  const std::string source =
      "auto t = std::chrono::system_clock::now(); int x = rand(); "
      "// lint:" "allow(rng-source,wall-clock) fixture\n";
  EXPECT_FALSE(fires("src/dl/layers.cc", source, "rng-source"));
  EXPECT_FALSE(fires("src/dl/layers.cc", source, "wall-clock"));
  // The list only names the listed rules.
  const std::string partial =
      "std::thread t; int x = rand(); // lint:" "allow(rng-source,wall-clock)\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", partial, "no-raw-thread"));
}

TEST(LintAllow, NextLineVariantCoversTheFollowingLineOnly) {
  const std::string covered =
      "// lint:" "allow-next-line(rng-source) fixture\nint x = rand();\n";
  EXPECT_FALSE(fires("src/dl/layers.cc", covered, "rng-source"));
  // It does not cover its own line ...
  const std::string own_line =
      "int x = rand(); // lint:" "allow-next-line(rng-source)\nint y = 0;\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", own_line, "rng-source"));
  // ... nor the line after next.
  const std::string too_far =
      "// lint:" "allow-next-line(rng-source)\nint a = 0;\nint x = rand();\n";
  EXPECT_TRUE(fires("src/dl/layers.cc", too_far, "rng-source"));
  // On the last line of a file it is simply inert (no out-of-bounds target).
  EXPECT_TRUE(lint_source("src/dl/layers.cc",
                          "// lint:" "allow-next-line(rng-source)").empty());
}

// --- pass 1: the declaration index ----------------------------------------

TEST(ClassIndex, FindsClassesFieldsAndMutexOwnership) {
  const std::string source =
      "#pragma once\n"
      "#include \"common/ordered_mutex.h\"\n"
      "namespace shmcaffe::smb {\n"
      "class Box {\n"
      " public:\n"
      "  void put(int v);\n"
      "  int get() const { return value_; }\n"
      " private:\n"
      "  mutable common::OrderedMutex mu_{\"smb.box\", 200};\n"
      "  int value_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "  std::atomic<int> hits_{0};\n"
      "};\n"
      "struct Plain { int x = 0; };\n"
      "}  // namespace\n";
  const std::vector<ClassInfo> index = index_classes({{"src/smb/box.h", source}});
  ASSERT_EQ(index.size(), 2U);
  const ClassInfo& box = index[0];
  EXPECT_EQ(box.name, "Box");            // namespaces are not part of the name
  EXPECT_EQ(box.file, "src/smb/box.h");
  EXPECT_TRUE(box.owns_ordered_mutex);
  ASSERT_EQ(box.fields.size(), 3U);
  EXPECT_EQ(box.fields[0].name, "mu_");
  EXPECT_TRUE(box.fields[0].is_mutex);
  EXPECT_EQ(box.fields[1].name, "value_");
  EXPECT_TRUE(box.fields[1].guarded);
  EXPECT_EQ(box.fields[1].guard, "mu_");
  EXPECT_EQ(box.fields[2].name, "hits_");
  EXPECT_TRUE(box.fields[2].exempt);  // atomic
  EXPECT_FALSE(index[1].owns_ordered_mutex);
}

TEST(ClassIndex, QualifiesNestedClassesByEnclosingName) {
  const std::string source =
      "class Server {\n"
      "  struct Segment {\n"
      "    int refcount = 0;\n"
      "  };\n"
      "  common::OrderedMutex table_mu_{\"t\", 210};\n"
      "};\n";
  const std::vector<ClassInfo> index = index_classes({{"src/smb/server.h", source}});
  ASSERT_EQ(index.size(), 2U);
  EXPECT_EQ(index[0].name, "Server");
  EXPECT_EQ(index[1].name, "Server::Segment");
  EXPECT_EQ(index[1].enclosing, "Server");
}

TEST(ClassIndex, SkipsFunctionsMacrosAndStaticMembers) {
  const std::string source =
      "class Worker {\n"
      "  Worker() : started_{false} {}\n"
      "  Worker(const Worker&) = delete;\n"
      "  Worker& operator=(const Worker&) = delete;\n"
      "  static int live_count;\n"
      "  static constexpr int kLimit = 8;\n"
      "  int run(int n) { return n; }\n"
      "  using Clock = int;\n"
      "  common::OrderedMutex mu_{\"w\", 100};\n"
      "  bool started_ SHMCAFFE_GUARDED_BY(mu_);\n"
      "};\n";
  const std::vector<ClassInfo> index = index_classes({{"src/core/worker.h", source}});
  ASSERT_EQ(index.size(), 1U);
  ASSERT_EQ(index[0].fields.size(), 2U);
  EXPECT_EQ(index[0].fields[0].name, "mu_");
  EXPECT_EQ(index[0].fields[1].name, "started_");
}

// --- guarded-by ------------------------------------------------------------

namespace {

std::vector<std::string> repo_rules_fired(const std::vector<SourceFile>& files) {
  std::vector<std::string> rules;
  for (const Finding& finding : lint_repo(files)) rules.push_back(finding.rule);
  return rules;
}

bool repo_fires(const std::vector<SourceFile>& files, const std::string& rule) {
  const std::vector<std::string> fired = repo_rules_fired(files);
  return std::find(fired.begin(), fired.end(), rule) != fired.end();
}

}  // namespace

TEST(GuardedByRule, FlagsUnannotatedMutableFieldsInMutexOwningClasses) {
  const std::string source =
      "#pragma once\n"
      "class Cache {\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int entries_ = 0;\n"
      "};\n";
  const std::vector<SourceFile> files = {{"src/core/cache.h", source}};
  const std::vector<Finding> findings = lint_repo(files);
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("entries_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Cache"), std::string::npos);
}

TEST(GuardedByRule, AcceptsGuardedAndExplicitlyUnguardedFields) {
  const std::string source =
      "#pragma once\n"
      "class Cache {\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int entries_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "  int ctor_set_ SHMCAFFE_UNGUARDED = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_repo({{"src/core/cache.h", source}}).empty());
}

TEST(GuardedByRule, FlagsGuardsThatNameNoMutexMember) {
  const std::string source =
      "#pragma once\n"
      "class Cache {\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int entries_ SHMCAFFE_GUARDED_BY(other_mu_) = 0;\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/cache.h", source}});
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_NE(findings[0].message.find("other_mu_"), std::string::npos);
}

TEST(GuardedByRule, ResolvesGuardsThroughLexicallyEnclosingClasses) {
  // SmbServer::Segment's refcount is guarded by the *server's* table lock;
  // the guard must resolve through the enclosing class chain.
  const std::string source =
      "#pragma once\n"
      "class Server {\n"
      "  struct Segment {\n"
      "    common::OrderedSharedMutex data_mu{\"d\", 200};\n"
      "    int version SHMCAFFE_GUARDED_BY(data_mu) = 0;\n"
      "    int refcount SHMCAFFE_GUARDED_BY(table_mu_) = 0;\n"
      "  };\n"
      "  common::OrderedMutex table_mu_{\"t\", 210};\n"
      "  int open_ SHMCAFFE_GUARDED_BY(table_mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_repo({{"src/smb/server2.h", source}}).empty());
}

TEST(GuardedByRule, ExemptsImmutableAtomicAndSynchronisationFields) {
  const std::string source =
      "#pragma once\n"
      "class Cache {\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  std::atomic<int> hits_{0};\n"
      "  std::atomic<bool> failed_{false};\n"
      "  const int capacity_ = 8;\n"
      "  std::condition_variable_any cv_;\n"
      "  std::mutex plain_mu_;\n"
      "  Registry& registry_;\n"
      "  static int live_count;\n"
      "};\n";
  EXPECT_TRUE(lint_repo({{"src/core/cache.h", source}}).empty());
}

TEST(GuardedByRule, OnlyAppliesToMutexOwningClassesUnderSrc) {
  // No ordered mutex -> no coverage obligation.
  const std::string plain =
      "#pragma once\nclass Plain { int x_ = 0; std::mutex mu_; };\n";
  EXPECT_FALSE(repo_fires({{"src/core/plain.h", plain}}, "guarded-by"));
  // Outside src/ the rule does not run (test fixtures own mutexes freely).
  const std::string fixture =
      "#pragma once\nclass F { common::OrderedMutex mu_{\"f\", 1}; int x_ = 0; };\n";
  EXPECT_FALSE(repo_fires({{"tests/fixture.h", fixture}}, "guarded-by"));
  EXPECT_TRUE(repo_fires({{"src/core/f.h", fixture}}, "guarded-by"));
}

TEST(GuardedByRule, HonoursTheAllowEscapeHatch) {
  const std::string source =
      "#pragma once\n"
      "class Cache {\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int entries_ = 0;  // lint:" "allow(guarded-by) fixture\n"
      "};\n";
  EXPECT_TRUE(lint_repo({{"src/core/cache.h", source}}).empty());
}

// --- include-layering ------------------------------------------------------

TEST(IncludeLayeringRule, AllowsDeclaredAndSameDirectoryEdges) {
  EXPECT_FALSE(fires("src/smb/server.cc", "#include \"net/fabric.h\"\n",
                     "include-layering"));
  EXPECT_FALSE(fires("src/core/trainer.cc", "#include \"smb/client.h\"\n",
                     "include-layering"));
  EXPECT_FALSE(fires("src/recovery/replicated_smb.cc", "#include \"recovery/epoch.h\"\n",
                     "include-layering"));
  EXPECT_FALSE(fires("src/minimpi/minimpi.cc", "#include \"common/ordered_mutex.h\"\n",
                     "include-layering"));
}

TEST(IncludeLayeringRule, FlagsUpwardAndUndeclaredEdges) {
  // common is the bottom layer: it may include from nobody.
  EXPECT_TRUE(fires("src/common/parallel.cc", "#include \"smb/server.h\"\n",
                    "include-layering"));
  // net does not depend on minimpi (it is the other way around).
  EXPECT_TRUE(fires("src/net/fabric.cc", "#include \"minimpi/minimpi.h\"\n",
                    "include-layering"));
  // smb must not reach into core (core sits above smb).
  EXPECT_TRUE(fires("src/smb/server.cc", "#include \"core/trainer.h\"\n",
                    "include-layering"));
}

TEST(IncludeLayeringRule, FlagsTargetsOutsideTheSrcDag) {
  // src/ must never include from tests/, bench/ or tools/.
  EXPECT_TRUE(fires("src/smb/server.cc", "#include \"tests/util.h\"\n",
                    "include-layering"));
  EXPECT_TRUE(fires("src/core/trainer.cc", "#include \"bench/bench_util.h\"\n",
                    "include-layering"));
}

TEST(IncludeLayeringRule, DoesNotApplyOutsideSrc) {
  EXPECT_FALSE(fires("tests/smb_test.cc", "#include \"core/trainer.h\"\n",
                     "include-layering"));
  EXPECT_FALSE(fires("bench/bench_x.cc", "#include \"core/trainer.h\"\n",
                     "include-layering"));
}

TEST(IncludeLayeringRule, DeclaredDagIsAcyclic) {
  // Every edge must point strictly downward: if a includes b then b must not
  // (transitively) include a.  DFS over the declared table.
  const std::vector<std::string>& dirs = layering_dirs();
  ASSERT_FALSE(dirs.empty());
  for (const std::string& start : dirs) {
    std::vector<std::string> stack = {start};
    std::vector<std::string> seen;
    while (!stack.empty()) {
      const std::string at = stack.back();
      stack.pop_back();
      for (const std::string& next : dirs) {
        if (next == at || !layering_allows(at, next)) continue;
        EXPECT_NE(next, start) << "cycle through " << start << " -> " << at;
        if (std::find(seen.begin(), seen.end(), next) == seen.end()) {
          seen.push_back(next);
          stack.push_back(next);
        }
      }
    }
  }
  // Spot-check the spine: everything may be reached from core, nothing from
  // common.
  EXPECT_TRUE(layering_allows("core", "smb"));
  EXPECT_TRUE(layering_allows("smb", "rdma"));
  for (const std::string& dir : dirs) {
    if (dir != "common") {
      EXPECT_FALSE(layering_allows("common", dir)) << dir;
    }
  }
}

// --- the coverage report ---------------------------------------------------

TEST(CoverageReport, CountsGuardedUnguardedAndUnannotatedFields) {
  const std::string source =
      "#pragma once\n"
      "class Cache {\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int guarded_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "  int declared_ SHMCAFFE_UNGUARDED = 0;\n"
      "  int missing_ = 0;\n"
      "  std::atomic<int> exempt_{0};\n"
      "};\n";
  const std::string json = coverage_json({{"src/core/cache.h", source}});
  EXPECT_NE(json.find("\"class\": \"Cache\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/core/cache.h\""), std::string::npos);
  EXPECT_NE(json.find("\"mutexes\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"fields\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"guarded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unguarded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unannotated\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

TEST(CoverageReport, SkipsClassesWithoutOrderedMutexes) {
  const std::string source = "#pragma once\nclass Plain { int x_ = 0; };\n";
  const std::string json = coverage_json({{"src/core/plain.h", source}});
  EXPECT_EQ(json.find("Plain"), std::string::npos);
  EXPECT_NE(json.find("\"classes\": 0"), std::string::npos);
}

// --- lock-region (flow-sensitive) ------------------------------------------

TEST(LockRegionRule, FlagsGuardedFieldAccessOutsideTheLock) {
  const std::string source =
      "class Counter {\n"
      " public:\n"
      "  void ok() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    ++hits_;\n"
      "  }\n"
      "  void asserted() {\n"
      "    SHMCAFFE_ASSERT_HELD(mu_);\n"
      "    ++hits_;\n"
      "  }\n"
      "  void bad() { ++hits_; }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int hits_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/counter.cc", source}});
  int lock_region = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "lock-region") {
      ++lock_region;
      EXPECT_EQ(finding.line, 11);  // only bad() is outside the lock
    }
  }
  EXPECT_EQ(lock_region, 1);
}

TEST(LockRegionRule, UnlockInANestedBranchDoesNotPoisonTheOuterScope) {
  const std::string source =
      "class Counter {\n"
      " public:\n"
      "  void roundtrip(bool early) {\n"
      "    std::unique_lock lock(mu_);\n"
      "    if (early) {\n"
      "      lock.unlock();\n"
      "      return;\n"
      "    }\n"
      "    ++hits_;\n"
      "    lock.unlock();\n"
      "    hits_ = 0;\n"
      "  }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int hits_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/counter.cc", source}});
  int lock_region = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "lock-region") {
      ++lock_region;
      EXPECT_EQ(finding.line, 11);  // the write after the same-scope unlock
    }
  }
  EXPECT_EQ(lock_region, 1);
}

TEST(LockRegionRule, FlagsLockedHelperCalledWithoutTheLock) {
  const std::string source =
      "class Board {\n"
      " public:\n"
      "  void sweep() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    fold_locked();\n"
      "  }\n"
      "  void broken() { fold_locked(); }\n"
      " private:\n"
      "  void fold_locked() { ++folds_; }\n"  // requirement inferred: sole mutex
      "  common::OrderedMutex mu_{\"b\", 100};\n"
      "  int folds_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/board.cc", source}});
  int lock_region = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "lock-region") {
      ++lock_region;
      EXPECT_EQ(finding.line, 7);  // broken() calls the helper lock-free
    }
  }
  EXPECT_EQ(lock_region, 1);
}

TEST(LockRegionRule, PropagatesExplicitRequiresAnnotations) {
  const std::string source =
      "class Twin {\n"
      " public:\n"
      "  void good() {\n"
      "    std::scoped_lock lock(a_);\n"
      "    touch_locked();\n"
      "  }\n"
      "  void wrong() {\n"
      "    std::scoped_lock lock(b_);\n"
      "    touch_locked();\n"
      "  }\n"
      " private:\n"
      "  void touch_locked() SHMCAFFE_REQUIRES(a_) { ++val_; }\n"
      "  common::OrderedMutex a_{\"a\", 100};\n"
      "  common::OrderedMutex b_{\"b\", 110};\n"
      "  int val_ SHMCAFFE_GUARDED_BY(a_) = 0;\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/twin.cc", source}});
  int lock_region = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "lock-region") {
      ++lock_region;
      EXPECT_EQ(finding.line, 9);  // wrong() holds b_, the helper needs a_
    }
  }
  EXPECT_EQ(lock_region, 1);
}

TEST(LockRegionRule, RequiresAnnotationWhenSeveralMutexesPreventInference) {
  const std::string bare =
      "class Twin {\n"
      "  void tidy_locked() { }\n"
      "  common::OrderedMutex a_{\"a\", 100};\n"
      "  common::OrderedMutex b_{\"b\", 110};\n"
      "};\n";
  EXPECT_TRUE(repo_fires({{"src/core/twin.cc", bare}}, "lock-region"));
  const std::string annotated =
      "class Twin {\n"
      "  void tidy_locked() SHMCAFFE_REQUIRES(a_) { }\n"
      "  common::OrderedMutex a_{\"a\", 100};\n"
      "  common::OrderedMutex b_{\"b\", 110};\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/twin.cc", annotated}}, "lock-region"));
}

// --- determinism taint ------------------------------------------------------

TEST(DeterminismRule, FlagsUnorderedIterationInAnnotatedRoots) {
  const std::string tainted =
      "SHMCAFFE_DETERMINISTIC std::uint64_t digest(const std::unordered_map<int, int>& m) {\n"
      "  std::uint64_t h = 0;\n"
      "  for (const auto& entry : m) h += entry.second;\n"
      "  return h;\n"
      "}\n";
  EXPECT_TRUE(repo_fires({{"src/recovery/digest.cc", tainted}}, "determinism"));
  const std::string ordered =
      "SHMCAFFE_DETERMINISTIC std::uint64_t digest(const std::map<int, int>& m) {\n"
      "  std::uint64_t h = 0;\n"
      "  for (const auto& entry : m) h += entry.second;\n"
      "  return h;\n"
      "}\n";
  EXPECT_FALSE(repo_fires({{"src/recovery/digest.cc", ordered}}, "determinism"));
  // An unannotated function may iterate whatever it likes.
  const std::string unannotated =
      "std::uint64_t digest(const std::unordered_map<int, int>& m) {\n"
      "  std::uint64_t h = 0;\n"
      "  for (const auto& entry : m) h += entry.second;\n"
      "  return h;\n"
      "}\n";
  EXPECT_FALSE(repo_fires({{"src/recovery/digest.cc", unannotated}}, "determinism"));
}

TEST(DeterminismRule, PropagatesTaintThroughTheCallIndex) {
  const std::string source =
      "int seed_helper() { return std::getenv(\"SHM_SEED\") ? 1 : 0; }\n"
      "SHMCAFFE_DETERMINISTIC int schedule() { return seed_helper(); }\n";
  const std::vector<Finding> findings = lint_repo({{"src/recovery/sched.cc", source}});
  int determinism = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "determinism") {
      ++determinism;
      EXPECT_EQ(finding.line, 1);  // the taint sits in the helper's body
      EXPECT_NE(finding.message.find("schedule"), std::string::npos)
          << "message names the root: " << finding.message;
    }
  }
  EXPECT_EQ(determinism, 1);
}

TEST(DeterminismRule, FlagsClockReadsReachableFromRoots) {
  const std::string source =
      "SHMCAFFE_DETERMINISTIC double stamp() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  EXPECT_TRUE(repo_fires({{"src/elastic/stamp.cc", source}}, "determinism"));
}

// --- stale-allow ------------------------------------------------------------

TEST(StaleAllowRule, ReportsSuppressionsThatCatchNothing) {
  const std::string stale = "int x = 0;  // lint:" "allow(rng-source) obsolete\n";
  EXPECT_TRUE(repo_fires({{"src/core/a.cc", stale}}, "stale-allow"));
  const std::string used = "int x = rand();  // lint:" "allow(rng-source) justified\n";
  EXPECT_FALSE(repo_fires({{"src/core/a.cc", used}}, "stale-allow"));
  EXPECT_FALSE(repo_fires({{"src/core/a.cc", used}}, "rng-source"));
}

TEST(StaleAllowRule, CountsSuppressionsFromTheRepoWidePasses) {
  // The annotation is consumed by the lock-region pass, not the per-line
  // rules, and must still count as used.
  const std::string source =
      "class Counter {\n"
      " public:\n"
      "  int peek() const { return hits_; }  // lint:" "allow(lock-region) racy probe\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int hits_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/counter.cc", source}}, "stale-allow"));
  EXPECT_FALSE(repo_fires({{"src/core/counter.cc", source}}, "lock-region"));
}

TEST(CoverageReport, ReportsAccessAndDeterminismCounters) {
  const std::string source =
      "#pragma once\n"
      "SHMCAFFE_DETERMINISTIC int digest() { return 7; }\n"
      "class Counter {\n"
      " public:\n"
      "  void ok() { std::scoped_lock lock(mu_); ++hits_; }\n"
      "  int peek() const { return hits_; }  // lint:" "allow(lock-region) racy probe\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"c\", 100};\n"
      "  int hits_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const std::string json = coverage_json({{"src/core/counter.h", source}});
  // Both accesses count (the justified one included); neither is unguarded.
  EXPECT_NE(json.find("\"accesses\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unguarded_access\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deterministic_roots\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tainted\": 0"), std::string::npos) << json;
}

// --- no-blocking-under-lock ----------------------------------------------

TEST(BlockingUnderLockRule, FlagsAnnotatedBlockingCallUnderAHeldGuard) {
  const std::string source =
      "class Box {\n"
      " public:\n"
      "  SHMCAFFE_BLOCKS void drain();\n"
      "  void bad() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    drain();\n"
      "  }\n"
      "  void good() { drain(); }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"box\", 100};\n"
      "  int hits_ SHMCAFFE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/box.cc", source}});
  int blocking = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "no-blocking-under-lock") {
      ++blocking;
      EXPECT_EQ(finding.line, 6);  // only the locked call site fires
    }
  }
  EXPECT_EQ(blocking, 1);
}

TEST(BlockingUnderLockRule, PropagatesBlockingnessThroughTheCallIndex) {
  // No annotation anywhere: nap()'s literal sleep is the root, and the
  // lock-held call reaches it two hops away.
  const std::string source =
      "class Pipe {\n"
      " public:\n"
      "  void nap() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }\n"
      "  void relay() { nap(); }\n"
      "  void bad() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    relay();\n"
      "  }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"pipe\", 100};\n"
      "};\n";
  EXPECT_TRUE(repo_fires({{"src/core/pipe.cc", source}}, "no-blocking-under-lock"));
}

TEST(BlockingUnderLockRule, WaitOnTheHeldGuardReleasesItsMutex) {
  // cv.wait(lock) names the guard it releases: the canonical shape must
  // stay silent even though the wait sits lexically inside the lock region.
  const std::string source =
      "class Gate {\n"
      " public:\n"
      "  void pass() {\n"
      "    std::unique_lock lock(mu_);\n"
      "    cv_.wait(lock);\n"
      "  }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"gate\", 100};\n"
      "  std::condition_variable_any cv_;\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/gate.cc", source}}, "no-blocking-under-lock"));
}

TEST(BlockingUnderLockRule, FlagsLiteralSleepInsideALockRegion) {
  const std::string source =
      "class Nap {\n"
      " public:\n"
      "  void bad() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "  }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"nap\", 100};\n"
      "};\n";
  EXPECT_TRUE(repo_fires({{"src/core/nap.cc", source}}, "no-blocking-under-lock"));
}

TEST(BlockingUnderLockRule, VerifiesNonblockingContracts) {
  const std::string broken =
      "class Probe {\n"
      " public:\n"
      "  SHMCAFFE_NONBLOCKING void peek() { nap(); }\n"
      "  void nap() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }\n"
      "};\n";
  EXPECT_TRUE(repo_fires({{"src/core/probe.cc", broken}}, "no-blocking-under-lock"));
  const std::string honest =
      "class Probe {\n"
      " public:\n"
      "  SHMCAFFE_NONBLOCKING int peek() const { return hits_; }\n"
      " private:\n"
      "  int hits_ = 0;\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/probe.cc", honest}}, "no-blocking-under-lock"));
}

TEST(BlockingUnderLockRule, HonoursTheAllowEscapeHatch) {
  const std::string source =
      "class Box {\n"
      " public:\n"
      "  SHMCAFFE_BLOCKS void drain();\n"
      "  void deliberate() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    drain();  // lint:" "allow(no-blocking-under-lock) drain owns the stall\n"
      "  }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"box\", 100};\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/box.cc", source}}, "no-blocking-under-lock"));
  EXPECT_FALSE(repo_fires({{"src/core/box.cc", source}}, "stale-allow"));
}

// --- pin-lifetime --------------------------------------------------------

TEST(PinLifetimeRule, FlagsPinTypedFieldsWithoutEscapeAnnotation) {
  const std::string bad =
      "struct Cache {\n"
      "  smb::PinnedFloats view;\n"
      "};\n";
  EXPECT_TRUE(repo_fires({{"src/core/cache.h", bad}}, "pin-lifetime"));
  const std::string annotated =
      "struct Cache {\n"
      "  smb::PinnedFloats view SHMCAFFE_PIN_ESCAPE;\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/cache.h", annotated}}, "pin-lifetime"));
  // Pointers/references to pin types are fine: they do not own the pin.
  const std::string pointer =
      "struct Cursor {\n"
      "  const smb::PinnedFloats* view = nullptr;\n"
      "};\n";
  EXPECT_FALSE(repo_fires({{"src/core/cursor.h", pointer}}, "pin-lifetime"));
}

TEST(PinLifetimeRule, FlagsPinReturnsWithoutEscapeAnnotation) {
  EXPECT_TRUE(repo_fires({{"src/core/grab.h", "smb::PinnedFloats grab();\n"}}, "pin-lifetime"));
  EXPECT_FALSE(repo_fires(
      {{"src/core/grab.h", "SHMCAFFE_PIN_ESCAPE smb::PinnedFloats grab();\n"}}, "pin-lifetime"));
  // Returning a reference hands out no new pin.
  EXPECT_FALSE(
      repo_fires({{"src/core/grab.h", "const smb::PinnedFloats& peek();\n"}}, "pin-lifetime"));
}

TEST(PinLifetimeRule, FlagsPinLocalsCapturedByEscapingLambdas) {
  const std::string bad =
      "SHMCAFFE_PIN_ESCAPE smb::PinnedFloats grab();\n"
      "void ship() {\n"
      "  smb::PinnedFloats view = grab();\n"
      "  defer([view] { consume(view); });\n"
      "}\n";
  EXPECT_TRUE(repo_fires({{"src/core/ship.cc", bad}}, "pin-lifetime"));
  const std::string frame_local =
      "SHMCAFFE_PIN_ESCAPE smb::PinnedFloats grab();\n"
      "void use() {\n"
      "  smb::PinnedFloats view = grab();\n"
      "  consume(view.span());\n"
      "}\n";
  EXPECT_FALSE(repo_fires({{"src/core/use.cc", frame_local}}, "pin-lifetime"));
}

TEST(PinLifetimeRule, FlagsPinAcquisitionWhileHoldingAMutex) {
  const std::string source =
      "class Table {\n"
      " public:\n"
      "  SHMCAFFE_PIN_ESCAPE smb::PinnedFloats grab();\n"
      "  void bad() {\n"
      "    std::scoped_lock lock(mu_);\n"
      "    smb::PinnedFloats view = grab();\n"
      "  }\n"
      "  void good() { smb::PinnedFloats view = grab(); }\n"
      " private:\n"
      "  common::OrderedMutex mu_{\"table\", 100};\n"
      "};\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/table.cc", source}});
  int pin = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "pin-lifetime") {
      ++pin;
      EXPECT_EQ(finding.line, 6);  // pin-then-lock inversion, locked site only
    }
  }
  EXPECT_EQ(pin, 1);
}

TEST(StaleAllowRule, CoversTheBlockingAndPinRules) {
  const std::string stale =
      "int x = 0;  // lint:" "allow(no-blocking-under-lock) obsolete\n"
      "int y = 0;  // lint:" "allow(pin-lifetime) obsolete\n";
  const std::vector<Finding> findings = lint_repo({{"src/core/a.cc", stale}});
  int stale_count = 0;
  for (const Finding& finding : findings) {
    if (finding.rule == "stale-allow") ++stale_count;
  }
  EXPECT_EQ(stale_count, 2);
}

TEST(CoverageReport, ReportsBlockingAndPinCounters) {
  const std::string source =
      "#pragma once\n"
      "SHMCAFFE_BLOCKS void drain();\n"
      "SHMCAFFE_NONBLOCKING int peek();\n"
      "struct Cache {\n"
      "  smb::PinnedFloats view SHMCAFFE_PIN_ESCAPE;\n"
      "};\n"
      "SHMCAFFE_PIN_ESCAPE smb::PinnedFloats grab();\n";
  const std::string json = coverage_json({{"src/core/pins.h", source}});
  EXPECT_NE(json.find("\"blocking_roots\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nonblocking_contracts\": 1"), std::string::npos) << json;
  // One field escape + one function escape.
  EXPECT_NE(json.find("\"pin_escapes\": 2"), std::string::npos) << json;
}

TEST(JsonOutput, EscapesControlCharactersAndNonAsciiBytes) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"src/core/a.cc", 1, "rng-source",
                             std::string("ctrl\x01 tab\t byte\xc3\xa9")});
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
  EXPECT_NE(json.find("\\t"), std::string::npos) << json;
  // Non-ASCII bytes are escaped byte-wise: apart from the structural
  // newlines of the pretty-printer, the output is pure ASCII.
  EXPECT_NE(json.find("\\u00c3"), std::string::npos) << json;
  EXPECT_NE(json.find("\\u00a9"), std::string::npos) << json;
  for (const char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(c, 0x20) << "raw control/8-bit byte in JSON output";
  }
}

TEST(RuleIds, EveryRuleIsListed) {
  const std::vector<std::string>& ids = rule_ids();
  for (const char* expected : {"rng-source", "wall-clock", "sim-wall-clock", "raii-lock",
                               "sim-ptr-container", "pragma-once", "include-hygiene",
                               "no-naked-epoch", "no-raw-thread", "guarded-by",
                               "include-layering", "lock-region", "determinism",
                               "stale-allow"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end()) << expected;
  }
}

}  // namespace
}  // namespace shmcaffe::lint
