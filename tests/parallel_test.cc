// Tests for the deterministic work pool (common/parallel.h) and its
// determinism contract across the ported hot paths: the same floats must
// come out of the conv GEMM engine, the SEASGD exchange kernels, the SMB
// accumulate, and a whole training run for every pool width — bitwise, not
// approximately.  Also covers the pool's lifecycle edges (lazy start,
// shutdown + re-entry, nested calls, exception propagation) and ends with a
// LockOrder guard over everything the suite drove.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/seasgd_math.h"
#include "core/trainer.h"
#include "dl/gradcheck.h"
#include "dl/layers.h"
#include "dl/models.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

namespace parallel = common::parallel;

/// Bitwise equality of float buffers: the determinism contract is exact,
/// so no tolerance anywhere in this file.
bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// --- chunking is a pure function of (range, grain) -------------------------

TEST(ChunkCount, PureInRangeAndGrain) {
  EXPECT_EQ(parallel::chunk_count(0, 4), 0U);
  EXPECT_EQ(parallel::chunk_count(1, 4), 1U);
  EXPECT_EQ(parallel::chunk_count(4, 4), 1U);
  EXPECT_EQ(parallel::chunk_count(5, 4), 2U);
  EXPECT_EQ(parallel::chunk_count(8, 4), 2U);
  EXPECT_EQ(parallel::chunk_count(9, 4), 3U);
  // Grain is clamped to >= 1 rather than dividing by zero.
  EXPECT_EQ(parallel::chunk_count(7, 0), 7U);
}

TEST(ParallelFor, ChunkBoundariesNeverDependOnThreadCount) {
  for (const int threads : {1, 2, 4}) {
    parallel::set_thread_count(threads);
    std::vector<std::pair<std::size_t, std::size_t>> chunks(parallel::chunk_count(103, 10));
    parallel::parallel_for_indexed(
        103, 10, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          chunks[chunk] = {begin, end};
        });
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_EQ(chunks[c].first, c * 10) << "threads=" << threads;
      EXPECT_EQ(chunks[c].second, std::min<std::size_t>(c * 10 + 10, 103));
    }
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 3, 4}) {
    parallel::set_thread_count(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel::parallel_for(1000, 7, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool ran = false;
  parallel::parallel_for(0, 8, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// --- lifecycle -------------------------------------------------------------

TEST(Pool, ShutdownAndReentry) {
  parallel::set_thread_count(4);
  EXPECT_EQ(parallel::thread_count(), 4);
  parallel::shutdown();
  // The next use lazily restarts; thread_count() itself is such a use.
  EXPECT_GE(parallel::thread_count(), 1);
  std::atomic<int> sum{0};
  parallel::parallel_for(64, 8, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(sum.load(), 64);
  // Repeated shutdown is harmless.
  parallel::shutdown();
  parallel::shutdown();
}

TEST(Pool, NestedCallsRunInlineWithoutDeadlock) {
  parallel::set_thread_count(4);
  std::vector<std::atomic<int>> hits(256);
  parallel::parallel_for(16, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t outer = ob; outer < oe; ++outer) {
      parallel::parallel_for(16, 4, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t inner = ib; inner < ie; ++inner) {
          hits[outer * 16 + inner].fetch_add(1);
        }
      });
    }
  });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, FirstExceptionPropagatesAndPoolStaysUsable) {
  parallel::set_thread_count(4);
  EXPECT_THROW(
      parallel::parallel_for(100, 1,
                             [&](std::size_t begin, std::size_t) {
                               if (begin == 37) throw std::runtime_error("chunk 37");
                             }),
      std::runtime_error);
  // The pool drained the failed job completely and accepts new work.
  std::atomic<int> sum{0};
  parallel::parallel_for(100, 1, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(sum.load(), 100);
}

// --- SEASGD kernels: parallel == scalar, bitwise ---------------------------

TEST(SeasgdParallel, MatchesScalarKernelsBitwiseAtEveryWidth) {
  common::Rng rng(3);
  const std::size_t n = 100000;  // several chunks at the SEASGD grain
  std::vector<float> local0(n);
  std::vector<float> global(n);
  for (float& v : local0) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : global) v = static_cast<float>(rng.uniform(-1, 1));

  std::vector<float> local_ref = local0;
  std::vector<float> delta_ref(n);
  core::elastic_exchange(local_ref, global, 0.3F, delta_ref);

  for (const int threads : {1, 2, 4}) {
    parallel::set_thread_count(threads);

    std::vector<float> delta(n);
    core::weight_increment_parallel(local0, global, 0.3F, delta);
    EXPECT_TRUE(same_bits(delta, delta_ref)) << "threads=" << threads;

    std::vector<float> local = local0;
    core::apply_increment_locally_parallel(local, delta);
    EXPECT_TRUE(same_bits(local, local_ref)) << "threads=" << threads;

    std::vector<float> fused_local = local0;
    std::vector<float> fused_delta(n);
    core::elastic_exchange_parallel(fused_local, global, 0.3F, fused_delta);
    EXPECT_TRUE(same_bits(fused_local, local_ref)) << "threads=" << threads;
    EXPECT_TRUE(same_bits(fused_delta, delta_ref)) << "threads=" << threads;
  }
}

// --- SMB accumulate --------------------------------------------------------

TEST(SmbAccumulate, ParallelAddIsBitwiseWidthInvariant) {
  common::Rng rng(5);
  const std::size_t n = 70000;
  std::vector<float> base(n);
  std::vector<float> delta(n);
  for (float& v : base) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : delta) v = static_cast<float>(rng.uniform(-0.1, 0.1));

  std::vector<float> expected;
  for (const int threads : {1, 2, 4}) {
    parallel::set_thread_count(threads);
    smb::SmbServer server;
    const smb::Handle src = server.create_floats(1, n);
    const smb::Handle dst = server.create_floats(2, n);
    server.write(src, delta);
    server.write(dst, base);
    server.accumulate(src, dst);
    server.accumulate(src, dst);
    std::vector<float> out(n);
    server.read(dst, out);
    if (expected.empty()) {
      expected = out;
      // Sanity against the definition: base + 2 * delta, summed in order.
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], base[i] + delta[i] + delta[i]);
      }
    } else {
      EXPECT_TRUE(same_bits(out, expected)) << "threads=" << threads;
    }
  }
}

TEST(SmbAccumulate, ConcurrentClientsStaySane) {
  // Several client threads accumulate distinct sources into one destination
  // while the pool is active — the TSan target for the lock-split add path.
  parallel::set_thread_count(4);
  const std::size_t n = 50000;
  smb::SmbServer server;
  const smb::Handle dst = server.create_floats(100, n);
  constexpr int kClients = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, dst, c, n] {
      const smb::Handle src =
          server.create_floats(static_cast<smb::ShmKey>(c + 1), n);
      std::vector<float> ones(n, 1.0F);
      server.write(src, ones);
      for (int round = 0; round < kRounds; ++round) server.accumulate(src, dst);
    });
  }
  for (std::thread& t : clients) t.join();
  std::vector<float> out(n);
  server.read(dst, out);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<float>(kClients * kRounds)) << i;
  }
}

// --- conv GEMM engine ------------------------------------------------------

TEST(ConvParallel, ForwardAndBackwardAreBitwiseWidthInvariant) {
  common::Rng rng(7);
  dl::Conv2d conv("c", 5, 12, 3, 1, 1);  // odd sizes: partial tiles everywhere
  conv.init_params(rng);
  dl::Tensor x({3, 5, 9, 11});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor top;
  conv.setup({&x}, top);
  dl::Tensor top_grad;

  std::vector<float> fwd_ref;
  std::vector<float> dx_ref;
  std::vector<float> dw_ref;
  for (const int threads : {1, 2, 4}) {
    parallel::set_thread_count(threads);
    conv.forward({&x}, top, true);
    const std::vector<float> fwd(top.data(), top.data() + top.size());

    if (top_grad.size() == 0) {
      top_grad.reshape(top.shape());
      for (float& v : top_grad.span()) v = static_cast<float>(rng.uniform(-0.1, 0.1));
    }
    for (dl::ParamBlob* blob : conv.params()) blob->grad.zero();
    dl::Tensor x_grad;
    x_grad.reshape(x.shape());
    std::vector<dl::Tensor*> bottom_grads{&x_grad};
    conv.backward({&x}, top, top_grad, bottom_grads);
    const std::vector<float> dx(x_grad.data(), x_grad.data() + x_grad.size());
    const dl::Tensor& dw_t = conv.params()[0]->grad;
    const std::vector<float> dw(dw_t.data(), dw_t.data() + dw_t.size());

    if (fwd_ref.empty()) {
      fwd_ref = fwd;
      dx_ref = dx;
      dw_ref = dw;
    } else {
      EXPECT_TRUE(same_bits(fwd, fwd_ref)) << "threads=" << threads;
      EXPECT_TRUE(same_bits(dx, dx_ref)) << "threads=" << threads;
      EXPECT_TRUE(same_bits(dw, dw_ref)) << "threads=" << threads;
    }
  }
}

TEST(ConvParallel, GradcheckHoldsUnderParallelGemm) {
  // Whole-net numerical gradient sweep with the pool fanned out: the tiled
  // parallel GEMM must still be the analytic gradient of the forward pass.
  parallel::set_thread_count(4);
  common::Rng rng(2026);
  dl::ModelInputSpec spec;
  spec.channels = 2;
  spec.height = 8;
  spec.width = 8;
  spec.classes = 4;
  dl::Net net = dl::make_model("mini_inception", spec);
  net.init_params(rng);
  for (dl::ParamBlob* blob : net.params()) {
    if (!blob->learnable) continue;
    for (float& v : blob->value.span()) v += static_cast<float>(rng.uniform(-0.05, 0.05));
  }
  dl::Tensor& data = net.input("data");
  data.reshape({2, spec.channels, spec.height, spec.width});
  for (float& v : data.span()) v = static_cast<float>(rng.uniform(-1, 1));
  dl::Tensor& labels = net.input("label");
  labels.reshape({2});
  for (float& v : labels.span()) {
    v = static_cast<float>(rng.uniform_int(0, spec.classes - 1));
  }
  const dl::GradCheckResult result = dl::check_gradients(net, 1e-3, 80, rng);
  EXPECT_EQ(result.checked, 80U);
  EXPECT_LT(result.rel_error_quantile(0.5), 0.01);
  EXPECT_LT(result.rel_error_quantile(0.9), 0.05);
  EXPECT_LT(result.max_rel_error, 0.5);
}

// --- whole training run ----------------------------------------------------

TEST(TrainParallel, TrainResultIsBitwiseIdenticalAcrossThreadCounts) {
  // Single worker + one epoch: the only nondeterminism in the stack is then
  // the pool width, which must not matter.  A small conv run (the ShmCaffe-A
  // family at toy scale) exercises im2col, the tiled GEMM, the SEASGD T2
  // exchange and the SMB accumulate end to end.
  core::DistTrainOptions options;
  options.model_family = "mini_inception";
  options.workers = 1;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 4};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 4;
  options.train_data.size = 256;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 128;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 1;

  std::vector<double> losses;
  std::vector<double> accuracies;
  for (const int threads : {1, 2, 4}) {
    parallel::set_thread_count(threads);
    const core::TrainResult result = core::train_shmcaffe(options);
    losses.push_back(result.final_loss);
    accuracies.push_back(result.final_accuracy);
    ASSERT_EQ(result.curve.size(), 1U) << "threads=" << threads;
  }
  EXPECT_EQ(losses[0], losses[1]);
  EXPECT_EQ(losses[0], losses[2]);
  EXPECT_EQ(accuracies[0], accuracies[1]);
  EXPECT_EQ(accuracies[0], accuracies[2]);
}

// --- lock order ------------------------------------------------------------

TEST(LockOrder, CleanUnderParallelKernels) {
  // Runs last (gtest preserves in-file order): everything above submitted
  // pool jobs, including accumulate's submit-under-segment-lock path.
  EXPECT_TRUE(common::LockOrderRegistry::instance().violations().empty())
      << common::LockOrderRegistry::instance().violations().size()
      << " lock-order violation(s); see stderr for details";
}

}  // namespace
}  // namespace shmcaffe
