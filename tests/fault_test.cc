// Tests for the fault-injection subsystem and graceful degradation:
// deterministic plan generation, the injector query API, the SMB deadline /
// retry / error-reporting hardening, fabric capacity windows and datagram
// drops, and the functional trainer surviving a mid-run worker crash under
// every termination criterion.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/sim_platforms.h"
#include "common/ordered_mutex.h"
#include "core/config.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "core/progress_board.h"
#include "net/fabric.h"
#include "recovery/replicated_smb.h"
#include "sim/simulation.h"
#include "smb/client.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultPlanSpec;

FaultPlanSpec busy_spec(std::uint64_t seed) {
  FaultPlanSpec spec;
  spec.seed = seed;
  spec.workers = 8;
  spec.horizon_iterations = 50;
  spec.horizon_seconds = 5.0;
  spec.crash_probability = 0.5;
  spec.stall_probability = 0.5;
  spec.mean_stall_seconds = 0.2;
  spec.servers = 2;
  spec.freeze_probability = 0.5;
  spec.mean_freeze_seconds = 0.3;
  spec.links = 4;
  spec.link_flap_probability = 0.5;
  spec.mean_flap_seconds = 0.1;
  spec.datagram_count = 1000;
  spec.datagram_drop_rate = 0.05;
  return spec;
}

// --- plan determinism (satellite 3a) ---

TEST(FaultPlan, SameSeedSameSpecIsBitIdentical) {
  const FaultPlanSpec spec = busy_spec(0x5eed);
  const FaultPlan a = FaultPlan::generate(spec);
  const FaultPlan b = FaultPlan::generate(spec);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  // Bit-identical event sequence, element by element.
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FaultPlan, DifferentSeedDiverges) {
  const FaultPlan a = FaultPlan::generate(busy_spec(1));
  const FaultPlan b = FaultPlan::generate(busy_spec(2));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultPlan, FingerprintIsOrderSensitive) {
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 1;
  crash.iteration = 5;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 2;
  stall.iteration = 3;
  stall.duration_seconds = 0.5;
  FaultPlan ab;
  ab.add(crash);
  ab.add(stall);
  FaultPlan ba;
  ba.add(stall);
  ba.add(crash);
  EXPECT_NE(ab.fingerprint(), ba.fingerprint());
}

TEST(FaultPlan, DescribeMentionsEveryEvent) {
  const FaultPlan plan = FaultPlan::generate(busy_spec(0xd00d));
  const std::string text = plan.describe();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            plan.size());
}

/// One event of every FaultKind, in enum order.  Extending the enum without
/// extending this list fails the exhaustiveness checks below.
std::vector<FaultEvent> one_of_every_kind() {
  std::vector<FaultEvent> events;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 0;
  crash.iteration = 1;
  events.push_back(crash);
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 1;
  stall.iteration = 2;
  stall.duration_seconds = 0.5;
  events.push_back(stall);
  FaultEvent freeze;
  freeze.kind = FaultKind::kServerFreeze;
  freeze.target = 0;
  freeze.start_seconds = 0.1;
  freeze.duration_seconds = 0.2;
  events.push_back(freeze);
  FaultEvent fail_stop;
  fail_stop.kind = FaultKind::kServerFailStop;
  fail_stop.target = 1;
  fail_stop.start_seconds = 0.3;
  events.push_back(fail_stop);
  FaultEvent degrade;
  degrade.kind = FaultKind::kLinkDegrade;
  degrade.target = 2;
  degrade.start_seconds = 0.4;
  degrade.duration_seconds = 0.1;
  degrade.severity = 0.25;
  events.push_back(degrade);
  FaultEvent down;
  down.kind = FaultKind::kLinkDown;
  down.target = 3;
  down.start_seconds = 0.5;
  down.duration_seconds = 0.1;
  events.push_back(down);
  FaultEvent drop;
  drop.kind = FaultKind::kDatagramDrop;
  drop.sequence = 42;
  events.push_back(drop);
  FaultEvent corrupt;
  corrupt.kind = FaultKind::kSegmentCorruption;
  corrupt.target = 0;
  corrupt.start_seconds = 0.6;
  corrupt.severity = 3;
  corrupt.sequence = 0x5eed;
  events.push_back(corrupt);
  FaultEvent torn;
  torn.kind = FaultKind::kTornWrite;
  torn.target = 1;
  torn.sequence = 7;
  torn.severity = 0.5;
  events.push_back(torn);
  return events;
}

TEST(FaultKindNames, EveryKindHasADistinctNonEmptyName) {
  std::vector<std::string> names;
  for (const FaultEvent& event : one_of_every_kind()) {
    names.emplace_back(fault::to_string(event.kind));
    EXPECT_FALSE(names.back().empty());
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "two FaultKinds share a to_string name";
}

TEST(FaultPlan, RoundTripsAndDescribesEveryKind) {
  const std::vector<FaultEvent> events = one_of_every_kind();
  const FaultPlan plan(events);
  // The plan is a faithful ordered container: events round-trip verbatim.
  EXPECT_EQ(plan.events(), events);
  EXPECT_EQ(FaultPlan(plan.events()).fingerprint(), plan.fingerprint());

  // describe() renders one line per event and names each event's kind.
  const std::string text = plan.describe();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            events.size());
  for (const FaultEvent& event : events) {
    EXPECT_NE(text.find(fault::to_string(event.kind)), std::string::npos)
        << fault::to_string(event.kind) << " missing from describe()";
  }
}

TEST(FaultPlan, GeneratorEmitsIntegrityFaultsWithValidMarkers) {
  FaultPlanSpec spec;
  spec.seed = 0x1de7;
  spec.servers = 4;
  spec.corruption_probability = 1.0;
  spec.corruption_bit_flips = 5;
  spec.torn_write_probability = 1.0;
  spec.writes_per_server = 100;
  spec.torn_write_fraction = 0.25;
  const FaultPlan plan = FaultPlan::generate(spec);

  int corruptions = 0;
  int torn = 0;
  for (const FaultEvent& event : plan.events()) {
    if (event.kind == FaultKind::kSegmentCorruption) {
      ++corruptions;
      EXPECT_NE(event.sequence, 0u);                     // nonzero marker
      EXPECT_EQ(event.sequence >> 63, 0u);               // high bit clear
      EXPECT_DOUBLE_EQ(event.severity, 5.0);
      EXPECT_GE(event.start_seconds, 0.0);
      EXPECT_LT(event.start_seconds, spec.horizon_seconds);
    } else if (event.kind == FaultKind::kTornWrite) {
      ++torn;
      EXPECT_GE(event.sequence, 1u);                     // 1-based ordinal
      EXPECT_LE(event.sequence, spec.writes_per_server);
      EXPECT_DOUBLE_EQ(event.severity, 0.25);
    }
  }
  EXPECT_EQ(corruptions, spec.servers);
  EXPECT_EQ(torn, spec.servers);
  // Determinism: the same spec regenerates the identical plan.
  EXPECT_EQ(FaultPlan::generate(spec).fingerprint(), plan.fingerprint());
}

// --- injector queries ---

TEST(FaultInjector, IndexesWorkerAndWindowEvents) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 1;
  crash.iteration = 7;
  plan.add(crash);
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 0;
  stall.iteration = 3;
  stall.duration_seconds = 0.25;
  plan.add(stall);
  FaultEvent flap;
  flap.kind = FaultKind::kLinkDown;
  flap.target = 2;
  flap.start_seconds = 1.0;
  flap.duration_seconds = 0.5;
  plan.add(flap);
  FaultEvent drop;
  drop.kind = FaultKind::kDatagramDrop;
  drop.sequence = 42;
  plan.add(drop);

  const FaultInjector injector(plan);
  EXPECT_EQ(injector.crash_iteration(1), 7);
  EXPECT_EQ(injector.crash_iteration(0), -1);
  EXPECT_FALSE(injector.crashes_at(1, 6));
  EXPECT_TRUE(injector.crashes_at(1, 7));
  EXPECT_TRUE(injector.crashes_at(1, 8));
  EXPECT_DOUBLE_EQ(injector.stall_seconds(0, 3), 0.25);
  EXPECT_DOUBLE_EQ(injector.stall_seconds(0, 4), 0.0);
  ASSERT_EQ(injector.link_windows(2).size(), 1u);
  EXPECT_TRUE(injector.link_windows(3).empty());
  EXPECT_TRUE(injector.drops_datagram(42));
  EXPECT_FALSE(injector.drops_datagram(41));
  EXPECT_EQ(injector.dropped_sequences(), std::vector<std::uint64_t>{42});
}

// --- SMB deadline wait (satellite 3c) ---

TEST(SmbDeadline, TimedWaitExpiresWithinTolerance) {
  smb::SmbServer server;
  const smb::Handle g = server.create_floats(1, 4);
  const auto start = std::chrono::steady_clock::now();
  const std::optional<std::uint64_t> seen =
      server.wait_version_at_least(g, 5, std::chrono::milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(seen.has_value());
  EXPECT_GE(elapsed, std::chrono::milliseconds(50));
  // Generous upper bound: scheduling noise on a loaded single-core box.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  server.release(g);
}

TEST(SmbDeadline, TimedWaitReturnsVersionWhenNotified) {
  smb::SmbServer server;
  const smb::Handle g = server.create_floats(1, 4);
  std::optional<std::uint64_t> seen;
  std::thread waiter(
      [&] { seen = server.wait_version_at_least(g, 1, std::chrono::seconds(30)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.write(g, std::vector<float>{1, 2, 3, 4});
  waiter.join();
  ASSERT_TRUE(seen.has_value());
  EXPECT_GE(*seen, 1u);
  server.release(g);
}

// --- SMB error reporting (satellite 2) ---

TEST(SmbErrors, DoubleReleaseThrowsClearError) {
  smb::SmbServer server;
  const smb::Handle g = server.create_floats(7, 4);
  server.release(g);
  try {
    server.release(g);
    FAIL() << "double release must throw";
  } catch (const smb::SmbError& e) {
    EXPECT_NE(std::string(e.what()).find("release"), std::string::npos);
  }
}

TEST(SmbErrors, KindMismatchNamesTheKey) {
  smb::SmbServer server;
  const smb::Handle g = server.create_floats(123, 4);
  try {
    (void)server.attach_counters(123);
    FAIL() << "kind mismatch must throw";
  } catch (const smb::SmbError& e) {
    EXPECT_NE(std::string(e.what()).find("123"), std::string::npos);
  }
  server.release(g);
}

TEST(SmbErrors, MissingKeyThrowsNotFound) {
  smb::SmbServer server;
  EXPECT_THROW((void)server.attach_floats(999), smb::SmbNotFound);
}

// --- SmbClient retry (tentpole, functional side) ---

TEST(SmbClient, AttachRetriesUntilSegmentAppears) {
  smb::SmbServer server;
  smb::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(5);
  smb::SmbClient client(server, policy);
  std::thread creator([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)server.create_floats(55, 16);
  });
  const smb::Handle h = client.attach_floats(55);  // races the creator
  creator.join();
  std::vector<float> probe(16);
  client.read(h, probe);
  client.release(h);
}

TEST(SmbClient, AttachGivesUpAfterBudget) {
  smb::SmbServer server;
  smb::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(100);
  smb::SmbClient client(server, policy);
  EXPECT_THROW((void)client.attach_floats(777), smb::SmbNotFound);
}

TEST(SmbClient, KindMismatchIsNotRetried) {
  smb::SmbServer server;
  (void)server.create_floats(9, 4);
  smb::RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff = std::chrono::seconds(1);  // a retry would hang the test
  smb::SmbClient client(server, policy);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.attach_counters(9), smb::SmbError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(500));
}

TEST(SmbClient, BackoffGrowsAndClamps) {
  smb::RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  policy.max_backoff = std::chrono::milliseconds(4);
  common::Rng rng(1);
  EXPECT_EQ(smb::backoff_delay(policy, 1, rng), std::chrono::milliseconds(1));
  EXPECT_EQ(smb::backoff_delay(policy, 2, rng), std::chrono::milliseconds(2));
  EXPECT_EQ(smb::backoff_delay(policy, 3, rng), std::chrono::milliseconds(4));
  EXPECT_EQ(smb::backoff_delay(policy, 4, rng), std::chrono::milliseconds(4));  // clamped
}

// --- SMB server freeze window ---

TEST(SmbFreeze, DataPathBlocksUntilFreezeLifts) {
  smb::SmbServer server;
  const smb::Handle g = server.create_floats(1, 4);
  server.freeze_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(server.frozen());
  const auto start = std::chrono::steady_clock::now();
  server.write(g, std::vector<float>{1, 2, 3, 4});
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(40));
  EXPECT_FALSE(server.frozen());
  server.release(g);
}

// --- fabric capacity windows + datagram drops (tentpole, simulated side) ---

/// Awaits one transfer and records the sim time it completed at (the window
/// coroutines keep the simulation alive past the transfer, so `sim.now()`
/// after run() is not the completion time).
sim::Task<void> timed_transfer(sim::Simulation& sim, net::Fabric& fabric,
                               net::LinkId link, std::int64_t bytes, SimTime& done_at) {
  co_await fabric.transfer(link, bytes);
  done_at = sim.now();
}

TEST(FabricFaults, DownWindowStallsAndResumesFlows) {
  sim::Simulation sim;
  net::FabricOptions opts;
  opts.efficiency = 1.0;
  opts.message_latency = 0;
  net::Fabric fabric(sim, opts);
  const net::LinkId link = fabric.add_link("l", 1000.0);  // 1000 B/s
  // 1000 bytes = 1 s of transfer; a 0.5 s outage window starting at 0.25 s
  // pushes completion to exactly 1.5 s.
  fabric.schedule_capacity_window(link, units::from_seconds(0.25),
                                  units::from_seconds(0.5), 0.0);
  SimTime done_at = 0;
  sim.spawn(timed_transfer(sim, fabric, link, 1000, done_at));
  sim.run();
  EXPECT_NEAR(units::to_seconds(done_at), 1.5, 1e-6);
}

TEST(FabricFaults, DegradeWindowSlowsFlows) {
  sim::Simulation sim;
  net::FabricOptions opts;
  opts.efficiency = 1.0;
  opts.message_latency = 0;
  net::Fabric fabric(sim, opts);
  const net::LinkId link = fabric.add_link("l", 1000.0);
  // Half rate for the entire transfer: 1000 bytes take 2 s.
  fabric.schedule_capacity_window(link, 0, units::from_seconds(10.0), 0.5);
  SimTime done_at = 0;
  sim.spawn(timed_transfer(sim, fabric, link, 1000, done_at));
  sim.run();
  EXPECT_NEAR(units::to_seconds(done_at), 2.0, 1e-6);
}

TEST(FabricFaults, DroppedTransferPaysRetransmit) {
  sim::Simulation sim;
  net::FabricOptions opts;
  opts.efficiency = 1.0;
  opts.message_latency = units::kMillisecond;
  net::Fabric fabric(sim, opts);
  const net::LinkId link = fabric.add_link("l", 1000.0);
  fabric.set_dropped_transfers({0});
  SimTime done_at = 0;
  sim.spawn(timed_transfer(sim, fabric, link, 500, done_at));  // seq 0: dropped once
  sim.run();
  // Two attempts: 2 * (1 ms latency + 0.5 s payload).
  EXPECT_NEAR(units::to_seconds(done_at), 2 * (0.001 + 0.5), 1e-6);
  EXPECT_EQ(fabric.stats(link).transfers, 2);
  EXPECT_EQ(fabric.transfer_count(), 1u);
}

// --- simulated stacks under a shared plan ---

TEST(SimFaults, ShmCaffeSurvivesCrashSyncBaselineTruncates) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 2;
  crash.iteration = 10;
  plan.add(crash);
  const FaultInjector injector(plan);

  core::SimShmCaffeOptions async_opts;
  async_opts.workers = 4;
  async_opts.group_size = 1;
  async_opts.iterations = 40;
  async_opts.faults = &injector;
  const cluster::PlatformTiming async = core::simulate_shmcaffe(async_opts);
  // Survivors complete the full 40; the crashed worker contributes 10.
  EXPECT_EQ(async.completed_worker_iterations, 3 * 40 + 10);
  EXPECT_EQ(async.crashed_workers, 1);
  EXPECT_GT(async.makespan, 0);

  baselines::SimPlatformOptions sync_opts;
  sync_opts.workers = 4;
  sync_opts.iterations = 40;
  sync_opts.faults = &injector;
  const cluster::PlatformTiming sync = baselines::simulate_caffe(sync_opts);
  // The synchronous platform halts at the crash: nobody passes iteration 10.
  EXPECT_EQ(sync.completed_worker_iterations, 4 * 10);
  EXPECT_EQ(sync.crashed_workers, 1);
}

TEST(SimFaults, StallChargesOnlyTheAsyncStragglerButAllSyncWorkers) {
  FaultPlan plan;
  FaultEvent stall;
  stall.kind = FaultKind::kWorkerStall;
  stall.target = 1;
  stall.iteration = 5;
  stall.duration_seconds = 2.0;
  plan.add(stall);
  const FaultInjector injector(plan);

  core::SimShmCaffeOptions a;
  a.workers = 4;
  a.group_size = 1;
  a.iterations = 20;
  const cluster::PlatformTiming clean = core::simulate_shmcaffe(a);
  a.faults = &injector;
  const cluster::PlatformTiming stalled = core::simulate_shmcaffe(a);

  baselines::SimPlatformOptions s;
  s.workers = 4;
  s.iterations = 20;
  const cluster::PlatformTiming sync_clean = baselines::simulate_caffe(s);
  s.faults = &injector;
  const cluster::PlatformTiming sync_stalled = baselines::simulate_caffe(s);

  // Async: the stall stretches the makespan at most ~one stall (the other
  // workers keep going).  Sync: the whole platform pays it too; both lose
  // >= the stall, but the async mean iteration over all workers moves less
  // than the sync one (3 of 4 async workers never see the stall).
  const double async_penalty = units::to_seconds(stalled.makespan - clean.makespan);
  const double sync_penalty =
      units::to_seconds(sync_stalled.makespan - sync_clean.makespan);
  EXPECT_NEAR(sync_penalty, 2.0, 0.1);
  EXPECT_LT(async_penalty, 3.0);
  EXPECT_LT(stalled.mean_iteration() - clean.mean_iteration(),
            sync_stalled.mean_iteration() - sync_clean.mean_iteration());
}

TEST(SimFaults, SimulatedRunsAreDeterministic) {
  const FaultInjector injector(FaultPlan::generate(busy_spec(0xabc)));
  core::SimShmCaffeOptions opts;
  opts.workers = 8;
  opts.group_size = 2;
  opts.iterations = 30;
  opts.faults = &injector;
  const cluster::PlatformTiming a = core::simulate_shmcaffe(opts);
  const cluster::PlatformTiming b = core::simulate_shmcaffe(opts);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.mean_comp, b.mean_comp);
  EXPECT_EQ(a.mean_comm, b.mean_comm);
  EXPECT_EQ(a.completed_worker_iterations, b.completed_worker_iterations);
}

// --- trainer graceful degradation (tentpole + satellite 3b) ---

core::DistTrainOptions degraded_train_options(core::TerminationCriterion criterion) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 4;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 4;
  options.termination = criterion;
  options.heartbeat_timeout_seconds = 0.5;
  return options;
}

class TrainerDegradation
    : public ::testing::TestWithParam<core::TerminationCriterion> {};

TEST_P(TrainerDegradation, SurvivorsFinishWhenOneWorkerCrashes) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 2;
  crash.iteration = 3;
  plan.add(crash);
  const FaultInjector injector(plan);

  core::DistTrainOptions options = degraded_train_options(GetParam());
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  ASSERT_EQ(result.worker_outcomes.size(), 4u);
  EXPECT_EQ(result.worker_outcomes[2], core::WorkerOutcome::kCrashed);
  EXPECT_EQ(result.dead_workers, std::vector<int>{2});
  for (int w : {0, 1, 3}) {
    EXPECT_EQ(result.worker_outcomes[static_cast<std::size_t>(w)],
              core::WorkerOutcome::kFinished)
        << "worker " << w;
    EXPECT_GT(result.iterations_per_worker[static_cast<std::size_t>(w)], 3);
  }
  // The crashed worker stopped where the plan says it did.
  EXPECT_EQ(result.iterations_per_worker[2], 3);
  // Survivors still converge on the shared global weights.
  EXPECT_GT(result.final_accuracy, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllCriteria, TrainerDegradation,
    ::testing::Values(core::TerminationCriterion::kMasterFinishes,
                      core::TerminationCriterion::kFirstFinisher,
                      core::TerminationCriterion::kAverageIterations));

TEST(TrainerDegradation2, CrashOfMasterFallsBackToActingMaster) {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 0;  // the master itself dies
  crash.iteration = 3;
  plan.add(crash);
  const FaultInjector injector(plan);

  core::DistTrainOptions options =
      degraded_train_options(core::TerminationCriterion::kMasterFinishes);
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);
  EXPECT_EQ(result.dead_workers, std::vector<int>{0});
  for (int w : {1, 2, 3}) {
    EXPECT_EQ(result.worker_outcomes[static_cast<std::size_t>(w)],
              core::WorkerOutcome::kFinished);
  }
}

TEST(TrainerDegradation2, FaultFreePlanLeavesResultClean) {
  const FaultInjector injector{FaultPlan{}};
  core::DistTrainOptions options =
      degraded_train_options(core::TerminationCriterion::kAverageIterations);
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);
  EXPECT_TRUE(result.dead_workers.empty());
  for (const core::WorkerOutcome outcome : result.worker_outcomes) {
    EXPECT_EQ(outcome, core::WorkerOutcome::kFinished);
  }
  EXPECT_GT(result.final_accuracy, 0.7);
}


// --- replicated SMB under concurrency (recovery layer) ---

TEST(ReplicatedSmbFailover, WaitVersionSurvivesPrimaryDeathMidWait) {
  // A worker blocked in the Fig. 6 version wait must not hang (or error out)
  // when the primary fail-stops under it: the ensemble catches the wake-up,
  // promotes the backup and resumes the wait there with the remaining
  // deadline.
  smb::SmbServer primary;
  smb::SmbServer backup;
  recovery::ReplicatedSmb ensemble({&primary, &backup});
  const smb::Handle g = ensemble.create_floats(21, 2);
  ensemble.write(g, std::vector<float>{1, 2});  // both replicas at version 1

  std::optional<std::uint64_t> seen;
  std::thread waiter([&] {
    seen = ensemble.wait_version_at_least(g, 2, std::chrono::seconds(30));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  primary.fail_stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ensemble.write(g, std::vector<float>{3, 4});  // lands on the survivor
  waiter.join();

  ASSERT_TRUE(seen.has_value());
  EXPECT_GE(*seen, 2u);
  EXPECT_EQ(ensemble.failover_count(), 1u);
  std::vector<float> data(2);
  ensemble.read(g, data);
  EXPECT_EQ(data, (std::vector<float>{3, 4}));
  ensemble.release(g);
}

// --- progress-board sweep accounting (late-fenced regression) ---

TEST(ProgressBoardSweep, ZeroesStaleSlotsSoMeanUsesOnlyLiveWorkers) {
  // A worker that raced far ahead and then died must not keep inflating the
  // kAverageIterations mean through its stale counter: the sweep zeroes the
  // slot under the sweep lock when it declares the worker dead.
  smb::SmbServer server;
  core::ProgressBoard board(server, 41, 3, /*create=*/true);
  board.report(0, 10);
  board.report(1, 10);
  board.report(2, 1000);  // runs ahead, then goes silent

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  board.heartbeat(0);
  board.heartbeat(1);
  EXPECT_EQ(board.sweep_dead(/*timeout_seconds=*/0.05), 1);
  EXPECT_TRUE(board.is_dead(2));

  // The stale counter is gone and the reductions cover live workers only:
  // without the zeroing, mean would read (10 + 10 + 1000) / n and the
  // termination criterion would fire hundreds of iterations early.
  EXPECT_EQ(board.iterations_of(2), 0);
  EXPECT_DOUBLE_EQ(board.mean_iterations(), 10.0);
  EXPECT_FALSE(board.should_stop(core::TerminationCriterion::kAverageIterations,
                                 /*worker=*/0, /*my_iterations=*/10,
                                 /*target_iterations=*/12));
  board.release();
}

// Lock-order guard: the suite above drives the instrumented mutexes hard
// (SMB freezes, worker crashes, heartbeat sweeps); any rank inversion or acquisition-graph cycle they produced
// is a latent deadlock.  Runs last in this binary by declaration order.
TEST(LockOrder, CleanUnderFaultInjection) {
  EXPECT_TRUE(shmcaffe::common::LockOrderRegistry::instance().violations().empty())
      << shmcaffe::common::LockOrderRegistry::instance().violations().size()
      << " lock-order violation(s); see stderr for details";
}

}  // namespace
}  // namespace shmcaffe
