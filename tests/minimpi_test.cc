// Tests for MiniMPI: point-to-point semantics, tag/source matching, and all
// collectives, run on real threads; plus the simulated-time group ops.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/rng.h"
#include "common/units.h"
#include "minimpi/minimpi.h"
#include "minimpi/sim_mpi.h"
#include "net/fabric.h"

namespace shmcaffe::minimpi {
namespace {

using shmcaffe::units::kMillisecond;

/// Runs `body(endpoint)` on `n` threads, one per rank.
template <typename Body>
void run_world(int n, Body body) {
  Context context(n);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&context, r, &body] { body(context.endpoint(r)); });
  }
  for (auto& t : threads) t.join();
}

TEST(MiniMpi, SendRecvValue) {
  run_world(2, [](Endpoint ep) {
    if (ep.rank() == 0) {
      ep.send_value(1, 7, 12345);
    } else {
      EXPECT_EQ(ep.recv_value<int>(0, 7), 12345);
    }
  });
}

TEST(MiniMpi, TagMatchingSkipsNonMatchingMessages) {
  run_world(2, [](Endpoint ep) {
    if (ep.rank() == 0) {
      ep.send_value(1, 1, 100);
      ep.send_value(1, 2, 200);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(ep.recv_value<int>(0, 2), 200);
      EXPECT_EQ(ep.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(MiniMpi, AnySourceReceivesFromWhoever) {
  run_world(3, [](Endpoint ep) {
    if (ep.rank() == 0) {
      int sum = 0;
      sum += ep.recv_value<int>(kAnySource, 5);
      sum += ep.recv_value<int>(kAnySource, 5);
      EXPECT_EQ(sum, 30);
    } else {
      ep.send_value(0, 5, ep.rank() * 10);
    }
  });
}

TEST(MiniMpi, FifoPerSourceAndTag) {
  run_world(2, [](Endpoint ep) {
    constexpr int kCount = 100;
    if (ep.rank() == 0) {
      for (int i = 0; i < kCount; ++i) ep.send_value(1, 3, i);
    } else {
      for (int i = 0; i < kCount; ++i) EXPECT_EQ(ep.recv_value<int>(0, 3), i);
    }
  });
}

TEST(MiniMpi, SendFloatsRoundTrip) {
  run_world(2, [](Endpoint ep) {
    const std::vector<float> data{1.5F, -2.25F, 3.0F};
    if (ep.rank() == 0) {
      ep.send_floats(1, 9, data);
    } else {
      std::vector<float> out(3);
      ep.recv_floats(0, 9, out);
      EXPECT_EQ(out, data);
    }
  });
}

TEST(MiniMpi, RecvSizeMismatchThrows) {
  run_world(2, [](Endpoint ep) {
    if (ep.rank() == 0) {
      ep.send_floats(1, 9, std::vector<float>{1, 2, 3});
    } else {
      std::vector<float> out(2);
      EXPECT_THROW(ep.recv_floats(0, 9, out), MpiError);
    }
  });
}

TEST(MiniMpi, InvalidRanksThrow) {
  Context context(2);
  Endpoint ep = context.endpoint(0);
  EXPECT_THROW(ep.send_value(5, 0, 1), MpiError);
  EXPECT_THROW((void)ep.recv_value<int>(7, 0), MpiError);
  EXPECT_THROW((void)context.endpoint(2), MpiError);
  EXPECT_THROW(Context(0), MpiError);
}

TEST(MiniMpi, BarrierSynchronisesAllRanks) {
  constexpr int kRanks = 6;
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_world(kRanks, [&](Endpoint ep) {
    for (int round = 0; round < 20; ++round) {
      before.fetch_add(1);
      ep.barrier();
      // After the barrier, all kRanks increments of this round are visible.
      if (before.load() < (round + 1) * kRanks) violated = true;
      ep.barrier();
    }
  });
  EXPECT_FALSE(violated);
}

TEST(MiniMpi, BroadcastDistributesRootBuffer) {
  for (int n : {1, 2, 5}) {
    run_world(n, [](Endpoint ep) {
      std::vector<float> data(4, ep.rank() == 0 ? 3.14F : 0.0F);
      ep.broadcast(0, data);
      for (float v : data) EXPECT_EQ(v, 3.14F);
    });
  }
}

TEST(MiniMpi, BroadcastValueFromNonZeroRoot) {
  run_world(4, [](Endpoint ep) {
    std::uint64_t key = ep.rank() == 2 ? 0xdeadbeefULL : 0;
    ep.broadcast_value(2, key);
    EXPECT_EQ(key, 0xdeadbeefULL);
  });
}

TEST(MiniMpi, AllreduceSumMatchesSequential) {
  for (int n : {1, 2, 3, 4, 8}) {
    for (std::size_t len : {1UL, 7UL, 64UL, 1000UL}) {
      std::vector<std::vector<float>> inputs(static_cast<std::size_t>(n));
      common::Rng rng(static_cast<std::uint64_t>(n) * 1000 + len);
      for (auto& in : inputs) {
        in.resize(len);
        for (float& v : in) v = static_cast<float>(rng.uniform(-1, 1));
      }
      std::vector<float> expected(len, 0.0F);
      for (const auto& in : inputs) {
        for (std::size_t i = 0; i < len; ++i) expected[i] += in[i];
      }
      run_world(n, [&](Endpoint ep) {
        std::vector<float> mine = inputs[static_cast<std::size_t>(ep.rank())];
        ep.allreduce_sum(mine);
        for (std::size_t i = 0; i < len; ++i) {
          EXPECT_NEAR(mine[i], expected[i], 1e-4F) << "n=" << n << " len=" << len;
        }
      });
    }
  }
}

TEST(MiniMpi, AllreduceLengthShorterThanWorld) {
  // len < n exercises empty chunks in the ring.
  run_world(8, [](Endpoint ep) {
    std::vector<float> data{static_cast<float>(ep.rank() + 1)};
    ep.allreduce_sum(data);
    EXPECT_FLOAT_EQ(data[0], 36.0F);  // 1+2+...+8
  });
}

TEST(MiniMpi, ConsecutiveCollectivesDoNotInterfere) {
  run_world(4, [](Endpoint ep) {
    for (int round = 0; round < 50; ++round) {
      std::vector<float> data{1.0F};
      ep.allreduce_sum(data);
      EXPECT_FLOAT_EQ(data[0], 4.0F) << "round " << round;
    }
  });
}

TEST(MiniMpi, ReduceSumOnlyAtRoot) {
  run_world(4, [](Endpoint ep) {
    std::vector<float> data(3, static_cast<float>(ep.rank()));
    ep.reduce_sum(1, data);
    if (ep.rank() == 1) {
      for (float v : data) EXPECT_FLOAT_EQ(v, 6.0F);  // 0+1+2+3
    }
  });
}

TEST(MiniMpi, GatherOrdersByRank) {
  run_world(3, [](Endpoint ep) {
    const std::vector<float> mine{static_cast<float>(ep.rank()),
                                  static_cast<float>(ep.rank()) + 0.5F};
    const std::vector<float> all = ep.gather(0, mine);
    if (ep.rank() == 0) {
      EXPECT_EQ(all, (std::vector<float>{0, 0.5F, 1, 1.5F, 2, 2.5F}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

// --- simulated-time group ops ---

struct SimRig {
  sim::Simulation sim;
  net::Fabric fabric;

  SimRig() : fabric(sim, make_opts()) {}
  static net::FabricOptions make_opts() {
    net::FabricOptions opts;
    opts.message_latency = 0;
    opts.efficiency = 1.0;
    return opts;
  }

  SimGroupOps make_group(int n, double bw) {
    std::vector<net::Fabric::Endpoint> eps;
    for (int i = 0; i < n; ++i) eps.push_back(fabric.add_endpoint("r" + std::to_string(i), bw));
    return SimGroupOps(sim, fabric, std::move(eps));
  }
};

TEST(SimGroupOps, StarGatherScatterBottlenecksAtRoot) {
  SimRig rig;
  SimGroupOps group = rig.make_group(5, 1e9);
  rig.sim.spawn(group.star_gather_scatter(0, 1'000'000));
  rig.sim.run();
  // 4 slaves x 1 MB into root rx (4 ms) + 4 x 1 MB out of root tx (4 ms).
  EXPECT_NEAR(static_cast<double>(rig.sim.now()), 8.0 * kMillisecond, 50'000.0);
}

TEST(SimGroupOps, RingAllreduceScalesWithTwoNMinusOneOverN) {
  // Ring time ~= 2(N-1)/N * bytes / bw for large buffers.
  for (int n : {2, 4, 8}) {
    SimRig rig;
    SimGroupOps group = rig.make_group(n, 1e9);
    rig.sim.spawn(group.ring_allreduce(8'000'000));
    rig.sim.run();
    const double expected = 2.0 * (n - 1) / n * 8.0 * kMillisecond;
    EXPECT_NEAR(static_cast<double>(rig.sim.now()), expected, 0.1 * kMillisecond) << n;
  }
}

TEST(SimGroupOps, BroadcastContendsOnRootTx) {
  SimRig rig;
  SimGroupOps group = rig.make_group(4, 1e9);
  rig.sim.spawn(group.broadcast(0, 1'000'000));
  rig.sim.run();
  EXPECT_NEAR(static_cast<double>(rig.sim.now()), 3.0 * kMillisecond, 50'000.0);
}

TEST(SimGroupOps, SingleRankOpsAreFree) {
  SimRig rig;
  SimGroupOps group = rig.make_group(1, 1e9);
  rig.sim.spawn(group.ring_allreduce(1'000'000));
  rig.sim.run();
  EXPECT_EQ(rig.sim.now(), 0);
}


// Lock-order guard: the suite above drives the instrumented mutexes hard
// (mailbox + barrier locks across ranks); any rank inversion or acquisition-graph cycle they produced
// is a latent deadlock.  Runs last in this binary by declaration order.
TEST(LockOrder, CleanUnderCollectives) {
  EXPECT_TRUE(shmcaffe::common::LockOrderRegistry::instance().violations().empty())
      << shmcaffe::common::LockOrderRegistry::instance().violations().size()
      << " lock-order violation(s); see stderr for details";
}

}  // namespace
}  // namespace shmcaffe::minimpi
