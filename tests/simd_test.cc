// Bitwise-identity tests for the SIMD micro-kernel cores (common/simd.h).
//
// Every core is compared against a freshly written scalar loop over the same
// inputs and must match *bit for bit* — not approximately.  Because the same
// scalar references compile in both the SIMD and the forced-scalar build
// (tools/check.sh `simd` stage runs this binary from a -DSHMCAFFE_SIMD=OFF
// tree), passing in both trees proves the two builds agree transitively.
// Tail sizes (n % lane-width != 0) are always included: the remainder loop
// is where a vectorised kernel diverges first if it is wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"

namespace shmcaffe::common::simd {
namespace {

// Sizes straddling the 4-, 8- and 16-lane boundaries plus odd tails.
const std::vector<std::size_t> kSizes = {0, 1, 3, 4, 7, 8, 15, 16, 17, 31, 64, 100, 1003};

std::vector<float> random_floats(std::size_t n, std::uint32_t seed) {
  common::Rng rng(seed);
  std::vector<float> values(n);
  for (float& v : values) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return values;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(SimdDispatch, TierMatchesCompileFlags) {
  const std::string name = dispatch_name();
#if defined(SHMCAFFE_FORCE_SCALAR)
  EXPECT_EQ(name, "scalar");
  EXPECT_EQ(kWidth, 1U);
#else
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
  EXPECT_TRUE(kWidth == 8 || kWidth == 4 || kWidth == 1);
#endif
}

TEST(SimdCores, AxpyMatchesScalarBitwise) {
  for (const std::size_t n : kSizes) {
    const std::vector<float> x = random_floats(n, 0xA0 + static_cast<std::uint32_t>(n));
    const std::vector<float> y0 = random_floats(n, 0xB0 + static_cast<std::uint32_t>(n));
    const float a = 0.731F;

    std::vector<float> expected = y0;
    for (std::size_t i = 0; i < n; ++i) expected[i] += a * x[i];

    std::vector<float> actual = y0;
    axpy(n, a, x.data(), actual.data());
    EXPECT_TRUE(same_bits(expected, actual)) << "n=" << n;
  }
}

TEST(SimdCores, AddAndSubInplaceMatchScalarBitwise) {
  for (const std::size_t n : kSizes) {
    const std::vector<float> src = random_floats(n, 0xC0 + static_cast<std::uint32_t>(n));
    const std::vector<float> dst0 = random_floats(n, 0xD0 + static_cast<std::uint32_t>(n));

    std::vector<float> expected = dst0;
    for (std::size_t i = 0; i < n; ++i) expected[i] += src[i];
    std::vector<float> actual = dst0;
    add_inplace(n, actual.data(), src.data());
    EXPECT_TRUE(same_bits(expected, actual)) << "add n=" << n;

    expected = dst0;
    for (std::size_t i = 0; i < n; ++i) expected[i] -= src[i];
    actual = dst0;
    sub_inplace(n, actual.data(), src.data());
    EXPECT_TRUE(same_bits(expected, actual)) << "sub n=" << n;
  }
}

TEST(SimdCores, WeightIncrementMatchesScalarBitwise) {
  // delta = alpha * (local - global): mul after sub, never fused, so the
  // vector lanes must reproduce the scalar rounding exactly.
  for (const std::size_t n : kSizes) {
    const std::vector<float> local = random_floats(n, 0xE0 + static_cast<std::uint32_t>(n));
    const std::vector<float> global = random_floats(n, 0xF0 + static_cast<std::uint32_t>(n));
    const float alpha = 0.0625F;

    std::vector<float> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = alpha * (local[i] - global[i]);

    std::vector<float> actual(n, -1.0F);
    weight_increment_core(n, local.data(), global.data(), alpha, actual.data());
    EXPECT_TRUE(same_bits(expected, actual)) << "n=" << n;
  }
}

TEST(SimdCores, ElasticExchangeMatchesScalarBitwise) {
  for (const std::size_t n : kSizes) {
    const std::vector<float> local0 = random_floats(n, 0x10 + static_cast<std::uint32_t>(n));
    const std::vector<float> global = random_floats(n, 0x20 + static_cast<std::uint32_t>(n));
    const float alpha = 0.271F;

    std::vector<float> expected_local = local0;
    std::vector<float> expected_delta(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float d = alpha * (expected_local[i] - global[i]);
      expected_delta[i] = d;
      expected_local[i] -= d;
    }

    std::vector<float> actual_local = local0;
    std::vector<float> actual_delta(n, -1.0F);
    elastic_exchange_core(n, actual_local.data(), global.data(), alpha,
                          actual_delta.data());
    EXPECT_TRUE(same_bits(expected_local, actual_local)) << "local n=" << n;
    EXPECT_TRUE(same_bits(expected_delta, actual_delta)) << "delta n=" << n;
  }
}

TEST(SimdChecksum, Fnv1aWordsMatchesGoldenValues) {
  // Golden values pin the hash family across builds: the SIMD tree and the
  // forced-scalar tree must both produce exactly these words, so segment
  // checksums written by one build verify in the other.
  EXPECT_EQ(fnv1a_words("", 0), 0xcbf29ce484222325ULL);          // seed through
  EXPECT_EQ(fnv1a_words("shmcaffe", 8), 0xf67107880bbd0322ULL);  // one word
  EXPECT_EQ(fnv1a_words("soft memory box", 15),                  // word + tail
            0xe10bb2779a8e76c3ULL);
}

TEST(SimdChecksum, Fnv1aWordsMatchesReferenceFold) {
  // Independent re-derivation: fold 8-byte little-endian words by shifts
  // (no memcpy), byte-wise tail — must agree for every length.
  const std::vector<float> data = random_floats(257, 0x5EED);
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (const std::size_t len : {0U, 1U, 7U, 8U, 9U, 64U, 1023U}) {
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    std::uint64_t expected = 0xcbf29ce484222325ULL;
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      std::uint64_t word = 0;
      for (int b = 7; b >= 0; --b) word = (word << 8) | bytes[i + static_cast<std::size_t>(b)];
      expected = (expected ^ word) * kPrime;
    }
    for (; i < len; ++i) expected = (expected ^ bytes[i]) * kPrime;
    EXPECT_EQ(fnv1a_words(bytes, len), expected) << "len=" << len;
  }
}

TEST(SimdChecksum, Fnv1aWordsSeedChains) {
  // Chaining two halves through the seed equals hashing the whole buffer —
  // the property the SMB per-chunk incremental refresh relies on.
  const std::vector<float> data = random_floats(64, 0xCAFE);
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t total = data.size() * sizeof(float);
  const std::uint64_t whole = fnv1a_words(bytes, total);
  const std::uint64_t first = fnv1a_words(bytes, 96);
  EXPECT_EQ(fnv1a_words(bytes + 96, total - 96, first), whole);
}

TEST(SimdCores, InPlaceAliasedSpansStayConsistent) {
  // elastic_exchange_core reads `local` and writes both `local` and `delta`;
  // the store order inside a lane must not let the updated local leak into
  // the delta of the same index.  Exercise with delta == a second live
  // buffer while local aliases the input (the trainer's actual shape).
  const std::size_t n = 37;  // odd tail on every tier
  std::vector<float> local = random_floats(n, 0x71);
  const std::vector<float> global = random_floats(n, 0x72);
  const std::vector<float> snapshot = local;
  std::vector<float> delta(n);
  elastic_exchange_core(n, local.data(), global.data(), 0.5F, delta.data());
  for (std::size_t i = 0; i < n; ++i) {
    const float d = 0.5F * (snapshot[i] - global[i]);
    EXPECT_EQ(delta[i], d) << i;
    EXPECT_EQ(local[i], snapshot[i] - d) << i;
  }
}

}  // namespace
}  // namespace shmcaffe::common::simd
