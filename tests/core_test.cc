// Tests for the core module: SEASGD algebra, progress board / termination
// alignment, evaluation, the eq. (8) analytic model, the timed ShmCaffe
// simulator, and the functional distributed trainer end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "coll/pcie_model.h"
#include "common/ordered_mutex.h"
#include "core/analytic.h"
#include "core/config.h"
#include "core/evaluate.h"
#include "core/progress_board.h"
#include "smb/server.h"
#include "core/seasgd_math.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"

namespace shmcaffe::core {
namespace {

// --- SEASGD algebra ---

TEST(SeasgdMath, IncrementMatchesEquationFive) {
  const std::vector<float> local{1.0F, 2.0F, 3.0F};
  const std::vector<float> global{0.0F, 2.0F, 5.0F};
  std::vector<float> delta(3);
  weight_increment(local, global, 0.5F, delta);
  EXPECT_EQ(delta, (std::vector<float>{0.5F, 0.0F, -1.0F}));
}

TEST(SeasgdMath, ApplyMatchesEquationSix) {
  std::vector<float> local{1.0F, 2.0F, 3.0F};
  const std::vector<float> delta{0.5F, 0.0F, -1.0F};
  apply_increment_locally(local, delta);
  EXPECT_EQ(local, (std::vector<float>{0.5F, 2.0F, 4.0F}));
}

TEST(SeasgdMath, FusedEqualsTwoStep) {
  common::Rng rng(1);
  std::vector<float> local(100);
  std::vector<float> global(100);
  for (auto& v : local) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : global) v = static_cast<float>(rng.uniform(-1, 1));

  std::vector<float> local_a = local;
  std::vector<float> delta_a(100);
  weight_increment(local_a, global, 0.2F, delta_a);
  apply_increment_locally(local_a, delta_a);

  std::vector<float> local_b = local;
  std::vector<float> delta_b(100);
  elastic_exchange(local_b, global, 0.2F, delta_b);

  EXPECT_EQ(local_a, local_b);
  EXPECT_EQ(delta_a, delta_b);
}

TEST(SeasgdMath, ExchangeConservesLocalPlusGlobal) {
  // Eq. (6) subtracts what eq. (7) adds: W'' + W'_g == W' + W_g elementwise.
  common::Rng rng(2);
  std::vector<float> local(64);
  std::vector<float> global(64);
  for (auto& v : local) v = static_cast<float>(rng.uniform(-2, 2));
  for (auto& v : global) v = static_cast<float>(rng.uniform(-2, 2));
  const std::vector<float> local_before = local;
  const std::vector<float> global_before = global;

  std::vector<float> delta(64);
  elastic_exchange(local, global, 0.3F, delta);
  for (std::size_t i = 0; i < 64; ++i) global[i] += delta[i];  // server side, eq. (7)

  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(local[i] + global[i], local_before[i] + global_before[i], 1e-5F);
  }
}

TEST(SeasgdMath, ExchangePullsLocalTowardsGlobal) {
  std::vector<float> local{10.0F};
  std::vector<float> global{0.0F};
  std::vector<float> delta(1);
  elastic_exchange(local, global, 0.2F, delta);
  EXPECT_FLOAT_EQ(local[0], 8.0F);   // moved towards the global
  EXPECT_FLOAT_EQ(delta[0], 2.0F);   // and the global will move up by 2
}

// --- ProgressBoard ---

struct BoardRig {
  smb::SmbServer server;
  ProgressBoard board{server, 42, 4, true};
};

TEST(ProgressBoard, ReportAndReductions) {
  BoardRig rig;
  rig.board.report(0, 10);
  rig.board.report(1, 20);
  rig.board.report(2, 30);
  rig.board.report(3, 40);
  EXPECT_EQ(rig.board.iterations_of(2), 30);
  EXPECT_EQ(rig.board.min_iterations(), 10);
  EXPECT_EQ(rig.board.max_iterations(), 40);
  EXPECT_DOUBLE_EQ(rig.board.mean_iterations(), 25.0);
}

TEST(ProgressBoard, SlavesAttachToSameBoard) {
  smb::SmbServer server;
  ProgressBoard master(server, 7, 2, true);
  ProgressBoard slave(server, 7, 2, false);
  master.report(0, 99);
  EXPECT_EQ(slave.iterations_of(0), 99);
  slave.raise_stop();
  EXPECT_TRUE(master.stop_raised());
}

TEST(ProgressBoard, MasterFinishesCriterion) {
  BoardRig rig;
  // A slave reaching the target does not stop anyone.
  EXPECT_FALSE(rig.board.should_stop(TerminationCriterion::kMasterFinishes, 1, 100, 100));
  EXPECT_FALSE(rig.board.stop_raised());
  // The master reaching it stops everyone.
  EXPECT_TRUE(rig.board.should_stop(TerminationCriterion::kMasterFinishes, 0, 100, 100));
  EXPECT_TRUE(rig.board.stop_raised());
  EXPECT_TRUE(rig.board.should_stop(TerminationCriterion::kMasterFinishes, 2, 5, 100));
}

TEST(ProgressBoard, FirstFinisherCriterion) {
  BoardRig rig;
  EXPECT_FALSE(rig.board.should_stop(TerminationCriterion::kFirstFinisher, 2, 99, 100));
  EXPECT_TRUE(rig.board.should_stop(TerminationCriterion::kFirstFinisher, 2, 100, 100));
  // Everyone else now stops regardless of their own count.
  EXPECT_TRUE(rig.board.should_stop(TerminationCriterion::kFirstFinisher, 0, 1, 100));
}

TEST(ProgressBoard, AverageIterationsCriterion) {
  BoardRig rig;
  rig.board.report(0, 100);
  rig.board.report(1, 100);
  rig.board.report(2, 100);
  // Worker 3 reports 60 via should_stop: mean = 90 < 100 -> keep going.
  EXPECT_FALSE(rig.board.should_stop(TerminationCriterion::kAverageIterations, 3, 60, 100));
  // Worker 3 reports 100: mean = 100 -> stop.
  EXPECT_TRUE(rig.board.should_stop(TerminationCriterion::kAverageIterations, 3, 100, 100));
  EXPECT_TRUE(rig.board.stop_raised());
}

// --- evaluate ---

TEST(Evaluate, UntrainedNetIsNearChance) {
  common::Rng rng(3);
  data::SynthDatasetOptions data_options;
  data_options.size = 256;
  data_options.channels = 1;
  data_options.height = 8;
  data_options.width = 8;
  data_options.classes = 4;
  const data::SynthImageDataset dataset(data_options);

  dl::ModelInputSpec spec{1, 8, 8, 4};
  dl::Net net = dl::make_mlp(spec, 16);
  net.init_params(rng);
  const EvalResult result = evaluate(net, dataset);
  EXPECT_EQ(result.samples, 256u);
  EXPECT_NEAR(result.accuracy, 0.25, 0.2);
  EXPECT_NEAR(result.loss, std::log(4.0), 0.8);
}

// --- analytic eq. (8) ---

TEST(Analytic, HiddenCommunicationWhenComputeDominates) {
  AnalyticIteration it;
  it.t_comp = 1000;
  it.t_rgw = 50;
  it.t_ulw = 10;
  it.t_wwi = 100;
  it.t_ugw = 200;  // wwi+ugw = 300 < comp: fully hidden
  EXPECT_EQ(it.iteration(), 1060);
  EXPECT_EQ(it.communication(), 60);  // only rgw + ulw remain visible
}

TEST(Analytic, UnhiddenCommunicationWhenWriteDominates) {
  AnalyticIteration it;
  it.t_comp = 100;
  it.t_rgw = 50;
  it.t_ulw = 10;
  it.t_wwi = 300;
  it.t_ugw = 200;  // wwi+ugw = 500 > comp
  EXPECT_EQ(it.iteration(), 560);
  EXPECT_EQ(it.communication(), 460);
}

TEST(Analytic, SeasgdTermsFromProfiles) {
  const auto& model = cluster::profile(cluster::ModelKind::kInceptionV1);
  const cluster::TestbedSpec spec;
  const AnalyticIteration it = analytic_seasgd_iteration(model, spec);
  EXPECT_EQ(it.t_comp, model.comp_time);
  EXPECT_GT(it.t_rgw, 0);
  EXPECT_EQ(it.t_rgw, it.t_wwi);
  // Inception-v1's exchange hides behind its compute.
  EXPECT_LT(it.t_wwi + it.t_ugw, it.t_comp);
}

// --- timed ShmCaffe simulator ---

TEST(SimShmCaffe, SingleWorkerHasNoExchange) {
  SimShmCaffeOptions options;
  options.workers = 1;
  options.iterations = 50;
  options.jitter.slow_probability = 0.0;
  const cluster::PlatformTiming timing = simulate_shmcaffe(options);
  EXPECT_EQ(timing.mean_comm, 0);
  EXPECT_NEAR(static_cast<double>(timing.mean_comp),
              static_cast<double>(cluster::profile(options.model).comp_time),
              static_cast<double>(cluster::profile(options.model).comp_time) * 0.16);
}

TEST(SimShmCaffe, SingleGroupHybridSkipsSmb) {
  // 4(S4, A0): plain intra-node SSGD; comm is straggler wait + PCIe only.
  SimShmCaffeOptions options;
  options.workers = 4;
  options.group_size = 4;
  options.iterations = 50;
  options.jitter.slow_probability = 0.0;
  const cluster::PlatformTiming timing = simulate_shmcaffe(options);
  const coll::PcieModel pcie{options.testbed.pcie_bus_bandwidth, 20 * units::kMicrosecond};
  const SimTime expected_comm = pcie.ring_allreduce_time(
      4, cluster::profile(options.model).param_bytes);
  EXPECT_NEAR(static_cast<double>(timing.mean_comm), static_cast<double>(expected_comm),
              static_cast<double>(expected_comm) * 0.1 + 1e5);
}

TEST(SimShmCaffe, CommunicationGrowsWithWorkersForLargeModels) {
  auto comm_at = [](int workers) {
    SimShmCaffeOptions options;
    options.model = cluster::ModelKind::kInceptionResnetV2;
    options.workers = workers;
    options.iterations = 60;
    return simulate_shmcaffe(options).mean_comm;
  };
  const SimTime c2 = comm_at(2);
  const SimTime c8 = comm_at(8);
  const SimTime c16 = comm_at(16);
  EXPECT_LT(c2, c8);
  EXPECT_LT(c8, c16);
  // The paper: the large model's communication "increases rapidly" at 16.
  EXPECT_GT(c16, 2 * c8);
}

TEST(SimShmCaffe, HybridBeatsAsyncAtScaleForLargeModels) {
  SimShmCaffeOptions async_options;
  async_options.model = cluster::ModelKind::kInceptionResnetV2;
  async_options.workers = 16;
  async_options.iterations = 60;
  SimShmCaffeOptions hybrid_options = async_options;
  hybrid_options.group_size = 4;
  const auto async_timing = simulate_shmcaffe(async_options);
  const auto hybrid_timing = simulate_shmcaffe(hybrid_options);
  EXPECT_LT(hybrid_timing.mean_comm, async_timing.mean_comm / 2);
  EXPECT_LT(hybrid_timing.mean_iteration(), async_timing.mean_iteration());
}

TEST(SimShmCaffe, UpdateIntervalReducesCommunication) {
  SimShmCaffeOptions options;
  options.model = cluster::ModelKind::kResNet50;
  options.workers = 16;
  options.iterations = 80;
  const auto every = simulate_shmcaffe(options);
  options.update_interval = 4;
  const auto sparse = simulate_shmcaffe(options);
  EXPECT_LT(sparse.mean_comm, every.mean_comm);
}

TEST(SimShmCaffe, VggIsCommunicationBoundEvenAtTwoWorkers) {
  SimShmCaffeOptions options;
  options.model = cluster::ModelKind::kVgg16;
  options.workers = 2;
  options.iterations = 60;
  const auto timing = simulate_shmcaffe(options);
  // Paper: one-iteration communication 727.7 ms vs computation 194.9 ms —
  // scaling VGG16 out is counterproductive.
  EXPECT_GT(timing.comm_ratio(), 0.5);
  EXPECT_GT(timing.mean_comm, 2 * timing.mean_comp);
}

TEST(SimShmCaffe, DeterministicForSameSeed) {
  SimShmCaffeOptions options;
  options.workers = 8;
  options.iterations = 40;
  const auto a = simulate_shmcaffe(options);
  const auto b = simulate_shmcaffe(options);
  EXPECT_EQ(a.mean_comp, b.mean_comp);
  EXPECT_EQ(a.mean_comm, b.mean_comm);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SimShmCaffe, MatchesAnalyticModelWithoutContention) {
  // One worker + forced exchange-with-self is not meaningful; instead use
  // two workers of a compute-bound model and no jitter: per eq. (8) the
  // iteration is t_rgw + t_ulw + comp (exchange hidden).
  SimShmCaffeOptions options;
  options.model = cluster::ModelKind::kInceptionV1;
  options.workers = 2;
  options.iterations = 50;
  options.jitter.slow_probability = 0.0;
  const auto timing = simulate_shmcaffe(options);

  cluster::TestbedSpec spec;
  const auto& model = cluster::profile(options.model);
  AnalyticIteration analytic = analytic_seasgd_iteration(model, spec);
  // The per-client stream rate is the binding constraint in the simulator.
  const double wire = spec.smb_client_stream_bandwidth * spec.fabric_efficiency;
  analytic.t_rgw = units::transfer_time(model.param_bytes, wire);
  analytic.t_wwi = analytic.t_rgw;

  EXPECT_NEAR(static_cast<double>(timing.mean_iteration()),
              static_cast<double>(analytic.iteration()),
              static_cast<double>(analytic.iteration()) * 0.05);
}

TEST(TrainShmCaffe, RejectsInvalidOptions) {
  DistTrainOptions options;
  options.workers = 4;
  options.group_size = 3;  // does not divide 4
  EXPECT_THROW(train_shmcaffe(options), std::invalid_argument);
  options.group_size = 1;
  options.update_interval = 0;
  EXPECT_THROW(train_shmcaffe(options), std::invalid_argument);
}

// --- functional trainer end-to-end ---

DistTrainOptions small_train_options(int workers, int group_size) {
  DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = workers;
  options.group_size = group_size;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 5;
  return options;
}

TEST(TrainShmCaffe, SingleWorkerLearns) {
  const TrainResult result = train_shmcaffe(small_train_options(1, 1));
  EXPECT_GT(result.final_accuracy, 0.85);
  EXPECT_LT(result.final_loss, 0.7);
  EXPECT_EQ(result.curve.size(), 5u);
  EXPECT_EQ(result.curve.back().epoch, 5);
}

TEST(TrainShmCaffe, AsyncWorkersLearn) {
  const TrainResult result = train_shmcaffe(small_train_options(4, 1));
  EXPECT_GT(result.final_accuracy, 0.8);
  ASSERT_EQ(result.iterations_per_worker.size(), 4u);
  for (std::int64_t iters : result.iterations_per_worker) EXPECT_GT(iters, 0);
}

TEST(TrainShmCaffe, HybridWorkersLearn) {
  const TrainResult result = train_shmcaffe(small_train_options(4, 2));
  EXPECT_GT(result.final_accuracy, 0.8);
}

TEST(TrainShmCaffe, FullySynchronousSingleGroupLearns) {
  const TrainResult result = train_shmcaffe(small_train_options(4, 4));
  EXPECT_GT(result.final_accuracy, 0.8);
}

TEST(TrainShmCaffe, UpdateIntervalTwoStillConverges) {
  DistTrainOptions options = small_train_options(4, 1);
  options.update_interval = 2;
  const TrainResult result = train_shmcaffe(options);
  EXPECT_GT(result.final_accuracy, 0.75);
}

TEST(TrainShmCaffe, AccuracyImprovesAlongCurve) {
  const TrainResult result = train_shmcaffe(small_train_options(2, 1));
  ASSERT_GE(result.curve.size(), 2u);
  EXPECT_GT(result.curve.back().test_accuracy, result.curve.front().test_accuracy - 0.05);
  EXPECT_GT(result.final_accuracy, 0.8);
}

class TerminationModes : public ::testing::TestWithParam<TerminationCriterion> {};

TEST_P(TerminationModes, AllWorkersFinishAndModelLearns) {
  DistTrainOptions options = small_train_options(4, 1);
  options.termination = GetParam();
  const TrainResult result = train_shmcaffe(options);
  // Every worker terminated (the trainer returned), iteration counts are
  // positive, and nobody ran off to infinity.
  for (std::int64_t iters : result.iterations_per_worker) {
    EXPECT_GT(iters, 0);
    EXPECT_LT(iters, 10'000);
  }
  EXPECT_GT(result.final_accuracy, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Criteria, TerminationModes,
    ::testing::Values(TerminationCriterion::kMasterFinishes,
                      TerminationCriterion::kFirstFinisher,
                      TerminationCriterion::kAverageIterations),
    [](const ::testing::TestParamInfo<TerminationCriterion>& info) {
      switch (info.param) {
        case TerminationCriterion::kMasterFinishes: return "master";
        case TerminationCriterion::kFirstFinisher: return "first";
        case TerminationCriterion::kAverageIterations: return "average";
      }
      return "unknown";
    });

}  // namespace
}  // namespace shmcaffe::core

namespace shmcaffe::core {
namespace {

TEST(TrainShmCaffe, WorkerStatsAreCoherent) {
  DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 4;
  options.group_size = 2;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 3;
  const TrainResult result = train_shmcaffe(options);
  ASSERT_EQ(result.worker_stats.size(), 4u);
  for (int w = 0; w < 4; ++w) {
    const WorkerStats& stats = result.worker_stats[static_cast<std::size_t>(w)];
    EXPECT_GT(stats.iterations, 0) << w;
    EXPECT_GT(stats.train_seconds, 0.0) << w;
    // Only group roots exchange with the SMB; members broadcast instead.
    if (w % 2 == 0) {
      EXPECT_GT(stats.exchanges, 0) << w;
      EXPECT_GT(stats.exchange_seconds, 0.0) << w;
    } else {
      EXPECT_EQ(stats.exchanges, 0) << w;
    }
    EXPECT_GT(stats.collective_seconds, 0.0) << w;
    // Accounted time cannot exceed the whole run.
    EXPECT_LE(stats.train_seconds + stats.exchange_seconds + stats.collective_seconds +
                  stats.data_wait_seconds,
              result.wall_seconds * 1.05)
        << w;
  }
}

TEST(TrainShmCaffe, AsyncWorkersAllExchange) {
  DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 3;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 2;
  options.update_interval = 2;
  const TrainResult result = train_shmcaffe(options);
  for (const WorkerStats& stats : result.worker_stats) {
    EXPECT_GT(stats.exchanges, 0);
    // update_interval 2: roughly half the iterations exchange.
    EXPECT_LE(stats.exchanges, stats.iterations / 2 + 1);
  }
}


// Lock-order guard: the suite above drives the instrumented mutexes hard
// (trainer workers, progress board, SMB); any rank inversion or acquisition-graph cycle they produced
// is a latent deadlock.  Runs last in this binary by declaration order.
TEST(LockOrder, CleanUnderTrainerConcurrency) {
  EXPECT_TRUE(shmcaffe::common::LockOrderRegistry::instance().violations().empty())
      << shmcaffe::common::LockOrderRegistry::instance().violations().size()
      << " lock-order violation(s); see stderr for details";
}

}  // namespace
}  // namespace shmcaffe::core
