// Tests for the NCCL-like device-group collectives and the PCIe cost model.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "coll/nccl.h"
#include "coll/pcie_model.h"
#include "common/units.h"

namespace shmcaffe::coll {
namespace {

template <typename Body>
void run_group(int devices, Body body) {
  DeviceGroup group(devices);
  std::vector<std::thread> threads;
  for (int d = 0; d < devices; ++d) {
    threads.emplace_back([&group, d, &body] { body(group.communicator(d)); });
  }
  for (auto& t : threads) t.join();
}

TEST(DeviceGroup, AllReduceSumAcrossDevices) {
  for (int k : {1, 2, 4}) {
    run_group(k, [k](Communicator comm) {
      std::vector<float> grad(10, static_cast<float>(comm.device() + 1));
      comm.all_reduce_sum(grad);
      const float expected = static_cast<float>(k * (k + 1)) / 2.0F;
      for (float v : grad) EXPECT_FLOAT_EQ(v, expected);
    });
  }
}

TEST(DeviceGroup, AllReduceMeanAveragesGradients) {
  run_group(4, [](Communicator comm) {
    std::vector<float> grad(5, static_cast<float>(comm.device()));  // 0,1,2,3
    comm.all_reduce_mean(grad);
    for (float v : grad) EXPECT_FLOAT_EQ(v, 1.5F);
  });
}

TEST(DeviceGroup, BroadcastFromRoot) {
  run_group(3, [](Communicator comm) {
    std::vector<float> weights(4, comm.device() == 0 ? 7.0F : 0.0F);
    comm.broadcast(0, weights);
    for (float v : weights) EXPECT_FLOAT_EQ(v, 7.0F);
  });
}

TEST(DeviceGroup, ReduceSumToRoot) {
  run_group(4, [](Communicator comm) {
    std::vector<float> grad(2, 1.0F);
    comm.reduce_sum(0, grad);
    if (comm.device() == 0) {
      for (float v : grad) EXPECT_FLOAT_EQ(v, 4.0F);
    }
  });
}

TEST(DeviceGroup, RepeatedIterationsStayConsistent) {
  // The hybrid trainer calls allreduce + broadcast every iteration.
  run_group(4, [](Communicator comm) {
    for (int iter = 0; iter < 30; ++iter) {
      std::vector<float> grad(16, 1.0F);
      comm.all_reduce_mean(grad);
      for (float v : grad) ASSERT_FLOAT_EQ(v, 1.0F);
      std::vector<float> w(16, comm.device() == 0 ? static_cast<float>(iter) : -1.0F);
      comm.broadcast(0, w);
      for (float v : w) ASSERT_FLOAT_EQ(v, static_cast<float>(iter));
    }
  });
}

TEST(PcieModel, SingleDeviceOrEmptyBufferIsFree) {
  const PcieModel model;
  EXPECT_EQ(model.ring_allreduce_time(1, 1 << 20), 0);
  EXPECT_EQ(model.ring_allreduce_time(4, 0), 0);
  EXPECT_EQ(model.broadcast_time(1, 1 << 20), 0);
}

TEST(PcieModel, AllreduceApproachesTwoBusTransfersAsKGrows) {
  PcieModel model;
  model.bus_bandwidth = 10e9;
  model.hop_latency = 0;
  const std::int64_t bytes = 100'000'000;  // 10 ms at bus rate
  const SimTime t2 = model.ring_allreduce_time(2, bytes);
  const SimTime t8 = model.ring_allreduce_time(8, bytes);
  EXPECT_NEAR(static_cast<double>(t2), 10.0 * units::kMillisecond, 1e4);   // 2*(1/2)
  EXPECT_NEAR(static_cast<double>(t8), 17.5 * units::kMillisecond, 1e4);   // 2*(7/8)
  EXPECT_LT(t2, t8);
}

TEST(PcieModel, HopLatencyScalesWithSteps) {
  PcieModel model;
  model.bus_bandwidth = 10e9;
  model.hop_latency = 10 * units::kMicrosecond;
  const SimTime with_data = model.ring_allreduce_time(4, 1);
  // 2*(4-1) hops of 10 us dominate a 1-byte payload.
  EXPECT_GE(with_data, 60 * units::kMicrosecond);
  EXPECT_LT(with_data, 61 * units::kMicrosecond);
}

TEST(PcieModel, BroadcastIsHalfOfAllreduceData) {
  PcieModel model;
  model.hop_latency = 0;
  const std::int64_t bytes = 80'000'000;
  EXPECT_NEAR(static_cast<double>(model.broadcast_time(4, bytes)) * 2.0,
              static_cast<double>(model.ring_allreduce_time(4, bytes)), 1e4);
}

}  // namespace
}  // namespace shmcaffe::coll
