// Tests for the end-to-end SMB data-integrity layer: per-chunk checksums and
// verify-on-read detection, torn-write application, replica read-repair and
// scrubbing, the shared integrity schedule + fingerprint, SmbClient tagged
// retransmission (idempotent replay), checkpoint-slot corruption fallback,
// and the acceptance runs — a seeded corruption plan through a replicated
// trainer detects, repairs and converges to the fault-free result, with the
// functional and simulated stacks emitting identical integrity fingerprints.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/sim_shmcaffe.h"
#include "core/trainer.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "recovery/checkpoint.h"
#include "recovery/integrity.h"
#include "recovery/replicated_smb.h"
#include "smb/client.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using recovery::IntegrityAction;
using recovery::IntegrityEvent;
using recovery::IntegrityOutcome;
using recovery::IntegrityPolicy;
using recovery::ReplicatedSmb;

/// Small chunks so a few-float segment spans several of them.
smb::SmbServerOptions verified_options(std::size_t chunk_floats = 4) {
  smb::SmbServerOptions options;
  options.integrity.checksum_chunks = true;
  options.integrity.verify_on_read = true;
  options.integrity.chunk_floats = chunk_floats;
  return options;
}

// --- chunk checksums: detection ------------------------------------------

TEST(ChunkChecksums, CleanMutationsKeepChecksumsValid) {
  smb::SmbServer server(verified_options());
  const smb::Handle g = server.create_floats(1, 10);
  const smb::Handle d = server.create_floats(2, 10);
  server.write(g, std::vector<float>(10, 1.0f));
  server.write(d, std::vector<float>(10, 0.5f));
  server.accumulate(d, g);
  std::vector<float> seen(10);
  server.read(g, seen);  // verifies: no throw
  EXPECT_EQ(seen, std::vector<float>(10, 1.5f));
  EXPECT_TRUE(server.verify_segment(g).empty());
  EXPECT_GT(server.stats().chunks_verified, 0u);
  EXPECT_EQ(server.stats().corruptions_detected, 0u);
  server.release(g);
  server.release(d);
}

TEST(ChunkChecksums, ReadOfPoisonedChunkThrowsAndRecordsMarker) {
  smb::SmbServer server(verified_options());
  const smb::Handle g = server.create_floats(7, 10);
  server.write(g, std::vector<float>(10, 2.0f));
  ASSERT_GT(server.corrupt_floats(7, /*marker=*/0x51, /*bit_flips=*/3), 0u);
  std::vector<float> seen(10);
  EXPECT_THROW(server.read(g, seen), smb::SmbCorruption);
  EXPECT_GT(server.stats().corruptions_detected, 0u);
  EXPECT_EQ(server.detected_markers(), std::vector<std::uint64_t>{0x51});
  server.release(g);
}

TEST(ChunkChecksums, AccumulateVerifiesTheDestinationFirst) {
  // Accumulating into a corrupt destination must throw, not recompute the
  // checksum over poisoned data (which would launder the corruption).
  smb::SmbServer server(verified_options());
  const smb::Handle src = server.create_floats(1, 8);
  const smb::Handle dst = server.create_floats(2, 8);
  server.write(src, std::vector<float>(8, 1.0f));
  server.write(dst, std::vector<float>(8, 1.0f));
  ASSERT_GT(server.corrupt_floats(2, /*marker=*/0x99, /*bit_flips=*/2), 0u);
  EXPECT_THROW(server.accumulate(src, dst), smb::SmbCorruption);
  EXPECT_EQ(server.detected_markers(), std::vector<std::uint64_t>{0x99});
  server.release(src);
  server.release(dst);
}

TEST(ChunkChecksums, ChecksumsOffMeansCorruptionIsSilent) {
  smb::SmbServer server;  // the pre-integrity default: no checksums
  const smb::Handle g = server.create_floats(3, 8);
  server.write(g, std::vector<float>(8, 1.0f));
  EXPECT_GT(server.corrupt_floats(3, 0x42, 1), 0u);
  std::vector<float> seen(8);
  server.read(g, seen);  // no verification, no throw
  EXPECT_TRUE(server.detected_markers().empty());
  EXPECT_EQ(server.stats().chunks_verified, 0u);
  server.release(g);
}

TEST(ChunkChecksums, DeterministicInjectionFlipsTheSameBits) {
  // The marker doubles as the bit-position seed: two servers corrupted with
  // the same marker end up with bit-identical poisoned contents.
  std::vector<float> a_seen(16);
  std::vector<float> b_seen(16);
  for (std::vector<float>* out : {&a_seen, &b_seen}) {
    smb::SmbServer server(verified_options());
    const smb::Handle g = server.create_floats(5, 16);
    server.write(g, std::vector<float>(16, 3.0f));
    server.corrupt_floats(5, 0xabc, 4);
    server.read_raw(g, *out);
    server.release(g);
  }
  EXPECT_EQ(a_seen, b_seen);
  EXPECT_NE(a_seen, std::vector<float>(16, 3.0f));
}

// --- torn writes ----------------------------------------------------------

TEST(TornWrite, ArmedOrdinalAppliesPartiallyAndPoisonsTheTail) {
  smb::SmbServer server(verified_options(/*chunk_floats=*/4));
  const smb::Handle g = server.create_floats(9, 8);
  server.write(g, std::vector<float>(8, 1.0f));  // ordinal 1: full
  server.arm_torn_write(/*ordinal=*/2, /*fraction=*/0.5);
  server.write(g, std::vector<float>(8, 2.0f));  // ordinal 2: torn

  // The leading half landed, the tail kept the old data, and the checksums
  // recorded the *intended* write — the tail chunk no longer verifies.
  std::vector<float> seen(8);
  server.read_raw(g, seen);
  std::vector<float> expected(8, 2.0f);
  std::fill(expected.begin() + 4, expected.end(), 1.0f);
  EXPECT_EQ(seen, expected);

  const std::uint64_t marker = smb::SmbServer::kTornWriteMarkerBit | 2;
  const std::vector<smb::SmbServer::CorruptChunk> bad = server.verify_segment(g);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].chunk, 1u);
  EXPECT_EQ(bad[0].marker, marker);
  EXPECT_EQ(server.stats().torn_writes_applied, 1u);
  EXPECT_EQ(server.torn_applied_markers(), std::vector<std::uint64_t>{marker});
  EXPECT_THROW(server.read(g, seen), smb::SmbCorruption);
  server.release(g);
}

TEST(TornWrite, UnreachedOrdinalNeverFires) {
  smb::SmbServer server(verified_options());
  const smb::Handle g = server.create_floats(4, 4);
  server.arm_torn_write(/*ordinal=*/50, 0.5);
  server.write(g, std::vector<float>(4, 1.0f));
  std::vector<float> seen(4);
  server.read(g, seen);  // clean
  EXPECT_EQ(server.stats().torn_writes_applied, 0u);
  EXPECT_TRUE(server.torn_applied_markers().empty());
  server.release(g);
}

// --- SmbClient tagged retransmission (satellite: idempotent retry) --------

TEST(SmbClientRetry, ResentAccumulateIsDroppedNotReapplied) {
  smb::SmbServer server;
  smb::SmbClient client(server);
  const smb::Handle src = client.create_floats(1, 2);
  const smb::Handle dst = client.create_floats(2, 2);
  client.write(src, std::vector<float>{1, 1});
  client.write(dst, std::vector<float>{0, 0});

  client.accumulate(src, dst);
  // The ambiguous-timeout retransmit: the op landed, so the replay under the
  // original tag must be dropped, not applied a second time.
  EXPECT_TRUE(client.resend_last_mutation());
  EXPECT_TRUE(client.resend_last_mutation());  // and again
  std::vector<float> seen(2);
  client.read(dst, seen);
  EXPECT_EQ(seen, (std::vector<float>{1, 1}));
  EXPECT_EQ(server.stats().replays_dropped, 2u);
  client.release(src);
  client.release(dst);
}

TEST(SmbClientRetry, ResentWriteIsDroppedAndTagsNeverRepeat) {
  smb::SmbServer server;
  smb::SmbClient client(server);
  const smb::Handle g = client.create_floats(5, 2);
  client.write(g, std::vector<float>{1, 2});
  const smb::OpTag first = client.last_mutation_tag();
  EXPECT_TRUE(first.tagged());
  EXPECT_TRUE(client.resend_last_mutation());
  EXPECT_EQ(server.stats().replays_dropped, 1u);

  client.write(g, std::vector<float>{3, 4});
  const smb::OpTag second = client.last_mutation_tag();
  EXPECT_EQ(second.writer, first.writer);
  EXPECT_NE(second.sequence, first.sequence);
  std::vector<float> seen(2);
  client.read(g, seen);
  EXPECT_EQ(seen, (std::vector<float>{3, 4}));
  client.release(g);
}

TEST(SmbClientRetry, NothingToResendReturnsFalse) {
  smb::SmbServer server;
  smb::SmbClient client(server);
  EXPECT_FALSE(client.resend_last_mutation());
}

TEST(SmbClientRetry, DistinctClientsGetDistinctWriterIds) {
  smb::SmbServer server;
  smb::SmbClient a(server);
  smb::SmbClient b(server);
  EXPECT_NE(a.writer_id(), b.writer_id());
  EXPECT_NE(a.writer_id(), 1u);  // 1 is reserved for the mirror agent
  EXPECT_NE(b.writer_id(), 1u);
}

// --- replica read-repair --------------------------------------------------

struct Ensemble {
  smb::SmbServer a{verified_options()};
  smb::SmbServer b{verified_options()};
  ReplicatedSmb replicated;
  explicit Ensemble(bool read_repair = true) : replicated({&a, &b}, read_repair) {}
};

TEST(ReadRepair, PoisonedActiveReplicaIsHealedFromThePeer) {
  Ensemble e;
  const smb::Handle g = e.replicated.create_floats(11, 8);
  e.replicated.write(g, std::vector<float>(8, 4.0f));
  ASSERT_GT(e.replicated.inject_corruption(11, /*marker=*/0x77, /*bit_flips=*/3), 0u);

  // The read detects the mismatch, votes among the replicas (the backup is
  // clean), rewrites the active copy, and serves the repaired data.
  std::vector<float> seen(8);
  e.replicated.read(g, seen);
  EXPECT_EQ(seen, std::vector<float>(8, 4.0f));
  EXPECT_EQ(e.replicated.repairs(), 1u);
  EXPECT_EQ(e.replicated.repaired_markers(), std::vector<std::uint64_t>{0x77});
  EXPECT_EQ(e.replicated.detected_markers(), std::vector<std::uint64_t>{0x77});
  EXPECT_EQ(e.replicated.corruptions_detected(), 1u);

  // Both physical copies verify clean afterwards.
  for (smb::SmbServer* replica : {&e.a, &e.b}) {
    const smb::Handle ph = replica->attach_floats(11);
    EXPECT_TRUE(replica->verify_segment(ph).empty());
    replica->release(ph);
  }
  e.replicated.release(g);
}

TEST(ReadRepair, MutationFanOutRepairsTheCorruptCopyAndStaysExactlyOnce) {
  Ensemble e;
  const smb::Handle src = e.replicated.create_floats(1, 4);
  const smb::Handle dst = e.replicated.create_floats(2, 4);
  e.replicated.write(src, std::vector<float>(4, 1.0f));
  e.replicated.write(dst, std::vector<float>(4, 10.0f));
  // Poison the *backup's* destination copy: the fan-out hits it during the
  // pre-accumulate verification, repairs it from the clean active copy, and
  // the retried op still applies exactly once on every replica.
  ASSERT_GT(e.b.corrupt_floats(2, 0x31, 2), 0u);
  e.replicated.accumulate(src, dst);

  for (smb::SmbServer* replica : {&e.a, &e.b}) {
    const smb::Handle ph = replica->attach_floats(2);
    std::vector<float> seen(4);
    replica->read(ph, seen);
    EXPECT_EQ(seen, std::vector<float>(4, 11.0f));
    replica->release(ph);
  }
  EXPECT_EQ(e.replicated.repairs(), 1u);
  EXPECT_EQ(e.replicated.repaired_markers(), std::vector<std::uint64_t>{0x31});
}

TEST(ReadRepair, DisabledRepairSurfacesTheCorruption) {
  Ensemble e(/*read_repair=*/false);
  const smb::Handle g = e.replicated.create_floats(13, 4);
  e.replicated.write(g, std::vector<float>(4, 1.0f));
  ASSERT_GT(e.replicated.inject_corruption(13, 0x5a, 2), 0u);
  std::vector<float> seen(4);
  EXPECT_THROW(e.replicated.read(g, seen), smb::SmbCorruption);
  EXPECT_EQ(e.replicated.repairs(), 0u);
  EXPECT_TRUE(e.replicated.repaired_markers().empty());
}

TEST(ReadRepair, NoCleanPeerIsUnrepairable) {
  Ensemble e;
  const smb::Handle g = e.replicated.create_floats(17, 4);
  e.replicated.write(g, std::vector<float>(4, 1.0f));
  ASSERT_GT(e.a.corrupt_floats(17, 0x21, 2), 0u);
  ASSERT_GT(e.b.corrupt_floats(17, 0x22, 2), 0u);
  std::vector<float> seen(4);
  EXPECT_THROW(e.replicated.read(g, seen), smb::SmbCorruption);
  EXPECT_EQ(e.replicated.repairs(), 0u);
}

TEST(Scrub, WalksEverySegmentAndRepairsSilentCorruption) {
  Ensemble e;
  const smb::Handle g = e.replicated.create_floats(23, 8);
  const smb::Handle d = e.replicated.create_floats(24, 8);
  e.replicated.write(g, std::vector<float>(8, 1.0f));
  e.replicated.write(d, std::vector<float>(8, 2.0f));
  // Silent rot on the *backup*: nothing reads the backup's copy, so only a
  // scrub can find it before the next failover would adopt the bad bits.
  ASSERT_GT(e.b.corrupt_floats(24, 0x61, 2), 0u);

  EXPECT_EQ(e.replicated.scrub(), 1u);  // one segment repaired
  EXPECT_EQ(e.replicated.scrub_passes(), 1u);
  EXPECT_EQ(e.replicated.repaired_markers(), std::vector<std::uint64_t>{0x61});
  const smb::Handle ph = e.b.attach_floats(24);
  EXPECT_TRUE(e.b.verify_segment(ph).empty());
  std::vector<float> seen(8);
  e.b.read(ph, seen);
  EXPECT_EQ(seen, std::vector<float>(8, 2.0f));
  e.b.release(ph);

  EXPECT_EQ(e.replicated.scrub(), 0u);  // second pass finds nothing
  EXPECT_EQ(e.replicated.scrub_passes(), 2u);
}

// --- integrity schedule + fingerprint -------------------------------------

TEST(IntegritySchedule, ActionNamesAreExhaustiveAndDistinct) {
  std::vector<std::string> names;
  for (const IntegrityAction action :
       {IntegrityAction::kCorruptionInjected, IntegrityAction::kCorruptionDetected,
        IntegrityAction::kCorruptionRepaired, IntegrityAction::kTornWriteApplied}) {
    names.emplace_back(recovery::to_string(action));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

FaultPlan corruption_plan() {
  FaultPlan plan;
  FaultEvent corrupt;
  corrupt.kind = FaultKind::kSegmentCorruption;
  corrupt.target = 0;
  corrupt.start_seconds = 0.05;
  corrupt.severity = 3;
  corrupt.sequence = 0x5eed;
  plan.add(corrupt);
  FaultEvent torn;
  torn.kind = FaultKind::kTornWrite;
  torn.target = 1;
  torn.sequence = 4;  // write ordinal
  torn.severity = 0.5;
  plan.add(torn);
  return plan;
}

TEST(IntegritySchedule, PolicyGatesDetectionAndRepair) {
  IntegrityPolicy off;  // defaults: no verification
  EXPECT_EQ(recovery::integrity_schedule(corruption_plan(), off).size(), 2u);

  IntegrityPolicy verify;
  verify.checksum_chunks = true;
  verify.verify_on_read = true;
  verify.read_repair = false;
  const auto detected = recovery::integrity_schedule(corruption_plan(), verify);
  ASSERT_EQ(detected.size(), 4u);
  EXPECT_EQ(detected[0].action, IntegrityAction::kCorruptionInjected);
  EXPECT_EQ(detected[1].action, IntegrityAction::kCorruptionDetected);
  EXPECT_EQ(detected[2].action, IntegrityAction::kTornWriteApplied);
  EXPECT_EQ(detected[3].action, IntegrityAction::kCorruptionDetected);
  EXPECT_EQ(detected[3].marker, smb::SmbServer::kTornWriteMarkerBit | 4);

  verify.read_repair = true;
  const auto repaired = recovery::integrity_schedule(corruption_plan(), verify);
  EXPECT_EQ(repaired.size(), 6u);
  // Same plan, same policy — bit-identical schedule and fingerprint.
  const auto again = recovery::integrity_schedule(corruption_plan(), verify);
  EXPECT_EQ(repaired, again);
  EXPECT_EQ(recovery::integrity_fingerprint(repaired),
            recovery::integrity_fingerprint(again));
  EXPECT_NE(recovery::integrity_fingerprint(repaired),
            recovery::integrity_fingerprint(detected));
}

TEST(IntegritySchedule, ExecutedFilterKeepsOnlyObservedMarkers) {
  IntegrityPolicy policy;
  policy.checksum_chunks = true;
  policy.verify_on_read = true;
  const auto planned = recovery::integrity_schedule(corruption_plan(), policy);
  IntegrityOutcome outcome;
  outcome.injected = {0x5eed};
  outcome.detected = {0x5eed};
  // The torn write never reached its ordinal and the repair never ran.
  const auto executed = recovery::executed_integrity(planned, outcome);
  ASSERT_EQ(executed.size(), 2u);
  EXPECT_EQ(executed[0].action, IntegrityAction::kCorruptionInjected);
  EXPECT_EQ(executed[1].action, IntegrityAction::kCorruptionDetected);

  IntegrityOutcome nothing;
  EXPECT_TRUE(recovery::executed_integrity(planned, nothing).empty());
  const std::vector<IntegrityEvent> none;
  EXPECT_EQ(recovery::integrity_fingerprint(recovery::executed_integrity(planned, nothing)),
            recovery::integrity_fingerprint(none));
}

TEST(IntegritySchedule, DescribeMentionsEveryEvent) {
  IntegrityPolicy policy;
  policy.checksum_chunks = true;
  policy.verify_on_read = true;
  const auto planned = recovery::integrity_schedule(corruption_plan(), policy);
  const std::string text = recovery::describe(planned);
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            planned.size());
}

// --- checkpoint-slot corruption fallback (satellite) ----------------------

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "shmcaffe_integrity_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::DistTrainOptions small_train_options() {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = 1;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1024;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 3;
  options.heartbeat_timeout_seconds = 0.5;
  return options;
}

core::DistTrainOptions checkpointed_options(const std::string& directory) {
  core::DistTrainOptions options = small_train_options();
  options.checkpoint.directory = directory;
  options.checkpoint.interval_iterations = 20;
  return options;
}

/// Flips a byte in the slot file currently holding checkpoint `sequence`.
void rot_slot_holding(const recovery::CheckpointStore& store, std::uint64_t sequence) {
  for (int slot = 0; slot < 2; ++slot) {
    const std::string& path = store.slot_path(slot);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) continue;
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> data(size);
    in.read(data.data(), static_cast<std::streamsize>(size));
    const std::optional<recovery::TrainCheckpoint> decoded = recovery::decode_checkpoint(
        std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()), size));
    if (!decoded.has_value() || decoded->sequence != sequence) continue;
    data[size / 2] = static_cast<char>(data[size / 2] ^ 0x08);  // silent bit rot
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(size));
    return;
  }
  FAIL() << "no slot holds sequence " << sequence;
}

TEST(CheckpointCorruption, RottenNewestSlotFallsBackToOlderSlotBitExactly) {
  // Reference: an uninterrupted single-worker run (fully deterministic).
  const core::TrainResult uninterrupted =
      core::train_shmcaffe(checkpointed_options(fresh_dir("reference")));

  // The same run killed at iteration 50 leaves checkpoints 1 (it 20) and
  // 2 (it 40) on disk; then the newest slot rots on disk.
  const std::string dir = fresh_dir("rotten");
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kWorkerCrash;
  crash.target = 0;
  crash.iteration = 50;
  plan.add(crash);
  const FaultInjector injector(plan);
  core::DistTrainOptions interrupted = checkpointed_options(dir);
  interrupted.faults = &injector;
  const core::TrainResult killed = core::train_shmcaffe(interrupted);
  ASSERT_GE(killed.checkpoints_taken, 2);
  rot_slot_holding(recovery::CheckpointStore(dir), 2);

  // The resume must reject the rotten slot (its checksum no longer
  // validates), adopt the older one, and still reproduce the uninterrupted
  // run exactly — the older checkpoint is just an earlier point on the same
  // deterministic trajectory.
  core::DistTrainOptions resume = checkpointed_options(dir);
  resume.checkpoint.resume = true;
  const core::TrainResult resumed = core::train_shmcaffe(resume);
  EXPECT_EQ(resumed.resumed_iterations, 20);
  EXPECT_EQ(resumed.worker_outcomes[0], core::WorkerOutcome::kFinished);
  EXPECT_EQ(resumed.final_accuracy, uninterrupted.final_accuracy);
  EXPECT_EQ(resumed.final_loss, uninterrupted.final_loss);
}

// --- end-to-end: detect, repair, converge ---------------------------------

IntegrityPolicy full_integrity() {
  IntegrityPolicy policy;
  policy.checksum_chunks = true;
  policy.verify_on_read = true;
  policy.read_repair = true;
  policy.scrub_on_checkpoint = true;
  return policy;
}

/// Two corruption bursts against two of the shard's three replicas.  The
/// third replica is never targeted, so a clean vote peer exists no matter
/// how injection timing lands relative to the exchange schedule — the
/// repair path cannot degrade to a rollback even under a 15x sanitizer
/// slowdown where both bursts fire between two exchanges.
FaultPlan replica_corruption_plan() {
  FaultPlan plan;
  FaultEvent first;
  first.kind = FaultKind::kSegmentCorruption;
  first.target = 0;  // shard 0, replica 0
  first.start_seconds = 0.05;
  first.severity = 3;
  first.sequence = 0x1111;
  plan.add(first);
  FaultEvent second;
  second.kind = FaultKind::kSegmentCorruption;
  second.target = 1;  // shard 0, replica 1
  second.start_seconds = 0.10;
  second.severity = 3;
  second.sequence = 0x2222;
  plan.add(second);
  return plan;
}

TEST(IntegrityEndToEnd, CorruptionIsDetectedRepairedAndHarmless) {
  // The acceptance run: seeded corruption against two replicas of a
  // replicated single-worker trainer.  Every burst must be detected by
  // checksum verification and healed by replica vote, and the final result
  // must equal the fault-free run bit for bit — the single-worker mlp path
  // is fully deterministic, so any surviving corruption would change it.
  const FaultInjector injector(replica_corruption_plan());
  core::DistTrainOptions options = small_train_options();
  options.smb_replicas = 3;
  options.integrity = full_integrity();
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  EXPECT_EQ(result.corruptions_detected, 2);
  EXPECT_GE(result.integrity_repairs, 2);
  EXPECT_EQ(result.integrity_rollbacks, 0);
  EXPECT_GE(result.scrub_passes, 1);

  core::DistTrainOptions clean = small_train_options();
  clean.smb_replicas = 3;
  clean.integrity = full_integrity();
  const core::TrainResult baseline = core::train_shmcaffe(clean);
  EXPECT_EQ(result.final_accuracy, baseline.final_accuracy);
  EXPECT_EQ(result.final_loss, baseline.final_loss);

  // Everything planned executed: the fingerprint equals the full schedule's.
  const auto planned =
      recovery::integrity_schedule(injector.plan(), options.integrity);
  EXPECT_EQ(result.integrity_fingerprint, recovery::integrity_fingerprint(planned));
  EXPECT_NE(result.integrity_fingerprint, 0u);
}

TEST(IntegrityEndToEnd, FunctionalAndSimulatedFingerprintsAgree) {
  const FaultInjector injector(replica_corruption_plan());

  core::DistTrainOptions functional = small_train_options();
  functional.smb_replicas = 3;
  functional.integrity = full_integrity();
  functional.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(functional);

  core::SimShmCaffeOptions sim;
  sim.workers = 4;
  sim.group_size = 1;
  sim.iterations = 60;
  sim.smb_replicas = 3;
  sim.integrity = full_integrity();
  sim.faults = &injector;
  const cluster::PlatformTiming timing = core::simulate_shmcaffe(sim);

  EXPECT_EQ(timing.integrity_fingerprint, result.integrity_fingerprint);
  EXPECT_NE(timing.integrity_fingerprint, 0u);
  EXPECT_EQ(timing.corruptions_detected, result.corruptions_detected);
  EXPECT_GT(timing.repair_time, 0);
  EXPECT_GT(timing.scrub_passes, 0);

  // The model charges repairs into the makespan: the same run without
  // faults finishes sooner.
  core::SimShmCaffeOptions clean = sim;
  clean.faults = nullptr;
  const cluster::PlatformTiming unfaulted = core::simulate_shmcaffe(clean);
  EXPECT_GT(timing.makespan, unfaulted.makespan);
  EXPECT_EQ(unfaulted.integrity_fingerprint, 0u);
}

TEST(IntegrityEndToEnd, WithoutRepairDetectionDegradesToRollback) {
  // One corruption burst, single replica: detection still fires but there
  // is no peer to vote against, so the trainer falls back to a rollback
  // instead of a repair (measurable degradation of the recovery quality).
  FaultPlan plan;
  FaultEvent corrupt;
  corrupt.kind = FaultKind::kSegmentCorruption;
  corrupt.target = 0;
  corrupt.start_seconds = 0.05;
  corrupt.severity = 3;
  corrupt.sequence = 0x3333;
  plan.add(corrupt);
  const FaultInjector injector(plan);

  core::DistTrainOptions options = small_train_options();
  options.smb_replicas = 1;
  options.integrity = full_integrity();
  options.integrity.read_repair = false;
  options.faults = &injector;
  const core::TrainResult result = core::train_shmcaffe(options);

  EXPECT_EQ(result.corruptions_detected, 1);
  EXPECT_EQ(result.integrity_repairs, 0);
  EXPECT_GE(result.integrity_rollbacks, 1);
  EXPECT_EQ(result.worker_outcomes[0], core::WorkerOutcome::kFinished);

  // The executed schedule (inject + detect, no repair) fingerprints exactly
  // as planned under this policy.
  const auto planned = recovery::integrity_schedule(plan, options.integrity);
  EXPECT_EQ(result.integrity_fingerprint, recovery::integrity_fingerprint(planned));
}

TEST(IntegrityEndToEnd, GeneratedPlanRunsDeterministically) {
  fault::FaultPlanSpec spec;
  spec.seed = 0xc0ffee;
  spec.servers = 2;
  spec.horizon_seconds = 0.2;
  spec.corruption_probability = 1.0;
  spec.corruption_bit_flips = 2;
  const FaultPlan plan = FaultPlan::generate(spec);
  ASSERT_FALSE(plan.empty());
  const FaultInjector injector(plan);

  // Three replicas, two generated corruption targets (spec.servers = 2):
  // the untargeted third replica keeps the plan repairable under any
  // injection-vs-exchange interleaving, so the runs stay bit-comparable.
  core::DistTrainOptions options = small_train_options();
  options.smb_replicas = 3;
  options.integrity = full_integrity();
  options.faults = &injector;
  const core::TrainResult a = core::train_shmcaffe(options);
  const core::TrainResult b = core::train_shmcaffe(options);
  EXPECT_EQ(a.integrity_fingerprint, b.integrity_fingerprint);
  EXPECT_EQ(a.corruptions_detected, b.corruptions_detected);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

}  // namespace
}  // namespace shmcaffe
