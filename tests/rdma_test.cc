// Tests for the verbs-like RDMA layer: registration, protection, one-sided
// op timing and the datagram control channel.
#include <gtest/gtest.h>

#include "common/units.h"
#include "net/fabric.h"
#include "rdma/verbs.h"
#include "sim/simulation.h"

namespace shmcaffe::rdma {
namespace {

using shmcaffe::units::kMicrosecond;
using shmcaffe::units::kMillisecond;

struct Rig {
  sim::Simulation sim;
  net::Fabric fabric;
  Device server;
  Device client;
  ProtectionDomain server_pd;

  explicit Rig(net::FabricOptions opts = make_opts())
      : fabric(sim, opts),
        server(sim, fabric, "server", 1e9),
        client(sim, fabric, "client", 1e9),
        server_pd(server) {}

  static net::FabricOptions make_opts() {
    net::FabricOptions opts;
    opts.message_latency = 0;
    opts.efficiency = 1.0;
    return opts;
  }
};

TEST(ProtectionDomain, RegistersDistinctKeysAndAddresses) {
  Rig rig;
  const MemoryRegion a = rig.server_pd.register_memory(4096);
  const MemoryRegion b = rig.server_pd.register_memory(4096);
  EXPECT_NE(a.rkey, b.rkey);
  EXPECT_NE(a.lkey, b.lkey);
  EXPECT_NE(a.addr, b.addr);
  EXPECT_EQ(rig.server_pd.region_count(), 2u);
}

TEST(ProtectionDomain, ValidAccessPasses) {
  Rig rig;
  const MemoryRegion mr = rig.server_pd.register_memory(1000);
  EXPECT_NO_THROW(rig.server_pd.check_remote_access(mr.rkey, 0, 1000));
  EXPECT_NO_THROW(rig.server_pd.check_remote_access(mr.rkey, 500, 500));
  EXPECT_NO_THROW(rig.server_pd.check_remote_access(mr.rkey, 999, 0));
}

TEST(ProtectionDomain, InvalidRkeyThrows) {
  Rig rig;
  (void)rig.server_pd.register_memory(1000);
  EXPECT_THROW(rig.server_pd.check_remote_access(0xdead, 0, 1), AccessError);
}

TEST(ProtectionDomain, OutOfBoundsThrows) {
  Rig rig;
  const MemoryRegion mr = rig.server_pd.register_memory(1000);
  EXPECT_THROW(rig.server_pd.check_remote_access(mr.rkey, 0, 1001), AccessError);
  EXPECT_THROW(rig.server_pd.check_remote_access(mr.rkey, 999, 2), AccessError);
  EXPECT_THROW(rig.server_pd.check_remote_access(mr.rkey, -1, 1), AccessError);
}

TEST(ProtectionDomain, DeregisteredRegionRejectsAccess) {
  Rig rig;
  const MemoryRegion mr = rig.server_pd.register_memory(1000);
  rig.server_pd.deregister_memory(mr);
  EXPECT_THROW(rig.server_pd.check_remote_access(mr.rkey, 0, 1), AccessError);
  EXPECT_EQ(rig.server_pd.region_count(), 0u);
}

TEST(QueuePair, WriteTimingMatchesBandwidth) {
  Rig rig;
  const MemoryRegion mr = rig.server_pd.register_memory(10'000'000);
  QueuePair qp(rig.client, rig.server_pd);
  SimTime done = -1;
  rig.sim.spawn([](sim::Simulation& s, QueuePair& q, std::uint32_t rkey, SimTime& out)
                    -> sim::Task<> {
    co_await q.rdma_write(rkey, 0, 1'000'000);  // 1 MB at 1 GB/s
    out = s.now();
  }(rig.sim, qp, mr.rkey, done));
  rig.sim.run();
  EXPECT_NEAR(static_cast<double>(done), 1.0 * kMillisecond, 10'000.0);
}

TEST(QueuePair, ReadMovesDataOnResponderTxPath) {
  Rig rig;
  const MemoryRegion mr = rig.server_pd.register_memory(10'000'000);
  QueuePair qp(rig.client, rig.server_pd);
  rig.sim.spawn([](QueuePair& q, std::uint32_t rkey) -> sim::Task<> {
    co_await q.rdma_read(rkey, 0, 2'000'000);
  }(qp, mr.rkey));
  rig.sim.run();
  EXPECT_NEAR(static_cast<double>(rig.sim.now()), 2.0 * kMillisecond, 10'000.0);
  // Data was carried by server.tx / client.rx, not the write path.
  EXPECT_EQ(rig.fabric.stats(rig.server.tx()).bytes_carried, 2'000'000);
  EXPECT_EQ(rig.fabric.stats(rig.client.rx()).bytes_carried, 2'000'000);
  EXPECT_EQ(rig.fabric.stats(rig.server.rx()).bytes_carried, 0);
}

TEST(QueuePair, ConcurrentWritesShareTheServerRxLink) {
  Rig rig;
  const MemoryRegion mr = rig.server_pd.register_memory(100'000'000);
  Device client2(rig.sim, rig.fabric, "client2", 1e9);
  QueuePair qp1(rig.client, rig.server_pd);
  QueuePair qp2(client2, rig.server_pd);
  rig.sim.spawn([](QueuePair& q, std::uint32_t rkey) -> sim::Task<> {
    co_await q.rdma_write(rkey, 0, 1'000'000);
  }(qp1, mr.rkey));
  rig.sim.spawn([](QueuePair& q, std::uint32_t rkey) -> sim::Task<> {
    co_await q.rdma_write(rkey, 1'000'000, 1'000'000);
  }(qp2, mr.rkey));
  rig.sim.run();
  // Both 1 MB writes into one 1 GB/s rx link: ~2 ms total.
  EXPECT_NEAR(static_cast<double>(rig.sim.now()), 2.0 * kMillisecond, 10'000.0);
}

TEST(QueuePair, ProtectionViolationSurfacesBeforeAnyTransfer) {
  Rig rig;
  QueuePair qp(rig.client, rig.server_pd);
  bool threw = false;
  rig.sim.spawn([](QueuePair& q, bool& out) -> sim::Task<> {
    try {
      co_await q.rdma_write(12345, 0, 100);
    } catch (const AccessError&) {
      out = true;
    }
  }(qp, threw));
  rig.sim.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(rig.fabric.stats(rig.server.rx()).bytes_carried, 0);
}

TEST(DatagramService, DeliversInOrderWithPayloadIntact) {
  Rig rig;
  DatagramService rds(rig.sim);
  const std::size_t s = rds.attach(rig.server);
  const std::size_t c = rds.attach(rig.client);
  std::vector<std::uint64_t> received;
  rig.sim.spawn([](DatagramService& svc, std::size_t from, std::size_t to) -> sim::Task<> {
    for (std::uint64_t i = 0; i < 5; ++i) {
      Datagram dg;
      dg.opcode = 7;
      dg.a = i;
      co_await svc.send_to(from, to, dg);
    }
  }(rds, c, s));
  rig.sim.spawn([](DatagramService& svc, std::size_t at, std::vector<std::uint64_t>& out)
                    -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      const Datagram dg = co_await svc.recv(at);
      EXPECT_EQ(dg.opcode, 7u);
      out.push_back(dg.a);
    }
  }(rds, s, received));
  rig.sim.run();
  EXPECT_EQ(received, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(DatagramService, SourceIsStampedForReplies) {
  Rig rig;
  DatagramService rds(rig.sim);
  const std::size_t s = rds.attach(rig.server);
  const std::size_t c = rds.attach(rig.client);
  std::uint64_t reply_value = 0;
  // Server: echo a+1 back to the datagram's source.
  rig.sim.spawn([](DatagramService& svc, std::size_t me) -> sim::Task<> {
    const Datagram req = co_await svc.recv(me);
    Datagram rsp;
    rsp.a = req.a + 1;
    co_await svc.send_to(me, req.source, rsp);
  }(rds, s));
  rig.sim.spawn([](DatagramService& svc, std::size_t me, std::size_t server,
                   std::uint64_t& out) -> sim::Task<> {
    Datagram req;
    req.a = 41;
    co_await svc.send_to(me, server, req);
    const Datagram rsp = co_await svc.recv(me);
    out = rsp.a;
  }(rds, c, s, reply_value));
  rig.sim.run();
  EXPECT_EQ(reply_value, 42u);
}

}  // namespace
}  // namespace shmcaffe::rdma
