// Tests for the zero-copy epoch-pinned SMB read path: pinned views vs copy
// reads, the two PinWritePolicy behaviours, pin accounting (bytes_pinned,
// balance-at-release), verify-at-pin-time integrity, and the pinned path
// through ReplicatedSmb, ShardedBuffer, and the functional trainer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/sharded_buffer.h"
#include "core/trainer.h"
#include "recovery/replicated_smb.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

using smb::Handle;
using smb::PinnedFloats;
using smb::PinWritePolicy;
using smb::SmbServer;
using smb::SmbServerOptions;

std::vector<float> iota_floats(std::size_t n, float start = 0.0F) {
  std::vector<float> values(n);
  std::iota(values.begin(), values.end(), start);
  return values;
}

// --- pinned vs copy semantics ----------------------------------------------

TEST(SmbPinnedRead, ViewIsBitwiseIdenticalToCopyRead) {
  SmbServer server;
  const Handle handle = server.create_floats(7, 1000);
  const std::vector<float> data = iota_floats(1000, 0.5F);
  server.write(handle, data);

  std::vector<float> copied(1000);
  server.read(handle, copied);

  const PinnedFloats view = server.read_pinned(handle, 1000);
  ASSERT_EQ(view.size(), 1000U);
  EXPECT_EQ(std::memcmp(view.data(), copied.data(), 1000 * sizeof(float)), 0);

  // Subrange pin: same floats as the copy read of that range.
  const PinnedFloats window = server.read_pinned(handle, 100, 450);
  ASSERT_EQ(window.size(), 100U);
  EXPECT_EQ(std::memcmp(window.data(), copied.data() + 450, 100 * sizeof(float)), 0);
}

TEST(SmbPinnedRead, StatsCountPinnedBytesSeparatelyFromCopied) {
  SmbServer server;
  const Handle handle = server.create_floats(7, 256);
  server.write(handle, iota_floats(256));

  const auto before = server.stats();
  {
    const PinnedFloats view = server.read_pinned(handle, 256);
    const PinnedFloats window = server.read_pinned(handle, 64, 10);
    (void)view;
    (void)window;
  }
  const auto after = server.stats();
  EXPECT_EQ(after.pinned_reads, before.pinned_reads + 2);
  EXPECT_EQ(after.bytes_pinned,
            before.bytes_pinned + static_cast<std::int64_t>((256 + 64) * sizeof(float)));
  // No bytes moved: the copy-read counter must not budge.
  EXPECT_EQ(after.bytes_read, before.bytes_read);
  EXPECT_EQ(after.reads, before.reads);
}

// --- write policies ---------------------------------------------------------

TEST(SmbPinnedRead, CopyOnWriteKeepsViewOnRetiredEpoch) {
  SmbServer server;  // kCopyOnWrite is the default
  const Handle handle = server.create_floats(7, 128);
  const std::vector<float> old_data = iota_floats(128, 1.0F);
  server.write(handle, old_data);

  PinnedFloats view = server.read_pinned(handle, 128);
  const std::vector<float> new_data(128, -9.0F);
  server.write(handle, new_data);  // must not stall, must not move the view

  // The pinned view still reads the epoch it pinned...
  EXPECT_EQ(std::memcmp(view.data(), old_data.data(), 128 * sizeof(float)), 0);
  // ...while fresh reads see the new contents.
  std::vector<float> now(128);
  server.read(handle, now);
  EXPECT_EQ(std::memcmp(now.data(), new_data.data(), 128 * sizeof(float)), 0);
  EXPECT_EQ(server.stats().cow_clones, 1U);

  // Once the pin is gone, writers mutate in place: no further clones.
  view.release();
  server.write(handle, old_data);
  EXPECT_EQ(server.stats().cow_clones, 1U);
}

TEST(SmbPinnedRead, BlockWritersPolicyStallsWriterUntilUnpin) {
  SmbServerOptions options;
  options.pin_write_policy = PinWritePolicy::kBlockWriters;
  SmbServer server(options);
  const Handle handle = server.create_floats(7, 64);
  server.write(handle, iota_floats(64));

  PinnedFloats view = server.read_pinned(handle, 64);
  std::atomic<bool> write_done{false};
  std::thread writer([&] {
    server.write(handle, std::vector<float>(64, 5.0F));
    write_done.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(write_done.load(std::memory_order_acquire))
      << "writer completed while a pin was outstanding";

  view.release();
  writer.join();
  EXPECT_TRUE(write_done.load(std::memory_order_acquire));
  std::vector<float> now(64);
  server.read(handle, now);
  EXPECT_EQ(now[0], 5.0F);
  // Blocking never clones.
  EXPECT_EQ(server.stats().cow_clones, 0U);
}

// --- pin accounting ----------------------------------------------------------

TEST(SmbPinnedRead, FinalReleaseWithOutstandingPinIsRefused) {
  SmbServer server;
  const Handle handle = server.create_floats(7, 64);
  server.write(handle, iota_floats(64));

  PinnedFloats view = server.read_pinned(handle, 64);
  // The final release would free storage a live view still aliases: refused,
  // and the attachment stays usable.
  EXPECT_THROW(server.release(handle), smb::SmbError);
  EXPECT_NO_THROW((void)server.size(handle));

  view.release();
  EXPECT_NO_THROW(server.release(handle));
  EXPECT_THROW((void)server.size(handle), smb::SmbError);
}

TEST(SmbPinnedRead, SelfMoveAssignmentKeepsPinLive) {
  SmbServer server;
  const Handle handle = server.create_floats(7, 64);
  const std::vector<float> data = iota_floats(64);
  server.write(handle, data);

  PinnedFloats view = server.read_pinned(handle, 64);
  // Through an alias so the self-move survives -Wself-move; a naive move
  // assignment would release() first and hand back a dead span.
  PinnedFloats* alias = &view;
  *alias = std::move(view);

  // The view still aliases the pinned epoch...
  ASSERT_EQ(view.size(), 64U);
  EXPECT_EQ(std::memcmp(view.data(), data.data(), 64 * sizeof(float)), 0);
  // ...and exactly one pin is still outstanding: the final release is
  // refused now and accepted after the (single) unpin.
  EXPECT_THROW(server.release(handle), smb::SmbError);
  view.release();
  EXPECT_NO_THROW(server.release(handle));
}

TEST(SmbPinnedRead, ReleaseIsIdempotentAndMoveSafe) {
  SmbServer server;
  const Handle handle = server.create_floats(7, 64);
  server.write(handle, iota_floats(64));

  PinnedFloats view = server.read_pinned(handle, 64);
  PinnedFloats moved = std::move(view);
  view.release();  // moved-from: must be a no-op, not a double unpin
  moved.release();
  moved.release();  // idempotent
  EXPECT_NO_THROW(server.release(handle));
}

// --- integrity ---------------------------------------------------------------

TEST(SmbPinnedRead, ChecksumsVerifiedOnceAtPinTime) {
  SmbServerOptions options;
  options.integrity.verify_on_read = true;
  options.integrity.chunk_floats = 64;
  SmbServer server(options);
  const Handle handle = server.create_floats(7, 256);
  server.write(handle, iota_floats(256));

  // Clean segment: pin succeeds and the view matches a raw read.
  {
    const PinnedFloats view = server.read_pinned(handle, 256);
    std::vector<float> raw(256);
    server.read_raw(handle, raw);
    EXPECT_EQ(std::memcmp(view.data(), raw.data(), 256 * sizeof(float)), 0);
  }

  constexpr std::uint64_t kMarker = 0x51;
  ASSERT_GT(server.corrupt_floats(7, kMarker, 2), 0U);
  EXPECT_THROW((void)server.read_pinned(handle, 256), smb::SmbCorruption);
  const std::vector<std::uint64_t> markers = server.detected_markers();
  EXPECT_NE(std::find(markers.begin(), markers.end(), kMarker), markers.end());
}

// --- replicated ensemble ------------------------------------------------------

TEST(SmbPinnedRead, ReplicatedViewSurvivesPrimaryFailStop) {
  SmbServer a;
  SmbServer b;
  recovery::ReplicatedSmb ensemble({&a, &b});
  const Handle handle = ensemble.create_floats(7, 200);
  const std::vector<float> data = iota_floats(200, 3.0F);
  ensemble.write(handle, data);

  // Pin against the active replica, then kill it.  The view aliases storage
  // kept alive by its epoch reference, so it stays readable; the next pin
  // fails over to the survivor and serves the same bits.
  const PinnedFloats before = ensemble.read_pinned(handle, 200);
  a.fail_stop();
  EXPECT_EQ(std::memcmp(before.data(), data.data(), 200 * sizeof(float)), 0);

  const PinnedFloats after = ensemble.read_pinned(handle, 200);
  ASSERT_EQ(after.size(), 200U);
  EXPECT_EQ(std::memcmp(after.data(), data.data(), 200 * sizeof(float)), 0);
}

// --- sharded buffer -----------------------------------------------------------

TEST(SmbPinnedRead, ShardedViewsCoverTheLogicalBuffer) {
  SmbServer s0;
  SmbServer s1;
  SmbServer s2;
  std::vector<smb::SmbServer*> servers = {&s0, &s1, &s2};
  core::ShardedBuffer buffer =
      core::ShardedBuffer::create(std::span<smb::SmbServer* const>(servers), 7, 1000);
  const std::vector<float> data = iota_floats(1000, 0.25F);
  buffer.write(data);

  for (const std::size_t start_shard : {0U, 1U, 2U}) {
    std::vector<core::ShardedBuffer::PinnedShard> views = buffer.read_pinned(start_shard);
    ASSERT_EQ(views.size(), 3U);
    std::size_t expected_offset = 0;
    for (const core::ShardedBuffer::PinnedShard& shard : views) {
      // Ascending, gap-free offsets regardless of fan-out rotation.
      ASSERT_EQ(shard.offset, expected_offset);
      EXPECT_EQ(std::memcmp(shard.view.data(), data.data() + shard.offset,
                            shard.view.size() * sizeof(float)),
                0)
          << "start_shard=" << start_shard << " offset=" << shard.offset;
      expected_offset += shard.view.size();
    }
    EXPECT_EQ(expected_offset, 1000U);
  }
}

// --- functional trainer -------------------------------------------------------

TEST(SmbPinnedRead, TrainerZeroCopyPathIsBitwiseIdenticalToCopyPath) {
  // The T1 exchange against pinned views must be numerically invisible: same
  // floats, same rounding, just no staging copy.  One worker, one epoch of
  // the toy conv family — the same fixture parallel_test uses for the
  // thread-count invariance check.
  core::DistTrainOptions options;
  options.model_family = "mini_inception";
  options.workers = 1;
  options.group_size = 1;
  options.input = dl::ModelInputSpec{1, 12, 12, 4};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 4;
  options.train_data.size = 256;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 128;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 1;

  options.zero_copy_reads = true;
  const core::TrainResult pinned = core::train_shmcaffe(options);
  options.zero_copy_reads = false;
  const core::TrainResult copied = core::train_shmcaffe(options);

  EXPECT_EQ(pinned.final_loss, copied.final_loss);
  EXPECT_EQ(pinned.final_accuracy, copied.final_accuracy);
  ASSERT_EQ(pinned.curve.size(), copied.curve.size());
}

}  // namespace
}  // namespace shmcaffe
