// Tests for BatchNorm, LRN and AvgPool2d: forward semantics, running
// statistics, numerical gradient checks, and solver interaction with
// non-learnable state blobs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "dl/gradcheck.h"
#include "dl/layers.h"
#include "dl/layers_norm.h"
#include "dl/models.h"
#include "dl/net.h"
#include "dl/solver.h"

namespace shmcaffe::dl {
namespace {

TEST(BatchNorm, TrainingOutputIsNormalisedPerChannel) {
  BatchNorm bn("bn", 2);
  common::Rng rng(1);
  bn.init_params(rng);
  Tensor x({4, 2, 3, 3});
  for (float& v : x.span()) v = static_cast<float>(rng.uniform(-3, 3));
  // Shift channel 1 strongly.
  for (int n = 0; n < 4; ++n) {
    for (int y = 0; y < 3; ++y) {
      for (int w = 0; w < 3; ++w) x.at(n, 1, y, w) += 10.0F;
    }
  }
  Tensor top;
  bn.setup({&x}, top);
  bn.forward({&x}, top, /*train=*/true);
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (int n = 0; n < 4; ++n) {
      for (int y = 0; y < 3; ++y) {
        for (int w = 0; w < 3; ++w) mean += top.at(n, c, y, w);
      }
    }
    mean /= 36.0;
    for (int n = 0; n < 4; ++n) {
      for (int y = 0; y < 3; ++y) {
        for (int w = 0; w < 3; ++w) {
          var += (top.at(n, c, y, w) - mean) * (top.at(n, c, y, w) - mean);
        }
      }
    }
    var /= 36.0;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "channel " << c;
    EXPECT_NEAR(var, 1.0, 1e-2) << "channel " << c;
  }
}

TEST(BatchNorm, ScaleAndShiftApply) {
  BatchNorm bn("bn", 1);
  common::Rng rng(2);
  bn.init_params(rng);
  bn.params()[0]->value[0] = 2.0F;   // gamma
  bn.params()[1]->value[0] = -1.0F;  // beta
  Tensor x({8, 1, 2, 2});
  for (float& v : x.span()) v = static_cast<float>(rng.normal(5.0, 2.0));
  Tensor top;
  bn.setup({&x}, top);
  bn.forward({&x}, top, true);
  double mean = 0.0;
  for (float v : top.span()) mean += v;
  mean /= static_cast<double>(top.size());
  EXPECT_NEAR(mean, -1.0, 1e-4);  // beta shifts the normalised mean
}

TEST(BatchNorm, RunningStatisticsConvergeAndDriveEvalMode) {
  BatchNorm bn("bn", 1);
  common::Rng rng(3);
  bn.init_params(rng);
  Tensor x({16, 1, 4, 4});
  Tensor top;
  bn.setup({&x}, top);
  // Feed many batches from N(3, 4): running stats approach (3, 4).
  for (int step = 0; step < 200; ++step) {
    for (float& v : x.span()) v = static_cast<float>(rng.normal(3.0, 2.0));
    bn.forward({&x}, top, /*train=*/true);
  }
  const float running_mean = bn.params()[2]->value[0];
  const float running_var = bn.params()[3]->value[0];
  EXPECT_NEAR(running_mean, 3.0F, 0.3F);
  EXPECT_NEAR(running_var, 4.0F, 0.8F);

  // Eval mode uses the running stats: a batch at exactly N(3,4) maps close
  // to N(0,1).
  for (float& v : x.span()) v = static_cast<float>(rng.normal(3.0, 2.0));
  bn.forward({&x}, top, /*train=*/false);
  double mean = 0.0;
  for (float v : top.span()) mean += v;
  mean /= static_cast<double>(top.size());
  EXPECT_NEAR(mean, 0.0, 0.25);
}

TEST(BatchNorm, RunningStatsAreNotLearnable) {
  BatchNorm bn("bn", 4);
  auto params = bn.params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_TRUE(params[0]->learnable);   // scale
  EXPECT_TRUE(params[1]->learnable);   // shift
  EXPECT_FALSE(params[2]->learnable);  // running mean
  EXPECT_FALSE(params[3]->learnable);  // running var
}

TEST(Solver, SkipsNonLearnableBlobs) {
  Net net("bn_net");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("conv", 1, 2, 1, 1, 0), {"data"}, "conv");
  net.add(std::make_unique<BatchNorm>("bn", 2), {"conv"}, "bn");
  net.add(std::make_unique<GlobalAvgPool>("gap"), {"bn"}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", 2, 2), {"gap"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  common::Rng rng(4);
  net.init_params(rng);

  SolverOptions options;
  options.weight_decay = 0.5;  // would decay running stats if not skipped
  options.base_lr = 0.1;
  SgdSolver solver(net, options);
  // Find the running-var blob and record it.
  ParamBlob* running_var = nullptr;
  for (ParamBlob* blob : net.params()) {
    if (blob->name == "bn.running_var") running_var = blob;
  }
  ASSERT_NE(running_var, nullptr);
  const float before = running_var->value[0];
  solver.apply_update(0.1);
  EXPECT_EQ(running_var->value[0], before);
}

TEST(Lrn, UnitInputMatchesClosedForm) {
  Lrn lrn("lrn", 3, 0.3, 0.75, 1.0);
  Tensor x({1, 4, 1, 1});
  x.fill(1.0F);
  Tensor top;
  lrn.setup({&x}, top);
  lrn.forward({&x}, top, true);
  // Channel 0: window {0,1} -> denom = 1 + 0.1*2 = 1.2.
  // Channel 1: window {0,1,2} -> denom = 1 + 0.1*3 = 1.3.
  EXPECT_NEAR(top[0], std::pow(1.2, -0.75), 1e-5);
  EXPECT_NEAR(top[1], std::pow(1.3, -0.75), 1e-5);
  EXPECT_NEAR(top[3], std::pow(1.2, -0.75), 1e-5);
}

TEST(Lrn, RejectsEvenWindow) {
  EXPECT_THROW(Lrn("lrn", 4), std::invalid_argument);
  EXPECT_THROW(Lrn("lrn", 3, -1.0), std::invalid_argument);
}

TEST(AvgPool2d, AveragesWindows) {
  AvgPool2d pool("p", 2, 2);
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor top;
  pool.setup({&x}, top);
  pool.forward({&x}, top, true);
  EXPECT_EQ(top.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(top.at(0, 0, 0, 0), (0 + 1 + 4 + 5) / 4.0F);
  EXPECT_FLOAT_EQ(top.at(0, 0, 1, 1), (10 + 11 + 14 + 15) / 4.0F);
}

// --- gradient checks through the new layers ---

Net build_bn_net() {
  Net net("bn_gradcheck");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("conv", 3, 4, 3, 1, 1), {"data"}, "conv");
  net.add(std::make_unique<BatchNorm>("bn", 4), {"conv"}, "bn");
  net.add(std::make_unique<Relu>("relu"), {"bn"}, "relu");
  net.add(std::make_unique<GlobalAvgPool>("gap"), {"relu"}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", 4, 4), {"gap"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

Net build_lrn_avgpool_net() {
  Net net("lrn_gradcheck");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("conv", 3, 6, 3, 1, 1), {"data"}, "conv");
  net.add(std::make_unique<Lrn>("lrn", 3), {"conv"}, "lrn");
  net.add(std::make_unique<Relu>("relu"), {"lrn"}, "relu");
  net.add(std::make_unique<AvgPool2d>("pool", 2, 2), {"relu"}, "pool");
  net.add(std::make_unique<FullyConnected>("logits", 6 * 4 * 4, 4), {"pool"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

class NormGradCheck : public ::testing::TestWithParam<Net (*)()> {};

TEST_P(NormGradCheck, AnalyticMatchesNumeric) {
  common::Rng rng(77);
  Net net = GetParam()();
  net.init_params(rng);
  Tensor& data = net.input("data");
  data.reshape({2, 3, 8, 8});
  for (float& v : data.span()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor& labels = net.input("label");
  labels.reshape({2});
  for (float& v : labels.span()) v = static_cast<float>(rng.uniform_int(0, 3));

  const GradCheckResult result = check_gradients(net, 1e-3, 120, rng);
  EXPECT_LT(result.max_rel_error, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Nets, NormGradCheck,
                         ::testing::Values(&build_bn_net, &build_lrn_avgpool_net));

TEST(ModelZoo, MiniInceptionResnetForwardBackward) {
  common::Rng rng(7);
  ModelInputSpec spec;
  Net net = make_model("mini_inception_resnet", spec);
  net.init_params(rng);
  Tensor& data = net.input("data");
  data.reshape({4, spec.channels, spec.height, spec.width});
  for (float& v : data.span()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor& labels = net.input("label");
  labels.reshape({4});
  for (float& v : labels.span()) {
    v = static_cast<float>(rng.uniform_int(0, spec.classes - 1));
  }
  const Tensor& loss = net.forward(true);
  EXPECT_TRUE(std::isfinite(loss[0]));
  net.backward();
  SgdSolver solver(net, {});
  solver.step();  // must not disturb running stats but must update weights
  const Tensor& loss2 = net.forward(true);
  EXPECT_TRUE(std::isfinite(loss2[0]));
}

}  // namespace
}  // namespace shmcaffe::dl
