// Cross-module integration tests: whole-pipeline properties that no single
// module's suite can check.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "baselines/functional_ssgd.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "data/record_store.h"
#include "dl/param_vector.h"
#include "dl/serialize.h"
#include "minimpi/minimpi.h"
#include "smb/server.h"

namespace shmcaffe {
namespace {

core::DistTrainOptions tiny_options(int workers, int group_size) {
  core::DistTrainOptions options;
  options.model_family = "mlp";
  options.workers = workers;
  options.group_size = group_size;
  options.input = dl::ModelInputSpec{1, 12, 12, 6};
  options.train_data.channels = 1;
  options.train_data.height = 12;
  options.train_data.width = 12;
  options.train_data.classes = 6;
  options.train_data.size = 1536;
  options.train_data.noise_stddev = 0.25;
  options.test_data = options.train_data;
  options.test_data.size = 384;
  options.test_data.seed = 0x7e57;
  options.batch_size = 16;
  options.epochs = 4;
  return options;
}

TEST(Integration, ShmCaffeMatchesSsgdOnOneWorker) {
  // With one worker there is no asynchrony: ShmCaffe degenerates to plain
  // SGD, as does every SSGD transport.  Same seed, same data: accuracies
  // agree closely.
  const core::TrainResult shm = core::train_shmcaffe(tiny_options(1, 1));
  const core::TrainResult ssgd =
      baselines::train_ssgd(tiny_options(1, 1), baselines::SsgdTransport::kNcclAllReduce);
  EXPECT_NEAR(shm.final_accuracy, ssgd.final_accuracy, 0.05);
  EXPECT_GT(shm.final_accuracy, 0.85);
}

TEST(Integration, GlobalWeightsEqualLocalAfterSingleWorkerRun) {
  // After a 1-worker ShmCaffe run the global buffer holds exactly what the
  // worker pushed: W_g = W_local after the last exchange; both evaluate
  // identically (verified through the returned curve's final point).
  const core::TrainResult result = core::train_shmcaffe(tiny_options(1, 1));
  ASSERT_FALSE(result.curve.empty());
  EXPECT_NEAR(result.curve.back().test_accuracy, result.final_accuracy, 0.03);
}

TEST(Integration, TrainedSnapshotSurvivesSerialisationAndEvaluatesIdentically) {
  // dl + data + core + serialize: train, snapshot, restore into a fresh
  // net, verify identical evaluation.
  common::Rng rng(11);
  data::SynthDatasetOptions data_options;
  data_options.channels = 1;
  data_options.height = 12;
  data_options.width = 12;
  data_options.classes = 6;
  data_options.size = 384;
  const data::SynthImageDataset test_set(data_options);

  dl::ModelInputSpec spec{1, 12, 12, 6};
  dl::Net net = dl::make_mini_resnet(spec);
  net.init_params(rng);
  const core::EvalResult before = core::evaluate(net, test_set);

  const std::vector<std::byte> blob = dl::save_snapshot(net);
  dl::Net restored = dl::make_mini_resnet(spec);
  common::Rng other(99);
  restored.init_params(other);
  dl::load_snapshot(restored, blob);
  const core::EvalResult after = core::evaluate(restored, test_set);
  EXPECT_DOUBLE_EQ(before.loss, after.loss);
  EXPECT_DOUBLE_EQ(before.accuracy, after.accuracy);
}

TEST(Integration, RecordStoreFeedsTrainingEquivalently) {
  // data pipeline: freezing the dataset into the record store and decoding
  // it back yields bit-identical samples to direct materialisation.
  data::SynthDatasetOptions options;
  options.channels = 1;
  options.height = 12;
  options.width = 12;
  options.classes = 6;
  options.size = 128;
  const data::SynthImageDataset dataset(options);
  data::RecordStore store;
  ASSERT_EQ(data::write_dataset(dataset, store), 128u);

  std::vector<float> direct(dataset.image_elements());
  std::vector<float> decoded;
  int label = -1;
  for (std::size_t i = 0; i < dataset.size(); i += 17) {
    dataset.materialize(i, direct);
    const auto record = store.get(data::record_key(i));
    ASSERT_TRUE(record.has_value());
    ASSERT_TRUE(data::decode_sample(*record, decoded, label));
    EXPECT_EQ(decoded, direct);
    EXPECT_EQ(label, dataset.label(i));
  }
}

TEST(Integration, SmbSurvivesTrainerScaleStress) {
  // Many short overlapping training runs against fresh servers: lifecycle
  // correctness (segments, boards, threads) under repetition.
  for (int round = 0; round < 3; ++round) {
    core::DistTrainOptions options = tiny_options(4, 2);
    options.epochs = 1;
    options.seed = 0x100 + static_cast<std::uint64_t>(round);
    const core::TrainResult result = core::train_shmcaffe(options);
    EXPECT_GT(result.final_accuracy, 0.1);
  }
}

TEST(Integration, HybridGroupMembersStayBitwiseIdentical) {
  // In hybrid mode all members of a group must hold identical weights after
  // every iteration (allreduce + broadcast).  We verify through the public
  // surface: a group_size == workers run must match the pure SSGD baseline
  // closely (same maths, modulo fp association).
  const core::TrainResult hybrid = core::train_shmcaffe(tiny_options(4, 4));
  const core::TrainResult ssgd =
      baselines::train_ssgd(tiny_options(4, 1), baselines::SsgdTransport::kNcclAllReduce);
  EXPECT_NEAR(hybrid.final_accuracy, ssgd.final_accuracy, 0.08);
}

TEST(Integration, MpiAndSmbComposeInOneProcess) {
  // The trainer stacks MiniMPI (init), SMB (parameter sharing) and NCCL
  // (intra-group) in one address space; two trainers can run sequentially
  // without leaking state into each other.
  const core::TrainResult first = core::train_shmcaffe(tiny_options(2, 1));
  const core::TrainResult second = core::train_shmcaffe(tiny_options(2, 2));
  EXPECT_GT(first.final_accuracy, 0.7);
  EXPECT_GT(second.final_accuracy, 0.7);
}

}  // namespace
}  // namespace shmcaffe
