// Tests for the functional Soft Memory Box server: segment lifecycle,
// data-path semantics, server-side accumulate, counters, notification, and
// concurrency hammer tests from real threads.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "common/ordered_mutex.h"
#include "smb/server.h"

namespace shmcaffe::smb {
namespace {

TEST(SmbServer, CreateAttachReleaseLifecycle) {
  SmbServer server;
  const Handle created = server.create_floats(100, 64);
  EXPECT_TRUE(created.valid());
  EXPECT_EQ(server.size(created), 64u);

  const Handle attached = server.attach_floats(100);
  EXPECT_EQ(attached, created);  // same canonical access key

  server.release(attached);
  EXPECT_NO_THROW((void)server.size(created));  // creator still holds it
  server.release(created);
  EXPECT_THROW((void)server.size(created), SmbError);
  // The key is free again after full release.
  EXPECT_NO_THROW((void)server.create_floats(100, 8));
}

TEST(SmbServer, DuplicateKeyRejected) {
  SmbServer server;
  (void)server.create_floats(1, 16);
  EXPECT_THROW((void)server.create_floats(1, 16), SmbError);
}

TEST(SmbServer, AttachUnknownKeyRejected) {
  SmbServer server;
  EXPECT_THROW((void)server.attach_floats(404), SmbError);
}

TEST(SmbServer, AttachSizeMismatchRejected) {
  SmbServer server;
  (void)server.create_floats(1, 16);
  EXPECT_THROW((void)server.attach_floats(1, 32), SmbError);
  EXPECT_NO_THROW((void)server.attach_floats(1, 16));
  EXPECT_NO_THROW((void)server.attach_floats(1));  // unspecified size ok
}

TEST(SmbServer, KindMismatchRejected) {
  SmbServer server;
  (void)server.create_floats(1, 16);
  (void)server.create_counters(2, 4);
  EXPECT_THROW((void)server.attach_counters(1), SmbError);
  EXPECT_THROW((void)server.attach_floats(2), SmbError);
}

TEST(SmbServer, CapacityEnforced) {
  SmbServerOptions options;
  options.capacity_bytes = 1024;  // 256 floats
  SmbServer server(options);
  (void)server.create_floats(1, 128);  // 512 bytes
  EXPECT_THROW((void)server.create_floats(2, 200), SmbError);
  const Handle h = server.create_floats(3, 128);  // exactly fills
  EXPECT_TRUE(h.valid());
  server.release(h);
  EXPECT_NO_THROW((void)server.create_floats(4, 128));  // space reclaimed
}

TEST(SmbServer, WriteThenReadRoundTrips) {
  SmbServer server;
  const Handle h = server.create_floats(7, 8);
  const std::vector<float> data{1, 2, 3, 4, 5, 6, 7, 8};
  server.write(h, data);
  std::vector<float> out(8, 0.0F);
  server.read(h, out);
  EXPECT_EQ(out, data);
}

TEST(SmbServer, PartialReadWriteWithOffsets) {
  SmbServer server;
  const Handle h = server.create_floats(7, 8);
  const std::vector<float> part{9, 10};
  server.write(h, part, 3);
  std::vector<float> out(3, -1.0F);
  server.read(h, out, 2);
  EXPECT_EQ(out, (std::vector<float>{0, 9, 10}));
}

TEST(SmbServer, OutOfBoundsAccessRejected) {
  SmbServer server;
  const Handle h = server.create_floats(7, 8);
  std::vector<float> buf(4);
  EXPECT_THROW(server.read(h, buf, 5), SmbError);
  EXPECT_THROW(server.write(h, buf, 6), SmbError);
  EXPECT_NO_THROW(server.read(h, buf, 4));
}

TEST(SmbServer, SegmentsZeroInitialised) {
  SmbServer server;
  const Handle h = server.create_floats(7, 16);
  std::vector<float> out(16, 1.0F);
  server.read(h, out);
  for (float v : out) EXPECT_EQ(v, 0.0F);
}

TEST(SmbServer, AccumulateAddsElementwise) {
  SmbServer server;
  const Handle global = server.create_floats(1, 4);
  const Handle delta = server.create_floats(2, 4);
  server.write(global, std::vector<float>{1, 1, 1, 1});
  server.write(delta, std::vector<float>{0.5F, -1, 2, 0});
  server.accumulate(delta, global);
  std::vector<float> out(4);
  server.read(global, out);
  EXPECT_EQ(out, (std::vector<float>{1.5F, 0, 3, 1}));
  // Source is untouched.
  server.read(delta, out);
  EXPECT_EQ(out, (std::vector<float>{0.5F, -1, 2, 0}));
}

TEST(SmbServer, AccumulateRequiresDistinctEqualSizedFloatSegments) {
  SmbServer server;
  const Handle a = server.create_floats(1, 4);
  const Handle b = server.create_floats(2, 8);
  const Handle c = server.create_counters(3, 4);
  EXPECT_THROW(server.accumulate(a, a), SmbError);
  EXPECT_THROW(server.accumulate(a, b), SmbError);
  EXPECT_THROW(server.accumulate(a, c), SmbError);
}

TEST(SmbServer, CopySegmentOverwrites) {
  SmbServer server;
  const Handle a = server.create_floats(1, 3);
  const Handle b = server.create_floats(2, 3);
  server.write(a, std::vector<float>{7, 8, 9});
  server.write(b, std::vector<float>{1, 1, 1});
  server.copy_segment(a, b);
  std::vector<float> out(3);
  server.read(b, out);
  EXPECT_EQ(out, (std::vector<float>{7, 8, 9}));
}

TEST(SmbServer, CountersStoreLoadFetchAdd) {
  SmbServer server;
  const Handle h = server.create_counters(9, 4);
  EXPECT_EQ(server.load(h, 0), 0);
  server.store(h, 1, 42);
  EXPECT_EQ(server.load(h, 1), 42);
  EXPECT_EQ(server.fetch_add(h, 1, 8), 42);
  EXPECT_EQ(server.load(h, 1), 50);
  EXPECT_THROW(server.store(h, 4, 1), SmbError);
}

TEST(SmbServer, CounterReductions) {
  SmbServer server;
  const Handle h = server.create_counters(9, 4);
  server.store(h, 0, 10);
  server.store(h, 1, -5);
  server.store(h, 2, 30);
  server.store(h, 3, 7);
  EXPECT_EQ(server.min_value(h), -5);
  EXPECT_EQ(server.max_value(h), 30);
  EXPECT_EQ(server.sum(h), 42);
}

TEST(SmbServer, VersionBumpsOnEveryMutation) {
  SmbServer server;
  const Handle g = server.create_floats(1, 4);
  const Handle d = server.create_floats(2, 4);
  EXPECT_EQ(server.version(g), 0u);
  server.write(g, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(server.version(g), 1u);
  server.accumulate(d, g);
  EXPECT_EQ(server.version(g), 2u);
  server.copy_segment(d, g);
  EXPECT_EQ(server.version(g), 3u);
  EXPECT_EQ(server.version(d), 0u);
}

TEST(SmbServer, WaitVersionBlocksUntilNotified) {
  SmbServer server;
  const Handle g = server.create_floats(1, 4);
  std::optional<std::uint64_t> seen;
  std::thread waiter(
      [&] { seen = server.wait_version_at_least(g, 1, std::chrono::seconds(30)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.write(g, std::vector<float>{1, 2, 3, 4});
  waiter.join();
  ASSERT_TRUE(seen.has_value());
  EXPECT_GE(*seen, 1u);
}

TEST(SmbServer, StatsTrackOperations) {
  SmbServer server;
  const Handle g = server.create_floats(1, 4);
  const Handle d = server.create_floats(2, 4);
  (void)server.attach_floats(1);
  std::vector<float> buf(4);
  server.write(d, buf);
  server.read(g, buf);
  server.accumulate(d, g);
  const SmbServerStats stats = server.stats();
  EXPECT_EQ(stats.creates, 2u);
  EXPECT_EQ(stats.attaches, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.accumulates, 1u);
  EXPECT_EQ(stats.bytes_written, 16);
  EXPECT_EQ(stats.bytes_read, 16);
  EXPECT_EQ(stats.bytes_in_use, 32);
}

// --- concurrency hammers (real threads) ---

TEST(SmbServerConcurrency, ParallelAccumulatesAreLinearizable) {
  // W threads each accumulate their own delta segment K times into the
  // global buffer.  The final value must be the exact sum (accumulate holds
  // the destination exclusively).
  SmbServer server;
  constexpr int kWorkers = 8;
  constexpr int kRounds = 50;
  constexpr std::size_t kCount = 257;
  const Handle global = server.create_floats(0, kCount);

  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&server, w] {
      const Handle mine = server.create_floats(1000 + static_cast<ShmKey>(w), kCount);
      const Handle g = server.attach_floats(0);
      std::vector<float> delta(kCount, static_cast<float>(w + 1));
      for (int round = 0; round < kRounds; ++round) {
        server.write(mine, delta);
        server.accumulate(mine, g);
      }
      server.release(g);
      server.release(mine);
    });
  }
  for (auto& t : threads) t.join();

  // sum over workers of (w+1) * kRounds
  const float expected = kRounds * (kWorkers * (kWorkers + 1) / 2);
  std::vector<float> out(kCount);
  server.read(global, out);
  for (float v : out) EXPECT_EQ(v, expected);
}

TEST(SmbServerConcurrency, ConcurrentCountersAreExact) {
  SmbServer server;
  const Handle h = server.create_counters(0, 1);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, h] {
      for (int i = 0; i < kIncrements; ++i) server.fetch_add(h, 0, 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server.load(h, 0), kThreads * kIncrements);
}

TEST(SmbServerConcurrency, ReadersSeeConsistentSnapshotsUnderWrites) {
  // A writer alternates between two full-segment patterns; readers must
  // never observe a torn mix (read/write hold the segment lock).
  SmbServer server;
  constexpr std::size_t kCount = 1024;
  const Handle h = server.create_floats(0, kCount);
  server.write(h, std::vector<float>(kCount, 0.0F));
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    const std::vector<float> a(kCount, 1.0F);
    const std::vector<float> b(kCount, 2.0F);
    for (int i = 0; i < 500; ++i) server.write(h, i % 2 == 0 ? a : b);
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::vector<float> buf(kCount);
      while (!stop) {
        server.read(h, buf);
        for (std::size_t i = 1; i < kCount; ++i) {
          if (buf[i] != buf[0]) {
            ++torn;
            break;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}


// Lock-order guard: the suite above drives the instrumented mutexes hard
// (segment + table locks from many threads); any rank inversion or acquisition-graph cycle they produced
// is a latent deadlock.  Runs last in this binary by declaration order.
TEST(LockOrder, CleanUnderSmbConcurrency) {
  EXPECT_TRUE(shmcaffe::common::LockOrderRegistry::instance().violations().empty())
      << shmcaffe::common::LockOrderRegistry::instance().violations().size()
      << " lock-order violation(s); see stderr for details";
}

}  // namespace
}  // namespace shmcaffe::smb
