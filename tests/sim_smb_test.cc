// Tests for the simulated-time Soft Memory Box: protocol correctness,
// timing of reads/writes/accumulates, serialisation of accumulates per
// destination, and aggregate-bandwidth behaviour (the Fig. 7 mechanism).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "smb/sim_smb.h"

namespace shmcaffe::smb {
namespace {

using shmcaffe::units::kMicrosecond;
using shmcaffe::units::kMillisecond;
using shmcaffe::units::kSecond;

struct Rig {
  sim::Simulation sim;
  net::Fabric fabric;
  SimSmbServer server;

  explicit Rig(SimSmbOptions smb_opts = ideal_smb(), net::FabricOptions fab_opts = ideal_fabric())
      : fabric(sim, fab_opts), server(sim, fabric, smb_opts) {
    server.start();
  }

  static SimSmbOptions ideal_smb() {
    SimSmbOptions opts;
    opts.op_overhead = 0;
    opts.control_service_time = 0;
    return opts;
  }
  static net::FabricOptions ideal_fabric() {
    net::FabricOptions opts;
    opts.message_latency = 0;
    opts.efficiency = 1.0;
    return opts;
  }
};

TEST(SimSmb, CreateThenAttachSharesSegment) {
  Rig rig;
  SimSmbClient master(rig.server, "w0", 7e9);
  SimSmbClient slave(rig.server, "w1", 7e9);
  Handle master_handle;
  Handle slave_handle;
  rig.sim.spawn([](SimSmbClient& m, SimSmbClient& s, Handle& mh, Handle& sh) -> sim::Task<> {
    mh = co_await m.create(42, 1 << 20);
    sh = co_await s.attach(42);
  }(master, slave, master_handle, slave_handle));
  rig.sim.run();
  EXPECT_TRUE(master_handle.valid());
  EXPECT_EQ(master_handle, slave_handle);
}

TEST(SimSmb, AttachUnknownKeyFails) {
  Rig rig;
  SimSmbClient client(rig.server, "w0", 7e9);
  bool threw = false;
  rig.sim.spawn([](SimSmbClient& c, bool& out) -> sim::Task<> {
    try {
      (void)co_await c.attach(999);
    } catch (const SmbError&) {
      out = true;
    }
  }(client, threw));
  rig.sim.run();
  EXPECT_TRUE(threw);
}

TEST(SimSmb, DuplicateCreateFails) {
  Rig rig;
  SimSmbClient client(rig.server, "w0", 7e9);
  bool threw = false;
  rig.sim.spawn([](SimSmbClient& c, bool& out) -> sim::Task<> {
    (void)co_await c.create(1, 4096);
    try {
      (void)co_await c.create(1, 4096);
    } catch (const SmbError&) {
      out = true;
    }
  }(client, threw));
  rig.sim.run();
  EXPECT_TRUE(threw);
}

TEST(SimSmb, ReadAndWriteTimingMatchServerBandwidth) {
  Rig rig;
  SimSmbClient client(rig.server, "w0", 7e9);
  SimTime write_took = 0;
  SimTime read_took = 0;
  rig.sim.spawn([](sim::Simulation& s, SimSmbClient& c, SimTime& wt, SimTime& rt) -> sim::Task<> {
    const Handle h = co_await c.create(1, 700'000'000);
    SimTime t0 = s.now();
    co_await c.write(h, 700'000'000);  // 0.7 GB at 7 GB/s = 100 ms
    wt = s.now() - t0;
    t0 = s.now();
    co_await c.read(h, 700'000'000);
    rt = s.now() - t0;
  }(rig.sim, client, write_took, read_took));
  rig.sim.run();
  EXPECT_NEAR(static_cast<double>(write_took), 100.0 * kMillisecond, 0.5 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(read_took), 100.0 * kMillisecond, 0.5 * kMillisecond);
}

TEST(SimSmb, OutOfBoundsAccessThrows) {
  Rig rig;
  SimSmbClient client(rig.server, "w0", 7e9);
  bool threw = false;
  rig.sim.spawn([](SimSmbClient& c, bool& out) -> sim::Task<> {
    const Handle h = co_await c.create(1, 1000);
    try {
      co_await c.read(h, 500, 600);
    } catch (const rdma::AccessError&) {
      out = true;
    }
  }(client, threw));
  rig.sim.run();
  EXPECT_TRUE(threw);
}

TEST(SimSmb, OpOverheadCharged) {
  SimSmbOptions opts = Rig::ideal_smb();
  opts.op_overhead = 100 * kMicrosecond;
  Rig rig(opts);
  SimSmbClient client(rig.server, "w0", 7e9);
  SimTime took = 0;
  rig.sim.spawn([](sim::Simulation& s, SimSmbClient& c, SimTime& out) -> sim::Task<> {
    const Handle h = co_await c.create(1, 7000);
    const SimTime t0 = s.now();
    co_await c.write(h, 7000);  // 1 us of data + 100 us overhead
    out = s.now() - t0;
  }(rig.sim, client, took));
  rig.sim.run();
  EXPECT_NEAR(static_cast<double>(took), 101.0 * kMicrosecond, 1.0 * kMicrosecond);
}

TEST(SimSmb, AccumulateCostsBytesOverAccumulateBandwidth) {
  SimSmbOptions opts = Rig::ideal_smb();
  opts.accumulate_bandwidth = 5e9;
  Rig rig(opts);
  SimSmbClient client(rig.server, "w0", 7e9);
  SimTime took = 0;
  rig.sim.spawn([](sim::Simulation& s, SimSmbClient& c, SimTime& out) -> sim::Task<> {
    const Handle global = co_await c.create(1, 500'000'000);
    const Handle delta = co_await c.create(2, 500'000'000);
    const SimTime t0 = s.now();
    co_await c.accumulate(delta, global);  // 0.5 GB at 5 GB/s = 100 ms
    out = s.now() - t0;
  }(rig.sim, client, took));
  rig.sim.run();
  EXPECT_NEAR(static_cast<double>(took), 100.0 * kMillisecond, 0.5 * kMillisecond);
  EXPECT_EQ(rig.server.accumulates_served(), 1u);
}

TEST(SimSmb, AccumulatesToSameDestinationSerialise) {
  SimSmbOptions opts = Rig::ideal_smb();
  opts.accumulate_bandwidth = 1e9;
  Rig rig(opts);
  constexpr int kWorkers = 4;
  constexpr std::int64_t kBytes = 100'000'000;  // 100 ms each at 1 GB/s
  std::vector<std::unique_ptr<SimSmbClient>> clients;
  for (int i = 0; i < kWorkers; ++i) {
    clients.push_back(std::make_unique<SimSmbClient>(rig.server, "w" + std::to_string(i), 7e9));
  }
  Handle global;
  sim::Event ready(rig.sim);
  rig.sim.spawn([](SimSmbClient& c, Handle& g, sim::Event& ev) -> sim::Task<> {
    g = co_await c.create(1, kBytes);
    ev.set();
  }(*clients[0], global, ready));
  for (int i = 0; i < kWorkers; ++i) {
    rig.sim.spawn([](sim::Simulation&, SimSmbClient& c, Handle& g, sim::Event& ev, int id)
                      -> sim::Task<> {
      co_await ev.wait();
      const Handle mine = co_await c.create(100 + static_cast<ShmKey>(id), kBytes);
      co_await c.accumulate(mine, g);
    }(rig.sim, *clients[i], global, ready, i));
  }
  rig.sim.run();
  // 4 accumulates x 100 ms, strictly serialised on the destination gate.
  EXPECT_GE(rig.sim.now(), 400 * kMillisecond);
  EXPECT_EQ(rig.server.accumulates_served(), 4u);
}

TEST(SimSmb, AggregateDataPathSharedByReadsAndWrites) {
  // With the aggregate server constraint, a concurrent read and write each
  // get half the server bandwidth; in full-duplex mode they do not contend.
  auto run = [](bool aggregate) {
    SimSmbOptions opts = Rig::ideal_smb();
    opts.aggregate_data_path = aggregate;
    Rig rig(opts);
    SimSmbClient a(rig.server, "a", 7e9);
    SimSmbClient b(rig.server, "b", 7e9);
    Handle ha;
    rig.sim.spawn([](SimSmbClient& c, Handle& h) -> sim::Task<> {
      h = co_await c.create(1, 700'000'000);
    }(a, ha));
    rig.sim.run();  // finish setup
    rig.sim.spawn([](SimSmbClient& c, Handle& h) -> sim::Task<> {
      co_await c.read(h, 700'000'000);
    }(a, ha));
    rig.sim.spawn([](SimSmbClient& c, Handle& h) -> sim::Task<> {
      co_await c.write(h, 700'000'000);
    }(b, ha));
    const SimTime start = rig.sim.now();
    rig.sim.run();
    return rig.sim.now() - start;
  };
  const SimTime shared = run(true);
  const SimTime duplex = run(false);
  EXPECT_NEAR(static_cast<double>(shared), 200.0 * kMillisecond, 2.0 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(duplex), 100.0 * kMillisecond, 2.0 * kMillisecond);
}

TEST(SimSmb, ManyClientsSaturateNearServerBandwidth) {
  // The Fig. 7 mechanism: with per-op overhead, few clients cannot keep the
  // pipe full; many clients saturate it.
  auto aggregate_bandwidth = [](int nclients) {
    SimSmbOptions opts;  // default overheads
    net::FabricOptions fab;
    fab.efficiency = 0.957;
    Rig rig(opts, fab);
    std::vector<std::unique_ptr<SimSmbClient>> clients;
    for (int i = 0; i < nclients; ++i) {
      clients.push_back(
          std::make_unique<SimSmbClient>(rig.server, "w" + std::to_string(i), 7e9));
    }
    constexpr std::int64_t kChunk = 1 << 20;
    constexpr int kOps = 40;
    for (int i = 0; i < nclients; ++i) {
      rig.sim.spawn([](SimSmbClient& c, int id) -> sim::Task<> {
        const Handle h = co_await c.create(static_cast<ShmKey>(id), kChunk);
        for (int op = 0; op < kOps; ++op) {
          if (op % 2 == 0) {
            co_await c.write(h, kChunk);
          } else {
            co_await c.read(h, kChunk);
          }
        }
      }(*clients[i], i));
    }
    rig.sim.run();
    const double total_bytes = static_cast<double>(nclients) * kOps * kChunk;
    return total_bytes / units::to_seconds(rig.sim.now());
  };
  const double bw2 = aggregate_bandwidth(2);
  const double bw8 = aggregate_bandwidth(8);
  const double bw16 = aggregate_bandwidth(16);
  EXPECT_LT(bw2, 0.8 * 7e9);         // few clients cannot saturate
  EXPECT_GT(bw8, bw2);               // monotone increase
  EXPECT_GT(bw16, 0.9 * 6.7e9);      // saturates near the paper's 6.7 GB/s
  EXPECT_LT(bw16, 7e9);              // never exceeds the HCA
}

}  // namespace
}  // namespace shmcaffe::smb
