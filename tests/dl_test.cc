// Tests for the mini-Caffe library: tensor mechanics, each layer's forward
// semantics, numerical gradient checks through every layer type, net DAG
// behaviour, solver policies, parameter flattening, and end-to-end learning.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dl/gradcheck.h"
#include "dl/layers.h"
#include "dl/models.h"
#include "dl/net.h"
#include "dl/param_vector.h"
#include "dl/solver.h"
#include "dl/tensor.h"

namespace shmcaffe::dl {
namespace {

TEST(Tensor, ReshapeAndIndexing) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.size(), 120u);
  EXPECT_EQ(t.n(), 2);
  EXPECT_EQ(t.c(), 3);
  EXPECT_EQ(t.h(), 4);
  EXPECT_EQ(t.w(), 5);
  t.at(1, 2, 3, 4) = 7.5F;
  EXPECT_FLOAT_EQ(t[119], 7.5F);
  t.fill(2.0F);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0, 0), 2.0F);
  t.zero();
  EXPECT_FLOAT_EQ(t.at(1, 1, 1, 1), 0.0F);
}

TEST(Tensor, ReshapeKeepPreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  t.reshape_keep({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t[7], 7.0F);
}

// --- layer forward semantics ---

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d conv("c", 1, 1, 1, 1, 0);
  Tensor x({1, 1, 2, 2});
  x.span()[0] = 1;
  x.span()[1] = 2;
  x.span()[2] = 3;
  x.span()[3] = 4;
  Tensor top;
  conv.setup({&x}, top);
  conv.params()[0]->value[0] = 1.0F;  // 1x1 weight = 1, bias = 0
  conv.forward({&x}, top, true);
  EXPECT_EQ(top.shape(), x.shape());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(top[i], x[i]);
}

TEST(Conv2d, KnownConvolutionValue) {
  // 3x3 all-ones kernel over a 3x3 all-ones image with pad 1: centre = 9,
  // edges = 6, corners = 4.
  Conv2d conv("c", 1, 1, 3, 1, 1);
  Tensor x({1, 1, 3, 3});
  x.fill(1.0F);
  Tensor top;
  conv.setup({&x}, top);
  conv.params()[0]->value.fill(1.0F);
  conv.forward({&x}, top, true);
  EXPECT_FLOAT_EQ(top.at(0, 0, 1, 1), 9.0F);
  EXPECT_FLOAT_EQ(top.at(0, 0, 0, 1), 6.0F);
  EXPECT_FLOAT_EQ(top.at(0, 0, 0, 0), 4.0F);
}

TEST(Conv2d, StrideReducesResolution) {
  Conv2d conv("c", 1, 2, 3, 2, 1);
  Tensor x({2, 1, 8, 8});
  Tensor top;
  conv.setup({&x}, top);
  EXPECT_EQ(top.shape(), (std::vector<int>{2, 2, 4, 4}));
}

TEST(Relu, ClampsNegatives) {
  Relu relu("r");
  Tensor x({1, 4});
  x.span()[0] = -1;
  x.span()[1] = 0;
  x.span()[2] = 2;
  x.span()[3] = -3;
  Tensor top;
  relu.setup({&x}, top);
  relu.forward({&x}, top, true);
  EXPECT_FLOAT_EQ(top[0], 0);
  EXPECT_FLOAT_EQ(top[1], 0);
  EXPECT_FLOAT_EQ(top[2], 2);
  EXPECT_FLOAT_EQ(top[3], 0);
}

TEST(MaxPool2d, SelectsWindowMaxima) {
  MaxPool2d pool("p", 2, 2);
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor top;
  pool.setup({&x}, top);
  pool.forward({&x}, top, true);
  EXPECT_EQ(top.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(top.at(0, 0, 0, 0), 5.0F);
  EXPECT_FLOAT_EQ(top.at(0, 0, 1, 1), 15.0F);
}

TEST(GlobalAvgPool, AveragesSpatialExtent) {
  GlobalAvgPool gap("g");
  Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 2.0F;       // channel 0
  for (std::size_t i = 4; i < 8; ++i) x[i] = static_cast<float>(i);  // 4,5,6,7
  Tensor top;
  gap.setup({&x}, top);
  gap.forward({&x}, top, true);
  EXPECT_FLOAT_EQ(top.at(0, 0, 0, 0), 2.0F);
  EXPECT_FLOAT_EQ(top.at(0, 1, 0, 0), 5.5F);
}

TEST(FullyConnected, MatrixVectorProduct) {
  FullyConnected fc("f", 3, 2);
  Tensor x({1, 3});
  x.span()[0] = 1;
  x.span()[1] = 2;
  x.span()[2] = 3;
  Tensor top;
  fc.setup({&x}, top);
  auto params = fc.params();
  // W = [[1,0,1],[0,1,0]], b = [0.5, -0.5]
  params[0]->value[0] = 1;
  params[0]->value[2] = 1;
  params[0]->value[4] = 1;
  params[1]->value[0] = 0.5F;
  params[1]->value[1] = -0.5F;
  fc.forward({&x}, top, true);
  EXPECT_FLOAT_EQ(top[0], 4.5F);   // 1+3+0.5
  EXPECT_FLOAT_EQ(top[1], 1.5F);   // 2-0.5
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop("d", 0.5);
  Tensor x({1, 100});
  x.fill(3.0F);
  Tensor top;
  drop.setup({&x}, top);
  drop.forward({&x}, top, /*train=*/false);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(top[i], 3.0F);
}

TEST(Dropout, TrainModePreservesExpectation) {
  Dropout drop("d", 0.5);
  Tensor x({1, 20000});
  x.fill(1.0F);
  Tensor top;
  drop.setup({&x}, top);
  drop.forward({&x}, top, /*train=*/true);
  double sum = 0.0;
  int zeros = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += top[i];
    zeros += (top[i] == 0.0F);
  }
  EXPECT_NEAR(sum / static_cast<double>(x.size()), 1.0, 0.05);  // inverted scaling
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(x.size()), 0.5, 0.05);
}

TEST(Concat, StacksChannels) {
  Concat concat("cat");
  Tensor a({1, 1, 2, 2});
  a.fill(1.0F);
  Tensor b({1, 2, 2, 2});
  b.fill(2.0F);
  Tensor top;
  concat.setup({&a, &b}, top);
  concat.forward({&a, &b}, top, true);
  EXPECT_EQ(top.shape(), (std::vector<int>{1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(top.at(0, 0, 0, 0), 1.0F);
  EXPECT_FLOAT_EQ(top.at(0, 1, 0, 0), 2.0F);
  EXPECT_FLOAT_EQ(top.at(0, 2, 1, 1), 2.0F);
}

TEST(EltwiseAdd, SumsBottoms) {
  EltwiseAdd add("a");
  Tensor a({2, 3});
  a.fill(1.5F);
  Tensor b({2, 3});
  b.fill(-0.5F);
  Tensor top;
  add.setup({&a, &b}, top);
  add.forward({&a, &b}, top, true);
  for (std::size_t i = 0; i < top.size(); ++i) EXPECT_FLOAT_EQ(top[i], 1.0F);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss("l");
  Tensor logits({2, 4});
  logits.zero();
  Tensor labels({2});
  labels[0] = 0;
  labels[1] = 3;
  Tensor top;
  loss.setup({&logits, &labels}, top);
  loss.forward({&logits, &labels}, top, true);
  EXPECT_NEAR(top[0], std::log(4.0), 1e-5);
  const Tensor& probs = loss.probabilities();
  EXPECT_NEAR(probs[0], 0.25F, 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  SoftmaxCrossEntropy loss("l");
  Tensor logits({1, 3});
  logits[0] = 10.0F;
  Tensor labels({1});
  labels[0] = 0;
  Tensor top;
  loss.setup({&logits, &labels}, top);
  loss.forward({&logits, &labels}, top, true);
  EXPECT_LT(top[0], 0.01F);
}

// --- gradient checks through every layer type ---

struct GradCheckCase {
  std::string name;
  std::function<Net()> build;
};

class NetGradCheck : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(NetGradCheck, AnalyticMatchesNumeric) {
  common::Rng rng(1234);
  Net net = GetParam().build();
  net.init_params(rng);
  // Small random batch.
  Tensor& data = net.input("data");
  const auto shape = GetParam().name == "mlp_flat" ? std::vector<int>{4, 6}
                                                   : std::vector<int>{2, 3, 8, 8};
  data.reshape(shape);
  for (float& v : data.span()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor& labels = net.input("label");
  labels.reshape({shape[0]});
  for (float& v : labels.span()) v = static_cast<float>(rng.uniform_int(0, 3));

  const GradCheckResult result = check_gradients(net, 1e-3, 120, rng);
  EXPECT_EQ(result.checked, 120u);
  EXPECT_LT(result.max_rel_error, 0.05) << GetParam().name;
}

Net build_conv_pool_fc() {
  Net net("conv_pool_fc");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("conv", 3, 4, 3, 1, 1), {"data"}, "conv");
  net.add(std::make_unique<Relu>("relu"), {"conv"}, "relu");
  net.add(std::make_unique<MaxPool2d>("pool", 2, 2), {"relu"}, "pool");
  net.add(std::make_unique<FullyConnected>("logits", 4 * 4 * 4, 4), {"pool"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

Net build_strided_conv_gap() {
  Net net("strided_conv_gap");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("conv", 3, 5, 3, 2, 1), {"data"}, "conv");
  net.add(std::make_unique<Relu>("relu"), {"conv"}, "relu");
  net.add(std::make_unique<GlobalAvgPool>("gap"), {"relu"}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", 5, 4), {"gap"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

Net build_branchy_concat() {
  // "data" consumed by two branches: exercises gradient accumulation.
  Net net("branchy");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("b1", 3, 2, 1, 1, 0), {"data"}, "b1");
  net.add(std::make_unique<Conv2d>("b2", 3, 3, 3, 1, 1), {"data"}, "b2");
  net.add(std::make_unique<Concat>("cat"), {"b1", "b2"}, "cat");
  net.add(std::make_unique<Relu>("relu"), {"cat"}, "relu");
  net.add(std::make_unique<GlobalAvgPool>("gap"), {"relu"}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", 5, 4), {"gap"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

Net build_residual() {
  Net net("residual");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<Conv2d>("stem", 3, 4, 3, 1, 1), {"data"}, "stem");
  net.add(std::make_unique<Conv2d>("body", 4, 4, 3, 1, 1), {"stem"}, "body");
  net.add(std::make_unique<Relu>("body_relu"), {"body"}, "body_relu");
  net.add(std::make_unique<EltwiseAdd>("add"), {"stem", "body_relu"}, "add");
  net.add(std::make_unique<GlobalAvgPool>("gap"), {"add"}, "gap");
  net.add(std::make_unique<FullyConnected>("logits", 4, 4), {"gap"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

Net build_mlp_flat() {
  Net net("mlp_flat");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<FullyConnected>("fc1", 6, 10), {"data"}, "fc1");
  net.add(std::make_unique<Relu>("relu"), {"fc1"}, "relu");
  net.add(std::make_unique<FullyConnected>("logits", 10, 4), {"relu"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  return net;
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NetGradCheck,
    ::testing::Values(GradCheckCase{"conv_pool_fc", build_conv_pool_fc},
                      GradCheckCase{"strided_conv_gap", build_strided_conv_gap},
                      GradCheckCase{"branchy_concat", build_branchy_concat},
                      GradCheckCase{"residual", build_residual},
                      GradCheckCase{"mlp_flat", build_mlp_flat}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) { return info.param.name; });

// --- Net mechanics ---

TEST(Net, RejectsUnknownInputBlob) {
  Net net;
  net.add_input("data");
  EXPECT_THROW(net.add(std::make_unique<Relu>("r"), {"nope"}, "out"), std::invalid_argument);
}

TEST(Net, RejectsDuplicateOutputBlob) {
  Net net;
  net.add_input("data");
  net.add(std::make_unique<Relu>("r1"), {"data"}, "out");
  EXPECT_THROW(net.add(std::make_unique<Relu>("r2"), {"data"}, "out"), std::invalid_argument);
}

TEST(Net, ReshapesWhenBatchSizeChanges) {
  common::Rng rng(1);
  Net net = build_mlp_flat();
  net.init_params(rng);
  net.input("data").reshape({4, 6});
  net.input("label").reshape({4});
  (void)net.forward(true);
  EXPECT_EQ(net.blob("logits").dim(0), 4);
  net.input("data").reshape({9, 6});
  net.input("label").reshape({9});
  (void)net.forward(true);
  EXPECT_EQ(net.blob("logits").dim(0), 9);
}

TEST(Net, ParamCountMatchesArchitecture) {
  Net net = build_mlp_flat();
  // fc1: 6*10+10, logits: 10*4+4
  EXPECT_EQ(net.param_count(), 70u + 44u);
}

TEST(Net, ArgmaxRows) {
  Tensor logits({2, 3});
  logits[0] = 0.1F;
  logits[1] = 0.9F;
  logits[2] = 0.2F;
  logits[3] = 5.0F;
  logits[4] = -1.0F;
  logits[5] = 2.0F;
  EXPECT_EQ(argmax_rows(logits), (std::vector<int>{1, 0}));
}

// --- ParamVector ---

TEST(ParamVector, RoundTripPreservesValues) {
  common::Rng rng(3);
  Net net = build_conv_pool_fc();
  net.init_params(rng);
  std::vector<float> flat = params_snapshot(net);
  EXPECT_EQ(flat.size(), net.param_count());
  // Perturb and restore.
  std::vector<float> doubled(flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) doubled[i] = 2.0F * flat[i];
  copy_params_from(net, doubled);
  std::vector<float> readback(flat.size());
  copy_params_to(net, readback);
  EXPECT_EQ(readback, doubled);
}

TEST(ParamVector, SizeMismatchThrows) {
  Net net = build_mlp_flat();
  std::vector<float> wrong(net.param_count() + 1);
  EXPECT_THROW(copy_params_from(net, wrong), std::invalid_argument);
  EXPECT_THROW(copy_params_to(net, wrong), std::invalid_argument);
}

TEST(ParamVector, GradsRoundTrip) {
  common::Rng rng(5);
  Net net = build_mlp_flat();
  net.init_params(rng);
  net.input("data").reshape({2, 6});
  net.input("label").reshape({2});
  (void)net.forward(true);
  net.backward();
  std::vector<float> grads(net.param_count());
  copy_grads_to(net, grads);
  float norm = 0.0F;
  for (float g : grads) norm += g * g;
  EXPECT_GT(norm, 0.0F);
  std::vector<float> zeros(grads.size(), 0.0F);
  copy_grads_from(net, zeros);
  copy_grads_to(net, grads);
  for (float g : grads) EXPECT_EQ(g, 0.0F);
}

// --- Solver ---

TEST(Solver, FixedPolicyIsConstant) {
  Net net = build_mlp_flat();
  SolverOptions options;
  options.base_lr = 0.05;
  SgdSolver solver(net, options);
  EXPECT_DOUBLE_EQ(solver.learning_rate(0), 0.05);
  EXPECT_DOUBLE_EQ(solver.learning_rate(100000), 0.05);
}

TEST(Solver, StepPolicyDecaysByGammaEveryStepSize) {
  Net net = build_mlp_flat();
  SolverOptions options;
  options.base_lr = 0.1;
  options.lr_policy = LrPolicy::kStep;
  options.gamma = 0.1;
  options.step_size = 100;
  SgdSolver solver(net, options);
  EXPECT_DOUBLE_EQ(solver.learning_rate(0), 0.1);
  EXPECT_DOUBLE_EQ(solver.learning_rate(99), 0.1);
  EXPECT_NEAR(solver.learning_rate(100), 0.01, 1e-12);
  EXPECT_NEAR(solver.learning_rate(250), 0.001, 1e-12);
}

TEST(Solver, MultiStepPolicy) {
  Net net = build_mlp_flat();
  SolverOptions options;
  options.base_lr = 1.0;
  options.lr_policy = LrPolicy::kMultiStep;
  options.gamma = 0.5;
  options.step_values = {10, 30};
  SgdSolver solver(net, options);
  EXPECT_DOUBLE_EQ(solver.learning_rate(5), 1.0);
  EXPECT_DOUBLE_EQ(solver.learning_rate(15), 0.5);
  EXPECT_DOUBLE_EQ(solver.learning_rate(40), 0.25);
}

TEST(Solver, PolyPolicyReachesZeroAtHorizon) {
  Net net = build_mlp_flat();
  SolverOptions options;
  options.base_lr = 0.2;
  options.lr_policy = LrPolicy::kPoly;
  options.power = 2.0;
  options.max_iter = 100;
  SgdSolver solver(net, options);
  EXPECT_DOUBLE_EQ(solver.learning_rate(0), 0.2);
  EXPECT_NEAR(solver.learning_rate(50), 0.05, 1e-12);
  EXPECT_NEAR(solver.learning_rate(100), 0.0, 1e-12);
}

TEST(Solver, InvAndExpPoliciesDecayMonotonically) {
  Net net = build_mlp_flat();
  for (LrPolicy policy : {LrPolicy::kInv, LrPolicy::kExp}) {
    SolverOptions options;
    options.lr_policy = policy;
    options.gamma = policy == LrPolicy::kExp ? 0.99 : 0.001;
    options.power = 0.75;
    SgdSolver solver(net, options);
    double prev = solver.learning_rate(0);
    for (int it = 1; it <= 1000; it += 100) {
      const double lr = solver.learning_rate(it);
      EXPECT_LT(lr, prev);
      prev = lr;
    }
  }
}

TEST(Solver, StepAppliesMomentumUpdate) {
  // One parameter, known gradient, check two steps by hand.
  Net net("tiny");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<FullyConnected>("logits", 1, 2), {"data"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  SolverOptions options;
  options.base_lr = 0.1;
  options.momentum = 0.9;
  SgdSolver solver(net, options);

  auto params = net.params();
  params[0]->value.zero();
  params[0]->grad.fill(1.0F);
  params[1]->grad.zero();
  solver.apply_update(0.1);
  EXPECT_NEAR(params[0]->value[0], -0.1, 1e-6);  // v=0.1, w=-0.1
  params[0]->grad.fill(1.0F);
  solver.apply_update(0.1);
  // v = 0.9*0.1 + 0.1 = 0.19; w = -0.29
  EXPECT_NEAR(params[0]->value[0], -0.29, 1e-6);
}

TEST(Solver, WeightDecayPullsTowardsZero) {
  Net net("tiny");
  net.add_input("data");
  net.add_input("label");
  net.add(std::make_unique<FullyConnected>("logits", 1, 2), {"data"}, "logits");
  net.add(std::make_unique<SoftmaxCrossEntropy>("loss"), {"logits", "label"}, "loss");
  SolverOptions options;
  options.base_lr = 0.1;
  options.momentum = 0.0;
  options.weight_decay = 0.5;
  SgdSolver solver(net, options);
  auto params = net.params();
  params[0]->value.fill(1.0F);
  params[0]->grad.zero();
  params[1]->grad.zero();
  solver.apply_update(0.1);
  // w -= lr * wd * w = 1 - 0.1*0.5 = 0.95
  EXPECT_NEAR(params[0]->value[0], 0.95, 1e-6);
}

// --- model zoo ---

class ModelZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZoo, ForwardBackwardRunsAndLossIsFinite) {
  common::Rng rng(7);
  ModelInputSpec spec;
  Net net = make_model(GetParam(), spec);
  net.init_params(rng);
  Tensor& data = net.input("data");
  data.reshape({4, spec.channels, spec.height, spec.width});
  for (float& v : data.span()) v = static_cast<float>(rng.uniform(-1, 1));
  Tensor& labels = net.input("label");
  labels.reshape({4});
  for (float& v : labels.span()) {
    v = static_cast<float>(rng.uniform_int(0, spec.classes - 1));
  }
  const Tensor& loss = net.forward(true);
  EXPECT_TRUE(std::isfinite(loss[0]));
  // Freshly initialised: loss should be in the vicinity of log(classes)
  // (the residual family starts higher — MSRA variance compounds through
  // identity shortcuts).
  EXPECT_NEAR(loss[0], std::log(static_cast<double>(spec.classes)), 2.5);
  net.backward();
  std::vector<float> grads(net.param_count());
  copy_grads_to(net, grads);
  double norm = 0.0;
  for (float g : grads) norm += static_cast<double>(g) * g;
  EXPECT_GT(norm, 0.0);
  EXPECT_TRUE(net.has_blob("logits"));
}

INSTANTIATE_TEST_SUITE_P(Families, ModelZoo,
                         ::testing::Values("mlp", "mini_vgg", "mini_inception",
                                           "mini_resnet"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(ModelZoo, UnknownFamilyThrows) {
  EXPECT_THROW((void)make_model("alexnet", {}), std::invalid_argument);
}

TEST(ModelZoo, RelativeParameterCountsMatchFamilies) {
  ModelInputSpec spec;
  Net vgg = make_mini_vgg(spec);
  Net inception = make_mini_inception(spec);
  // The VGG family is parameter-heavy relative to inception (the property
  // the paper's communication analysis leans on).
  EXPECT_GT(vgg.param_count(), 3 * inception.param_count());
}

TEST(Learning, SgdLearnsLinearlySeparableData) {
  // Two Gaussian blobs in 6-D; an MLP should reach high accuracy quickly.
  common::Rng rng(42);
  ModelInputSpec spec;
  spec.channels = 1;
  spec.height = 1;
  spec.width = 6;
  spec.classes = 2;
  Net net = make_mlp(spec, 16);
  net.init_params(rng);

  SolverOptions options;
  options.base_lr = 0.05;
  options.momentum = 0.9;
  SgdSolver solver(net, options);

  constexpr int kBatch = 32;
  auto fill_batch = [&rng](Tensor& data, Tensor& labels) {
    data.reshape({kBatch, 6});
    labels.reshape({kBatch});
    for (int n = 0; n < kBatch; ++n) {
      const int cls = static_cast<int>(rng.uniform_int(0, 1));
      labels[static_cast<std::size_t>(n)] = static_cast<float>(cls);
      for (int i = 0; i < 6; ++i) {
        const double centre = cls == 0 ? -1.0 : 1.0;
        data[static_cast<std::size_t>(n * 6 + i)] =
            static_cast<float>(rng.normal(centre, 0.8));
      }
    }
  };

  float first_loss = 0.0F;
  float last_loss = 0.0F;
  for (int iter = 0; iter < 80; ++iter) {
    fill_batch(net.input("data"), net.input("label"));
    const Tensor& loss = net.forward(true);
    if (iter == 0) first_loss = loss[0];
    last_loss = loss[0];
    net.backward();
    solver.step();
  }
  EXPECT_LT(last_loss, 0.2F);
  EXPECT_LT(last_loss, first_loss * 0.5F);

  // Held-out accuracy.
  fill_batch(net.input("data"), net.input("label"));
  (void)net.forward(false);
  const std::vector<int> predicted = argmax_rows(net.blob("logits"));
  int correct = 0;
  for (int n = 0; n < kBatch; ++n) {
    correct += predicted[static_cast<std::size_t>(n)] ==
               static_cast<int>(net.input("label")[static_cast<std::size_t>(n)]);
  }
  EXPECT_GE(correct, kBatch * 9 / 10);
}

}  // namespace
}  // namespace shmcaffe::dl
