// NCCL-like intra-node collectives.
//
// The paper's hybrid SGD aggregates gradients inside a node with
// ncclAllReduce and broadcasts the root's refreshed weights with ncclBcast
// (§III-D).  Functionally these are ring collectives among the node's GPU
// worker threads; this module provides exactly that surface:
//
//   coll::DeviceGroup group(4);                  // one per node
//   // on each worker thread d:
//   auto comm = group.communicator(d);
//   comm.all_reduce_sum(grad_span);              // ncclAllReduce(..., ncclSum)
//   comm.broadcast(0, weight_span);              // ncclBcast from the root
//
// The implementation runs a ring over an internal MiniMPI context — the
// algorithms (and their tests) are shared rather than duplicated.
// The timing twin for the simulation is the PCIe model in pcie_model.h.
#pragma once

#include <span>

#include "minimpi/minimpi.h"

namespace shmcaffe::coll {

class Communicator;

/// One group of devices (GPUs) inside a node.
class DeviceGroup {
 public:
  explicit DeviceGroup(int device_count) : context_(device_count) {}

  [[nodiscard]] int device_count() const { return context_.size(); }
  [[nodiscard]] Communicator communicator(int device);

 private:
  minimpi::Context context_;
};

/// A device's handle into its group; one per worker thread.
class Communicator {
 public:
  Communicator() = default;

  [[nodiscard]] int device() const { return endpoint_.rank(); }
  [[nodiscard]] int device_count() const { return endpoint_.size(); }

  /// ncclAllReduce(sum): elementwise sum across the group, in place.
  void all_reduce_sum(std::span<float> data) { endpoint_.allreduce_sum(data); }

  /// All-reduce then divide by the group size (gradient averaging).
  void all_reduce_mean(std::span<float> data);

  /// ncclBcast: root's buffer replaces everyone's.
  void broadcast(int root, std::span<float> data) { endpoint_.broadcast(root, data); }

  /// ncclReduce(sum) to the root.
  void reduce_sum(int root, std::span<float> data) { endpoint_.reduce_sum(root, data); }

  /// Group-wide barrier (used around phase changes in tests and trainers).
  void barrier() { endpoint_.barrier(); }

 private:
  friend class DeviceGroup;
  explicit Communicator(minimpi::Endpoint endpoint) : endpoint_(endpoint) {}
  minimpi::Endpoint endpoint_;
};

inline Communicator DeviceGroup::communicator(int device) {
  return Communicator(context_.endpoint(device));
}

inline void Communicator::all_reduce_mean(std::span<float> data) {
  all_reduce_sum(data);
  const float inv = 1.0F / static_cast<float>(device_count());
  for (float& v : data) v *= inv;
}

}  // namespace shmcaffe::coll
