// PCIe cost model for intra-node collectives (the timing twin of nccl.h).
//
// GPUs inside one server exchange data over the PCIe system bus (the paper
// notes ShmCaffe's intra-node traffic rides PCI-E).  The model treats the
// node's PCIe complex as a single shared full-duplex pipe of
// `bus_bandwidth` bytes/s and prices the standard ring algorithms:
//
//   ring allreduce :  2 (K-1)/K * bytes / bus_bandwidth   + 2(K-1) hops
//   broadcast      :  (K-1)/K   * bytes / bus_bandwidth   + (K-1)  hops
//
// With K devices on a ring over one shared bus, each algorithm step moves K
// chunks of bytes/K concurrently, so a step costs bytes/K / bus_bandwidth
// x K = bytes / bus_bandwidth ... empirically NCCL's ring on one PCIe root
// complex achieves roughly the single-link rate, which is what the formula
// above (per-step cost = chunk/bandwidth, K chunks overlapped across
// distinct link segments) expresses.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace shmcaffe::coll {

struct PcieModel {
  /// Effective per-direction PCIe bandwidth between peers (bytes/second).
  /// PCIe 3.0 x16 peaks at ~12.5 GB/s; effective P2P rates on the paper's
  /// 4-GPU SuperMicro boxes are lower.
  double bus_bandwidth = 10e9;
  /// Per-hop launch/synchronisation latency of a collective step.
  SimTime hop_latency = 20 * units::kMicrosecond;

  /// Time for a K-device ring allreduce of a `bytes` buffer.
  [[nodiscard]] SimTime ring_allreduce_time(int devices, std::int64_t bytes) const {
    if (devices <= 1 || bytes <= 0) return 0;
    const double k = devices;
    const double data_seconds =
        2.0 * (k - 1.0) / k * static_cast<double>(bytes) / bus_bandwidth;
    return units::from_seconds(data_seconds) + 2 * (devices - 1) * hop_latency;
  }

  /// Time for a K-device ring broadcast of a `bytes` buffer.
  [[nodiscard]] SimTime broadcast_time(int devices, std::int64_t bytes) const {
    if (devices <= 1 || bytes <= 0) return 0;
    const double k = devices;
    const double data_seconds = (k - 1.0) / k * static_cast<double>(bytes) / bus_bandwidth;
    return units::from_seconds(data_seconds) + (devices - 1) * hop_latency;
  }

  /// Time for a K-device ring reduce (to one root) of a `bytes` buffer.
  [[nodiscard]] SimTime reduce_time(int devices, std::int64_t bytes) const {
    return broadcast_time(devices, bytes);  // same traffic pattern, reversed
  }
};

}  // namespace shmcaffe::coll
