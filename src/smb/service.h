// Abstract Soft Memory Box service surface.
//
// The paper's workers talk to "the SMB" without caring whether it is one
// passive memory node or something more available.  SmbService captures that
// contract: segment lifecycle (Fig. 2 create/attach by SHM key), the float
// data path (read / write / server-side accumulate, §III-B), the counter
// segment ops backing the shared progress board (§III-E), and update
// notification (version counters, Fig. 6 T.A5).  Implementations:
//
//   * SmbServer        — one functional in-memory server (server.h);
//   * ReplicatedSmb    — a primary/backup ensemble of SmbServers with
//                        transparent failover (src/recovery/replicated_smb.h).
//
// Error model: SmbError for misuse (kind/size mismatch, bad handle),
// SmbNotFound for attach-before-create races (retryable), SmbUnavailable for
// a fail-stopped service — the one error a recovery layer may translate into
// a failover instead of propagating.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/ordered_mutex.h"

namespace shmcaffe::smb {

/// Application-chosen name of a segment (the "SHM key" the master worker
/// broadcasts to slaves in Fig. 2).
using ShmKey = std::uint64_t;

/// Service-issued access key for an attached segment (stands in for the
/// InfiniBand remote key of the real system).
struct Handle {
  std::uint64_t access_key = 0;
  [[nodiscard]] bool valid() const { return access_key != 0; }
  friend bool operator==(const Handle&, const Handle&) = default;
};

class SmbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Attach target does not exist (yet) — the one SmbError worth retrying:
/// a slave may race the master's segment creation (Fig. 2 steps 1-3).
class SmbNotFound : public SmbError {
 public:
  using SmbError::SmbError;
};

/// The service has fail-stopped (crash fault injection): every operation on
/// it is gone for good.  A replicated ensemble catches this and fails over
/// to a surviving replica; without a replica it surfaces to the worker.
class SmbUnavailable : public SmbError {
 public:
  using SmbError::SmbError;
};

/// A per-chunk checksum mismatch was detected on the touched range (silent
/// data corruption, e.g. a bit flip or a torn write).  A replicated ensemble
/// catches this and read-repairs the bad copy from its peers; without a
/// clean peer it surfaces to the worker, whose recovery layer degrades to a
/// checkpoint rollback instead of consuming poisoned weights.
class SmbCorruption : public SmbError {
 public:
  using SmbError::SmbError;
};

/// Identity of one mirrored mutation, used for idempotent replay.  A
/// mirroring agent stamps each float-path mutation with its own id and a
/// strictly increasing sequence number; a server that already applied the
/// tag drops the replay instead of double-applying it (the "last in-flight
/// op" replayed after a failover must be exactly-once per replica).
struct OpTag {
  std::uint64_t writer = 0;  ///< mirroring-agent id (0 = untagged)
  std::uint64_t sequence = 0;  ///< strictly increasing per writer; 0 = untagged
  [[nodiscard]] bool tagged() const { return writer != 0 && sequence != 0; }
};

/// What a writer does when it arrives while pinned read views are
/// outstanding on the segment (see SmbService::read_pinned).
enum class PinWritePolicy {
  /// The writer clones the segment's storage and mutates the clone; the
  /// pinned views keep reading the retired epoch (immutable, kept alive by
  /// their references) and the clone becomes the segment's live storage.
  /// Writers never wait; readers see a consistent snapshot.
  kCopyOnWrite,
  /// The writer blocks until every pin on the live storage is released —
  /// cheaper (no clone) when exchanges are short and writers can tolerate
  /// the stall.
  kBlockWriters,
};

/// Epoch-pinned zero-copy read view over a float segment (move-only RAII).
///
/// The span aliases the service's own storage for one *storage epoch*: the
/// contents never change underneath the view (writers either clone the
/// storage or wait, per PinWritePolicy), and checksum verification — when
/// the integrity layer is on — happened once at pin time instead of per
/// element copied.  Destroying (or release()-ing) the view unpins the
/// epoch; services assert pin/unpin balance when the segment is freed.
class PinnedFloats {
 public:
  PinnedFloats() = default;
  /// `unpin` runs exactly once, at release()/destruction (may be empty).
  PinnedFloats(std::span<const float> view, std::function<void()> unpin)
      : view_(view), unpin_(std::move(unpin)) {}
  PinnedFloats(const PinnedFloats&) = delete;
  PinnedFloats& operator=(const PinnedFloats&) = delete;
  PinnedFloats(PinnedFloats&& other) noexcept { *this = std::move(other); }
  /// Self-move safe: without the identity guard the release() would unpin
  /// the very epoch `other` is about to hand over, leaving a dangling span
  /// and a double-unpin at destruction.
  PinnedFloats& operator=(PinnedFloats&& other) noexcept {
    if (this != &other) {
      release();
      view_ = std::exchange(other.view_, {});
      unpin_ = std::exchange(other.unpin_, nullptr);
    }
    return *this;
  }
  ~PinnedFloats() { release(); }

  [[nodiscard]] std::span<const float> span() const { return view_; }
  [[nodiscard]] const float* data() const { return view_.data(); }
  [[nodiscard]] std::size_t size() const { return view_.size(); }
  [[nodiscard]] bool empty() const { return view_.empty(); }

  /// Unpins early (idempotent); the span must not be used afterwards.
  void release() noexcept {
    if (unpin_) {
      unpin_();
      unpin_ = nullptr;
    }
    view_ = {};
  }

 private:
  std::span<const float> view_;
  std::function<void()> unpin_;
};

class SmbService {
 public:
  virtual ~SmbService() = default;

  // --- segment lifecycle -------------------------------------------------

  /// Creates a float segment of `count` elements under `key`.
  virtual Handle create_floats(ShmKey key, std::size_t count) = 0;
  /// Attaches to an existing float segment; `count` (if nonzero) must match.
  virtual Handle attach_floats(ShmKey key, std::size_t count) = 0;
  /// Creates a counter segment of `count` int64 slots (zero-initialised).
  virtual Handle create_counters(ShmKey key, std::size_t count) = 0;
  virtual Handle attach_counters(ShmKey key, std::size_t count) = 0;
  /// Drops one reference; the segment is freed when the creator and all
  /// attachments released it.
  virtual void release(Handle handle) = 0;
  /// Elements in the segment.
  [[nodiscard]] virtual std::size_t size(Handle handle) const = 0;

  // --- float segment data path -------------------------------------------

  virtual void read(Handle handle, std::span<float> dst, std::size_t offset) const = 0;

  /// Zero-copy read: pins the segment's current storage epoch and returns a
  /// view of `count` floats at `offset` directly into it.  The view stays
  /// consistent until released (writers copy-on-write or block, per the
  /// implementation's PinWritePolicy); integrity verification happens once
  /// at pin time.  The default forwards to a copy read into an owned buffer
  /// so passive implementations keep working — only implementations that
  /// can actually hand out stable views (SmbServer, ReplicatedSmb, the sim
  /// client) override this with a genuinely zero-copy path.
  /// The view escapes to the caller by design — that is the whole contract.
  [[nodiscard]] virtual SHMCAFFE_PIN_ESCAPE PinnedFloats read_pinned(
      Handle handle, std::size_t count, std::size_t offset = 0) const {
    auto owned = std::make_shared<std::vector<float>>(count);
    read(handle, {owned->data(), owned->size()}, offset);
    std::span<const float> view{owned->data(), owned->size()};
    return PinnedFloats(view, [owned]() mutable { owned.reset(); });
  }

  virtual void write(Handle handle, std::span<const float> src, std::size_t offset) = 0;
  /// Server-side accumulate: dst[i] += src[i] for the full (equal) lengths.
  virtual void accumulate(Handle src, Handle dst) = 0;
  /// Overwrite-style accumulate used for initialisation: dst[i] = src[i].
  virtual void copy_segment(Handle src, Handle dst) = 0;

  // --- tagged (idempotent) mutations --------------------------------------
  // Variants stamped with a caller OpTag so an ambiguous retry (the client
  // timed out but the op may have landed) can be resent safely: a service
  // that tracks applied tags drops the replay instead of double-applying it.
  // The defaults forward to the plain ops (no replay tracking) so passive
  // implementations keep working; SmbServer and ReplicatedSmb override.

  virtual void write_tagged(Handle handle, std::span<const float> src, std::size_t offset,
                            OpTag /*tag*/) {
    write(handle, src, offset);
  }
  virtual void accumulate_tagged(Handle src, Handle dst, OpTag /*tag*/) {
    accumulate(src, dst);
  }

  // --- counter segment ops -----------------------------------------------

  [[nodiscard]] virtual std::int64_t load(Handle handle, std::size_t index) const = 0;
  virtual void store(Handle handle, std::size_t index, std::int64_t value) = 0;
  virtual std::int64_t fetch_add(Handle handle, std::size_t index, std::int64_t delta) = 0;
  /// Snapshot reductions over the whole counter segment (progress criteria).
  [[nodiscard]] virtual std::int64_t min_value(Handle handle) const = 0;
  [[nodiscard]] virtual std::int64_t max_value(Handle handle) const = 0;
  [[nodiscard]] virtual std::int64_t sum(Handle handle) const = 0;

  // --- update notification -----------------------------------------------

  /// Monotone version, bumped by every write/accumulate/copy to the segment.
  [[nodiscard]] virtual std::uint64_t version(Handle handle) const = 0;
  /// Blocks until version(handle) >= min_version or `timeout` elapses.
  /// Returns the version seen, or nullopt on timeout.  An implementation
  /// with replicas resumes the wait on a survivor after a failover instead
  /// of burning the deadline on a dead primary.
  SHMCAFFE_BLOCKS virtual std::optional<std::uint64_t> wait_version_at_least(
      Handle handle, std::uint64_t min_version, std::chrono::nanoseconds timeout) const = 0;
};

}  // namespace shmcaffe::smb
