// Functional Soft Memory Box (SMB) server.
//
// The SMB is the paper's replacement for a parameter server: a passive
// remote shared-memory service.  It provides (§III-B):
//   * creation of named remote shared memory (RSM) segments under an SHM key
//   * allocation (attach) of an existing segment by other workers
//   * read / write of segment contents
//   * server-side accumulation between segments (the only "compute" the SMB
//     offers; the paper uses it for the global-weight update, eq. (7))
//   * update notification (version counters workers can wait on)
//
// This variant holds real memory and is safe for concurrent use from many OS
// threads — it is what the functional distributed-training experiments talk
// to.  A timing twin over the simulated RDMA stack lives in sim_smb.h.
//
// Two segment kinds exist:
//   * float segments    — DNN parameter buffers (read/write/accumulate)
//   * counter segments  — int64 slots with atomic ops, used for the shared
//                         training-progress board (§III-E)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"

namespace shmcaffe::smb {

/// Application-chosen name of a segment (the "SHM key" the master worker
/// broadcasts to slaves in Fig. 2).
using ShmKey = std::uint64_t;

/// Server-issued access key for an attached segment (stands in for the
/// InfiniBand remote key of the real system).
struct Handle {
  std::uint64_t access_key = 0;
  [[nodiscard]] bool valid() const { return access_key != 0; }
  friend bool operator==(const Handle&, const Handle&) = default;
};

class SmbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Attach target does not exist (yet) — the one SmbError worth retrying:
/// a slave may race the master's segment creation (Fig. 2 steps 1-3).
class SmbNotFound : public SmbError {
 public:
  using SmbError::SmbError;
};

struct SmbServerOptions {
  /// Total granted memory of the memory node (the paper's memory server has
  /// 256 GB; tests use small values to exercise exhaustion).
  std::int64_t capacity_bytes = 8LL << 30;
};

/// Cumulative operation statistics (for reports and tests).
struct SmbServerStats {
  std::uint64_t creates = 0;
  std::uint64_t attaches = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t accumulates = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t bytes_in_use = 0;
};

class SmbServer {
 public:
  explicit SmbServer(SmbServerOptions options = {});
  SmbServer(const SmbServer&) = delete;
  SmbServer& operator=(const SmbServer&) = delete;

  // --- segment lifecycle -------------------------------------------------

  /// Creates a float segment of `count` elements under `key`.
  /// Fails if the key exists or capacity would be exceeded.
  Handle create_floats(ShmKey key, std::size_t count);

  /// Attaches to an existing float segment; `count` (if nonzero) must match.
  Handle attach_floats(ShmKey key, std::size_t count = 0);

  /// Creates a counter segment of `count` int64 slots (zero-initialised).
  Handle create_counters(ShmKey key, std::size_t count);

  Handle attach_counters(ShmKey key, std::size_t count = 0);

  /// Drops one reference; the segment is freed when the creator and all
  /// attachments released it.
  void release(Handle handle);

  /// Elements in the segment.
  [[nodiscard]] std::size_t size(Handle handle) const;

  // --- float segment data path -------------------------------------------

  void read(Handle handle, std::span<float> dst, std::size_t offset = 0) const;
  void write(Handle handle, std::span<const float> src, std::size_t offset = 0);

  /// Server-side accumulate: dst[i] += src[i] for the full (equal) lengths.
  /// Requests against the same destination are processed exclusively
  /// (paper §III-G, step T.A3).
  void accumulate(Handle src, Handle dst);

  /// Overwrite-style accumulate used for initialisation: dst[i] = src[i].
  void copy_segment(Handle src, Handle dst);

  // --- counter segment ops -----------------------------------------------

  [[nodiscard]] std::int64_t load(Handle handle, std::size_t index) const;
  void store(Handle handle, std::size_t index, std::int64_t value);
  std::int64_t fetch_add(Handle handle, std::size_t index, std::int64_t delta);
  /// Snapshot reductions over the whole counter segment (progress criteria).
  [[nodiscard]] std::int64_t min_value(Handle handle) const;
  [[nodiscard]] std::int64_t max_value(Handle handle) const;
  [[nodiscard]] std::int64_t sum(Handle handle) const;

  // --- update notification -------------------------------------------------

  /// Monotone version, bumped by every write/accumulate/copy to the segment.
  [[nodiscard]] std::uint64_t version(Handle handle) const;

  /// Blocks until version(handle) >= min_version; returns the version seen.
  /// Thin forwarder over the deadline overload — prefer that one: an
  /// unbounded wait on a segment whose writer died never returns.
  std::uint64_t wait_version_at_least(Handle handle, std::uint64_t min_version) const;

  /// Blocks until version(handle) >= min_version or `timeout` elapses.
  /// Returns the version seen, or nullopt on timeout.
  std::optional<std::uint64_t> wait_version_at_least(
      Handle handle, std::uint64_t min_version, std::chrono::nanoseconds timeout) const;

  // --- fault injection -----------------------------------------------------

  /// Simulates a server freeze (GC pause, kernel-module hiccup, overloaded
  /// memory node): every float data-path operation entering during the next
  /// `duration` blocks until the freeze lifts.  Counter segments — the
  /// progress board — stay live, matching a stalled data plane with a
  /// responsive control plane.  Repeated calls extend the window.
  void freeze_for(std::chrono::nanoseconds duration);
  [[nodiscard]] bool frozen() const;

  [[nodiscard]] SmbServerStats stats() const;
  [[nodiscard]] std::int64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  enum class Kind { kFloats, kCounters };

  struct Segment {
    ShmKey key = 0;
    Kind kind = Kind::kFloats;
    std::vector<float> floats;
    std::vector<std::atomic<std::int64_t>> counters;
    int refcount = 0;
    std::uint64_t version = 0;
    /// Guards floats + version.  All segments share one lock rank: pairs
    /// (accumulate/copy) are only ever taken together via std::scoped_lock.
    mutable common::OrderedMutex data_mutex{"smb.server.segment",
                                            common::lockrank::kSmbSegment};
    mutable std::condition_variable_any version_cv;
  };

  Handle create_segment(ShmKey key, std::size_t count, Kind kind);
  Handle attach_segment(ShmKey key, std::size_t count, Kind kind);
  [[nodiscard]] std::shared_ptr<Segment> find(Handle handle) const;
  [[nodiscard]] std::shared_ptr<Segment> find(Handle handle, Kind kind) const;
  static std::int64_t footprint(const Segment& segment);
  static const char* kind_name(Kind kind);
  /// Blocks the calling thread while a freeze window is active.
  void block_while_frozen() const;

  SmbServerOptions options_;
  /// steady_clock time (ns since epoch) until which the data path is frozen.
  std::atomic<std::int64_t> frozen_until_ns_{0};
  /// Guards the maps + stats + ids.  Ranked above the segment locks:
  /// read() updates stats under the table lock while holding a segment.
  mutable common::OrderedSharedMutex table_mutex_{"smb.server.table",
                                                  common::lockrank::kSmbTable};
  std::unordered_map<std::uint64_t, std::shared_ptr<Segment>> by_access_key_;
  std::unordered_map<ShmKey, std::uint64_t> key_to_access_;  // canonical access key
  std::uint64_t next_access_key_ = 1;
  mutable SmbServerStats stats_;
};

}  // namespace shmcaffe::smb
