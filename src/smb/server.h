// Functional Soft Memory Box (SMB) server.
//
// The SMB is the paper's replacement for a parameter server: a passive
// remote shared-memory service.  It provides (§III-B):
//   * creation of named remote shared memory (RSM) segments under an SHM key
//   * allocation (attach) of an existing segment by other workers
//   * read / write of segment contents
//   * server-side accumulation between segments (the only "compute" the SMB
//     offers; the paper uses it for the global-weight update, eq. (7))
//   * update notification (version counters workers can wait on)
//
// This variant holds real memory and is safe for concurrent use from many OS
// threads — it is what the functional distributed-training experiments talk
// to.  A timing twin over the simulated RDMA stack lives in sim_smb.h.
// SmbServer implements the abstract SmbService surface (service.h), so
// everything above it (clients, the sharded buffer, the progress board)
// works identically against a replicated ensemble.
//
// Two segment kinds exist:
//   * float segments    — DNN parameter buffers (read/write/accumulate)
//   * counter segments  — int64 slots with atomic ops, used for the shared
//                         training-progress board (§III-E)
//
// Fault injection hooks: freeze_for() stalls the float data path for a
// window (transient); fail_stop() kills the server permanently — every
// subsequent operation (and every wait already blocked on it) throws
// SmbUnavailable, modelling a crashed memory node.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "smb/service.h"

namespace shmcaffe::smb {

struct SmbServerOptions {
  /// Total granted memory of the memory node (the paper's memory server has
  /// 256 GB; tests use small values to exercise exhaustion).
  std::int64_t capacity_bytes = 8LL << 30;
};

/// Cumulative operation statistics (for reports and tests).
struct SmbServerStats {
  std::uint64_t creates = 0;
  std::uint64_t attaches = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t accumulates = 0;
  /// Tagged mutations dropped because their OpTag was already applied
  /// (idempotent replay after a failover).
  std::uint64_t replays_dropped = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t bytes_in_use = 0;
};

class SmbServer final : public SmbService {
 public:
  explicit SmbServer(SmbServerOptions options = {});
  SmbServer(const SmbServer&) = delete;
  SmbServer& operator=(const SmbServer&) = delete;

  // --- segment lifecycle -------------------------------------------------

  /// Creates a float segment of `count` elements under `key`.
  /// Fails if the key exists or capacity would be exceeded.
  Handle create_floats(ShmKey key, std::size_t count) override;

  /// Attaches to an existing float segment; `count` (if nonzero) must match.
  Handle attach_floats(ShmKey key, std::size_t count = 0) override;

  /// Creates a counter segment of `count` int64 slots (zero-initialised).
  Handle create_counters(ShmKey key, std::size_t count) override;

  Handle attach_counters(ShmKey key, std::size_t count = 0) override;

  /// Drops one reference; the segment is freed when the creator and all
  /// attachments released it.
  void release(Handle handle) override;

  /// Elements in the segment.
  [[nodiscard]] std::size_t size(Handle handle) const override;

  // --- float segment data path -------------------------------------------

  void read(Handle handle, std::span<float> dst, std::size_t offset = 0) const override;
  void write(Handle handle, std::span<const float> src, std::size_t offset = 0) override;

  /// Server-side accumulate: dst[i] += src[i] for the full (equal) lengths.
  /// Requests against the same destination are processed exclusively
  /// (paper §III-G, step T.A3).  The source is snapshotted under its own
  /// lock, then the add runs in parallel chunks on the shared work pool
  /// while only the destination lock is held — bitwise identical for any
  /// pool width (see common/parallel.h).
  void accumulate(Handle src, Handle dst) override;

  /// Overwrite-style accumulate used for initialisation: dst[i] = src[i].
  void copy_segment(Handle src, Handle dst) override;

  // --- tagged (idempotent) mutations -------------------------------------
  // Mirrored variants used by the recovery layer: the mutation is applied at
  // most once per OpTag — a replay of the last in-flight op after a failover
  // is dropped (and counted in stats().replays_dropped) instead of applied
  // twice.  An untagged OpTag degenerates to the plain op.

  void write_tagged(Handle handle, std::span<const float> src, std::size_t offset,
                    OpTag tag);
  void accumulate_tagged(Handle src, Handle dst, OpTag tag);
  void copy_segment_tagged(Handle src, Handle dst, OpTag tag);

  // --- counter segment ops -----------------------------------------------

  [[nodiscard]] std::int64_t load(Handle handle, std::size_t index) const override;
  void store(Handle handle, std::size_t index, std::int64_t value) override;
  std::int64_t fetch_add(Handle handle, std::size_t index, std::int64_t delta) override;
  /// Snapshot reductions over the whole counter segment (progress criteria).
  [[nodiscard]] std::int64_t min_value(Handle handle) const override;
  [[nodiscard]] std::int64_t max_value(Handle handle) const override;
  [[nodiscard]] std::int64_t sum(Handle handle) const override;

  // --- update notification -------------------------------------------------

  /// Monotone version, bumped by every write/accumulate/copy to the segment.
  [[nodiscard]] std::uint64_t version(Handle handle) const override;

  /// Blocks until version(handle) >= min_version; returns the version seen.
  /// Thin forwarder over the deadline overload — prefer that one: an
  /// unbounded wait on a segment whose writer died never returns.
  std::uint64_t wait_version_at_least(Handle handle, std::uint64_t min_version) const;

  /// Blocks until version(handle) >= min_version or `timeout` elapses.
  /// Returns the version seen, or nullopt on timeout.  Throws SmbUnavailable
  /// (instead of burning the deadline) if the server fail-stops mid-wait.
  std::optional<std::uint64_t> wait_version_at_least(
      Handle handle, std::uint64_t min_version,
      std::chrono::nanoseconds timeout) const override;

  // --- fault injection -----------------------------------------------------

  /// Simulates a server freeze (GC pause, kernel-module hiccup, overloaded
  /// memory node): every float data-path operation entering during the next
  /// `duration` blocks until the freeze lifts.  Counter segments — the
  /// progress board — stay live, matching a stalled data plane with a
  /// responsive control plane.  Repeated calls extend the window.
  void freeze_for(std::chrono::nanoseconds duration);
  [[nodiscard]] bool frozen() const;

  /// Permanent fail-stop: the memory node is gone.  Every subsequent
  /// operation throws SmbUnavailable, and threads blocked in
  /// wait_version_at_least (or in a freeze window) are woken to throw it
  /// too, so nobody waits out a deadline on a dead server.
  void fail_stop();
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] SmbServerStats stats() const;
  [[nodiscard]] std::int64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  enum class Kind { kFloats, kCounters };

  struct Segment {
    ShmKey key SHMCAFFE_UNGUARDED = 0;             // immutable after create
    Kind kind SHMCAFFE_UNGUARDED = Kind::kFloats;  // immutable after create
    std::vector<float> floats SHMCAFFE_GUARDED_BY(data_mutex);
    /// Sized once at create; the slots themselves are atomics.
    std::vector<std::atomic<std::int64_t>> counters SHMCAFFE_UNGUARDED;
    /// Reference count lives with the segment table, not the data path.
    int refcount SHMCAFFE_GUARDED_BY(table_mutex_) = 0;
    std::uint64_t version SHMCAFFE_GUARDED_BY(data_mutex) = 0;
    /// Highest applied OpTag sequence per mirroring agent (idempotent
    /// replay detection); guarded by data_mutex like floats + version.
    std::unordered_map<std::uint64_t, std::uint64_t> applied_tags
        SHMCAFFE_GUARDED_BY(data_mutex);
    /// Guards floats + version.  All segments share one lock rank: pairs
    /// (accumulate/copy) are only ever taken together via std::scoped_lock.
    mutable common::OrderedMutex data_mutex{"smb.server.segment",
                                            common::lockrank::kSmbSegment};
    mutable std::condition_variable_any version_cv;
  };

  Handle create_segment(ShmKey key, std::size_t count, Kind kind);
  Handle attach_segment(ShmKey key, std::size_t count, Kind kind);
  [[nodiscard]] std::shared_ptr<Segment> find(Handle handle) const;
  [[nodiscard]] std::shared_ptr<Segment> find(Handle handle, Kind kind) const;
  static std::int64_t footprint(const Segment& segment);
  static const char* kind_name(Kind kind);
  /// Blocks the calling thread while a freeze window is active; throws
  /// SmbUnavailable if the server fail-stops during the wait.
  void block_while_frozen() const;
  void throw_if_failed() const;
  /// True (under the segment's data_mutex) if `tag` was already applied to
  /// `segment`; records it otherwise.
  bool replayed_locked(Segment& segment, OpTag tag)
      SHMCAFFE_REQUIRES(segment.data_mutex);

  SmbServerOptions options_ SHMCAFFE_UNGUARDED;  // immutable after ctor
  /// steady_clock time (ns since epoch) until which the data path is frozen.
  std::atomic<std::int64_t> frozen_until_ns_{0};
  std::atomic<bool> failed_{false};
  /// Guards the maps + stats + ids.  Ranked above the segment locks:
  /// read() updates stats under the table lock while holding a segment.
  mutable common::OrderedSharedMutex table_mutex_{"smb.server.table",
                                                  common::lockrank::kSmbTable};
  std::unordered_map<std::uint64_t, std::shared_ptr<Segment>> by_access_key_
      SHMCAFFE_GUARDED_BY(table_mutex_);
  std::unordered_map<ShmKey, std::uint64_t> key_to_access_
      SHMCAFFE_GUARDED_BY(table_mutex_);  // canonical access key
  std::uint64_t next_access_key_ SHMCAFFE_GUARDED_BY(table_mutex_) = 1;
  mutable SmbServerStats stats_ SHMCAFFE_GUARDED_BY(table_mutex_);
};

}  // namespace shmcaffe::smb
