// Functional Soft Memory Box (SMB) server.
//
// The SMB is the paper's replacement for a parameter server: a passive
// remote shared-memory service.  It provides (§III-B):
//   * creation of named remote shared memory (RSM) segments under an SHM key
//   * allocation (attach) of an existing segment by other workers
//   * read / write of segment contents
//   * server-side accumulation between segments (the only "compute" the SMB
//     offers; the paper uses it for the global-weight update, eq. (7))
//   * update notification (version counters workers can wait on)
//
// This variant holds real memory and is safe for concurrent use from many OS
// threads — it is what the functional distributed-training experiments talk
// to.  A timing twin over the simulated RDMA stack lives in sim_smb.h.
// SmbServer implements the abstract SmbService surface (service.h), so
// everything above it (clients, the sharded buffer, the progress board)
// works identically against a replicated ensemble.
//
// Two segment kinds exist:
//   * float segments    — DNN parameter buffers (read/write/accumulate)
//   * counter segments  — int64 slots with atomic ops, used for the shared
//                         training-progress board (§III-E)
//
// Fault injection hooks: freeze_for() stalls the float data path for a
// window (transient); fail_stop() kills the server permanently — every
// subsequent operation (and every wait already blocked on it) throws
// SmbUnavailable, modelling a crashed memory node.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/ordered_mutex.h"
#include "smb/service.h"

namespace shmcaffe::smb {

/// Data-integrity policy for float segments.  Off by default: checksum
/// maintenance taxes every write/accumulate, so the fault-free hot path
/// stays byte-for-byte what it was before the integrity layer existed.
struct SmbIntegrityOptions {
  /// Maintain per-chunk FNV-1a checksums, updated incrementally by every
  /// write / accumulate / copy to a float segment.
  bool checksum_chunks = false;
  /// Verify the checksums of the touched range before serving a read and
  /// before accumulating into (or snapshotting from) a segment, throwing
  /// SmbCorruption on mismatch.  Verifying *before* the accumulate matters:
  /// an unverified accumulate would recompute the checksum over corrupted
  /// data and launder the corruption.  Implies checksum_chunks.
  bool verify_on_read = false;
  /// Checksum granularity in floats (16 KiB chunks by default).
  std::size_t chunk_floats = 4096;

  [[nodiscard]] bool maintain() const { return checksum_chunks || verify_on_read; }
};

struct SmbServerOptions {
  /// Total granted memory of the memory node (the paper's memory server has
  /// 256 GB; tests use small values to exercise exhaustion).
  std::int64_t capacity_bytes = 8LL << 30;
  SmbIntegrityOptions integrity;
  /// What a writer does while pinned zero-copy read views are outstanding
  /// (see SmbService::read_pinned).  Copy-on-write by default: writers
  /// never stall on readers, matching the paper's asynchronous exchange.
  PinWritePolicy pin_write_policy = PinWritePolicy::kCopyOnWrite;
};

/// Cumulative operation statistics (for reports and tests).
struct SmbServerStats {
  std::uint64_t creates = 0;
  std::uint64_t attaches = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t accumulates = 0;
  /// Tagged mutations dropped because their OpTag was already applied
  /// (idempotent replay after a failover).
  std::uint64_t replays_dropped = 0;
  /// Per-chunk checksum verifications performed (verify_on_read + scrubs).
  std::uint64_t chunks_verified = 0;
  /// Chunk verifications that failed (checksum mismatch).
  std::uint64_t corruptions_detected = 0;
  /// Armed torn writes that actually fired.
  std::uint64_t torn_writes_applied = 0;
  /// Zero-copy pinned reads served (read_pinned).
  std::uint64_t pinned_reads = 0;
  /// Storage epochs cloned because a writer hit an outstanding pin under
  /// PinWritePolicy::kCopyOnWrite.
  std::uint64_t cow_clones = 0;
  /// Bytes served by copy reads only.  Pinned reads move no bytes, so they
  /// are accounted under bytes_pinned instead of inflating this.
  std::int64_t bytes_read = 0;
  /// Bytes made visible through pinned zero-copy views.
  std::int64_t bytes_pinned = 0;
  std::int64_t bytes_written = 0;
  std::int64_t bytes_in_use = 0;
};

class SmbServer final : public SmbService {
 public:
  explicit SmbServer(SmbServerOptions options = {});
  SmbServer(const SmbServer&) = delete;
  SmbServer& operator=(const SmbServer&) = delete;

  // --- segment lifecycle -------------------------------------------------

  /// Creates a float segment of `count` elements under `key`.
  /// Fails if the key exists or capacity would be exceeded.
  Handle create_floats(ShmKey key, std::size_t count) override;

  /// Attaches to an existing float segment; `count` (if nonzero) must match.
  Handle attach_floats(ShmKey key, std::size_t count = 0) override;

  /// Creates a counter segment of `count` int64 slots (zero-initialised).
  Handle create_counters(ShmKey key, std::size_t count) override;

  Handle attach_counters(ShmKey key, std::size_t count = 0) override;

  /// Drops one reference; the segment is freed when the creator and all
  /// attachments released it.
  void release(Handle handle) override;

  /// Elements in the segment.
  [[nodiscard]] std::size_t size(Handle handle) const override;

  // --- float segment data path -------------------------------------------

  void read(Handle handle, std::span<float> dst, std::size_t offset = 0) const override;

  /// Zero-copy read: pins the segment's current storage epoch and returns a
  /// span directly into it (no bytes move; counted under bytes_pinned, not
  /// bytes_read).  Checksums of the range are verified once, at pin time.
  /// While the view is live, writers follow options().pin_write_policy —
  /// clone the storage (copy-on-write) or block until the unpin.  The
  /// corrupt_floats fault hook deliberately bypasses the policy: silent
  /// corruption does not announce itself to readers.
  [[nodiscard]] SHMCAFFE_PIN_ESCAPE PinnedFloats read_pinned(
      Handle handle, std::size_t count, std::size_t offset = 0) const override;

  void write(Handle handle, std::span<const float> src, std::size_t offset = 0) override;

  /// Server-side accumulate: dst[i] += src[i] for the full (equal) lengths.
  /// Requests against the same destination are processed exclusively
  /// (paper §III-G, step T.A3).  The source is snapshotted under its own
  /// lock, then the add runs in parallel chunks on the shared work pool
  /// while only the destination lock is held — bitwise identical for any
  /// pool width (see common/parallel.h).
  void accumulate(Handle src, Handle dst) override;

  /// Overwrite-style accumulate used for initialisation: dst[i] = src[i].
  void copy_segment(Handle src, Handle dst) override;

  // --- tagged (idempotent) mutations -------------------------------------
  // Mirrored variants used by the recovery layer: the mutation is applied at
  // most once per OpTag — a replay of the last in-flight op after a failover
  // is dropped (and counted in stats().replays_dropped) instead of applied
  // twice.  An untagged OpTag degenerates to the plain op.

  SHMCAFFE_HOT_KERNEL void write_tagged(Handle handle, std::span<const float> src, std::size_t offset,
                    OpTag tag) override;
  SHMCAFFE_HOT_KERNEL void accumulate_tagged(Handle src, Handle dst, OpTag tag) override;
  void copy_segment_tagged(Handle src, Handle dst, OpTag tag);

  // --- data integrity ------------------------------------------------------
  // Per-chunk FNV-1a checksums over float segments (enabled by
  // SmbIntegrityOptions).  A chunk whose contents stopped matching its
  // checksum carries a nonzero *marker* — the fault event's identity — so
  // detections and repairs can be attributed to the event that caused them.

  /// One chunk whose stored checksum no longer matches its contents.
  struct CorruptChunk {
    std::size_t chunk = 0;       ///< chunk index within the segment
    std::uint64_t marker = 0;    ///< poisoning event's marker; 0 = unattributed
  };

  /// Verifies every chunk of a float segment (no throw); records detections
  /// and returns the mismatching chunks.  The scrubber / read-repair entry.
  std::vector<CorruptChunk> verify_segment(Handle handle);

  /// Reads without verification — the repair/vote path must be able to look
  /// at a corrupt copy.
  void read_raw(Handle handle, std::span<float> dst, std::size_t offset = 0) const;

  /// Markers of every corruption this server has detected, ascending.
  [[nodiscard]] std::vector<std::uint64_t> detected_markers() const;

  /// Markers (kTornWriteMarkerBit | ordinal) of armed torn writes that
  /// fired, ascending.
  [[nodiscard]] std::vector<std::uint64_t> torn_applied_markers() const;

  // --- integrity fault injection -------------------------------------------

  /// Torn-write markers live in the upper half of the marker space so they
  /// can never collide with the plan-drawn corruption markers (high bit
  /// clear by construction, see fault/fault_plan.h).
  static constexpr std::uint64_t kTornWriteMarkerBit = 1ULL << 63;

  /// Flips `bit_flips` marker-seeded mantissa bits in the float segment
  /// under `key` and poisons the touched chunks with `marker`.  Checksums
  /// are deliberately left stale — that is the fault.  Returns the number
  /// of chunks poisoned (0 if the key does not name a float segment).
  std::size_t corrupt_floats(ShmKey key, std::uint64_t marker, int bit_flips);

  /// Arms a torn write: the `ordinal`-th float write accepted by this server
  /// (1-based, arrival order) applies only the leading `fraction` of its
  /// payload while the checksums record the full intended write — modelling
  /// a writer-side checksum with a partially-landed DMA.  The tail chunks
  /// are poisoned with marker kTornWriteMarkerBit | ordinal.
  void arm_torn_write(std::uint64_t ordinal, double fraction);

  // --- counter segment ops -----------------------------------------------

  // Lock-free atomics end to end: the progress board must never stall a
  // worker, so the whole counter plane is contractually non-blocking.
  [[nodiscard]] SHMCAFFE_NONBLOCKING std::int64_t load(Handle handle,
                                                       std::size_t index) const override;
  SHMCAFFE_NONBLOCKING void store(Handle handle, std::size_t index, std::int64_t value) override;
  SHMCAFFE_NONBLOCKING std::int64_t fetch_add(Handle handle, std::size_t index,
                                              std::int64_t delta) override;
  /// Snapshot reductions over the whole counter segment (progress criteria).
  [[nodiscard]] SHMCAFFE_NONBLOCKING std::int64_t min_value(Handle handle) const override;
  [[nodiscard]] SHMCAFFE_NONBLOCKING std::int64_t max_value(Handle handle) const override;
  [[nodiscard]] SHMCAFFE_NONBLOCKING std::int64_t sum(Handle handle) const override;

  // --- update notification -------------------------------------------------

  /// Monotone version, bumped by every write/accumulate/copy to the segment.
  /// Non-blocking by contract: pollers may call it at any rate, under any
  /// caller-side lock.
  [[nodiscard]] SHMCAFFE_NONBLOCKING std::uint64_t version(Handle handle) const override;

  /// Blocks until version(handle) >= min_version; returns the version seen.
  /// Thin forwarder over the deadline overload — prefer that one: an
  /// unbounded wait on a segment whose writer died never returns.
  SHMCAFFE_BLOCKS std::uint64_t wait_version_at_least(Handle handle,
                                                      std::uint64_t min_version) const;

  /// Blocks until version(handle) >= min_version or `timeout` elapses.
  /// Returns the version seen, or nullopt on timeout.  Throws SmbUnavailable
  /// (instead of burning the deadline) if the server fail-stops mid-wait.
  SHMCAFFE_BLOCKS std::optional<std::uint64_t> wait_version_at_least(
      Handle handle, std::uint64_t min_version,
      std::chrono::nanoseconds timeout) const override;

  // --- fault injection -----------------------------------------------------

  /// Simulates a server freeze (GC pause, kernel-module hiccup, overloaded
  /// memory node): every float data-path operation entering during the next
  /// `duration` blocks until the freeze lifts.  Counter segments — the
  /// progress board — stay live, matching a stalled data plane with a
  /// responsive control plane.  Repeated calls extend the window.
  void freeze_for(std::chrono::nanoseconds duration);
  [[nodiscard]] bool frozen() const;

  /// Permanent fail-stop: the memory node is gone.  Every subsequent
  /// operation throws SmbUnavailable, and threads blocked in
  /// wait_version_at_least (or in a freeze window) are woken to throw it
  /// too, so nobody waits out a deadline on a dead server.
  void fail_stop();
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] SHMCAFFE_NONBLOCKING SmbServerStats stats() const;
  [[nodiscard]] std::int64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  enum class Kind { kFloats, kCounters };

  /// One storage *epoch* of a float segment: the arena slab pinned reads
  /// alias.  The live epoch hangs off Segment::storage; a copy-on-write
  /// retires the old epoch, which stays alive (and immutable) through the
  /// shared_ptr each outstanding PinnedFloats holds.
  struct SegmentStorage {
    /// The owning backing slab of the epoch itself — not a view of someone
    /// else's storage.  Its lifetime (shared_ptr from Segment::storage and
    /// from every outstanding pin) IS the pin protocol.
    common::arena::Buffer data SHMCAFFE_PIN_ESCAPE{"smb.segment"};
    /// Outstanding pinned views of this epoch.  Always modified under the
    /// owning segment's data_mutex (the kBlockWriters wakeup needs the
    /// mutex held between the decrement and the notify); atomic so the
    /// pin-balance check at release() can read it under the table lock,
    /// which ranks above data_mutex and therefore cannot nest it.
    std::atomic<int> pins{0};
  };

  struct Segment {
    ShmKey key SHMCAFFE_UNGUARDED = 0;             // immutable after create
    Kind kind SHMCAFFE_UNGUARDED = Kind::kFloats;  // immutable after create
    /// Live storage epoch (never null for float segments).
    std::shared_ptr<SegmentStorage> storage SHMCAFFE_GUARDED_BY(data_mutex) =
        std::make_shared<SegmentStorage>();
    /// Lifetime pin/unpin totals (balance asserted at final release);
    /// atomic for the same table-lock-rank reason as SegmentStorage::pins.
    std::atomic<std::uint64_t> pins_issued{0};
    std::atomic<std::uint64_t> pins_released{0};
    /// Sized once at create; the slots themselves are atomics.
    std::vector<std::atomic<std::int64_t>> counters SHMCAFFE_UNGUARDED;
    /// Reference count lives with the segment table, not the data path.
    int refcount SHMCAFFE_GUARDED_BY(table_mutex_) = 0;
    std::uint64_t version SHMCAFFE_GUARDED_BY(data_mutex) = 0;
    /// Per-chunk FNV-1a checksums (empty unless integrity is on).
    std::vector<std::uint64_t> chunk_sums SHMCAFFE_GUARDED_BY(data_mutex);
    /// Per-chunk poisoning markers (0 = clean); parallel to chunk_sums.
    std::vector<std::uint64_t> chunk_markers SHMCAFFE_GUARDED_BY(data_mutex);
    /// Highest applied OpTag sequence per mirroring agent (idempotent
    /// replay detection); guarded by data_mutex like floats + version.
    std::unordered_map<std::uint64_t, std::uint64_t> applied_tags
        SHMCAFFE_GUARDED_BY(data_mutex);
    /// Guards floats + version.  All segments share one lock rank: pairs
    /// (accumulate/copy) are only ever taken together via std::scoped_lock.
    mutable common::OrderedMutex data_mutex{"smb.server.segment",
                                            common::lockrank::kSmbSegment};
    mutable std::condition_variable_any version_cv;
  };

  Handle create_segment(ShmKey key, std::size_t count, Kind kind);
  Handle attach_segment(ShmKey key, std::size_t count, Kind kind);
  [[nodiscard]] std::shared_ptr<Segment> find(Handle handle) const;
  [[nodiscard]] std::shared_ptr<Segment> find(Handle handle, Kind kind) const;
  static std::int64_t footprint(const Segment& segment);
  static const char* kind_name(Kind kind);
  /// Blocks the calling thread while a freeze window is active; throws
  /// SmbUnavailable if the server fail-stops during the wait.
  SHMCAFFE_BLOCKS void block_while_frozen() const;
  void throw_if_failed() const;
  /// True (under the segment's data_mutex) if `tag` was already applied to
  /// `segment`; records it otherwise.
  bool replayed_locked(Segment& segment, OpTag tag)
      SHMCAFFE_REQUIRES(segment.data_mutex);
  /// Applies the pin policy before a mutation of `segment`'s floats: with
  /// pins outstanding, kCopyOnWrite swaps in a fresh storage epoch (the
  /// retired one stays alive and immutable via the pinned views' refs);
  /// kBlockWriters waits on `lock` until every pin is released (throws
  /// SmbUnavailable if the server fail-stops mid-wait).
  SHMCAFFE_BLOCKS void prepare_write_locked(Segment& segment,
                                            std::unique_lock<common::OrderedMutex>& lock)
      SHMCAFFE_REQUIRES(segment.data_mutex);

  [[nodiscard]] bool maintain_checksums() const { return options_.integrity.maintain(); }
  /// FNV-1a over the chunk's float bytes.
  static std::uint64_t chunk_checksum(const float* data, std::size_t count);
  /// Recomputes the checksums of every chunk overlapping [first, first+count)
  /// from the segment's current contents and clears their markers (the range
  /// was just legitimately rewritten).
  void refresh_chunks_locked(Segment& segment, std::size_t first, std::size_t count)
      SHMCAFFE_REQUIRES(segment.data_mutex);
  /// Verifies every chunk overlapping [first, first+count); on mismatch
  /// records the detection (stats + markers) and throws SmbCorruption.
  /// Const because reads are logically const — detection only touches the
  /// mutable stats/marker log.
  void verify_chunks_locked(Segment& segment, std::size_t first, std::size_t count) const
      SHMCAFFE_REQUIRES(segment.data_mutex);
  /// Non-throwing verify of the same range; appends mismatches to `bad` and
  /// returns the number of chunks checked.
  std::size_t collect_corrupt_chunks_locked(Segment& segment, std::size_t first,
                                            std::size_t count,
                                            std::vector<CorruptChunk>& bad) const
      SHMCAFFE_REQUIRES(segment.data_mutex);
  /// Records a verification outcome under the table lock (stats + markers).
  void record_verification(std::size_t checked, const std::vector<CorruptChunk>& bad) const;

  SmbServerOptions options_ SHMCAFFE_UNGUARDED;  // immutable after ctor
  /// steady_clock time (ns since epoch) until which the data path is frozen.
  std::atomic<std::int64_t> frozen_until_ns_{0};
  std::atomic<bool> failed_{false};
  /// Guards the maps + stats + ids.  Ranked above the segment locks:
  /// read() updates stats under the table lock while holding a segment.
  mutable common::OrderedSharedMutex table_mutex_{"smb.server.table",
                                                  common::lockrank::kSmbTable};
  std::unordered_map<std::uint64_t, std::shared_ptr<Segment>> by_access_key_
      SHMCAFFE_GUARDED_BY(table_mutex_);
  std::unordered_map<ShmKey, std::uint64_t> key_to_access_
      SHMCAFFE_GUARDED_BY(table_mutex_);  // canonical access key
  std::uint64_t next_access_key_ SHMCAFFE_GUARDED_BY(table_mutex_) = 1;
  mutable SmbServerStats stats_ SHMCAFFE_GUARDED_BY(table_mutex_);
  /// Markers of detected corruptions, in detection order (deduplicated).
  /// Mutable for the same reason as stats_: const reads detect corruption.
  mutable std::vector<std::uint64_t> detected_markers_ SHMCAFFE_GUARDED_BY(table_mutex_);
  /// Markers of armed torn writes that fired.
  std::vector<std::uint64_t> torn_applied_ SHMCAFFE_GUARDED_BY(table_mutex_);
  /// Armed torn writes: write ordinal -> applied fraction.
  std::unordered_map<std::uint64_t, double> armed_torn_ SHMCAFFE_GUARDED_BY(table_mutex_);
  /// Arrival-order float-write counter (torn-write ordinals).
  std::atomic<std::uint64_t> write_ordinal_{0};
  /// Fast-path gate: nonzero only while torn writes are armed.
  std::atomic<int> torn_armed_count_{0};
};

}  // namespace shmcaffe::smb
