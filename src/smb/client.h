// Fault-aware client-side wrapper over the functional SMB server.
//
// The raw SmbServer API is a faithful passive memory service: an attach to a
// not-yet-created key throws, and a version wait with a dead writer blocks
// forever.  Real workers need timed, retrying variants of both (§III-E's
// decoupling only holds if survivors never block on a dead peer), so this
// wrapper adds:
//   * attach with bounded retry + exponential backoff + decorrelated jitter
//     (a slave racing the master's Fig. 2 segment creation, or an SMB
//     server in a freeze window);
//   * deadline-based update-notification waits;
//   * idempotent mutation retry: every write/accumulate is stamped with a
//     client-unique OpTag, so resending after an ambiguous timeout (the op
//     may or may not have landed) can never double-apply — the server drops
//     the replay (SmbServerStats::replays_dropped);
// and forwards the rest of the surface unchanged.  One SmbClient per worker
// thread (the embedded backoff Rng and the last-mutation record are not
// synchronised).
//
// The client targets the abstract SmbService, so the same worker code runs
// against a single SmbServer or a replicated ensemble with failover.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "smb/service.h"

namespace shmcaffe::smb {

/// Exponential backoff with jitter for attach retries.
struct RetryPolicy {
  int max_attempts = 10;
  std::chrono::nanoseconds initial_backoff = std::chrono::microseconds(200);
  double backoff_multiplier = 2.0;
  /// Each delay is multiplied by a uniform draw from [1-jitter, 1+jitter],
  /// decorrelating retry storms across workers.
  double jitter = 0.25;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
};

/// The backoff delay before retry attempt `attempt` (1-based) under `policy`.
[[nodiscard]] std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy, int attempt,
                                                     common::Rng& rng);

class SmbClient {
 public:
  explicit SmbClient(SmbService& server, RetryPolicy policy = {},
                     std::uint64_t seed = 0xba0cull);

  [[nodiscard]] SmbService& server() { return *server_; }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

  /// Attach with retry: SmbNotFound triggers backoff-and-retry until the
  /// policy's attempt budget is spent (then the last error propagates);
  /// any other SmbError (kind/size mismatch) propagates immediately.
  SHMCAFFE_BLOCKS Handle attach_floats(ShmKey key, std::size_t count = 0);
  SHMCAFFE_BLOCKS Handle attach_counters(ShmKey key, std::size_t count = 0);

  /// Deadline-based update notification; nullopt on timeout.
  SHMCAFFE_BLOCKS std::optional<std::uint64_t> wait_version_at_least(
      Handle handle, std::uint64_t min_version, std::chrono::nanoseconds timeout) const {
    return server_->wait_version_at_least(handle, min_version, timeout);
  }

  // --- unchanged passthroughs -------------------------------------------
  Handle create_floats(ShmKey key, std::size_t count) {
    return server_->create_floats(key, count);
  }
  Handle create_counters(ShmKey key, std::size_t count) {
    return server_->create_counters(key, count);
  }
  void release(Handle handle) { server_->release(handle); }
  void read(Handle handle, std::span<float> dst, std::size_t offset = 0) const {
    server_->read(handle, dst, offset);
  }
  /// Zero-copy read: an epoch-pinned view into the service's storage (see
  /// SmbService::read_pinned).  Reads are idempotent, so no retry record.
  [[nodiscard]] SHMCAFFE_PIN_ESCAPE PinnedFloats read_pinned(Handle handle, std::size_t count,
                                                             std::size_t offset = 0) const {
    return server_->read_pinned(handle, count, offset);
  }
  [[nodiscard]] std::uint64_t version(Handle handle) const { return server_->version(handle); }

  // --- idempotent mutations ----------------------------------------------

  /// Stamped with a fresh client OpTag and recorded as the last mutation
  /// (the record is made *before* the send, so a throw mid-flight — the
  /// ambiguous-timeout case — can still be resent safely).
  void write(Handle handle, std::span<const float> src, std::size_t offset = 0);
  void accumulate(Handle src, Handle dst);

  /// Re-issues the last write/accumulate under its *original* tag — the
  /// retransmit after an ambiguous timeout.  If the original landed, the
  /// server drops the replay; if it never arrived, this applies it exactly
  /// once.  Returns false if no mutation was recorded.
  bool resend_last_mutation();

  /// Tag the next mutation will NOT reuse — the one stamped on the last
  /// write/accumulate (test observability).
  [[nodiscard]] OpTag last_mutation_tag() const { return last_.tag; }
  [[nodiscard]] std::uint64_t writer_id() const { return writer_id_; }

 private:
  struct LastMutation {
    enum Kind : std::uint8_t { kNone, kWrite, kAccumulate };
    Kind kind = kNone;
    Handle src;
    Handle dst;
    std::size_t offset = 0;
    std::vector<float> payload;  ///< write payload (empty for accumulate)
    OpTag tag;
  };

  Handle attach_with_retry(ShmKey key, std::size_t count, bool floats);

  SmbService* server_;
  RetryPolicy policy_;
  common::Rng rng_;
  /// Process-unique, nonzero, never the mirror agent's id (1).
  std::uint64_t writer_id_;
  std::uint64_t sequence_ = 0;
  LastMutation last_;
};

}  // namespace shmcaffe::smb
