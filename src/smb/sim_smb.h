// Simulated-time Soft Memory Box over the RDMA stack.
//
// The timing twin of server.h: same protocol (create/attach via control
// datagrams, one-sided RDMA read/write for data, server-side accumulate
// serialised per destination segment), but payloads are sizes only and all
// costs come from the fabric/verbs model.  This is the SMB that the paper's
// performance experiments (Figs. 7, 9, 10, 12–15) run against.
//
// Data-path model: the memory server's HCA is one 7 GB/s constraint shared
// by both directions (options.aggregate_data_path).  The paper's Fig. 7
// measures 6.7 GB/s aggregate for a 50/50 read/write mix against a 7 GB/s
// FDR HCA, i.e. reads and writes drain a common bottleneck — matching the
// RDS-derived kernel data path, which funnels both directions through one
// DMA/CPU pipeline.  Setting aggregate_data_path=false gives an idealised
// full-duplex server instead.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/units.h"
#include "net/fabric.h"
#include "rdma/verbs.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "smb/server.h"  // ShmKey, Handle, SmbError

namespace shmcaffe::smb {

struct SimSmbOptions {
  /// Server HCA bandwidth (bytes/second).  FDR InfiniBand: 7 GB/s.
  double server_bandwidth = 7e9;
  /// Server-side accumulate engine bandwidth: dst += src streams 2 reads and
  /// 1 write through the memory server's DDR3 controllers.
  double accumulate_bandwidth = 5e9;
  /// Client-visible bookkeeping overhead charged per data operation (SMB API
  /// request setup through the kernel module).
  SimTime op_overhead = 150 * units::kMicrosecond;
  /// Fixed server-side handling time per control request.
  SimTime control_service_time = 5 * units::kMicrosecond;
  /// Single shared data-path constraint at the server (see header comment).
  bool aggregate_data_path = true;
};

class SimSmbServer;

/// Client endpoint: one per simulated worker process.  Owns its own HCA.
class SimSmbClient {
 public:
  SimSmbClient(SimSmbServer& server, const std::string& name,
               double bandwidth_bytes_per_sec);

  /// Creates a segment of `bytes` under `key` (master worker, Fig. 2 step 1).
  [[nodiscard]] sim::Task<Handle> create(ShmKey key, std::int64_t bytes);

  /// Attaches to an existing segment (slave workers, Fig. 2 steps 3-4).
  [[nodiscard]] sim::Task<Handle> attach(ShmKey key);

  /// One-sided RDMA read of `bytes` from the segment.
  [[nodiscard]] sim::Task<void> read(Handle handle, std::int64_t bytes,
                                     std::int64_t offset = 0);

  /// Timing twin of SmbService::read_pinned for a worker colocated with the
  /// SMB server (in-process attach): the view is epoch-pinned in place, so
  /// the model charges only the API bookkeeping overhead — zero data bytes
  /// cross the fabric and data_bytes_moved() is untouched.  Checksum
  /// verification at pin time streams the segment once through the server
  /// memory controllers (accumulate-engine bandwidth), off the HCA path.
  [[nodiscard]] sim::Task<void> read_pinned(Handle handle, std::int64_t bytes,
                                            std::int64_t offset = 0, bool verify = false);

  /// One-sided RDMA write of `bytes` into the segment.
  [[nodiscard]] sim::Task<void> write(Handle handle, std::int64_t bytes,
                                      std::int64_t offset = 0);

  /// Requests the server to accumulate segment `src` into `dst`; completes
  /// when the server acknowledges (paper steps T.A2-T.A4).
  [[nodiscard]] sim::Task<void> accumulate(Handle src, Handle dst);

  [[nodiscard]] rdma::Device& device() { return *device_; }

 private:
  SimSmbServer* server_;
  std::unique_ptr<rdma::Device> device_;
  std::size_t mailbox_ = 0;
};

class SimSmbServer {
 public:
  SimSmbServer(sim::Simulation& sim, net::Fabric& fabric, SimSmbOptions options = {});
  ~SimSmbServer();
  SimSmbServer(const SimSmbServer&) = delete;
  SimSmbServer& operator=(const SimSmbServer&) = delete;

  /// Spawns the request-serving loop; call once before clients start.
  void start();

  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const SimSmbOptions& options() const { return options_; }
  [[nodiscard]] rdma::DatagramService& rds() { return rds_; }
  [[nodiscard]] std::size_t mailbox() const { return mailbox_; }

  /// Total payload bytes moved through the server data path so far.
  [[nodiscard]] std::int64_t data_bytes_moved() const { return data_bytes_moved_; }
  [[nodiscard]] std::uint64_t accumulates_served() const { return accumulates_served_; }

 private:
  friend class SimSmbClient;

  enum Op : std::uint32_t {
    kCreate = 1,
    kAttach = 2,
    kAccumulate = 3,
    kOk = 100,
    kFail = 101,
  };

  struct SegmentInfo {
    ShmKey key = 0;
    std::int64_t bytes = 0;
    rdma::MemoryRegion mr;
    std::unique_ptr<sim::SimMutex> accumulate_gate;
  };

  [[nodiscard]] sim::Task<void> serve_loop();
  [[nodiscard]] sim::Task<void> handle_request(rdma::Datagram request);

  /// Links a client data transfer crosses, towards the server.
  [[nodiscard]] std::vector<net::LinkId> inbound_path(rdma::Device& client) const;
  /// ... and away from the server.
  [[nodiscard]] std::vector<net::LinkId> outbound_path(rdma::Device& client) const;

  SegmentInfo* find_segment(std::uint64_t access_key);

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  SimSmbOptions options_;
  rdma::DatagramService rds_;
  std::unique_ptr<rdma::Device> device_;
  rdma::ProtectionDomain pd_;
  net::LinkId aggregate_link_;
  std::size_t mailbox_ = 0;
  bool started_ = false;

  std::unordered_map<ShmKey, std::uint64_t> key_to_access_;
  std::unordered_map<std::uint64_t, SegmentInfo> segments_;
  std::uint64_t next_access_key_ = 1;
  std::int64_t data_bytes_moved_ = 0;
  std::uint64_t accumulates_served_ = 0;
};

}  // namespace shmcaffe::smb
