#include "smb/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <set>
#include <thread>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"

namespace shmcaffe::smb {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Segment floats handed to one work-pool chunk by accumulate (element-wise
// add: each element is written by exactly one chunk, so the sum is bitwise
// identical for any pool width).
constexpr std::size_t kAccumulateGrain = 16384;
}  // namespace

SmbServer::SmbServer(SmbServerOptions options) : options_(options) {
  if (options_.capacity_bytes <= 0) {
    throw SmbError("SMB server capacity must be positive");
  }
  if (maintain_checksums() && options_.integrity.chunk_floats == 0) {
    throw SmbError("integrity chunk size must be positive");
  }
}

void SmbServer::throw_if_failed() const {
  if (failed()) throw SmbUnavailable("SMB server has fail-stopped");
}

std::int64_t SmbServer::footprint(const Segment& segment) {
  if (segment.kind == Kind::kFloats) {
    // lint:allow-next-line(lock-region) segment sizes are fixed at create
    return static_cast<std::int64_t>(segment.storage->data.size() * sizeof(float));
  }
  return static_cast<std::int64_t>(segment.counters.size() * sizeof(std::int64_t));
}

Handle SmbServer::create_segment(ShmKey key, std::size_t count, Kind kind) {
  throw_if_failed();
  if (count == 0) throw SmbError("segment size must be positive");
  auto segment = std::make_shared<Segment>();
  segment->key = key;
  segment->kind = kind;
  if (kind == Kind::kFloats) {
    // lint:allow-next-line(lock-region) fresh segment, not yet published
    segment->storage->data.assign(count, 0.0F);
    if (maintain_checksums()) {
      const std::size_t chunks =
          (count + options_.integrity.chunk_floats - 1) / options_.integrity.chunk_floats;
      std::scoped_lock lock(segment->data_mutex);
      segment->chunk_sums.resize(chunks);
      segment->chunk_markers.assign(chunks, 0);
      refresh_chunks_locked(*segment, 0, count);
    }
  } else {
    segment->counters = std::vector<std::atomic<std::int64_t>>(count);
  }

  std::unique_lock lock(table_mutex_);
  // refcount is table_mutex_ state: set it under the same lock that
  // publishes the segment, so the guard covers its whole lifetime.
  segment->refcount = 1;
  if (key_to_access_.contains(key)) {
    throw SmbError("SHM key already exists: " + std::to_string(key));
  }
  const std::int64_t bytes = footprint(*segment);
  if (stats_.bytes_in_use + bytes > options_.capacity_bytes) {
    throw SmbError("SMB server out of granted memory");
  }
  const std::uint64_t access_key = next_access_key_++;
  by_access_key_.emplace(access_key, std::move(segment));
  key_to_access_.emplace(key, access_key);
  stats_.bytes_in_use += bytes;
  stats_.creates += 1;
  return Handle{access_key};
}

const char* SmbServer::kind_name(Kind kind) {
  return kind == Kind::kFloats ? "floats" : "counters";
}

Handle SmbServer::attach_segment(ShmKey key, std::size_t count, Kind kind) {
  throw_if_failed();
  std::unique_lock lock(table_mutex_);
  const auto it = key_to_access_.find(key);
  if (it == key_to_access_.end()) {
    throw SmbNotFound("no segment with SHM key " + std::to_string(key));
  }
  const std::shared_ptr<Segment>& segment = by_access_key_.at(it->second);
  if (segment->kind != kind) {
    throw SmbError("segment kind mismatch for SHM key " + std::to_string(key) +
                   " (access key " + std::to_string(it->second) + "): requested " +
                   kind_name(kind) + ", exists as " + kind_name(segment->kind));
  }
  const std::size_t actual =  // lint:allow(lock-region) sizes fixed at create
      kind == Kind::kFloats ? segment->storage->data.size() : segment->counters.size();
  if (count != 0 && count != actual) {
    throw SmbError("segment size mismatch: requested " + std::to_string(count) +
                   ", exists with " + std::to_string(actual));
  }
  segment->refcount += 1;
  stats_.attaches += 1;
  return Handle{it->second};
}

Handle SmbServer::create_floats(ShmKey key, std::size_t count) {
  return create_segment(key, count, Kind::kFloats);
}

Handle SmbServer::attach_floats(ShmKey key, std::size_t count) {
  return attach_segment(key, count, Kind::kFloats);
}

Handle SmbServer::create_counters(ShmKey key, std::size_t count) {
  return create_segment(key, count, Kind::kCounters);
}

Handle SmbServer::attach_counters(ShmKey key, std::size_t count) {
  return attach_segment(key, count, Kind::kCounters);
}

void SmbServer::release(Handle handle) {
  throw_if_failed();
  std::unique_lock lock(table_mutex_);
  const auto it = by_access_key_.find(handle.access_key);
  if (it == by_access_key_.end()) {
    throw SmbError("release of unknown access key " + std::to_string(handle.access_key) +
                   " (already fully released, or never issued by this server)");
  }
  Segment& segment = *it->second;
  if (segment.refcount <= 0) {
    // A freed segment is erased from the table, so refcount can only be
    // non-positive if a raced double-release slipped past the erase; refuse
    // to drive it negative and steal a live attachment's reference.
    throw SmbError("double release of segment with SHM key " + std::to_string(segment.key) +
                   " (access key " + std::to_string(handle.access_key) + ")");
  }
  if (segment.refcount == 1 && segment.kind == Kind::kFloats) {
    // Final release: every pinned zero-copy view must have been unpinned.
    // A leaked pin means some reader still aliases the storage about to be
    // dropped from the table -- refuse, keeping the attachment alive.
    const std::uint64_t issued = segment.pins_issued.load(std::memory_order_acquire);
    const std::uint64_t released = segment.pins_released.load(std::memory_order_acquire);
    if (issued != released) {
      throw SmbError("segment with SHM key " + std::to_string(segment.key) +
                     " released with " + std::to_string(issued - released) +
                     " outstanding pinned read view(s)");
    }
  }
  segment.refcount -= 1;
  if (segment.refcount == 0) {
    stats_.bytes_in_use -= footprint(segment);
    key_to_access_.erase(segment.key);
    by_access_key_.erase(it);
  }
}

std::shared_ptr<SmbServer::Segment> SmbServer::find(Handle handle) const {
  throw_if_failed();
  std::shared_lock lock(table_mutex_);
  const auto it = by_access_key_.find(handle.access_key);
  if (it == by_access_key_.end()) {
    throw SmbError("unknown access key " + std::to_string(handle.access_key));
  }
  return it->second;
}

std::shared_ptr<SmbServer::Segment> SmbServer::find(Handle handle, Kind kind) const {
  std::shared_ptr<Segment> segment = find(handle);
  if (segment->kind != kind) {
    throw SmbError("operation not valid for this segment kind");
  }
  return segment;
}

std::size_t SmbServer::size(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle);
  // lint:allow-next-line(lock-region) segment sizes are fixed at create
  return segment->kind == Kind::kFloats ? segment->storage->data.size()
                                        : segment->counters.size();
}

void SmbServer::read(Handle handle, std::span<float> dst, std::size_t offset) const {
  block_while_frozen();
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::scoped_lock lock(segment->data_mutex);
  if (offset + dst.size() > segment->storage->data.size()) {
    throw SmbError("read out of segment bounds");
  }
  if (options_.integrity.verify_on_read) {
    verify_chunks_locked(*segment, offset, dst.size());
  }
  std::copy_n(segment->storage->data.data() + offset, dst.size(), dst.begin());
  std::unique_lock table(table_mutex_);
  stats_.reads += 1;
  stats_.bytes_read += static_cast<std::int64_t>(dst.size() * sizeof(float));
}

void SmbServer::read_raw(Handle handle, std::span<float> dst, std::size_t offset) const {
  block_while_frozen();
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::scoped_lock lock(segment->data_mutex);
  if (offset + dst.size() > segment->storage->data.size()) {
    throw SmbError("read out of segment bounds");
  }
  std::copy_n(segment->storage->data.data() + offset, dst.size(), dst.begin());
  std::unique_lock table(table_mutex_);
  stats_.reads += 1;
  stats_.bytes_read += static_cast<std::int64_t>(dst.size() * sizeof(float));
}

PinnedFloats SmbServer::read_pinned(Handle handle, std::size_t count,
                                    std::size_t offset) const {
  block_while_frozen();
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::shared_ptr<SegmentStorage> epoch;
  {
    std::scoped_lock lock(segment->data_mutex);
    if (offset + count > segment->storage->data.size()) {
      throw SmbError("read out of segment bounds");
    }
    // Verification happens ONCE, at pin time: the epoch is immutable while
    // pinned (writers clone or wait), so re-verifying per consumer of the
    // view would re-hash bytes that cannot have changed.
    if (options_.integrity.verify_on_read) {
      verify_chunks_locked(*segment, offset, count);
    }
    epoch = segment->storage;
    epoch->pins.fetch_add(1, std::memory_order_relaxed);
    segment->pins_issued.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::unique_lock table(table_mutex_);
    stats_.pinned_reads += 1;
    stats_.bytes_pinned += static_cast<std::int64_t>(count * sizeof(float));
  }
  const std::span<const float> view{epoch->data.data() + offset, count};
  return PinnedFloats(
      view, [segment, epoch = std::move(epoch)] {
        {
          // The decrement happens under the data mutex so a kBlockWriters
          // waiter between predicate check and sleep cannot miss the wakeup.
          std::scoped_lock lock(segment->data_mutex);
          epoch->pins.fetch_sub(1, std::memory_order_relaxed);
          segment->pins_released.fetch_add(1, std::memory_order_relaxed);
        }
        segment->version_cv.notify_all();
      });
}

void SmbServer::prepare_write_locked(Segment& segment,
                                     std::unique_lock<common::OrderedMutex>& lock)
    SHMCAFFE_REQUIRES(segment.data_mutex) {
  SHMCAFFE_ASSERT_HELD(segment.data_mutex);
  if (segment.storage->pins.load(std::memory_order_relaxed) == 0) return;
  if (options_.pin_write_policy == PinWritePolicy::kCopyOnWrite) {
    // COW clone control block: only taken while readers hold pins, and the
    // float payload itself is arena-backed.
    // lint:allow-next-line(no-hot-alloc) see above
    auto fresh = std::make_shared<SegmentStorage>();
    const std::size_t count = segment.storage->data.size();
    fresh->data.ensure(count);
    std::memcpy(fresh->data.data(), segment.storage->data.data(), count * sizeof(float));
    // The retired epoch stays alive — and immutable — through the
    // shared_ptr held by each outstanding pinned view.
    segment.storage = std::move(fresh);
    std::unique_lock table(table_mutex_);
    stats_.cow_clones += 1;
  } else {
    segment.version_cv.wait(lock, [&] {
      return failed() || segment.storage->pins.load(std::memory_order_relaxed) == 0;
    });
    if (failed()) {
      throw SmbUnavailable("SMB server fail-stopped while a writer waited on pinned readers");
    }
  }
}

bool SmbServer::replayed_locked(Segment& segment, OpTag tag)
    SHMCAFFE_REQUIRES(segment.data_mutex) {
  SHMCAFFE_ASSERT_HELD(segment.data_mutex);
  if (!tag.tagged()) return false;
  std::uint64_t& applied = segment.applied_tags[tag.writer];
  if (tag.sequence <= applied) return true;
  applied = tag.sequence;
  return false;
}

void SmbServer::write(Handle handle, std::span<const float> src, std::size_t offset) {
  write_tagged(handle, src, offset, OpTag{});
}

void SmbServer::write_tagged(Handle handle, std::span<const float> src, std::size_t offset,
                             OpTag tag) {
  block_while_frozen();
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  // Ordinal + armed-torn lookup happen before the data lock (the table lock
  // ranks above the segment lock, so it cannot be taken inside).  The atomic
  // gate keeps the fault-free path free of the extra table acquisition.
  const std::uint64_t ordinal = write_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
  double torn_fraction = -1.0;
  if (torn_armed_count_.load(std::memory_order_acquire) > 0) {
    std::unique_lock table(table_mutex_);
    const auto it = armed_torn_.find(ordinal);
    if (it != armed_torn_.end()) {
      torn_fraction = it->second;
      armed_torn_.erase(it);
      torn_armed_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  bool torn = false;
  {
    std::unique_lock lock(segment->data_mutex);
    if (offset + src.size() > segment->storage->data.size()) {
      throw SmbError("write out of segment bounds");
    }
    if (replayed_locked(*segment, tag)) {
      std::unique_lock table(table_mutex_);
      stats_.replays_dropped += 1;
      return;
    }
    // Pin policy first: after this the live storage has no outstanding
    // readers (kBlockWriters) or is a private clone (kCopyOnWrite), so the
    // mutation below can never move floats under a pinned view.
    prepare_write_locked(*segment, lock);
    float* const floats = segment->storage->data.data();
    if (torn_fraction < 0.0 || src.empty()) {
      std::copy_n(src.begin(), src.size(), floats + offset);
      refresh_chunks_locked(*segment, offset, src.size());
    } else {
      // Torn write: the writer computed checksums for the full payload but
      // only the leading `applied` floats landed.  Perform the full write,
      // refresh the checksums, then restore the old tail and poison its
      // chunks — the stored sums now describe data that never arrived.
      torn = true;
      const std::size_t applied = std::min(
          src.size(),
          static_cast<std::size_t>(torn_fraction * static_cast<double>(src.size())));
      // cold fault-injection path: the torn tail is saved only while a torn
      // write is armed
      // lint:allow-next-line(no-hot-alloc) see above
      std::vector<float> old_tail(floats + offset + applied, floats + offset + src.size());
      std::copy_n(src.begin(), src.size(), floats + offset);
      refresh_chunks_locked(*segment, offset, src.size());
      std::copy(old_tail.begin(), old_tail.end(), floats + offset + applied);
      if (!segment->chunk_markers.empty() && applied < src.size()) {
        const std::size_t width = options_.integrity.chunk_floats;
        const std::size_t last_chunk = (offset + src.size() - 1) / width;
        for (std::size_t c = (offset + applied) / width; c <= last_chunk; ++c) {
          segment->chunk_markers[c] = kTornWriteMarkerBit | ordinal;
        }
      }
    }
    segment->version += 1;
  }
  segment->version_cv.notify_all();
  std::unique_lock table(table_mutex_);
  stats_.writes += 1;
  stats_.bytes_written += static_cast<std::int64_t>(src.size() * sizeof(float));
  if (torn) {
    stats_.torn_writes_applied += 1;
    // lint:allow-next-line(no-hot-alloc) fault-injection audit log, armed runs only
    torn_applied_.push_back(kTornWriteMarkerBit | ordinal);
  }
}

void SmbServer::accumulate(Handle src, Handle dst) {
  accumulate_tagged(src, dst, OpTag{});
}

void SmbServer::accumulate_tagged(Handle src, Handle dst, OpTag tag) {
  block_while_frozen();
  if (src == dst) throw SmbError("accumulate requires distinct segments");
  const std::shared_ptr<Segment> s = find(src, Kind::kFloats);
  const std::shared_ptr<Segment> d = find(dst, Kind::kFloats);
  // Snapshot the source under its own lock, then add under the destination
  // lock alone, in parallel chunks on the work pool (segment lock rank 200 <
  // pool rank 500, see common/ordered_mutex.h).  Splitting the two-lock
  // scoped_lock is sound for the SEASGD protocol: a delta segment has
  // exactly one writer (its worker's update thread, §III-G T.A1-T.A4), and
  // that writer never overlaps its own accumulate, so the snapshot cannot
  // race the increment it carries.  The thread-local arena scratch keeps
  // the hot path allocation-free after the first accumulate of a given
  // size class.
  static thread_local common::arena::Buffer scratch{"smb.accumulate.scratch"};
  {
    std::scoped_lock lock(s->data_mutex);
    if (options_.integrity.verify_on_read) {
      verify_chunks_locked(*s, 0, s->storage->data.size());
    }
    scratch.ensure(s->storage->data.size());
    std::memcpy(scratch.data(), s->storage->data.data(),
                scratch.size() * sizeof(float));
  }
  {
    std::unique_lock lock(d->data_mutex);
    if (scratch.size() != d->storage->data.size()) {
      throw SmbError("accumulate requires equal segment sizes");
    }
    // Verify the destination BEFORE touching it: an accumulate into a
    // corrupted chunk would otherwise refresh the checksum over poisoned
    // data and launder the corruption.  Throwing here also precedes the tag
    // record, so a mirrored retry after a repair is not a replay.
    if (options_.integrity.verify_on_read) {
      verify_chunks_locked(*d, 0, d->storage->data.size());
    }
    if (replayed_locked(*d, tag)) {
      std::unique_lock table(table_mutex_);
      stats_.replays_dropped += 1;
      return;
    }
    prepare_write_locked(*d, lock);
    float* out = d->storage->data.data();
    const float* in = scratch.data();
    // The accumulate is served *inside* the destination's write lock by
    // design (the server-side op IS the critical section), and the pool
    // rank (kParallelPool, 500) sits above every lock its workers could
    // want — the workers themselves never touch SMB locks.
    // lint:allow-next-line(no-blocking-under-lock)
    common::parallel::parallel_for(
        d->storage->data.size(), kAccumulateGrain,
        [&](std::size_t begin, std::size_t end) {
          // simd.h core: element-wise add, each element owned by exactly
          // one chunk — bitwise identical for any pool width or lane width.
          common::simd::add_inplace(end - begin, out + begin, in + begin);
        });
    refresh_chunks_locked(*d, 0, d->storage->data.size());
    d->version += 1;
  }
  d->version_cv.notify_all();
  std::unique_lock table(table_mutex_);
  stats_.accumulates += 1;
}

void SmbServer::copy_segment(Handle src, Handle dst) {
  copy_segment_tagged(src, dst, OpTag{});
}

void SmbServer::copy_segment_tagged(Handle src, Handle dst, OpTag tag) {
  block_while_frozen();
  if (src == dst) return;
  const std::shared_ptr<Segment> s = find(src, Kind::kFloats);
  const std::shared_ptr<Segment> d = find(dst, Kind::kFloats);
  // Snapshot-then-apply like accumulate: taking the destination lock alone
  // lets prepare_write_locked wait out pinned readers (kBlockWriters)
  // without holding the source lock across the wait.
  static thread_local common::arena::Buffer scratch{"smb.copy.scratch"};
  {
    std::scoped_lock lock(s->data_mutex);
    if (options_.integrity.verify_on_read) {
      verify_chunks_locked(*s, 0, s->storage->data.size());
    }
    scratch.ensure(s->storage->data.size());
    std::memcpy(scratch.data(), s->storage->data.data(),
                scratch.size() * sizeof(float));
  }
  {
    std::unique_lock lock(d->data_mutex);
    if (scratch.size() != d->storage->data.size()) {
      throw SmbError("copy requires equal segment sizes");
    }
    if (replayed_locked(*d, tag)) {
      std::unique_lock table(table_mutex_);
      stats_.replays_dropped += 1;
      return;
    }
    prepare_write_locked(*d, lock);
    std::memcpy(d->storage->data.data(), scratch.data(),
                scratch.size() * sizeof(float));
    refresh_chunks_locked(*d, 0, d->storage->data.size());
    d->version += 1;
  }
  d->version_cv.notify_all();
}

std::uint64_t SmbServer::chunk_checksum(const float* data, std::size_t count) {
  // Word-folded FNV-1a (common/simd.h): 8 bytes per multiply instead of
  // one.  Not the byte-serial FNV value, but the sums are purely internal —
  // writer and verifier share this function, and the persisted checkpoint
  // hashes keep their own byte-serial FNV (recovery/checkpoint.cc).
  return common::simd::fnv1a_words(data, count * sizeof(float));
}

void SmbServer::refresh_chunks_locked(Segment& segment, std::size_t first, std::size_t count)
    SHMCAFFE_REQUIRES(segment.data_mutex) {
  SHMCAFFE_ASSERT_HELD(segment.data_mutex);
  if (segment.chunk_sums.empty() || count == 0) return;
  const std::size_t width = options_.integrity.chunk_floats;
  const std::size_t total = segment.storage->data.size();
  const std::size_t last_chunk = (first + count - 1) / width;
  for (std::size_t c = first / width; c <= last_chunk; ++c) {
    const std::size_t begin = c * width;
    segment.chunk_sums[c] = chunk_checksum(segment.storage->data.data() + begin,
                                           std::min(width, total - begin));
    segment.chunk_markers[c] = 0;
  }
}

std::size_t SmbServer::collect_corrupt_chunks_locked(Segment& segment, std::size_t first,
                                                     std::size_t count,
                                                     std::vector<CorruptChunk>& bad) const
    SHMCAFFE_REQUIRES(segment.data_mutex) {
  SHMCAFFE_ASSERT_HELD(segment.data_mutex);
  if (segment.chunk_sums.empty() || count == 0) return 0;
  const std::size_t width = options_.integrity.chunk_floats;
  const std::size_t total = segment.storage->data.size();
  const std::size_t last_chunk = (first + count - 1) / width;
  for (std::size_t c = first / width; c <= last_chunk; ++c) {
    const std::size_t begin = c * width;
    const std::uint64_t sum = chunk_checksum(segment.storage->data.data() + begin,
                                             std::min(width, total - begin));
    if (sum != segment.chunk_sums[c]) {
      // lint:allow-next-line(no-hot-alloc) corruption-detected path, not steady state
      bad.push_back(CorruptChunk{c, segment.chunk_markers[c]});
    }
  }
  return last_chunk - first / width + 1;
}

void SmbServer::record_verification(std::size_t checked,
                                    const std::vector<CorruptChunk>& bad) const {
  std::unique_lock table(table_mutex_);
  stats_.chunks_verified += checked;
  stats_.corruptions_detected += bad.size();
  for (const CorruptChunk& chunk : bad) {
    if (chunk.marker == 0) continue;
    if (std::find(detected_markers_.begin(), detected_markers_.end(), chunk.marker) ==
        detected_markers_.end()) {
      // lint:allow-next-line(no-hot-alloc) corruption audit log, detected faults only
      detected_markers_.push_back(chunk.marker);
    }
  }
}

void SmbServer::verify_chunks_locked(Segment& segment, std::size_t first,
                                     std::size_t count) const
    SHMCAFFE_REQUIRES(segment.data_mutex) {
  std::vector<CorruptChunk> bad;
  const std::size_t checked = collect_corrupt_chunks_locked(segment, first, count, bad);
  if (checked == 0) return;
  record_verification(checked, bad);
  if (!bad.empty()) {
    throw SmbCorruption("checksum mismatch in segment with SHM key " +
                        std::to_string(segment.key) + " (chunk " +
                        std::to_string(bad.front().chunk) + ", marker " +
                        std::to_string(bad.front().marker) + ")");
  }
}

std::vector<SmbServer::CorruptChunk> SmbServer::verify_segment(Handle handle) {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::vector<CorruptChunk> bad;
  std::size_t checked = 0;
  {
    std::scoped_lock lock(segment->data_mutex);
    checked = collect_corrupt_chunks_locked(*segment, 0, segment->storage->data.size(), bad);
  }
  if (checked != 0) record_verification(checked, bad);
  return bad;
}

std::vector<std::uint64_t> SmbServer::detected_markers() const {
  std::shared_lock lock(table_mutex_);
  std::vector<std::uint64_t> result = detected_markers_;
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::uint64_t> SmbServer::torn_applied_markers() const {
  std::shared_lock lock(table_mutex_);
  std::vector<std::uint64_t> result = torn_applied_;
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t SmbServer::corrupt_floats(ShmKey key, std::uint64_t marker, int bit_flips) {
  throw_if_failed();
  std::shared_ptr<Segment> segment;
  {
    std::shared_lock lock(table_mutex_);
    const auto it = key_to_access_.find(key);
    if (it == key_to_access_.end()) return 0;
    segment = by_access_key_.at(it->second);
  }
  if (segment->kind != Kind::kFloats) return 0;
  common::Rng rng(marker);
  // Deliberately bypasses the pin policy: silent corruption does not
  // announce itself, so a pinned view may observe the flipped bits — that
  // is the fault being modelled (verification happened at pin time).
  std::scoped_lock lock(segment->data_mutex);
  if (segment->storage->data.empty()) return 0;
  std::set<std::size_t> chunks;
  const std::size_t width = std::max<std::size_t>(1, options_.integrity.chunk_floats);
  for (int f = 0; f < std::max(1, bit_flips); ++f) {
    const std::size_t index = rng.next_below(segment->storage->data.size());
    // Mantissa bits only: the poisoned value stays finite, so a run that
    // consumes it degrades measurably instead of NaN-ing out instantly.
    const std::uint32_t bit = 1U << rng.next_below(23);
    std::uint32_t bits = 0;
    std::memcpy(&bits, &segment->storage->data[index], sizeof(bits));
    bits ^= bit;
    std::memcpy(&segment->storage->data[index], &bits, sizeof(bits));
    const std::size_t c = index / width;
    if (c < segment->chunk_markers.size()) segment->chunk_markers[c] = marker;
    chunks.insert(c);
  }
  // Checksums deliberately not refreshed, and the version not bumped: the
  // corruption is silent until something verifies the chunk.
  return chunks.size();
}

void SmbServer::arm_torn_write(std::uint64_t ordinal, double fraction) {
  if (ordinal == 0) throw SmbError("torn-write ordinal is 1-based");
  std::unique_lock table(table_mutex_);
  if (armed_torn_.emplace(ordinal, std::clamp(fraction, 0.0, 1.0)).second) {
    torn_armed_count_.fetch_add(1, std::memory_order_release);
  }
}

std::int64_t SmbServer::load(Handle handle, std::size_t index) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  if (index >= segment->counters.size()) throw SmbError("counter index out of bounds");
  return segment->counters[index].load(std::memory_order_seq_cst);
}

void SmbServer::store(Handle handle, std::size_t index, std::int64_t value) {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  if (index >= segment->counters.size()) throw SmbError("counter index out of bounds");
  segment->counters[index].store(value, std::memory_order_seq_cst);
}

std::int64_t SmbServer::fetch_add(Handle handle, std::size_t index, std::int64_t delta) {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  if (index >= segment->counters.size()) throw SmbError("counter index out of bounds");
  return segment->counters[index].fetch_add(delta, std::memory_order_seq_cst);
}

std::int64_t SmbServer::min_value(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  std::int64_t result = std::numeric_limits<std::int64_t>::max();
  for (const auto& counter : segment->counters) {
    result = std::min(result, counter.load(std::memory_order_seq_cst));
  }
  return result;
}

std::int64_t SmbServer::max_value(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  std::int64_t result = std::numeric_limits<std::int64_t>::min();
  for (const auto& counter : segment->counters) {
    result = std::max(result, counter.load(std::memory_order_seq_cst));
  }
  return result;
}

std::int64_t SmbServer::sum(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  std::int64_t result = 0;
  for (const auto& counter : segment->counters) {
    result += counter.load(std::memory_order_seq_cst);
  }
  return result;
}

std::uint64_t SmbServer::version(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::scoped_lock lock(segment->data_mutex);
  return segment->version;
}

std::uint64_t SmbServer::wait_version_at_least(Handle handle, std::uint64_t min_version) const {
  // Thin forwarder: an "infinite" wait is a sequence of bounded waits, so
  // all blocking funnels through the single deadline implementation.
  for (;;) {
    const std::optional<std::uint64_t> seen =
        wait_version_at_least(handle, min_version, std::chrono::seconds(1));
    if (seen.has_value()) return *seen;
  }
}

std::optional<std::uint64_t> SmbServer::wait_version_at_least(
    Handle handle, std::uint64_t min_version, std::chrono::nanoseconds timeout) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::unique_lock lock(segment->data_mutex);
  const bool satisfied = segment->version_cv.wait_for(
      lock, timeout, [&] { return failed() || segment->version >= min_version; });
  // A fail-stop mid-wait surfaces immediately: the deadline must belong to
  // the caller's failover logic, not be burned waiting on a dead server.
  if (failed()) throw SmbUnavailable("SMB server fail-stopped during version wait");
  if (!satisfied) return std::nullopt;
  return segment->version;
}

void SmbServer::freeze_for(std::chrono::nanoseconds duration) {
  const std::int64_t until = steady_now_ns() + duration.count();
  std::int64_t current = frozen_until_ns_.load(std::memory_order_relaxed);
  while (until > current &&
         !frozen_until_ns_.compare_exchange_weak(current, until, std::memory_order_relaxed)) {
  }
}

bool SmbServer::frozen() const {
  return frozen_until_ns_.load(std::memory_order_relaxed) > steady_now_ns();
}

void SmbServer::fail_stop() {
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;  // idempotent
  // Wake every thread blocked in wait_version_at_least so it observes the
  // failure now.  Segment pointers are collected first: notifying must not
  // happen under the table lock (rank 210) because waiters re-acquire their
  // segment lock (rank 200) to evaluate the predicate.
  std::vector<std::shared_ptr<Segment>> segments;
  {
    std::shared_lock lock(table_mutex_);
    segments.reserve(by_access_key_.size());
    for (const auto& [key, segment] : by_access_key_) segments.push_back(segment);
  }
  for (const std::shared_ptr<Segment>& segment : segments) {
    {
      // Empty critical section: a waiter between its predicate check and its
      // cv sleep holds the lock, so this handshake guarantees it either saw
      // failed_ or is asleep when the notification lands.
      std::scoped_lock lock(segment->data_mutex);
    }
    segment->version_cv.notify_all();
  }
}

void SmbServer::block_while_frozen() const {
  for (;;) {
    throw_if_failed();
    const std::int64_t until = frozen_until_ns_.load(std::memory_order_relaxed);
    const std::int64_t now = steady_now_ns();
    if (now >= until) return;
    std::this_thread::sleep_for(
        std::min(std::chrono::nanoseconds(until - now), std::chrono::nanoseconds(1'000'000)));
  }
}

SmbServerStats SmbServer::stats() const {
  std::shared_lock lock(table_mutex_);
  return stats_;
}

}  // namespace shmcaffe::smb
