#include "smb/server.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <thread>

#include "common/parallel.h"

namespace shmcaffe::smb {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Segment floats handed to one work-pool chunk by accumulate (element-wise
// add: each element is written by exactly one chunk, so the sum is bitwise
// identical for any pool width).
constexpr std::size_t kAccumulateGrain = 16384;
}  // namespace

SmbServer::SmbServer(SmbServerOptions options) : options_(options) {
  if (options_.capacity_bytes <= 0) {
    throw SmbError("SMB server capacity must be positive");
  }
}

void SmbServer::throw_if_failed() const {
  if (failed()) throw SmbUnavailable("SMB server has fail-stopped");
}

std::int64_t SmbServer::footprint(const Segment& segment) {
  if (segment.kind == Kind::kFloats) {
    // lint:allow-next-line(lock-region) segment sizes are fixed at create
    return static_cast<std::int64_t>(segment.floats.size() * sizeof(float));
  }
  return static_cast<std::int64_t>(segment.counters.size() * sizeof(std::int64_t));
}

Handle SmbServer::create_segment(ShmKey key, std::size_t count, Kind kind) {
  throw_if_failed();
  if (count == 0) throw SmbError("segment size must be positive");
  auto segment = std::make_shared<Segment>();
  segment->key = key;
  segment->kind = kind;
  if (kind == Kind::kFloats) {
    // lint:allow-next-line(lock-region) fresh segment, not yet published
    segment->floats.assign(count, 0.0F);
  } else {
    segment->counters = std::vector<std::atomic<std::int64_t>>(count);
  }

  std::unique_lock lock(table_mutex_);
  // refcount is table_mutex_ state: set it under the same lock that
  // publishes the segment, so the guard covers its whole lifetime.
  segment->refcount = 1;
  if (key_to_access_.contains(key)) {
    throw SmbError("SHM key already exists: " + std::to_string(key));
  }
  const std::int64_t bytes = footprint(*segment);
  if (stats_.bytes_in_use + bytes > options_.capacity_bytes) {
    throw SmbError("SMB server out of granted memory");
  }
  const std::uint64_t access_key = next_access_key_++;
  by_access_key_.emplace(access_key, std::move(segment));
  key_to_access_.emplace(key, access_key);
  stats_.bytes_in_use += bytes;
  stats_.creates += 1;
  return Handle{access_key};
}

const char* SmbServer::kind_name(Kind kind) {
  return kind == Kind::kFloats ? "floats" : "counters";
}

Handle SmbServer::attach_segment(ShmKey key, std::size_t count, Kind kind) {
  throw_if_failed();
  std::unique_lock lock(table_mutex_);
  const auto it = key_to_access_.find(key);
  if (it == key_to_access_.end()) {
    throw SmbNotFound("no segment with SHM key " + std::to_string(key));
  }
  const std::shared_ptr<Segment>& segment = by_access_key_.at(it->second);
  if (segment->kind != kind) {
    throw SmbError("segment kind mismatch for SHM key " + std::to_string(key) +
                   " (access key " + std::to_string(it->second) + "): requested " +
                   kind_name(kind) + ", exists as " + kind_name(segment->kind));
  }
  const std::size_t actual =  // lint:allow(lock-region) sizes fixed at create
      kind == Kind::kFloats ? segment->floats.size() : segment->counters.size();
  if (count != 0 && count != actual) {
    throw SmbError("segment size mismatch: requested " + std::to_string(count) +
                   ", exists with " + std::to_string(actual));
  }
  segment->refcount += 1;
  stats_.attaches += 1;
  return Handle{it->second};
}

Handle SmbServer::create_floats(ShmKey key, std::size_t count) {
  return create_segment(key, count, Kind::kFloats);
}

Handle SmbServer::attach_floats(ShmKey key, std::size_t count) {
  return attach_segment(key, count, Kind::kFloats);
}

Handle SmbServer::create_counters(ShmKey key, std::size_t count) {
  return create_segment(key, count, Kind::kCounters);
}

Handle SmbServer::attach_counters(ShmKey key, std::size_t count) {
  return attach_segment(key, count, Kind::kCounters);
}

void SmbServer::release(Handle handle) {
  throw_if_failed();
  std::unique_lock lock(table_mutex_);
  const auto it = by_access_key_.find(handle.access_key);
  if (it == by_access_key_.end()) {
    throw SmbError("release of unknown access key " + std::to_string(handle.access_key) +
                   " (already fully released, or never issued by this server)");
  }
  Segment& segment = *it->second;
  if (segment.refcount <= 0) {
    // A freed segment is erased from the table, so refcount can only be
    // non-positive if a raced double-release slipped past the erase; refuse
    // to drive it negative and steal a live attachment's reference.
    throw SmbError("double release of segment with SHM key " + std::to_string(segment.key) +
                   " (access key " + std::to_string(handle.access_key) + ")");
  }
  segment.refcount -= 1;
  if (segment.refcount == 0) {
    stats_.bytes_in_use -= footprint(segment);
    key_to_access_.erase(segment.key);
    by_access_key_.erase(it);
  }
}

std::shared_ptr<SmbServer::Segment> SmbServer::find(Handle handle) const {
  throw_if_failed();
  std::shared_lock lock(table_mutex_);
  const auto it = by_access_key_.find(handle.access_key);
  if (it == by_access_key_.end()) {
    throw SmbError("unknown access key " + std::to_string(handle.access_key));
  }
  return it->second;
}

std::shared_ptr<SmbServer::Segment> SmbServer::find(Handle handle, Kind kind) const {
  std::shared_ptr<Segment> segment = find(handle);
  if (segment->kind != kind) {
    throw SmbError("operation not valid for this segment kind");
  }
  return segment;
}

std::size_t SmbServer::size(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle);
  // lint:allow-next-line(lock-region) segment sizes are fixed at create
  return segment->kind == Kind::kFloats ? segment->floats.size() : segment->counters.size();
}

void SmbServer::read(Handle handle, std::span<float> dst, std::size_t offset) const {
  block_while_frozen();
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::scoped_lock lock(segment->data_mutex);
  if (offset + dst.size() > segment->floats.size()) {
    throw SmbError("read out of segment bounds");
  }
  std::copy_n(segment->floats.begin() + static_cast<std::ptrdiff_t>(offset), dst.size(),
              dst.begin());
  std::unique_lock table(table_mutex_);
  stats_.reads += 1;
  stats_.bytes_read += static_cast<std::int64_t>(dst.size() * sizeof(float));
}

bool SmbServer::replayed_locked(Segment& segment, OpTag tag)
    SHMCAFFE_REQUIRES(segment.data_mutex) {
  SHMCAFFE_ASSERT_HELD(segment.data_mutex);
  if (!tag.tagged()) return false;
  std::uint64_t& applied = segment.applied_tags[tag.writer];
  if (tag.sequence <= applied) return true;
  applied = tag.sequence;
  return false;
}

void SmbServer::write(Handle handle, std::span<const float> src, std::size_t offset) {
  write_tagged(handle, src, offset, OpTag{});
}

void SmbServer::write_tagged(Handle handle, std::span<const float> src, std::size_t offset,
                             OpTag tag) {
  block_while_frozen();
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  {
    std::scoped_lock lock(segment->data_mutex);
    if (offset + src.size() > segment->floats.size()) {
      throw SmbError("write out of segment bounds");
    }
    if (replayed_locked(*segment, tag)) {
      std::unique_lock table(table_mutex_);
      stats_.replays_dropped += 1;
      return;
    }
    std::copy_n(src.begin(), src.size(),
                segment->floats.begin() + static_cast<std::ptrdiff_t>(offset));
    segment->version += 1;
  }
  segment->version_cv.notify_all();
  std::unique_lock table(table_mutex_);
  stats_.writes += 1;
  stats_.bytes_written += static_cast<std::int64_t>(src.size() * sizeof(float));
}

void SmbServer::accumulate(Handle src, Handle dst) {
  accumulate_tagged(src, dst, OpTag{});
}

void SmbServer::accumulate_tagged(Handle src, Handle dst, OpTag tag) {
  block_while_frozen();
  if (src == dst) throw SmbError("accumulate requires distinct segments");
  const std::shared_ptr<Segment> s = find(src, Kind::kFloats);
  const std::shared_ptr<Segment> d = find(dst, Kind::kFloats);
  // Snapshot the source under its own lock, then add under the destination
  // lock alone, in parallel chunks on the work pool (segment lock rank 200 <
  // pool rank 500, see common/ordered_mutex.h).  Splitting the two-lock
  // scoped_lock is sound for the SEASGD protocol: a delta segment has
  // exactly one writer (its worker's update thread, §III-G T.A1-T.A4), and
  // that writer never overlaps its own accumulate, so the snapshot cannot
  // race the increment it carries.  The thread-local scratch keeps the hot
  // path allocation-free after the first accumulate of a given size.
  static thread_local std::vector<float> scratch;
  {
    std::scoped_lock lock(s->data_mutex);
    scratch.assign(s->floats.begin(), s->floats.end());
  }
  {
    std::scoped_lock lock(d->data_mutex);
    if (scratch.size() != d->floats.size()) {
      throw SmbError("accumulate requires equal segment sizes");
    }
    if (replayed_locked(*d, tag)) {
      std::unique_lock table(table_mutex_);
      stats_.replays_dropped += 1;
      return;
    }
    float* out = d->floats.data();
    const float* in = scratch.data();
    common::parallel::parallel_for(
        d->floats.size(), kAccumulateGrain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) out[i] += in[i];
        });
    d->version += 1;
  }
  d->version_cv.notify_all();
  std::unique_lock table(table_mutex_);
  stats_.accumulates += 1;
}

void SmbServer::copy_segment(Handle src, Handle dst) {
  copy_segment_tagged(src, dst, OpTag{});
}

void SmbServer::copy_segment_tagged(Handle src, Handle dst, OpTag tag) {
  block_while_frozen();
  if (src == dst) return;
  const std::shared_ptr<Segment> s = find(src, Kind::kFloats);
  const std::shared_ptr<Segment> d = find(dst, Kind::kFloats);
  {
    std::scoped_lock lock(s->data_mutex, d->data_mutex);
    if (s->floats.size() != d->floats.size()) {
      throw SmbError("copy requires equal segment sizes");
    }
    if (replayed_locked(*d, tag)) {
      std::unique_lock table(table_mutex_);
      stats_.replays_dropped += 1;
      return;
    }
    std::copy(s->floats.begin(), s->floats.end(), d->floats.begin());
    d->version += 1;
  }
  d->version_cv.notify_all();
}

std::int64_t SmbServer::load(Handle handle, std::size_t index) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  if (index >= segment->counters.size()) throw SmbError("counter index out of bounds");
  return segment->counters[index].load(std::memory_order_seq_cst);
}

void SmbServer::store(Handle handle, std::size_t index, std::int64_t value) {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  if (index >= segment->counters.size()) throw SmbError("counter index out of bounds");
  segment->counters[index].store(value, std::memory_order_seq_cst);
}

std::int64_t SmbServer::fetch_add(Handle handle, std::size_t index, std::int64_t delta) {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  if (index >= segment->counters.size()) throw SmbError("counter index out of bounds");
  return segment->counters[index].fetch_add(delta, std::memory_order_seq_cst);
}

std::int64_t SmbServer::min_value(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  std::int64_t result = std::numeric_limits<std::int64_t>::max();
  for (const auto& counter : segment->counters) {
    result = std::min(result, counter.load(std::memory_order_seq_cst));
  }
  return result;
}

std::int64_t SmbServer::max_value(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  std::int64_t result = std::numeric_limits<std::int64_t>::min();
  for (const auto& counter : segment->counters) {
    result = std::max(result, counter.load(std::memory_order_seq_cst));
  }
  return result;
}

std::int64_t SmbServer::sum(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kCounters);
  std::int64_t result = 0;
  for (const auto& counter : segment->counters) {
    result += counter.load(std::memory_order_seq_cst);
  }
  return result;
}

std::uint64_t SmbServer::version(Handle handle) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::scoped_lock lock(segment->data_mutex);
  return segment->version;
}

std::uint64_t SmbServer::wait_version_at_least(Handle handle, std::uint64_t min_version) const {
  // Thin forwarder: an "infinite" wait is a sequence of bounded waits, so
  // all blocking funnels through the single deadline implementation.
  for (;;) {
    const std::optional<std::uint64_t> seen =
        wait_version_at_least(handle, min_version, std::chrono::seconds(1));
    if (seen.has_value()) return *seen;
  }
}

std::optional<std::uint64_t> SmbServer::wait_version_at_least(
    Handle handle, std::uint64_t min_version, std::chrono::nanoseconds timeout) const {
  const std::shared_ptr<Segment> segment = find(handle, Kind::kFloats);
  std::unique_lock lock(segment->data_mutex);
  const bool satisfied = segment->version_cv.wait_for(
      lock, timeout, [&] { return failed() || segment->version >= min_version; });
  // A fail-stop mid-wait surfaces immediately: the deadline must belong to
  // the caller's failover logic, not be burned waiting on a dead server.
  if (failed()) throw SmbUnavailable("SMB server fail-stopped during version wait");
  if (!satisfied) return std::nullopt;
  return segment->version;
}

void SmbServer::freeze_for(std::chrono::nanoseconds duration) {
  const std::int64_t until = steady_now_ns() + duration.count();
  std::int64_t current = frozen_until_ns_.load(std::memory_order_relaxed);
  while (until > current &&
         !frozen_until_ns_.compare_exchange_weak(current, until, std::memory_order_relaxed)) {
  }
}

bool SmbServer::frozen() const {
  return frozen_until_ns_.load(std::memory_order_relaxed) > steady_now_ns();
}

void SmbServer::fail_stop() {
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;  // idempotent
  // Wake every thread blocked in wait_version_at_least so it observes the
  // failure now.  Segment pointers are collected first: notifying must not
  // happen under the table lock (rank 210) because waiters re-acquire their
  // segment lock (rank 200) to evaluate the predicate.
  std::vector<std::shared_ptr<Segment>> segments;
  {
    std::shared_lock lock(table_mutex_);
    segments.reserve(by_access_key_.size());
    for (const auto& [key, segment] : by_access_key_) segments.push_back(segment);
  }
  for (const std::shared_ptr<Segment>& segment : segments) {
    {
      // Empty critical section: a waiter between its predicate check and its
      // cv sleep holds the lock, so this handshake guarantees it either saw
      // failed_ or is asleep when the notification lands.
      std::scoped_lock lock(segment->data_mutex);
    }
    segment->version_cv.notify_all();
  }
}

void SmbServer::block_while_frozen() const {
  for (;;) {
    throw_if_failed();
    const std::int64_t until = frozen_until_ns_.load(std::memory_order_relaxed);
    const std::int64_t now = steady_now_ns();
    if (now >= until) return;
    std::this_thread::sleep_for(
        std::min(std::chrono::nanoseconds(until - now), std::chrono::nanoseconds(1'000'000)));
  }
}

SmbServerStats SmbServer::stats() const {
  std::shared_lock lock(table_mutex_);
  return stats_;
}

}  // namespace shmcaffe::smb
