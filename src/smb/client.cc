#include "smb/client.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace shmcaffe::smb {

std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy, int attempt,
                                       common::Rng& rng) {
  const double exponent = std::max(0, attempt - 1);
  double delay = static_cast<double>(policy.initial_backoff.count()) *
                 std::pow(policy.backoff_multiplier, exponent);
  delay = std::min(delay, static_cast<double>(policy.max_backoff.count()));
  const double jittered =
      delay * rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(std::max(0.0, jittered)));
}

SmbClient::SmbClient(SmbService& server, RetryPolicy policy, std::uint64_t seed)
    : server_(&server), policy_(policy), rng_(seed) {}

Handle SmbClient::attach_with_retry(ShmKey key, std::size_t count, bool floats) {
  for (int attempt = 1;; ++attempt) {
    try {
      return floats ? server_->attach_floats(key, count)
                    : server_->attach_counters(key, count);
    } catch (const SmbNotFound&) {
      if (attempt >= policy_.max_attempts) throw;
      std::this_thread::sleep_for(backoff_delay(policy_, attempt, rng_));
    }
  }
}

Handle SmbClient::attach_floats(ShmKey key, std::size_t count) {
  return attach_with_retry(key, count, /*floats=*/true);
}

Handle SmbClient::attach_counters(ShmKey key, std::size_t count) {
  return attach_with_retry(key, count, /*floats=*/false);
}

}  // namespace shmcaffe::smb
