#include "smb/client.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

namespace shmcaffe::smb {

namespace {
// Client writer ids start at 2: 0 means untagged and 1 is the replicated
// ensemble's mirror agent (recovery/replicated_smb.h).
std::atomic<std::uint64_t> next_client_writer{2};
}  // namespace

std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy, int attempt,
                                       common::Rng& rng) {
  const double exponent = std::max(0, attempt - 1);
  double delay = static_cast<double>(policy.initial_backoff.count()) *
                 std::pow(policy.backoff_multiplier, exponent);
  delay = std::min(delay, static_cast<double>(policy.max_backoff.count()));
  const double jittered =
      delay * rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(std::max(0.0, jittered)));
}

SmbClient::SmbClient(SmbService& server, RetryPolicy policy, std::uint64_t seed)
    : server_(&server),
      policy_(policy),
      rng_(seed),
      writer_id_(next_client_writer.fetch_add(1, std::memory_order_relaxed)) {}

void SmbClient::write(Handle handle, std::span<const float> src, std::size_t offset) {
  last_.kind = LastMutation::kWrite;
  last_.src = Handle{};
  last_.dst = handle;
  last_.offset = offset;
  last_.payload.assign(src.begin(), src.end());
  last_.tag = OpTag{writer_id_, ++sequence_};
  server_->write_tagged(handle, src, offset, last_.tag);
}

void SmbClient::accumulate(Handle src, Handle dst) {
  last_.kind = LastMutation::kAccumulate;
  last_.src = src;
  last_.dst = dst;
  last_.offset = 0;
  last_.payload.clear();
  last_.tag = OpTag{writer_id_, ++sequence_};
  server_->accumulate_tagged(src, dst, last_.tag);
}

bool SmbClient::resend_last_mutation() {
  switch (last_.kind) {
    case LastMutation::kNone:
      return false;
    case LastMutation::kWrite:
      server_->write_tagged(last_.dst, last_.payload, last_.offset, last_.tag);
      return true;
    case LastMutation::kAccumulate:
      server_->accumulate_tagged(last_.src, last_.dst, last_.tag);
      return true;
  }
  return false;
}

Handle SmbClient::attach_with_retry(ShmKey key, std::size_t count, bool floats) {
  for (int attempt = 1;; ++attempt) {
    try {
      return floats ? server_->attach_floats(key, count)
                    : server_->attach_counters(key, count);
    } catch (const SmbNotFound&) {
      if (attempt >= policy_.max_attempts) throw;
      std::this_thread::sleep_for(backoff_delay(policy_, attempt, rng_));
    }
  }
}

Handle SmbClient::attach_floats(ShmKey key, std::size_t count) {
  return attach_with_retry(key, count, /*floats=*/true);
}

Handle SmbClient::attach_counters(ShmKey key, std::size_t count) {
  return attach_with_retry(key, count, /*floats=*/false);
}

}  // namespace shmcaffe::smb
