#include "smb/sim_smb.h"

#include <cassert>

namespace shmcaffe::smb {

SimSmbServer::SimSmbServer(sim::Simulation& sim, net::Fabric& fabric, SimSmbOptions options)
    : sim_(&sim),
      fabric_(&fabric),
      options_(options),
      rds_(sim),
      device_(std::make_unique<rdma::Device>(sim, fabric, "smb-server",
                                             options.server_bandwidth)),
      pd_(*device_) {
  aggregate_link_ = fabric.add_link("smb-server.agg", options_.server_bandwidth);
  mailbox_ = rds_.attach(*device_);
}

SimSmbServer::~SimSmbServer() = default;

void SimSmbServer::start() {
  assert(!started_);
  started_ = true;
  sim_->spawn(serve_loop());
}

std::vector<net::LinkId> SimSmbServer::inbound_path(rdma::Device& client) const {
  if (options_.aggregate_data_path) return {client.tx(), aggregate_link_};
  return {client.tx(), device_->rx()};
}

std::vector<net::LinkId> SimSmbServer::outbound_path(rdma::Device& client) const {
  if (options_.aggregate_data_path) return {aggregate_link_, client.rx()};
  return {device_->tx(), client.rx()};
}

SimSmbServer::SegmentInfo* SimSmbServer::find_segment(std::uint64_t access_key) {
  const auto it = segments_.find(access_key);
  return it == segments_.end() ? nullptr : &it->second;
}

sim::Task<void> SimSmbServer::serve_loop() {
  for (;;) {
    rdma::Datagram request = co_await rds_.recv(mailbox_);
    sim_->spawn(handle_request(request));
  }
}

sim::Task<void> SimSmbServer::handle_request(rdma::Datagram request) {
  co_await sim_->delay(options_.control_service_time);
  rdma::Datagram reply;
  reply.opcode = kFail;

  switch (request.opcode) {
    case kCreate: {
      // a = shm key, b = bytes
      const ShmKey key = request.a;
      const auto bytes = static_cast<std::int64_t>(request.b);
      if (!key_to_access_.contains(key) && bytes > 0) {
        SegmentInfo info;
        info.key = key;
        info.bytes = bytes;
        info.mr = pd_.register_memory(bytes);
        info.accumulate_gate = std::make_unique<sim::SimMutex>(*sim_);
        const std::uint64_t access_key = next_access_key_++;
        key_to_access_.emplace(key, access_key);
        segments_.emplace(access_key, std::move(info));
        reply.opcode = kOk;
        reply.a = access_key;
      }
      break;
    }
    case kAttach: {
      const auto it = key_to_access_.find(request.a);
      if (it != key_to_access_.end()) {
        reply.opcode = kOk;
        reply.a = it->second;
        reply.b = static_cast<std::uint64_t>(segments_.at(it->second).bytes);
      }
      break;
    }
    case kAccumulate: {
      // a = src access key, b = dst access key
      SegmentInfo* src = find_segment(request.a);
      SegmentInfo* dst = find_segment(request.b);
      if (src != nullptr && dst != nullptr && src->bytes == dst->bytes) {
        // The server processes accumulate requests against the same
        // destination exclusively (paper step T.A3).
        sim::SimLock lock = co_await dst->accumulate_gate->scoped_lock();
        co_await sim_->delay(
            units::transfer_time(src->bytes, options_.accumulate_bandwidth));
        ++accumulates_served_;
        reply.opcode = kOk;
      }
      break;
    }
    default:
      break;
  }
  co_await rds_.send_to(mailbox_, request.source, reply);
}

SimSmbClient::SimSmbClient(SimSmbServer& server, const std::string& name,
                           double bandwidth_bytes_per_sec)
    : server_(&server) {
  device_ = std::make_unique<rdma::Device>(server.simulation(), server.fabric(), name,
                                           bandwidth_bytes_per_sec);
  mailbox_ = server.rds().attach(*device_);
}

sim::Task<Handle> SimSmbClient::create(ShmKey key, std::int64_t bytes) {
  rdma::Datagram request;
  request.opcode = SimSmbServer::kCreate;
  request.a = key;
  request.b = static_cast<std::uint64_t>(bytes);
  co_await server_->rds().send_to(mailbox_, server_->mailbox(), request);
  const rdma::Datagram reply = co_await server_->rds().recv(mailbox_);
  if (reply.opcode != SimSmbServer::kOk) {
    throw SmbError("SMB create failed for key " + std::to_string(key));
  }
  co_return Handle{reply.a};
}

sim::Task<Handle> SimSmbClient::attach(ShmKey key) {
  rdma::Datagram request;
  request.opcode = SimSmbServer::kAttach;
  request.a = key;
  co_await server_->rds().send_to(mailbox_, server_->mailbox(), request);
  const rdma::Datagram reply = co_await server_->rds().recv(mailbox_);
  if (reply.opcode != SimSmbServer::kOk) {
    throw SmbError("SMB attach failed for key " + std::to_string(key));
  }
  co_return Handle{reply.a};
}

sim::Task<void> SimSmbClient::read(Handle handle, std::int64_t bytes, std::int64_t offset) {
  SimSmbServer::SegmentInfo* segment = server_->find_segment(handle.access_key);
  if (segment == nullptr) throw SmbError("read from unknown SMB handle");
  server_->pd_.check_remote_access(segment->mr.rkey, offset, bytes);
  co_await server_->simulation().delay(server_->options().op_overhead);
  server_->data_bytes_moved_ += bytes;
  co_await server_->fabric().transfer(server_->outbound_path(*device_), bytes);
}

sim::Task<void> SimSmbClient::read_pinned(Handle handle, std::int64_t bytes,
                                          std::int64_t offset, bool verify) {
  SimSmbServer::SegmentInfo* segment = server_->find_segment(handle.access_key);
  if (segment == nullptr) throw SmbError("pinned read from unknown SMB handle");
  server_->pd_.check_remote_access(segment->mr.rkey, offset, bytes);
  co_await server_->simulation().delay(server_->options().op_overhead);
  if (verify) {
    // One verification pass over the pinned epoch, local to the server.
    co_await server_->simulation().delay(
        units::transfer_time(bytes, server_->options().accumulate_bandwidth));
  }
}

sim::Task<void> SimSmbClient::write(Handle handle, std::int64_t bytes, std::int64_t offset) {
  SimSmbServer::SegmentInfo* segment = server_->find_segment(handle.access_key);
  if (segment == nullptr) throw SmbError("write to unknown SMB handle");
  server_->pd_.check_remote_access(segment->mr.rkey, offset, bytes);
  co_await server_->simulation().delay(server_->options().op_overhead);
  server_->data_bytes_moved_ += bytes;
  co_await server_->fabric().transfer(server_->inbound_path(*device_), bytes);
}

sim::Task<void> SimSmbClient::accumulate(Handle src, Handle dst) {
  rdma::Datagram request;
  request.opcode = SimSmbServer::kAccumulate;
  request.a = src.access_key;
  request.b = dst.access_key;
  co_await server_->rds().send_to(mailbox_, server_->mailbox(), request);
  const rdma::Datagram reply = co_await server_->rds().recv(mailbox_);
  if (reply.opcode != SimSmbServer::kOk) {
    throw SmbError("SMB accumulate failed");
  }
}

}  // namespace shmcaffe::smb
