// Byte and time unit helpers shared across the project.
//
// All simulated time in this project is kept in integral nanoseconds
// (SimTime) so that the discrete-event simulation is exactly deterministic;
// floating-point seconds are used only at reporting boundaries.
#pragma once

#include <cstdint>

namespace shmcaffe {

/// Simulated time in nanoseconds.
using SimTime = std::int64_t;

namespace units {

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;
inline constexpr std::int64_t kKB = 1000;
inline constexpr std::int64_t kMB = 1000 * kKB;
inline constexpr std::int64_t kGB = 1000 * kMB;

/// Converts nanoseconds to (floating) seconds for reporting.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / kSecond; }

/// Converts nanoseconds to (floating) milliseconds for reporting.
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / kMillisecond; }

/// Converts floating seconds to integral nanoseconds (rounded).
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

/// Converts floating milliseconds to integral nanoseconds (rounded).
constexpr SimTime from_millis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/// Time to move `bytes` at `bytes_per_second`, rounded up to a whole ns.
constexpr SimTime transfer_time(std::int64_t bytes, double bytes_per_second) {
  const double secs = static_cast<double>(bytes) / bytes_per_second;
  return static_cast<SimTime>(secs * static_cast<double>(kSecond) + 0.999999);
}

}  // namespace units
}  // namespace shmcaffe
