#include "common/arena.h"

#include <bit>
#include <mutex>
#include <new>

namespace shmcaffe::common::arena {

namespace {

float* os_alloc(std::size_t floats) {
  return static_cast<float*>(::operator new(
      floats * sizeof(float), std::align_val_t{Arena::kAlignment}));
}

void os_free(float* p) noexcept {
  ::operator delete(p, std::align_val_t{Arena::kAlignment});
}

}  // namespace

std::size_t Arena::slab_class(std::size_t count) {
  if (count <= kMinSlabFloats) return kMinSlabFloats;
  return std::bit_ceil(count);
}

Arena::~Arena() {
  std::scoped_lock lock(mutex_);
  for (auto& [cls, slabs] : free_lists_) {
    for (float* p : slabs) os_free(p);
  }
  free_lists_.clear();
}

Arena::Slab Arena::acquire(const char* owner, std::size_t count) {
  const std::size_t cls = slab_class(count);
  const std::uint64_t bytes = cls * sizeof(float);
  float* data = nullptr;
  bool reused = false;
  {
    std::scoped_lock lock(mutex_);
    auto it = free_lists_.find(cls);
    if (it != free_lists_.end() && !it->second.empty()) {
      data = it->second.back();
      it->second.pop_back();
      reused = true;
    }
    OwnerStats& os = by_owner_[owner];
    for (OwnerStats* s : {&os, &total_}) {
      s->bytes_live += bytes;
      if (s->bytes_live > s->bytes_peak) s->bytes_peak = s->bytes_live;
      if (reused) {
        s->bytes_reused += bytes;
        ++s->slab_reuses;
      } else {
        ++s->slab_allocs;
      }
    }
  }
  // The OS allocation happens outside the registry lock: it can take page
  // faults and must never extend a critical section other threads recycle
  // through.  Stats already counted it as an alloc.
  if (data == nullptr) data = os_alloc(cls);
  return Slab{data, cls};
}

void Arena::release(const char* owner, Slab slab) noexcept {
  if (slab.data == nullptr) return;
  const std::uint64_t bytes = slab.capacity * sizeof(float);
  std::scoped_lock lock(mutex_);
  free_lists_[slab.capacity].push_back(slab.data);
  OwnerStats& os = by_owner_[owner];
  for (OwnerStats* s : {&os, &total_}) {
    s->bytes_live = s->bytes_live >= bytes ? s->bytes_live - bytes : 0;
  }
}

Stats Arena::stats() const {
  std::scoped_lock lock(mutex_);
  Stats out;
  out.total = total_;
  out.by_owner = by_owner_;
  return out;
}

std::size_t Arena::trim() {
  std::scoped_lock lock(mutex_);
  std::size_t freed = 0;
  for (auto& [cls, slabs] : free_lists_) {
    for (float* p : slabs) {
      os_free(p);
      freed += cls * sizeof(float);
    }
    slabs.clear();
  }
  return freed;
}

Arena& global_arena() {
  // Leaked: thread-local and static-lifetime buffers release during
  // shutdown, after function-local statics would have been destroyed.
  static Arena* const arena = new Arena;
  return *arena;
}

void Buffer::grow(std::size_t count) {
  Arena::Slab bigger = arena_->acquire(owner_, count);
  if (slab_.data != nullptr) {
    if (size_ > 0) std::memcpy(bigger.data, slab_.data, size_ * sizeof(float));
    arena_->release(owner_, slab_);
  }
  slab_ = bigger;
}

void Buffer::grow_discard(std::size_t count) {
  if (slab_.data != nullptr) arena_->release(owner_, slab_);
  slab_ = {};
  slab_ = arena_->acquire(owner_, count);
}

}  // namespace shmcaffe::common::arena
