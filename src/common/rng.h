// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the project owns an Rng seeded explicitly by
// its creator; nothing draws from global entropy.  The generator is
// xoshiro256** seeded through SplitMix64, which gives high-quality streams
// that are cheap to fork (fork() derives an independent child stream, used to
// give each worker/shard its own generator).
#pragma once

#include <array>
#include <cstdint>

namespace shmcaffe::common {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience draws for the distributions the
/// project needs (uniform ints/reals, normals, bernoulli, shuffling).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child stream; deterministic in (parent state,
  /// salt).  Does not disturb the parent's sequence.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    std::uint64_t sm = state_[0] ^ (state_[2] * 0x9e3779b97f4a7c15ULL) ^ salt;
    return Rng(splitmix64(sm));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform integer in [0, bound); bound must be > 0.  Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform real in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace shmcaffe::common
