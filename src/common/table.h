// Aligned plain-text table printer.  Every bench that reproduces one of the
// paper's tables/figures renders its rows through this so the output reads
// like the published table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace shmcaffe::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> row);

  /// Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string render() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace shmcaffe::common
