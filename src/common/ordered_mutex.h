// Instrumented mutexes with lock-order (deadlock-potential) detection.
//
// Every long-lived mutex in the concurrent stacks is an OrderedMutex (or
// OrderedSharedMutex) carrying a *name* and a *rank* from the global table
// below.  The wrappers are drop-in Lockable / SharedLockable types, so the
// usual RAII guards (std::scoped_lock, unique_lock, shared_lock) and
// std::condition_variable_any keep working.  On every *blocking* acquire
// the calling thread checks the locks it already holds and reports to the
// process-wide LockOrderRegistry:
//
//   * a rank inversion — acquiring a mutex whose rank is <= the highest
//     rank already held (lock ranks must strictly increase along any
//     acquisition chain), and
//   * a lock-order cycle — the new (held -> acquired) edge closes a cycle
//     in the cumulative acquisition graph (a potential deadlock even if
//     this particular interleaving did not deadlock).
//
// try_lock acquisitions are tracked as held but add no edges and skip the
// rank check: a try-lock cannot block, so it cannot deadlock — this is
// exactly how std::scoped_lock/std::lock acquire same-rank mutex pairs
// (e.g. two SMB segment locks in accumulate()).
//
// Violations are recorded, deduplicated, and printed to stderr once; tests
// assert `LockOrderRegistry::instance().violations().empty()` after driving
// the concurrency suites (see tests/ordered_mutex_test.cc and the LockOrder
// guard tests).  Detection is cheap: the per-thread held list is a tiny
// vector, and the global registry is consulted only the first time a thread
// sees a given edge.
//
// Global rank table (documented in DESIGN.md §"Lock ordering"): ranks
// strictly increase from outermost to innermost acquisition.
//
//   rank | name                        | holder
//   -----+-----------------------------+------------------------------------
//   100  | core.progress_board.sweep   | ProgressBoard dead/straggler sweeps
//   110  | elastic.membership.state    | MembershipService epoch + shard map
//   120  | core.sharded_buffer.shards  | ShardedBuffer shard table
//   150  | recovery.replica_mirror     | ReplicatedSmb ensemble state + fan-out
//   200  | smb.server.segment          | per-segment data mutex (SmbServer)
//   210  | smb.server.table            | SmbServer segment table + stats
//   300  | baselines.async_ps.weights  | classic parameter-server weights
//   400  | minimpi.mailbox             | per-rank MiniMPI mailbox
//   410  | minimpi.barrier             | MiniMPI barrier state
//   450  | common.arena.registry       | arena allocator free lists + stats
//   500  | common.parallel.pool        | work-pool job handoff (common/parallel)
//
// Observed orderings the table encodes: a progress-board sweep (100) reads
// and writes SMB counters, which take the table lock (210); the replica
// mirror (150) fans mutations out to per-replica SmbServers, entering their
// segment (200) and table (210) locks while held; SmbServer::read
// takes the table lock (210) for stats while holding a segment lock (200).
// MiniMPI and the parameter server are leaf locks: nothing else is acquired
// under them.  The arena registry (450) sits between the service locks and
// the pool: SMB segment storage is allocated and recycled while holding a
// segment lock (200) — and freed during release while holding the table
// lock (210) — so the arena must rank above both, yet below the pool (500)
// because no arena call ever submits pool work (kernels allocate before
// entering parallel_for, never inside chunk bodies).
// The parallel work pool (500) is the innermost lock of all:
// SmbServer::accumulate submits parallel chunks while holding a segment
// lock (200), so the pool handoff must rank above every lock a submitter
// may hold; pool workers run chunk bodies with no pool lock held.  Mutexes
// of the same rank are only ever acquired together via std::scoped_lock
// (deadlock-avoiding try-lock protocol).
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

// --- lock annotations -------------------------------------------------------
//
// Declaration-level lock annotations, enforced by shmcaffe-lint's symbol-aware
// `guarded-by` rule (tools/lint): in any class that owns an OrderedMutex or
// OrderedSharedMutex, every mutable field must be annotated with the mutex
// that protects it —
//
//   std::vector<float> floats SHMCAFFE_GUARDED_BY(data_mutex);
//
// or explicitly opted out —
//
//   SmbServerOptions options_ SHMCAFFE_UNGUARDED;  // immutable after ctor
//
// The macros compile to nothing (zero codegen in every build); the *static*
// half of the contract is the lint pass, and the *dynamic* half is
// SHMCAFFE_ASSERT_HELD(mu), placed in the `_locked` accessors of the
// annotated classes: with lock asserts enabled (SHMCAFFE_LOCK_ASSERTS, on by
// default outside Release — see the top-level CMakeLists) it aborts with the
// lock's name and rank if the calling thread does not hold `mu`; in release
// builds it compiles to nothing.
#define SHMCAFFE_GUARDED_BY(mu) /* parsed by shmcaffe-lint */
#define SHMCAFFE_UNGUARDED      /* parsed by shmcaffe-lint */

// Function-level lock annotation, placed after the parameter list (and any
// `const`) of a declaration or definition:
//
//   void sweep_dead_locked(Now now) SHMCAFFE_REQUIRES(sweep_mutex_);
//
// It declares that every caller must already hold `mu`; shmcaffe-lint's
// flow-sensitive `lock-region` pass seeds the callee's held-lock set from it
// and reports call sites that do not hold `mu`.  By the repo's `_locked()`
// naming contract the annotation is mirrored by SHMCAFFE_ASSERT_HELD(mu) as
// the first statement of the definition, so the static and dynamic checks
// name the same mutex.  A `_locked` function whose class has exactly one
// ordered mutex may omit the annotation (lint infers it); with several
// mutexes the annotation is mandatory.
#define SHMCAFFE_REQUIRES(mu) /* parsed by shmcaffe-lint */

// Determinism annotation, placed before the return type of a function that
// must be bitwise-reproducible across runs, hosts and thread counts (the
// schedule builders, the schedule/membership fingerprints, the parallel
// chunk-boundary math).  shmcaffe-lint's `determinism` pass taints every
// function reachable from an annotated root through the call index and
// rejects unordered-container iteration, wall-clock reads, non-seeded RNG /
// environment reads, and address-dependent ordering anywhere in the taint
// set.
#define SHMCAFFE_DETERMINISTIC /* parsed by shmcaffe-lint */

// Hot-kernel annotation, placed before the return type of a per-iteration
// kernel (the conv GEMM/im2col, the SEASGD exchange kernels, the SMB
// write/accumulate data paths).  shmcaffe-lint's `no-hot-alloc` pass walks
// every function reachable from an annotated root through the call index
// and rejects heap allocation there — container construction/growth,
// `new`, make_unique/make_shared — unless the statement routes through the
// common::arena allocator or carries the rule's lint suppression comment
// with a reason.  Steady-state iterations must recycle arena slabs.
#define SHMCAFFE_HOT_KERNEL /* parsed by shmcaffe-lint */

// Blocking-contract annotations, enforced by shmcaffe-lint's interprocedural
// `no-blocking-under-lock` pass (tools/lint).
//
// SHMCAFFE_BLOCKS, placed before the return type, marks a function that can
// park the calling thread: condition-variable waits, deadline waits
// (wait_version_at_least), thread sleeps / retry backoff, MiniMPI
// receives/collectives, pool parallel_for submission (the submitter waits
// for every chunk), and the simulated fabric's co_await transfers.  The lint
// pass also recognises a literal cv wait / sleep in a body as an implicit
// root, so forgetting the annotation cannot hide the blocking-ness — but the
// annotation is the reviewable contract and feeds the `blocking_roots`
// coverage counter (shrink-fenced by tools/check.sh).
//
// Blocking-ness propagates through the call index: a function that can reach
// a BLOCKS root is itself blocking, and the lock-region scope walk reports
// any blocking call issued while a mutex guard is lexically held.  Two
// shapes are exempt because the wait *releases* the lock it names:
// `cv.wait(lock)` over a guard declared in scope releases that guard's
// mutexes, and a call into a SHMCAFFE_REQUIRES(mu) callee releases `mu`
// (the prepare_write_locked idiom: the callee waits on the caller's lock).
// A deliberate blocking call under a lock carries a justified allow
// annotation for the no-blocking-under-lock rule.
//
// SHMCAFFE_NONBLOCKING, placed before the return type, is the opposite
// contract: the function must never park the calling thread (the
// progress-board control plane, counter ops, arena acquire/release).  It is
// lint-*verified*: a NONBLOCKING function that can reach a BLOCKS root —
// directly or through any call chain — is itself a finding.  The
// `nonblocking_contracts` counter is shrink-fenced like the roots.
#define SHMCAFFE_BLOCKS      /* parsed by shmcaffe-lint */
#define SHMCAFFE_NONBLOCKING /* parsed by shmcaffe-lint */

// Pinned-lifetime annotation, enforced by shmcaffe-lint's `pin-lifetime`
// pass.  Pinned/arena views (smb::PinnedFloats, ShardedBuffer::PinnedShard,
// common::arena::Buffer) alias storage whose lifetime is pinned elsewhere,
// so by default they must stay frame-local: the pass flags a pin-typed
// *field* declaration, a *return* of a pin type from a function, and a
// lambda capture of a pin-typed local.  A deliberate escape — an owning
// arena Buffer member, a factory that hands the view to its caller — is
// annotated SHMCAFFE_PIN_ESCAPE (trailing on fields, like
// SHMCAFFE_GUARDED_BY; before the return type on functions) with a comment
// naming the justification.  The pass also flags *pin acquisition while any
// mutex is held* (a call to a pin-returning function under a guard): the
// COW retirement protocol is pin-then-lock only, so a pin taken under the
// segment/table mutex inverts it.  Escape counts feed the `pin_escapes`
// coverage counter (grow-fenced by tools/check.sh).
#define SHMCAFFE_PIN_ESCAPE /* parsed by shmcaffe-lint */

#if !defined(SHMCAFFE_LOCK_ASSERTS)
#if defined(NDEBUG)
#define SHMCAFFE_LOCK_ASSERTS 0
#else
#define SHMCAFFE_LOCK_ASSERTS 1
#endif
#endif

#if SHMCAFFE_LOCK_ASSERTS
#define SHMCAFFE_ASSERT_HELD(mu) ((mu).assert_held(#mu, __FILE__, __LINE__))
#else
#define SHMCAFFE_ASSERT_HELD(mu) ((void)0)
#endif

namespace shmcaffe::common {

namespace lockrank {
inline constexpr int kProgressBoardSweep = 100;
inline constexpr int kElasticMembership = 110;
inline constexpr int kShardedBuffer = 120;
inline constexpr int kReplicaMirror = 150;
inline constexpr int kSmbSegment = 200;
inline constexpr int kSmbTable = 210;
inline constexpr int kAsyncPsWeights = 300;
inline constexpr int kMpiMailbox = 400;
inline constexpr int kMpiBarrier = 410;
inline constexpr int kArena = 450;
inline constexpr int kParallelPool = 500;
}  // namespace lockrank

namespace detail {

/// Identity of one instrumented mutex instance.  `name` doubles as the node
/// id in the acquisition graph, so all instances of a class (e.g. every SMB
/// segment) share one node and one documented rank.
struct LockSite {
  const char* name;
  int rank;
};

/// Pre-acquire bookkeeping for a blocking acquire: rank check + graph edge
/// recording against everything the thread currently holds.
void before_blocking_acquire(const LockSite& site);
/// Marks `site` held by this thread (any acquisition mode).
void on_acquired(const LockSite& site);
/// Removes one held entry for `site` (guards may unlock in any order).
void on_released(const LockSite& site);
/// Backs SHMCAFFE_ASSERT_HELD: aborts with the lock's name, rank and the
/// call site unless the calling thread holds `site` (in any mode).  During
/// thread/process teardown the held list is gone, so the check passes.
void assert_held(const LockSite& site, const char* expr, const char* file, int line);

}  // namespace detail

/// Process-wide acquisition graph and violation log.
class LockOrderRegistry {
 public:
  static LockOrderRegistry& instance();

  /// Deduplicated violation descriptions, in first-detection order.
  [[nodiscard]] std::vector<std::string> violations() const;
  [[nodiscard]] std::size_t violation_count() const;

  /// Distinct (holder -> acquired) edges observed so far.
  [[nodiscard]] std::size_t edge_count() const;

  /// Forgets the graph and the violations (tests that deliberately provoke
  /// an inversion clear the registry afterwards).  Bumps an epoch so other
  /// threads' memoised edges are re-reported into the fresh graph.
  void clear();

 private:
  LockOrderRegistry() = default;
  friend void detail::before_blocking_acquire(const detail::LockSite& site);

  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// std::mutex with a name, a rank, and lock-order detection.  Meets
/// Lockable; use through RAII guards only (the bare lock()/unlock() calls
/// inside are the wrapper's own business).
class OrderedMutex {
 public:
  OrderedMutex(const char* name, int rank) : site_{name, rank} {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  [[nodiscard]] const char* name() const { return site_.name; }
  [[nodiscard]] int rank() const { return site_.rank; }

  /// Aborts unless the calling thread holds this mutex.  Call through
  /// SHMCAFFE_ASSERT_HELD so release builds compile the check away.
  void assert_held(const char* expr, const char* file, int line) const {
    detail::assert_held(site_, expr, file, line);
  }

 private:
  std::mutex mutex_;
  detail::LockSite site_;
};

/// std::shared_mutex counterpart (SharedLockable).  Shared acquisitions do
/// the same rank/edge accounting: readers still deadlock writers if the
/// order cycles.
class OrderedSharedMutex {
 public:
  OrderedSharedMutex(const char* name, int rank) : site_{name, rank} {}
  OrderedSharedMutex(const OrderedSharedMutex&) = delete;
  OrderedSharedMutex& operator=(const OrderedSharedMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();
  void lock_shared();
  bool try_lock_shared();
  void unlock_shared();

  [[nodiscard]] const char* name() const { return site_.name; }
  [[nodiscard]] int rank() const { return site_.rank; }

  /// Aborts unless the calling thread holds this mutex in some mode
  /// (exclusive or shared).  Call through SHMCAFFE_ASSERT_HELD.
  void assert_held(const char* expr, const char* file, int line) const {
    detail::assert_held(site_, expr, file, line);
  }

 private:
  std::shared_mutex mutex_;
  detail::LockSite site_;
};

}  // namespace shmcaffe::common
