#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace shmcaffe::common {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) out << "  ";
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

}  // namespace shmcaffe::common
