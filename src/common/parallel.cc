#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/ordered_mutex.h"

namespace shmcaffe::common::parallel {
namespace {

/// True on a pool worker thread: a parallel call from inside a chunk body
/// runs inline instead of fanning out again (no self-deadlock, no nesting).
thread_local bool t_on_pool_worker = false;

/// One fan-out in flight.  Chunks are claimed through `next` (dynamic
/// schedule); determinism comes from the chunk *boundaries*, not from which
/// thread runs which chunk.
struct Job {
  const IndexedChunkFn* fn = nullptr;
  std::size_t grain = 1;
  std::size_t range = 0;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // guarded by the pool mutex; first failure wins
  /// Workers currently inside help() for this job; guarded by the pool
  /// mutex.  The submitter only retires the (stack-allocated) job once every
  /// helper detached, so a slow worker can never touch a dead job.
  int helpers = 0;
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int width() {
    std::unique_lock lock(mutex_);
    ensure_started_locked();
    return width_;
  }

  void configure(int count) {
    stop_workers();
    std::unique_lock lock(mutex_);
    width_ = std::max(1, count);
    spawn_locked();
  }

  void shutdown() {
    stop_workers();
    std::unique_lock lock(mutex_);
    width_ = 0;  // back to the unstarted state; next use re-reads the env
  }

  void run(std::size_t range, std::size_t grain, const IndexedChunkFn& fn) {
    if (range == 0) return;
    grain = std::max<std::size_t>(1, grain);
    const std::size_t chunks = chunk_count(range, grain);
    // Inline paths: nested call, single chunk, or a pool of width 1 — the
    // chunk loop below is the same code the workers run, so the float
    // results are identical by construction.
    if (t_on_pool_worker || chunks == 1) {
      run_inline(range, grain, chunks, fn);
      return;
    }
    {
      std::unique_lock lock(mutex_);
      ensure_started_locked();
      if (width_ == 1) {
        lock.unlock();
        run_inline(range, grain, chunks, fn);
        return;
      }
      Job job;
      job.fn = &fn;
      job.grain = grain;
      job.range = range;
      job.chunks = chunks;
      job_ = &job;
      ++job_epoch_;
      lock.unlock();
      work_cv_.notify_all();

      help(job);  // the submitter is executor 0

      lock.lock();
      done_cv_.wait(lock, [&] {
        return job.finished.load(std::memory_order_acquire) == job.chunks &&
               job.helpers == 0;
      });
      job_ = nullptr;  // no helper can attach once cleared (checked under the mutex)
      if (job.error) std::rethrow_exception(job.error);
    }
  }

 private:
  Pool() = default;

  /// Static-storage singleton: join the workers at process exit so their
  /// std::thread handles are not destroyed joinable (std::terminate).
  ~Pool() { stop_workers(); }

  static int env_thread_count() {
    const char* env = std::getenv("SHMCAFFE_THREADS");
    if (env != nullptr) {
      const int value = std::atoi(env);
      if (value >= 1) return std::min(value, 64);
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hardware, 1U, 16U));
  }

  void ensure_started_locked() SHMCAFFE_REQUIRES(mutex_) {
    SHMCAFFE_ASSERT_HELD(mutex_);
    if (width_ != 0) return;
    width_ = env_thread_count();
    spawn_locked();
  }

  void spawn_locked() SHMCAFFE_REQUIRES(mutex_) {
    SHMCAFFE_ASSERT_HELD(mutex_);
    stopping_ = false;
    for (int w = 1; w < width_; ++w) {
      // One-time lazy pool spawn, not per-iteration; worker_loop's cv wait
      // runs on the spawned thread, not under this caller's mutex_.
      // lint:allow-next-line(no-hot-alloc,no-blocking-under-lock)
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Joins every worker.  Never called with the pool mutex held (join would
  /// deadlock against a worker draining its last chunk).
  void stop_workers() {
    std::vector<std::thread> workers;
    {
      std::unique_lock lock(mutex_);
      stopping_ = true;
      workers.swap(workers_);
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  void worker_loop() {
    t_on_pool_worker = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stopping_ || (job_ != nullptr && job_epoch_ != seen_epoch);
        });
        if (stopping_) return;
        seen_epoch = job_epoch_;
        job = job_;
        job->helpers += 1;
      }
      help(*job);
      {
        std::unique_lock lock(mutex_);
        job->helpers -= 1;
        if (job->helpers > 0) continue;
      }
      done_cv_.notify_all();
    }
  }

  /// Claims and runs chunks until the job's cursor is exhausted.  After a
  /// chunk throws, the remaining chunks are still claimed (so `finished`
  /// reaches `chunks` and the submitter wakes) but their bodies are skipped.
  void help(Job& job) {
    for (;;) {
      const std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.chunks) return;
      if (!job.failed.load(std::memory_order_acquire)) {
        const std::size_t begin = chunk * job.grain;
        const std::size_t end = std::min(begin + job.grain, job.range);
        try {
          (*job.fn)(chunk, begin, end);
        } catch (...) {
          std::unique_lock lock(mutex_);
          if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
            job.error = std::current_exception();
          }
        }
      }
      job.finished.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  static void run_inline(std::size_t range, std::size_t grain, std::size_t chunks,
                         const IndexedChunkFn& fn) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const std::size_t begin = chunk * grain;
      fn(chunk, begin, std::min(begin + grain, range));
    }
  }

  /// Rank 500: above every lock a submitter may hold (SMB segment locks are
  /// rank 200); see the table in common/ordered_mutex.h.
  OrderedMutex mutex_{"common.parallel.pool", lockrank::kParallelPool};
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::vector<std::thread> workers_ SHMCAFFE_GUARDED_BY(mutex_);
  Job* job_ SHMCAFFE_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t job_epoch_ SHMCAFFE_GUARDED_BY(mutex_) = 0;
  bool stopping_ SHMCAFFE_GUARDED_BY(mutex_) = false;
  int width_ SHMCAFFE_GUARDED_BY(mutex_) = 0;  // 0 = not started; >= 1 once running
};

}  // namespace

std::size_t chunk_count(std::size_t range, std::size_t grain) {
  grain = std::max<std::size_t>(1, grain);
  return range == 0 ? 0 : (range + grain - 1) / grain;
}

int thread_count() { return Pool::instance().width(); }

void set_thread_count(int count) { Pool::instance().configure(count); }

void shutdown() { Pool::instance().shutdown(); }

void parallel_for(std::size_t range, std::size_t grain, const ChunkFn& fn) {
  const IndexedChunkFn indexed = [&fn](std::size_t /*chunk*/, std::size_t begin,
                                       std::size_t end) { fn(begin, end); };
  Pool::instance().run(range, grain, indexed);
}

void parallel_for_indexed(std::size_t range, std::size_t grain, const IndexedChunkFn& fn) {
  Pool::instance().run(range, grain, fn);
}

}  // namespace shmcaffe::common::parallel
