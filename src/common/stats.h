// Small statistics helpers used by benches and tests: single-pass running
// moments (Welford) and a sample accumulator with exact percentiles.
#pragma once

#include <cstddef>
#include <vector>

namespace shmcaffe::common {

/// Streaming mean/variance/min/max without storing samples (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< unbiased sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; supports exact order statistics.  Quantile uses linear
/// interpolation between closest ranks (same convention as numpy's default).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// q in [0,1]; requires at least one sample.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] double median() { return quantile(0.5); }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace shmcaffe::common
