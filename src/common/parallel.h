// Deterministic shared work pool — the repo's only source of compute
// parallelism (enforced by the `no-raw-thread` lint rule).
//
// The primitive is parallel_for(range, grain, fn): the half-open index range
// [0, range) is cut into chunks of exactly `grain` indices (the last chunk
// takes the remainder).  Chunk boundaries are a *pure function of range and
// grain* — never of the thread count, never of scheduling — so a kernel that
// (a) writes every output element from exactly one chunk, or (b) reduces
// inside a chunk in ascending index order and combines per-chunk partials in
// ascending chunk order, produces bitwise-identical floats for every value
// of SHMCAFFE_THREADS, including 1.  Every hot kernel in the tree (conv
// GEMM, SEASGD exchange, SMB accumulate) is written in one of those two
// shapes, which is what makes training results thread-count-invariant (see
// tests/parallel_test.cc and DESIGN.md §"Deterministic parallelism").
//
// Execution model:
//   * The pool is process-wide and lazily started: the first parallel call
//     reads SHMCAFFE_THREADS (default: hardware concurrency, clamped to
//     [1, 16]) and spawns width-1 worker threads; the submitting thread
//     always participates, so width 1 means "run inline, spawn nothing".
//   * One job is active at a time.  Chunks are claimed with an atomic
//     cursor, so scheduling is dynamic while results stay deterministic.
//   * A parallel call from inside a pool worker runs inline on that worker
//     (no nested fan-out, no self-deadlock).
//   * The first exception a chunk throws is captured; the remaining chunks
//     are drained without running, and the exception is rethrown on the
//     submitting thread.
//   * set_thread_count() reconfigures the width at a quiescent point;
//     shutdown() joins all workers and returns the pool to the unstarted
//     state (the next call lazily restarts it) — both are test hooks and
//     bench plumbing, not steady-state API.
//
// Locking: the pool's internal mutex is an OrderedMutex at rank 500
// (common.parallel.pool), above every lock a submitter may legally hold —
// SmbServer::accumulate submits while holding a segment lock (rank 200).
// Workers execute chunk bodies with no pool lock held, so chunk bodies may
// take locks of any rank (none of the in-tree kernels do).
#pragma once

#include <cstddef>
#include <functional>

#include "common/ordered_mutex.h"

namespace shmcaffe::common::parallel {

/// Number of chunks parallel_for will cut [0, range) into: ceil(range/grain)
/// with grain clamped to >= 1.  Pure in (range, grain) by construction.
[[nodiscard]] SHMCAFFE_DETERMINISTIC std::size_t chunk_count(std::size_t range,
                                                             std::size_t grain);

/// Current pool width (threads that execute chunks, submitter included).
/// Starts the pool if it is not running yet.
int thread_count();

/// Reconfigures the pool to `count` executors (clamped to >= 1), joining any
/// previous workers first.  Quiescent use only (no job in flight).
void set_thread_count(int count);

/// Joins all workers and forgets the configuration; the next parallel call
/// (or thread_count()) restarts lazily from SHMCAFFE_THREADS.
void shutdown();

using ChunkFn = std::function<void(std::size_t begin, std::size_t end)>;
using IndexedChunkFn =
    std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>;

/// Runs fn(begin, end) over every chunk of [0, range); returns when all
/// chunks completed.  Rethrows the first chunk exception.  Submission
/// blocks the caller until the pool drains the batch.
SHMCAFFE_BLOCKS void parallel_for(std::size_t range, std::size_t grain, const ChunkFn& fn);

/// Same, but hands the chunk index to fn — for kernels that reduce into
/// per-chunk partial slots and combine them in chunk order afterwards.
SHMCAFFE_BLOCKS void parallel_for_indexed(std::size_t range, std::size_t grain,
                                          const IndexedChunkFn& fn);

}  // namespace shmcaffe::common::parallel
