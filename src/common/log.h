// Minimal leveled logger.
//
// Thread-safe (a single global mutex serialises sink writes), printf-free,
// and silent by default at Debug level so tests stay quiet.  Usage:
//
//   SHM_LOG(Info) << "worker " << rank << " finished epoch " << epoch;
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace shmcaffe::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns/sets the global threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace internal {

/// One in-flight log statement; flushes on destruction.
class LogStatement {
 public:
  LogStatement(LogLevel level, const char* file, int line);
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement();

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace shmcaffe::common

#define SHM_LOG(severity)                                              \
  ::shmcaffe::common::internal::LogStatement(                          \
      ::shmcaffe::common::LogLevel::severity, __FILE__, __LINE__)
