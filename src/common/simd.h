// Portable SIMD micro-kernel cores for the float hot paths.
//
// One header, three compile-time tiers — AVX2 (8-wide), SSE2 (4-wide),
// scalar — selected by what the translation unit was compiled for.  The
// root CMakeLists turns the SHMCAFFE_SIMD option into `-mavx2` (when the
// compiler supports it); -DSHMCAFFE_SIMD=OFF defines SHMCAFFE_FORCE_SCALAR
// and every core collapses to the plain loop (the `simd` stage of
// tools/check.sh builds this configuration and re-runs the
// kernel-equivalence tests against it).
//
// Bitwise-identity contract (the reason these kernels are safe to adopt
// under the determinism story of common/parallel.h):
//
//   * Only *lane-independent elementwise* operations are vectorised —
//     axpy, add/sub, the SEASGD exchange algebra.  Each output element is
//     a fixed expression of same-index inputs, so lane width cannot change
//     results: an 8-wide lane computes exactly the scalar expression.
//   * Multiplies and adds stay *separate* instructions (no FMA
//     intrinsics, and the build never passes -mfma): a fused
//     multiply-add skips the intermediate rounding and would make the
//     AVX2 build diverge from the scalar one.  With the FMA ISA absent
//     the compiler cannot contract the scalar fallbacks either, so
//     SIMD and scalar builds, at any thread count, produce bit-identical
//     floats (asserted by tests/simd_test.cc and the BENCH_kernels.json
//     checksum fields).
//   * Reductions (dot products, checksums over doubles) are NOT offered
//     here on purpose: any widened reduction reorders the summation.
//     Callers keep those loops scalar (see dl/layers.cc backward_gemm).
//
// The FNV-1a word hash lives here too: it is the integrity layer's
// per-chunk checksum core, processing 8 bytes per multiply instead of one.
// It is plain scalar uint64 code — identical on every tier — but it is a
// data-plane inner loop and versioned with the rest of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(SHMCAFFE_FORCE_SCALAR)
// Scalar tier forced by the build (tools/check.sh simd stage).
#elif defined(__AVX2__)
#define SHMCAFFE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define SHMCAFFE_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace shmcaffe::common::simd {

/// Lanes per vector on the tier this TU compiled against.
inline constexpr std::size_t kWidth =
#if defined(SHMCAFFE_SIMD_AVX2)
    8;
#elif defined(SHMCAFFE_SIMD_SSE2)
    4;
#else
    1;
#endif

/// Tier name for bench/test labels.
inline constexpr const char* dispatch_name() {
#if defined(SHMCAFFE_SIMD_AVX2)
  return "avx2";
#elif defined(SHMCAFFE_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// y[i] += a * x[i].  The conv GEMM tile accumulator core (dl/layers.cc):
/// one weight broadcast against a row of the im2col matrix.
inline void axpy(std::size_t n, float a, const float* x, float* y) {
#if defined(SHMCAFFE_SIMD_AVX2)
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 y0 = _mm256_loadu_ps(y + i);
    const __m256 y1 = _mm256_loadu_ps(y + i + 8);
    const __m256 p0 = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    const __m256 p1 = _mm256_mul_ps(av, _mm256_loadu_ps(x + i + 8));
    _mm256_storeu_ps(y + i, _mm256_add_ps(y0, p0));
    _mm256_storeu_ps(y + i + 8, _mm256_add_ps(y1, p1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 p = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p));
  }
  for (; i < n; ++i) y[i] += a * x[i];
#elif defined(SHMCAFFE_SIMD_SSE2)
  const __m128 av = _mm_set1_ps(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 p = _mm_mul_ps(av, _mm_loadu_ps(x + i));
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i), p));
  }
  for (; i < n; ++i) y[i] += a * x[i];
#else
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
#endif
}

/// dst[i] += src[i].  The SMB server-side accumulate core (eq. 7).
inline void add_inplace(std::size_t n, float* dst, const float* src) {
#if defined(SHMCAFFE_SIMD_AVX2)
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 a0 = _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i));
    const __m256 a1 =
        _mm256_add_ps(_mm256_loadu_ps(dst + i + 8), _mm256_loadu_ps(src + i + 8));
    _mm256_storeu_ps(dst + i, a0);
    _mm256_storeu_ps(dst + i + 8, a1);
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
#elif defined(SHMCAFFE_SIMD_SSE2)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
#endif
}

/// dst[i] -= src[i].  Eq. (6) half of the exchange.
inline void sub_inplace(std::size_t n, float* dst, const float* src) {
#if defined(SHMCAFFE_SIMD_AVX2)
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_sub_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
#elif defined(SHMCAFFE_SIMD_SSE2)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_sub_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
#endif
}

/// delta[i] = alpha * (local[i] - global[i]) — eq. (5), the SEASGD weight
/// increment.  mul after sub, never fused.
inline void weight_increment_core(std::size_t n, const float* local, const float* global,
                                  float alpha, float* delta) {
#if defined(SHMCAFFE_SIMD_AVX2)
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(local + i), _mm256_loadu_ps(global + i));
    _mm256_storeu_ps(delta + i, _mm256_mul_ps(av, diff));
  }
  for (; i < n; ++i) delta[i] = alpha * (local[i] - global[i]);
#elif defined(SHMCAFFE_SIMD_SSE2)
  const __m128 av = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 diff = _mm_sub_ps(_mm_loadu_ps(local + i), _mm_loadu_ps(global + i));
    _mm_storeu_ps(delta + i, _mm_mul_ps(av, diff));
  }
  for (; i < n; ++i) delta[i] = alpha * (local[i] - global[i]);
#else
  for (std::size_t i = 0; i < n; ++i) delta[i] = alpha * (local[i] - global[i]);
#endif
}

/// Fused eqs. (5)+(6): delta[i] = alpha*(local[i]-global[i]);
/// local[i] -= delta[i].  One pass over the three spans — the T1 exchange
/// inner loop (core/seasgd_math.h), including its zero-copy pinned-read
/// form where `global` is a span directly into SMB segment storage.
inline void elastic_exchange_core(std::size_t n, float* local, const float* global,
                                  float alpha, float* delta) {
#if defined(SHMCAFFE_SIMD_AVX2)
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 lv = _mm256_loadu_ps(local + i);
    const __m256 diff = _mm256_sub_ps(lv, _mm256_loadu_ps(global + i));
    const __m256 d = _mm256_mul_ps(av, diff);
    _mm256_storeu_ps(delta + i, d);
    _mm256_storeu_ps(local + i, _mm256_sub_ps(lv, d));
  }
  for (; i < n; ++i) {
    const float d = alpha * (local[i] - global[i]);
    delta[i] = d;
    local[i] -= d;
  }
#elif defined(SHMCAFFE_SIMD_SSE2)
  const __m128 av = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 lv = _mm_loadu_ps(local + i);
    const __m128 diff = _mm_sub_ps(lv, _mm_loadu_ps(global + i));
    const __m128 d = _mm_mul_ps(av, diff);
    _mm_storeu_ps(delta + i, d);
    _mm_storeu_ps(local + i, _mm_sub_ps(lv, d));
  }
  for (; i < n; ++i) {
    const float d = alpha * (local[i] - global[i]);
    delta[i] = d;
    local[i] -= d;
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const float d = alpha * (local[i] - global[i]);
    delta[i] = d;
    local[i] -= d;
  }
#endif
}

/// FNV-1a over `bytes` of `data`, folding 8 bytes per multiply with a
/// byte-wise tail.  NOT the byte-serial FNV-1a value — a distinct,
/// self-consistent hash family used only where writer and verifier share
/// the function (the SMB per-chunk checksums; persisted checkpoint hashes
/// keep their own byte-serial FNV in recovery/checkpoint.cc).  Identical
/// output on every SIMD tier and thread count: it is sequential uint64
/// arithmetic over a fixed byte order.
inline std::uint64_t fnv1a_words(const void* data, std::size_t bytes,
                                 std::uint64_t seed = 0xcbf29ce484222325ULL) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    hash = (hash ^ word) * kPrime;
  }
  for (; i < bytes; ++i) hash = (hash ^ p[i]) * kPrime;
  return hash;
}

}  // namespace shmcaffe::common::simd
