#include "common/ordered_mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

namespace shmcaffe::common {

struct LockOrderRegistry::Impl {
  mutable std::mutex mutex;  // the detector's own lock; never instrumented
  std::map<std::string, std::set<std::string>> graph;  // holder -> acquired
  std::size_t edges = 0;
  std::vector<std::string> violations;
  std::set<std::string> violation_keys;
  std::atomic<std::uint64_t> epoch{0};

  /// True if `to` is reachable from `from` in the acquisition graph.
  /// Appends the path (excluding `from`) to `path` when found.
  bool reachable(const std::string& from, const std::string& to,
                 std::set<std::string>& visited, std::vector<std::string>& path) const {
    if (from == to) return true;
    if (!visited.insert(from).second) return false;
    const auto it = graph.find(from);
    if (it == graph.end()) return false;
    for (const std::string& next : it->second) {
      path.push_back(next);
      if (reachable(next, to, visited, path)) return true;
      path.pop_back();
    }
    return false;
  }

  /// Records a deduplicated violation; prints it once so ctest logs show
  /// the problem even when no assertion inspects the registry.
  void report(const std::string& key, const std::string& description) {
    if (!violation_keys.insert(key).second) return;
    violations.push_back(description);
    std::fprintf(stderr, "lock-order violation: %s\n", description.c_str());
  }
};

LockOrderRegistry::Impl& LockOrderRegistry::impl() const {
  static Impl storage;
  return storage;
}

LockOrderRegistry& LockOrderRegistry::instance() {
  static LockOrderRegistry registry;
  return registry;
}

std::vector<std::string> LockOrderRegistry::violations() const {
  Impl& impl = this->impl();
  std::scoped_lock lock(impl.mutex);
  return impl.violations;
}

std::size_t LockOrderRegistry::violation_count() const {
  Impl& impl = this->impl();
  std::scoped_lock lock(impl.mutex);
  return impl.violations.size();
}

std::size_t LockOrderRegistry::edge_count() const {
  Impl& impl = this->impl();
  std::scoped_lock lock(impl.mutex);
  return impl.edges;
}

void LockOrderRegistry::clear() {
  Impl& impl = this->impl();
  std::scoped_lock lock(impl.mutex);
  impl.graph.clear();
  impl.edges = 0;
  impl.violations.clear();
  impl.violation_keys.clear();
  impl.epoch.fetch_add(1, std::memory_order_relaxed);
}

namespace detail {

namespace {

/// Set once this thread's copy of the held-locks list has been destroyed.
/// A trivially-destructible thread_local stays readable through teardown,
/// so it guards the window where TLS destructors have already run but the
/// thread still acquires locks — e.g. the work pool's static destructor
/// joining its workers after glibc's __call_tls_dtors.  Tracking is simply
/// disabled then; the mutexes themselves still lock normally.
thread_local bool t_tracking_torn_down = false;

struct HeldList {
  /// Locks this thread currently holds, outermost first.  Guards may
  /// release out of order, so this is a set-like vector, not a strict stack.
  std::vector<const LockSite*> held;
  ~HeldList() { t_tracking_torn_down = true; }
};

/// Null during thread/process teardown (see t_tracking_torn_down).
std::vector<const LockSite*>* held_locks() {
  if (t_tracking_torn_down) return nullptr;
  thread_local HeldList list;
  return &list.held;
}

/// Per-thread memo of (holder, acquired) name pairs already pushed to the
/// registry, so steady-state locking never touches the global mutex.
/// Invalidated when the registry epoch changes (tests call clear()).
struct EdgeMemo {
  std::uint64_t epoch = ~0ULL;
  std::set<std::pair<const char*, const char*>> seen;
};

EdgeMemo& edge_memo() {
  thread_local EdgeMemo memo;
  return memo;
}

}  // namespace

void before_blocking_acquire(const LockSite& site) {
  const std::vector<const LockSite*>* held_ptr = held_locks();
  if (held_ptr == nullptr || held_ptr->empty()) return;
  const std::vector<const LockSite*>& held = *held_ptr;

  LockOrderRegistry::Impl& impl = LockOrderRegistry::instance().impl();
  EdgeMemo& memo = edge_memo();
  const std::uint64_t epoch = impl.epoch.load(std::memory_order_relaxed);
  if (memo.epoch != epoch) {
    memo.seen.clear();
    memo.epoch = epoch;
  }

  for (const LockSite* holder : held) {
    // First sighting of this (holder, acquired) pair on this thread hits
    // the registry; afterwards the acquire is lock-free for this thread.
    if (!memo.seen.insert({holder->name, site.name}).second) continue;
    const bool rank_inverted = holder->rank >= site.rank;
    const auto edge = std::make_pair(std::string(holder->name), std::string(site.name));

    std::scoped_lock lock(impl.mutex);
    if (rank_inverted) {
      impl.report("rank:" + edge.first + "->" + edge.second,
                  "rank inversion: acquiring '" + edge.second + "' (rank " +
                      std::to_string(site.rank) + ") while holding '" + edge.first +
                      "' (rank " + std::to_string(holder->rank) + ")");
    }
    if (impl.graph[edge.first].insert(edge.second).second) {
      impl.edges += 1;
      // The new holder -> acquired edge closes a cycle iff the holder was
      // already reachable from the acquired lock.
      std::set<std::string> visited;
      std::vector<std::string> path;
      if (impl.reachable(edge.second, edge.first, visited, path)) {
        std::string description = "lock-order cycle: " + edge.first + " -> " + edge.second;
        for (const std::string& node : path) description += " -> " + node;
        impl.report("cycle:" + edge.first + "->" + edge.second, description);
      }
    }
  }
}

void on_acquired(const LockSite& site) {
  if (std::vector<const LockSite*>* held = held_locks()) held->push_back(&site);
}

void on_released(const LockSite& site) {
  std::vector<const LockSite*>* held_ptr = held_locks();
  if (held_ptr == nullptr) return;
  std::vector<const LockSite*>& held = *held_ptr;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == &site) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void assert_held(const LockSite& site, const char* expr, const char* file, int line) {
  const std::vector<const LockSite*>* held_ptr = held_locks();
  // During TLS teardown tracking is gone; nothing sane to check against.
  if (held_ptr == nullptr) return;
  for (const LockSite* held : *held_ptr) {
    if (held == &site) return;
  }
  std::fprintf(stderr,
               "lock assertion failed: '%s' (lock '%s', rank %d) not held at %s:%d\n",
               expr, site.name, site.rank, file, line);
  std::abort();
}

}  // namespace detail

void OrderedMutex::lock() {
  detail::before_blocking_acquire(site_);
  mutex_.lock();  // lint:allow(raii-lock) — the RAII wrapper's own implementation
  detail::on_acquired(site_);
}

bool OrderedMutex::try_lock() {
  // No rank check / edge: a try-lock cannot block, hence cannot deadlock
  // (this is the std::lock / scoped_lock multi-lock protocol).
  if (!mutex_.try_lock()) return false;  // lint:allow(raii-lock) — wrapper internals
  detail::on_acquired(site_);
  return true;
}

void OrderedMutex::unlock() {
  detail::on_released(site_);
  mutex_.unlock();  // lint:allow(raii-lock) — the RAII wrapper's own implementation
}

void OrderedSharedMutex::lock() {
  detail::before_blocking_acquire(site_);
  mutex_.lock();  // lint:allow(raii-lock) — the RAII wrapper's own implementation
  detail::on_acquired(site_);
}

bool OrderedSharedMutex::try_lock() {
  if (!mutex_.try_lock()) return false;  // lint:allow(raii-lock) — wrapper internals
  detail::on_acquired(site_);
  return true;
}

void OrderedSharedMutex::unlock() {
  detail::on_released(site_);
  mutex_.unlock();  // lint:allow(raii-lock) — the RAII wrapper's own implementation
}

void OrderedSharedMutex::lock_shared() {
  detail::before_blocking_acquire(site_);
  mutex_.lock_shared();  // lint:allow(raii-lock) — the RAII wrapper's own implementation
  detail::on_acquired(site_);
}

bool OrderedSharedMutex::try_lock_shared() {
  if (!mutex_.try_lock_shared()) return false;  // lint:allow(raii-lock) — wrapper internals
  detail::on_acquired(site_);
  return true;
}

void OrderedSharedMutex::unlock_shared() {
  detail::on_released(site_);
  mutex_.unlock_shared();  // lint:allow(raii-lock) — the RAII wrapper's own implementation
}

}  // namespace shmcaffe::common
