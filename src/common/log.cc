#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace shmcaffe::common {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Warn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace internal {

LogStatement::LogStatement(LogLevel level, const char* file, int line)
    : enabled_(level >= log_threshold() && level != LogLevel::Off), level_(level) {
  if (enabled_) {
    stream_ << '[' << level_name(level) << "] " << basename_of(file) << ':' << line << ": ";
  }
}

LogStatement::~LogStatement() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string text = stream_.str();
  std::scoped_lock lock(g_sink_mutex);
  std::fwrite(text.data(), 1, text.size(), stderr);
}

}  // namespace internal
}  // namespace shmcaffe::common
