#include "common/rng.h"

#include <cmath>

namespace shmcaffe::common {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace shmcaffe::common
