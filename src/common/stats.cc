#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace shmcaffe::common {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double s : samples_) m2 += (s - m) * (s - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) {
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace shmcaffe::common
