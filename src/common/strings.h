// Formatting helpers for human-readable bench/report output.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace shmcaffe::common {

/// "1.5 GB/s", "840 MB/s", ...
[[nodiscard]] std::string format_bandwidth(double bytes_per_second);

/// "214.0 MB", "1.0 GB", "512 B", ...
[[nodiscard]] std::string format_bytes(std::int64_t bytes);

/// "257.3 ms", "1.2 s", "47 us", ...
[[nodiscard]] std::string format_duration(SimTime ns);

/// "22:59" style hours:minutes, as the paper's Table II reports.
[[nodiscard]] std::string format_hours_minutes(SimTime ns);

/// Fixed-precision double, e.g. format_fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// "26.0%" style percentage with one decimal.
[[nodiscard]] std::string format_percent(double fraction);

}  // namespace shmcaffe::common
