#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace shmcaffe::common {
namespace {

std::string printf_string(const char* fmt, double a) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, a);
  return buf;
}

}  // namespace

std::string format_bandwidth(double bytes_per_second) {
  if (bytes_per_second >= 1e9) return printf_string("%.2f GB/s", bytes_per_second / 1e9);
  if (bytes_per_second >= 1e6) return printf_string("%.1f MB/s", bytes_per_second / 1e6);
  if (bytes_per_second >= 1e3) return printf_string("%.1f KB/s", bytes_per_second / 1e3);
  return printf_string("%.0f B/s", bytes_per_second);
}

std::string format_bytes(std::int64_t bytes) {
  const auto b = static_cast<double>(bytes);
  if (b >= 1e9) return printf_string("%.2f GB", b / 1e9);
  if (b >= 1e6) return printf_string("%.1f MB", b / 1e6);
  if (b >= 1e3) return printf_string("%.1f KB", b / 1e3);
  return printf_string("%.0f B", b);
}

std::string format_duration(SimTime ns) {
  const auto t = static_cast<double>(ns);
  if (t >= 60e9) {
    return format_hours_minutes(ns);
  }
  if (t >= 1e9) return printf_string("%.2f s", t / 1e9);
  if (t >= 1e6) return printf_string("%.1f ms", t / 1e6);
  if (t >= 1e3) return printf_string("%.1f us", t / 1e3);
  return printf_string("%.0f ns", t);
}

std::string format_hours_minutes(SimTime ns) {
  const auto total_minutes =
      static_cast<std::int64_t>(std::llround(static_cast<double>(ns) / 60e9));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld",
                static_cast<long long>(total_minutes / 60),
                static_cast<long long>(total_minutes % 60));
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char fmt[8];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", decimals);
  return printf_string(fmt, value);
}

std::string format_percent(double fraction) {
  return printf_string("%.1f%%", fraction * 100.0);
}

}  // namespace shmcaffe::common
