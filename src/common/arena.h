// Central arena/registry allocator for hot-path float buffers.
//
// The kernels that dominate an iteration — im2col scratch in the conv
// layers, the trainer's exchange staging buffers, SMB segment storage —
// all need large flat float arrays whose sizes repeat every iteration.
// Growing them through ad-hoc `std::vector<float>` means a round trip to
// the general-purpose heap (plus zero-initialisation) on first touch and
// no visibility into who holds how much.  The arena replaces that with a
// process-wide registry of recycled slabs (the LBANN memory-registry
// idea, ROADMAP item 5):
//
//   * slabs are 64-byte aligned (cache line / AVX-512 friendly) and
//     bucketed by power-of-two size class, so a released slab is reused
//     by the next same-class acquire instead of returning to the OS;
//   * every acquisition carries an *owner label* ("dl.conv.col",
//     "smb.segment", ...) and the registry keeps per-owner stats —
//     bytes live, peak, bytes reused, slab reuses vs fresh allocations —
//     so the memory data plane is observable (DESIGN.md §4e);
//   * `arena::Buffer` is the RAII front end: a move-only sized view over
//     one slab with vector-ish `ensure`/`assign` that never shrink the
//     slab, so steady-state iterations allocate nothing.
//
// Thread safety: the registry mutex is rank 450 (common.arena.registry) —
// above the SMB segment (200) and table (210) locks because segment
// storage is recycled while they are held, below the parallel pool (500)
// because kernels acquire scratch before submitting chunks, never inside
// them.  `Buffer` itself is not synchronised (one owner at a time, like
// the vectors it replaces).
//
// The global arena is a leaked singleton: buffers with thread-local or
// static lifetime may release during shutdown, so the registry must never
// be destroyed first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"

namespace shmcaffe::common::arena {

/// Per-owner accounting, all monotone except bytes_live.
struct OwnerStats {
  std::uint64_t bytes_live = 0;    ///< bytes currently acquired
  std::uint64_t bytes_peak = 0;    ///< high-water mark of bytes_live
  std::uint64_t bytes_reused = 0;  ///< bytes served from the free list
  std::uint64_t slab_reuses = 0;   ///< acquires served from the free list
  std::uint64_t slab_allocs = 0;   ///< acquires that hit the OS allocator
};

struct Stats {
  OwnerStats total;
  /// Ordered by label for stable logging/tests.
  std::map<std::string, OwnerStats> by_owner;
};

class Arena {
 public:
  /// One recycled allocation: `capacity` floats, 64-byte aligned.
  struct Slab {
    float* data = nullptr;
    std::size_t capacity = 0;  ///< floats, always a full size class
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  /// A slab of at least `count` floats charged to `owner`.  Contents are
  /// unspecified (recycled slabs keep their previous bytes).
  Slab acquire(const char* owner, std::size_t count);
  /// Returns the slab to the free list and credits `owner`.  The slab must
  /// have come from this arena's acquire (same capacity class).
  void release(const char* owner, Slab slab) noexcept;

  [[nodiscard]] Stats stats() const;
  /// Drops every free-listed slab back to the OS; returns bytes freed.
  /// Live slabs are untouched.
  std::size_t trim();

  /// Size class (in floats) an acquire of `count` floats maps to: the next
  /// power of two, at least kMinSlabFloats.
  [[nodiscard]] static std::size_t slab_class(std::size_t count);

  static constexpr std::size_t kMinSlabFloats = 64;  ///< 256 B
  static constexpr std::size_t kAlignment = 64;      ///< bytes

 private:
  /// Rank 450 (common.arena.registry): above the SMB segment/table locks,
  /// below the parallel pool — see the table in common/ordered_mutex.h.
  mutable OrderedMutex mutex_{"common.arena.registry", lockrank::kArena};
  /// capacity class (floats) -> idle slabs of exactly that class.
  std::unordered_map<std::size_t, std::vector<float*>> free_lists_
      SHMCAFFE_GUARDED_BY(mutex_);
  std::map<std::string, OwnerStats> by_owner_ SHMCAFFE_GUARDED_BY(mutex_);
  OwnerStats total_ SHMCAFFE_GUARDED_BY(mutex_);
};

/// The process-wide arena every Buffer uses unless told otherwise.
[[nodiscard]] Arena& global_arena();

/// Move-only sized float buffer backed by one arena slab.  Replaces
/// `std::vector<float>` in hot paths: `ensure` never shrinks the slab and
/// never zero-fills, so repeating the same sizes across iterations costs
/// nothing after the first.
class Buffer {
 public:
  Buffer() = default;
  /// `owner` must outlive the buffer (string literals in practice).
  explicit Buffer(const char* owner, Arena* arena = &global_arena())
      : arena_(arena), owner_(owner) {}
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept { *this = static_cast<Buffer&&>(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = other.arena_;
      owner_ = other.owner_;
      slab_ = other.slab_;
      size_ = other.size_;
      other.slab_ = {};
      other.size_ = 0;
    }
    return *this;
  }
  ~Buffer() { reset(); }

  /// Sets the size to `count`, growing the slab if needed.  Existing
  /// contents up to min(old size, count) are preserved; any new tail is
  /// unspecified (use assign() when the whole buffer must be a value).
  void ensure(std::size_t count) {
    if (count > slab_.capacity) grow(count);
    size_ = count;
  }

  /// ensure(count) then fill with `value`.
  void assign(std::size_t count, float value) {
    if (count > slab_.capacity) grow_discard(count);
    size_ = count;
    for (std::size_t i = 0; i < count; ++i) slab_.data[i] = value;
  }

  [[nodiscard]] float* data() { return slab_.data; }
  [[nodiscard]] const float* data() const { return slab_.data; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slab_.capacity; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] float& operator[](std::size_t i) { return slab_.data[i]; }
  [[nodiscard]] const float& operator[](std::size_t i) const { return slab_.data[i]; }
  [[nodiscard]] std::span<float> span() { return {slab_.data, size_}; }
  [[nodiscard]] std::span<const float> span() const { return {slab_.data, size_}; }

  /// Returns the slab to the arena (size and capacity drop to zero).
  void reset() noexcept {
    if (slab_.data != nullptr) arena_->release(owner_, slab_);
    slab_ = {};
    size_ = 0;
  }

  [[nodiscard]] const char* owner() const { return owner_; }

 private:
  void grow(std::size_t count);
  /// Grow without preserving contents (assign overwrites everything).
  void grow_discard(std::size_t count);

  Arena* arena_ = &global_arena();
  const char* owner_ = "unlabeled";
  Arena::Slab slab_;
  std::size_t size_ = 0;
};

}  // namespace shmcaffe::common::arena
