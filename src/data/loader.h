// Sharded minibatch loading with background prefetch.
//
// ShardedLoader partitions a dataset across workers without duplication
// (round-robin by index), reshuffles its shard every epoch with a
// deterministic per-(seed, epoch) permutation, and emits fixed-size
// minibatches.  Prefetcher wraps a loader in a producer thread with a
// bounded queue — the paper's platforms prefetch 10 minibatches to hide
// data-feeding latency (§IV-C).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/rng.h"
#include "data/synth_dataset.h"
#include "dl/tensor.h"

namespace shmcaffe::data {

struct Batch {
  dl::Tensor data;
  dl::Tensor labels;
  int epoch = 0;
  [[nodiscard]] int size() const { return data.empty() ? 0 : data.dim(0); }
};

class ShardedLoader {
 public:
  /// `worker` in [0, worker_count); the shard is every worker_count-th index.
  ShardedLoader(const SynthImageDataset& dataset, int worker, int worker_count,
                int batch_size, std::uint64_t shuffle_seed = 0x5eed);

  /// Samples in this worker's shard.
  [[nodiscard]] std::size_t shard_size() const { return shard_.size(); }
  /// Full minibatches per epoch (a trailing partial batch is dropped, as
  /// Caffe's data layer does).
  [[nodiscard]] std::size_t batches_per_epoch() const { return shard_.size() / batch_size_; }
  [[nodiscard]] int batch_size() const { return batch_size_; }
  [[nodiscard]] int epoch() const { return epoch_; }

  /// Fills the next minibatch, advancing (and reshuffling at) epoch
  /// boundaries.
  void next(Batch& batch);

  /// Advances the cursor as if `count` batches had been consumed, without
  /// materialising them — exactly replicating next()'s epoch/reshuffle
  /// sequence.  Checkpoint resume uses this to restore the data stream to
  /// the position the interrupted run would have reached.
  void skip_batches(std::int64_t count);

 private:
  void shuffle_for_epoch();

  const SynthImageDataset* dataset_;
  int batch_size_;
  std::uint64_t shuffle_seed_;
  std::vector<std::size_t> shard_;
  std::size_t cursor_ = 0;
  int epoch_ = 0;
};

/// Background-thread prefetcher over a ShardedLoader.
class Prefetcher {
 public:
  Prefetcher(ShardedLoader loader, std::size_t depth = 10);
  ~Prefetcher();
  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Blocks until a prefetched batch is available.
  SHMCAFFE_BLOCKS Batch next();

  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  void producer_loop();

  ShardedLoader loader_;
  std::size_t depth_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> queue_;
  bool stopping_ = false;
  std::thread producer_;  // lint:allow(no-raw-thread) — I/O prefetch, not compute
};

}  // namespace shmcaffe::data
