#include "data/record_store.h"

#include <cstring>

namespace shmcaffe::data {
namespace {

constexpr std::uint32_t kMagic = 0x534d4231;  // "SMB1"

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
  const auto* begin = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), begin, begin + sizeof(T));
}

template <typename T>
bool read_pod(std::span<const std::byte>& in, T& value) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

bool RecordStore::put(std::string key, std::vector<std::byte> value) {
  const std::int64_t bytes = static_cast<std::int64_t>(value.size());
  const auto [it, inserted] = records_.emplace(std::move(key), std::move(value));
  if (inserted) total_bytes_ += bytes;
  return inserted;
}

std::optional<std::span<const std::byte>> RecordStore::get(const std::string& key) const {
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return std::span<const std::byte>(it->second);
}

std::vector<std::string> RecordStore::keys() const {
  std::vector<std::string> result;
  result.reserve(records_.size());
  for (const auto& [key, value] : records_) result.push_back(key);
  return result;
}

std::vector<std::byte> encode_sample(std::span<const float> image, int label) {
  std::vector<std::byte> out;
  out.reserve(sizeof(std::uint32_t) * 3 + image.size_bytes());
  append_pod(out, kMagic);
  append_pod(out, static_cast<std::int32_t>(label));
  append_pod(out, static_cast<std::uint32_t>(image.size()));
  const auto* pixels = reinterpret_cast<const std::byte*>(image.data());
  out.insert(out.end(), pixels, pixels + image.size_bytes());
  return out;
}

bool decode_sample(std::span<const std::byte> record, std::vector<float>& image, int& label) {
  std::uint32_t magic = 0;
  std::int32_t stored_label = 0;
  std::uint32_t count = 0;
  if (!read_pod(record, magic) || magic != kMagic) return false;
  if (!read_pod(record, stored_label)) return false;
  if (!read_pod(record, count)) return false;
  if (record.size() != count * sizeof(float)) return false;
  image.resize(count);
  std::memcpy(image.data(), record.data(), record.size());
  label = stored_label;
  return true;
}

std::string record_key(std::size_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%010zu", index);
  return buf;
}

std::size_t write_dataset(const SynthImageDataset& dataset, RecordStore& store) {
  std::vector<float> image(dataset.image_elements());
  std::size_t written = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset.materialize(i, image);
    if (store.put(record_key(i), encode_sample(image, dataset.label(i)))) ++written;
  }
  return written;
}

}  // namespace shmcaffe::data
