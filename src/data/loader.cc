#include "data/loader.h"

#include <cassert>
#include <stdexcept>

namespace shmcaffe::data {

ShardedLoader::ShardedLoader(const SynthImageDataset& dataset, int worker, int worker_count,
                             int batch_size, std::uint64_t shuffle_seed)
    : dataset_(&dataset), batch_size_(batch_size), shuffle_seed_(shuffle_seed) {
  if (worker < 0 || worker >= worker_count) {
    throw std::invalid_argument("ShardedLoader: worker out of range");
  }
  if (batch_size < 1) throw std::invalid_argument("ShardedLoader: batch_size must be >= 1");
  for (std::size_t i = static_cast<std::size_t>(worker); i < dataset.size();
       i += static_cast<std::size_t>(worker_count)) {
    shard_.push_back(i);
  }
  if (shard_.size() < static_cast<std::size_t>(batch_size)) {
    throw std::invalid_argument("ShardedLoader: shard smaller than one batch");
  }
  shuffle_for_epoch();
}

void ShardedLoader::shuffle_for_epoch() {
  common::Rng rng = common::Rng(shuffle_seed_).fork(static_cast<std::uint64_t>(epoch_));
  rng.shuffle(shard_);
  cursor_ = 0;
}

void ShardedLoader::next(Batch& batch) {
  if (cursor_ + static_cast<std::size_t>(batch_size_) > shard_.size()) {
    ++epoch_;
    shuffle_for_epoch();
  }
  batch.epoch = epoch_;
  dataset_->fill_batch(
      std::span<const std::size_t>(shard_.data() + cursor_,
                                   static_cast<std::size_t>(batch_size_)),
      batch.data, batch.labels);
  cursor_ += static_cast<std::size_t>(batch_size_);
}

void ShardedLoader::skip_batches(std::int64_t count) {
  for (std::int64_t b = 0; b < count; ++b) {
    if (cursor_ + static_cast<std::size_t>(batch_size_) > shard_.size()) {
      ++epoch_;
      shuffle_for_epoch();
    }
    cursor_ += static_cast<std::size_t>(batch_size_);
  }
}

Prefetcher::Prefetcher(ShardedLoader loader, std::size_t depth)
    : loader_(std::move(loader)), depth_(depth == 0 ? 1 : depth) {
  // Dedicated I/O producer; batches cross the queue in deterministic order
  // regardless of timing.
  producer_ = std::thread([this] { producer_loop(); });  // lint:allow(no-raw-thread)
}

Prefetcher::~Prefetcher() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  producer_.join();
}

void Prefetcher::producer_loop() {
  for (;;) {
    Batch batch;
    loader_.next(batch);
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return queue_.size() < depth_ || stopping_; });
    if (stopping_) return;
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
  }
}

Batch Prefetcher::next() {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [this] { return !queue_.empty(); });
  Batch batch = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return batch;
}

}  // namespace shmcaffe::data
