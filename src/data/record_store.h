// In-memory key-value record store with an LMDB-style flavour, plus the
// sample codec used to serialise dataset entries.
//
// The paper converts ImageNet to LMDB before training; this store plays
// that role for the synthetic dataset: `write_dataset` freezes a
// SynthImageDataset into records (sorted keys, zero-padded decimal index,
// exactly how Caffe's convert_imageset names entries), and readers fetch
// records by key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/synth_dataset.h"

namespace shmcaffe::data {

class RecordStore {
 public:
  /// Inserts a record; returns false if the key already exists.
  bool put(std::string key, std::vector<std::byte> value);

  /// Returns the record's bytes, or nullopt if absent.
  [[nodiscard]] std::optional<std::span<const std::byte>> get(const std::string& key) const;

  [[nodiscard]] std::size_t count() const { return records_.size(); }
  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }

  /// All keys in lexicographic order.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::vector<std::byte>> records_;
  std::int64_t total_bytes_ = 0;
};

/// Serialises one (image, label) sample.  Format: u32 magic, i32 label,
/// u32 count, then count raw floats.
std::vector<std::byte> encode_sample(std::span<const float> image, int label);

/// Decodes; returns false on malformed input.
bool decode_sample(std::span<const std::byte> record, std::vector<float>& image, int& label);

/// Zero-padded decimal record key for sample `index` (Caffe convention).
std::string record_key(std::size_t index);

/// Freezes the whole dataset into the store.  Returns records written.
std::size_t write_dataset(const SynthImageDataset& dataset, RecordStore& store);

}  // namespace shmcaffe::data
