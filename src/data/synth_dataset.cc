#include "data/synth_dataset.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace shmcaffe::data {
namespace {

/// Base intensity of pattern family `cls` at pixel (y, x), in [-1, 1].
/// `phase_y`, `phase_x` jitter the geometry per sample; `freq` the scale.
float pattern_value(int cls, int y, int x, int height, int width, double phase_y,
                    double phase_x, double freq) {
  const double fy = (y + phase_y) * freq;
  const double fx = (x + phase_x) * freq;
  const double cy = height / 2.0 + phase_y;
  const double cx = width / 2.0 + phase_x;
  const double dy = y - cy;
  const double dx = x - cx;
  const double radius = std::sqrt(dy * dy + dx * dx);
  switch (cls) {
    case 0:  // horizontal stripes
      return static_cast<float>(std::sin(fy));
    case 1:  // vertical stripes
      return static_cast<float>(std::sin(fx));
    case 2:  // diagonal stripes
      return static_cast<float>(std::sin((fy + fx) * 0.7071));
    case 3:  // checkerboard
      return static_cast<float>(std::sin(fy) * std::sin(fx));
    case 4:  // concentric rings
      return static_cast<float>(std::sin(radius * freq * 2.0));
    case 5:  // centred blob
      return static_cast<float>(2.0 * std::exp(-radius * radius / (0.08 * height * width)) -
                                1.0);
    case 6:  // corner-to-corner gradient
      return static_cast<float>((static_cast<double>(y) / height +
                                 static_cast<double>(x) / width) -
                                1.0);
    case 7: {  // axis-aligned cross
      const bool on_cross = std::abs(dy) < height / 6.0 || std::abs(dx) < width / 6.0;
      return on_cross ? 1.0F : -1.0F;
    }
    default:
      return 0.0F;
  }
}

}  // namespace

SynthImageDataset::SynthImageDataset(SynthDatasetOptions options) : options_(options) {
  if (options_.classes < 2 || options_.classes > 8) {
    throw std::invalid_argument("SynthImageDataset supports 2..8 classes");
  }
  if (options_.size == 0 || options_.channels < 1 || options_.height < 4 ||
      options_.width < 4) {
    throw std::invalid_argument("SynthImageDataset: invalid geometry");
  }
}

int SynthImageDataset::label(std::size_t index) const {
  assert(index < options_.size);
  return static_cast<int>(index % static_cast<std::size_t>(options_.classes));
}

void SynthImageDataset::materialize(std::size_t index, std::span<float> image) const {
  assert(index < options_.size);
  if (image.size() != image_elements()) {
    throw std::invalid_argument("materialize: wrong image buffer size");
  }
  const int cls = label(index);
  common::Rng rng = common::Rng(options_.seed).fork(index * 2654435761ULL + 1);

  // Per-sample geometric and photometric jitter.
  const double phase_y = rng.uniform(0.0, 4.0);
  const double phase_x = rng.uniform(0.0, 4.0);
  const double freq = rng.uniform(0.9, 1.25) * (2.0 * M_PI / 8.0);
  const double amplitude = rng.uniform(0.7, 1.0);

  for (int c = 0; c < options_.channels; ++c) {
    const double tint = rng.uniform(0.8, 1.2);
    for (int y = 0; y < options_.height; ++y) {
      for (int x = 0; x < options_.width; ++x) {
        const std::size_t at =
            (static_cast<std::size_t>(c) * options_.height + y) * options_.width + x;
        const double base = pattern_value(cls, y, x, options_.height, options_.width,
                                          phase_y, phase_x, freq);
        image[at] = static_cast<float>(amplitude * tint * base +
                                       rng.normal(0.0, options_.noise_stddev));
      }
    }
  }
}

void SynthImageDataset::fill_batch(std::span<const std::size_t> indices, dl::Tensor& data,
                                   dl::Tensor& labels) const {
  const int batch = static_cast<int>(indices.size());
  data.reshape({batch, options_.channels, options_.height, options_.width});
  labels.reshape({batch});
  const std::size_t stride = image_elements();
  for (int n = 0; n < batch; ++n) {
    const std::size_t index = indices[static_cast<std::size_t>(n)];
    materialize(index,
                std::span<float>(data.data() + static_cast<std::size_t>(n) * stride, stride));
    labels[static_cast<std::size_t>(n)] = static_cast<float>(label(index));
  }
}

}  // namespace shmcaffe::data
