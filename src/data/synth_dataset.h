// Procedural synthetic image-classification dataset.
//
// Stands in for ILSVRC-2012 in the convergence experiments: 8 pattern
// families (stripes, checkerboards, rings, blobs, gradients, crosses) with
// per-sample geometric jitter, per-channel tinting and additive Gaussian
// noise.  Every sample is generated deterministically from (seed, index), so
// the dataset needs no storage, every worker sees identical data, and any
// index can be materialised in O(H*W) — which is also what lets the sharded
// loader hand out disjoint subsets without duplication (paper §III-C: "the
// deep learning data is assigned to all workers without duplication").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "dl/tensor.h"

namespace shmcaffe::data {

struct SynthDatasetOptions {
  int channels = 3;
  int height = 16;
  int width = 16;
  int classes = 8;  ///< at most 8 pattern families are defined
  std::size_t size = 4096;
  double noise_stddev = 0.35;
  std::uint64_t seed = 0x5ca1e;
};

class SynthImageDataset {
 public:
  explicit SynthImageDataset(SynthDatasetOptions options);

  [[nodiscard]] std::size_t size() const { return options_.size; }
  [[nodiscard]] const SynthDatasetOptions& options() const { return options_; }
  [[nodiscard]] std::size_t image_elements() const {
    return static_cast<std::size_t>(options_.channels) * options_.height * options_.width;
  }

  /// Class label of sample `index` (balanced round-robin).
  [[nodiscard]] int label(std::size_t index) const;

  /// Writes sample `index`'s pixels into `image` (image_elements() floats).
  void materialize(std::size_t index, std::span<float> image) const;

  /// Fills a batch: `data` reshaped to [indices.size(), C, H, W], `labels`
  /// to [indices.size()].
  void fill_batch(std::span<const std::size_t> indices, dl::Tensor& data,
                  dl::Tensor& labels) const;

 private:
  SynthDatasetOptions options_;
};

}  // namespace shmcaffe::data
