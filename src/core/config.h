// Shared configuration of the functional distributed-training experiments
// (ShmCaffe and the baseline platforms).
#pragma once

#include <cstdint>
#include <string>

#include "data/synth_dataset.h"
#include "dl/models.h"
#include "dl/solver.h"
#include "elastic/membership.h"
#include "recovery/checkpoint.h"
#include "recovery/integrity.h"
#include "recovery/schedule.h"

namespace shmcaffe::fault {
class FaultInjector;
}  // namespace shmcaffe::fault

namespace shmcaffe::core {

/// How workers align their termination (§III-E).
enum class TerminationCriterion {
  kMasterFinishes,      ///< everyone stops when the master reaches its target
  kFirstFinisher,       ///< everyone stops when any worker reaches its target
  kAverageIterations,   ///< stop when the mean iteration count reaches the target
};

struct DistTrainOptions {
  int workers = 4;
  /// Workers per node group for hybrid SGD; 1 means every worker is its own
  /// group (pure SEASGD).
  int group_size = 1;
  int batch_size = 32;
  int epochs = 6;  ///< data-parallel epochs over the whole training set

  std::string model_family = "mini_inception";
  dl::ModelInputSpec input;
  data::SynthDatasetOptions train_data;
  data::SynthDatasetOptions test_data;

  dl::SolverOptions solver;
  /// ShmCaffe hyper-parameters (§III-A): the paper's defaults.
  double moving_rate = 0.2;
  int update_interval = 1;
  /// Number of SMB servers sharding the global buffer (the paper's future
  /// work §V); 1 = the paper's evaluated configuration.
  int smb_servers = 1;
  /// Replicas per SMB shard.  1 = the paper's single passive server (no
  /// redundancy); >= 2 wraps each shard in a ReplicatedSmb ensemble that
  /// mirrors mutations and fails over when the primary fail-stops.
  int smb_replicas = 1;
  /// When true, the T1 read of the elastic exchange (Fig. 6) pins
  /// epoch-stable zero-copy views of W_g instead of staging a private copy;
  /// the T2 arithmetic runs directly against SMB storage.  Numerically
  /// identical either way (eqs. (5)+(6) are elementwise); this only trades
  /// a memcpy for a pin/unpin pair.  Checkpoint and recovery reads always
  /// copy (they outlive the read window).
  bool zero_copy_reads = true;

  TerminationCriterion termination = TerminationCriterion::kAverageIterations;
  /// Bound on how many iterations a worker may run ahead of the slowest one
  /// (enforced through the shared progress board).  The paper's workers are
  /// identical GPUs that naturally stay within ~1 iteration of each other;
  /// on an oversubscribed CPU the OS scheduler would otherwise let one
  /// thread race dozens of iterations ahead, producing staleness the real
  /// system never sees.  0 disables the bound (free-running threads).
  int max_iteration_skew = 4;
  std::uint64_t seed = 0x5eedc0de;
  /// Prefetch queue depth (the paper prefetches 10 minibatches).
  std::size_t prefetch_depth = 4;

  /// Optional fault injection (crashes, stalls, SMB freezes); not owned,
  /// must outlive the run.  nullptr = fault-free.
  const fault::FaultInjector* faults = nullptr;
  /// A worker whose heartbeat is older than this is declared dead and
  /// excluded from termination and pacing (graceful degradation).  Must
  /// exceed the worst-case gap between a live worker's reports — an
  /// iteration plus any injected stall.  <= 0 disables liveness sweeping
  /// (a dead worker then hangs min/mean termination, the pre-fault
  /// behaviour).
  double heartbeat_timeout_seconds = 2.0;

  /// What the run does about injected failures (failover / re-admission).
  /// Defaults preserve the degrade-only behaviour.
  recovery::RecoveryPolicy recovery;
  /// Crash-consistent checkpointing + resume; disabled unless a directory
  /// is set.
  recovery::CheckpointConfig checkpoint;
  /// Data-integrity policy: segment checksums, verification, read-repair,
  /// scrubbing.  Defaults keep the checksum-free pre-integrity behaviour.
  recovery::IntegrityPolicy integrity;

  /// Optional elastic-membership plan (cold joins and voluntary drains at
  /// planned iterations); not owned, must outlive the run.  nullptr = the
  /// fixed-membership behaviour.  Requires group_size == 1: elastic workers
  /// run pure SEASGD (a hybrid group cannot shrink mid-collective).
  const elastic::MembershipPlan* membership = nullptr;
  /// Straggler detection/quarantine policy and elastic pacing knobs; the
  /// detector runs only when membership_policy.straggler_detection is set
  /// (which also requires group_size == 1).
  elastic::MembershipPolicy membership_policy;

  DistTrainOptions() {
    train_data.size = 2048;
    test_data.size = 512;
    test_data.seed = 0x7e57;
    solver.base_lr = 0.05;
    solver.momentum = 0.9;
    solver.lr_policy = dl::LrPolicy::kStep;
    solver.gamma = 0.1;
    solver.step_size = 1 << 30;  // trainers overwrite with 4-epoch steps
  }
};

/// One point of a training curve (evaluated on the shared/global weights).
struct EpochMetrics {
  int epoch = 0;
  double test_loss = 0.0;
  double test_accuracy = 0.0;
};

/// Per-worker timing/throughput telemetry of a functional training run —
/// the software counterpart of the paper's per-iteration computation vs
/// communication breakdown.
struct WorkerStats {
  std::int64_t iterations = 0;
  std::int64_t exchanges = 0;        ///< SEASGD exchanges performed
  double train_seconds = 0.0;        ///< forward + backward + solver
  double exchange_seconds = 0.0;     ///< SEASGD exchange incl. T.A5 blocking
  double collective_seconds = 0.0;   ///< intra-group allreduce/broadcast
  double data_wait_seconds = 0.0;    ///< blocked on the prefetcher
};

/// How a worker's participation in a run ended.
enum class WorkerOutcome : std::uint8_t {
  kFinished = 0,    ///< completed training normally
  kCrashed = 1,     ///< fail-stopped by fault injection
  kFenced = 2,      ///< declared dead by survivors (missed heartbeats) and exited
  kDrained = 3,     ///< left the run voluntarily at its planned drain point
  kEvicted = 4,     ///< removed by the straggler detector (repeated violations)
  kNeverJoined = 5, ///< a reserved join slot whose worker never joined
};

struct TrainResult {
  std::vector<EpochMetrics> curve;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  std::vector<std::int64_t> iterations_per_worker;
  std::vector<WorkerStats> worker_stats;
  /// Per-worker outcome; the curve reflects only kFinished workers' last
  /// contributions once their peers dropped out.
  std::vector<WorkerOutcome> worker_outcomes;
  /// Workers that did not finish (crashed or fenced), ascending.
  std::vector<int> dead_workers;
  /// Workers whose slot was re-admitted mid-run (respawned replacement or
  /// recovered fenced worker), ascending.  A worker can appear in both
  /// lists: its first life died, its slot finished under a new incarnation.
  std::vector<int> recovered_workers;
  /// SMB primary failovers executed across all shard ensembles.
  std::int64_t smb_failovers = 0;
  /// Checkpoints written during the run, and the iteration sum restored
  /// from a checkpoint at start (0 for a fresh run).
  std::int64_t checkpoints_taken = 0;
  std::int64_t resumed_iterations = 0;
  /// Fingerprint of the recovery actions actually executed (see
  /// recovery::schedule_fingerprint); comparable across the functional and
  /// simulated stacks.
  std::uint64_t recovery_fingerprint = 0;
  /// Elastic membership: workers that cold-joined / voluntarily drained
  /// mid-run, ascending; shard-map rebalances executed; straggler
  /// quarantine demotions observed.
  std::vector<int> joined_workers;
  std::vector<int> drained_workers;
  std::int64_t rebalances = 0;
  std::int64_t quarantine_events = 0;
  /// Fingerprint of the membership transitions actually executed (see
  /// elastic::membership_fingerprint); comparable across the functional and
  /// simulated stacks.  0 when the run is neither elastic nor
  /// straggler-aware.
  std::uint64_t membership_fingerprint = 0;
  /// Data integrity: distinct corruption markers caught by checksum
  /// verification, replica copies rewritten by read-repair, scrub passes
  /// completed, and checkpoint rollbacks forced by unrepairable segments.
  std::int64_t corruptions_detected = 0;
  std::int64_t integrity_repairs = 0;
  std::int64_t scrub_passes = 0;
  std::int64_t integrity_rollbacks = 0;
  /// Fingerprint of the integrity events actually executed (see
  /// recovery::integrity_fingerprint); comparable across the functional and
  /// simulated stacks.  0 when the run has no fault plan or no integrity.
  std::uint64_t integrity_fingerprint = 0;
  double wall_seconds = 0.0;
};

}  // namespace shmcaffe::core
