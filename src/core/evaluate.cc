#include "core/evaluate.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace shmcaffe::core {

EvalResult evaluate(dl::Net& net, const data::SynthImageDataset& dataset, int batch_size) {
  EvalResult result;
  std::vector<std::size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  double loss_sum = 0.0;
  std::size_t correct = 0;
  std::size_t done = 0;
  while (done < indices.size()) {
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(batch_size), indices.size() - done);
    dataset.fill_batch(std::span<const std::size_t>(indices.data() + done, take),
                       net.input("data"), net.input("label"));
    const dl::Tensor& loss = net.forward(/*train=*/false);
    loss_sum += static_cast<double>(loss[0]) * static_cast<double>(take);
    const std::vector<int> predicted = dl::argmax_rows(net.blob("logits"));
    for (std::size_t i = 0; i < take; ++i) {
      correct += predicted[i] == static_cast<int>(net.input("label")[i]);
    }
    done += take;
  }
  result.samples = done;
  result.loss = loss_sum / static_cast<double>(done);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(done);
  return result;
}

}  // namespace shmcaffe::core
