// Timed ShmCaffe model (ShmCaffe-A and ShmCaffe-H) over the simulated SMB.
//
// One simulated process per worker *group* (a synchronous group behaves as a
// single super-worker: its members march in lockstep, so only the group's
// aggregate timing matters).  Each group iteration replays Fig. 6:
//
//   [block until previous increment flushed]            -> counted as comm
//   T1  read W_g from the SMB server                    -> comm
//   T2  update local weight (P bytes at GPU rate)       -> comm
//   T3  wake the update thread, which overlaps:
//         T.A1 write dW to the group's RSM segment
//         T.A2-4 exclusive server-side accumulate
//   T4+T5  compute (max over the group's members' jittered times)  -> comp
//   [hybrid only] intra-node ncclAllReduce + root broadcast        -> comm
//
// update_interval > 1 skips the exchange on non-sharing iterations.
#pragma once

#include "cluster/jitter.h"
#include "cluster/model_profiles.h"
#include "cluster/platform_result.h"
#include "elastic/membership.h"
#include "recovery/integrity.h"
#include "recovery/schedule.h"

namespace shmcaffe::fault {
class FaultInjector;
}  // namespace shmcaffe::fault

namespace shmcaffe::core {

struct SimShmCaffeOptions {
  cluster::ModelKind model = cluster::ModelKind::kInceptionV1;
  int workers = 8;               ///< total GPUs
  int group_size = 1;            ///< S per group; 1 = pure SEASGD (ShmCaffe-A)
  int update_interval = 1;
  /// Number of SMB servers sharding the global weight buffer — the paper's
  /// stated future work ("improve the performance of the SMB framework by
  /// using multiple SMB servers").  Each server holds param_bytes/N of W_g
  /// and dW_x; a worker exchanges with all servers in parallel.
  int smb_servers = 1;
  /// Replicas per SMB shard (timing model of the recovery layer): replica r
  /// of shard s is physical server s * smb_replicas + r, matching the
  /// functional trainer's topology so fault plans target the same indices.
  int smb_replicas = 1;
  /// What the modelled run does about injected failures; the same policy
  /// the functional trainer takes, so both stacks derive the identical
  /// recovery schedule from one FaultPlan.
  recovery::RecoveryPolicy recovery;
  /// Data-integrity policy (checksums, verification, read-repair, scrub).
  /// The same policy the functional trainer takes, so both stacks derive
  /// the identical integrity schedule from one FaultPlan.  Read-repair
  /// needs smb_replicas >= 2 (a lone copy has no peer to vote against).
  recovery::IntegrityPolicy integrity;
  /// Model the T1 read as an epoch-pinned zero-copy view (a worker
  /// colocated with its SMB shard attaches the segment in-process and T2
  /// runs directly against SMB storage — only the API overhead is charged,
  /// no HCA data transfer).  Default false: the paper's evaluated topology
  /// keeps the memory server remote, so W_g must cross the fabric each
  /// exchange, and the Fig. 12-15 timing fingerprints assume that cost.
  bool zero_copy_reads = false;
  std::int64_t iterations = 200; ///< per group (measurement window)
  /// Fig. 6's design: the weight-increment write and global accumulate run
  /// on a separate update thread, hidden behind computation.  false = the
  /// ablation where the main thread performs them inline.
  bool overlap_update = true;
  cluster::TestbedSpec testbed;
  cluster::ComputeJitter jitter;
  std::uint64_t seed = 0x51;
  /// Optional fault injection; not owned, must outlive the call.  Worker
  /// crash/stall events are keyed to group roots (worker g*group_size — a
  /// synchronous group fails or stalls as a unit), link windows map onto the
  /// fabric's links by index, and datagram drops onto transfer sequence
  /// numbers.  nullptr = fault-free.
  const fault::FaultInjector* faults = nullptr;
  /// Elastic membership plan (cold joins above `workers`, voluntary drains);
  /// not owned, must outlive the call.  The same plan the functional trainer
  /// consumes — both stacks derive the identical membership schedule and
  /// fingerprint from it.  Requires group_size == 1 when set.
  const elastic::MembershipPlan* membership = nullptr;
  /// Straggler-quarantine policy + elastic latencies (join/drain/rebalance).
  /// membership_policy.straggler_detection also requires group_size == 1.
  elastic::MembershipPolicy membership_policy;
  /// Static per-worker compute/NIC heterogeneity: the planted straggler
  /// population the quarantine policy is exercised against at scale.
  cluster::HeterogeneityProfile heterogeneity;
};

/// Runs the timed model and returns the per-iteration breakdown.
cluster::PlatformTiming simulate_shmcaffe(const SimShmCaffeOptions& options);

}  // namespace shmcaffe::core
