// Functional ShmCaffe distributed trainer.
//
// Implements the paper's training system with real OS threads, a real SMB
// server (smb::SmbServer), MiniMPI initialisation and NCCL-style intra-group
// collectives:
//
//  * ShmCaffe-A (options.group_size == 1): every worker runs SEASGD against
//    the shared global-weight segment, with the Fig. 6 two-thread protocol —
//    the main thread reads W_g and updates the local weight at iteration
//    start; a separate update thread overlaps the weight-increment write and
//    the server-side accumulate with the minibatch computation; the two are
//    mutually exclusive via a per-worker lock.
//  * ShmCaffe-H (options.group_size > 1): workers in the same group run
//    synchronous SGD (ncclAllReduce gradient averaging), and only the group
//    root exchanges elastically with the SMB server, broadcasting refreshed
//    weights to its group (§III-D).
//
// Initialisation follows Fig. 2: MPI rank 0 creates the segments, publishes
// the SHM key over MPI broadcast, initialises W_g, and every worker attaches
// and adopts the global weights before training.  Termination is aligned
// through the shared progress board (§III-E).
#pragma once

#include "core/config.h"

namespace shmcaffe::core {

/// Runs distributed training; blocks until all workers finish.  The curve is
/// evaluated on the *global* weights at each epoch-equivalent boundary
/// (total iterations across workers).
TrainResult train_shmcaffe(const DistTrainOptions& options);

}  // namespace shmcaffe::core
